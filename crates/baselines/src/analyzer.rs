//! A whole-program driver for the baseline tests, mirroring
//! `dda_core::DependenceAnalyzer` so the Section 7 comparison runs both
//! sides over identical pair universes.

use dda_ir::{extract_accesses, reference_pairs, Access, Program};

use dda_core::problem::constant_compare;
use dda_core::DirectionVector;

use crate::banerjee::banerjee_independent_star;
use crate::gcd_simple::simple_gcd_independent;
use crate::model::build_model;
use crate::wolfe::wolfe_direction_vectors;

/// The baseline verdict for one pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselinePair {
    /// Name of the shared array.
    pub array: String,
    /// Provably independent under the inexact tests.
    pub independent: bool,
    /// Direction vectors the baseline could not rule out (empty when
    /// independent or when vectors were not computed).
    pub direction_vectors: Vec<DirectionVector>,
}

/// Aggregate results of a baseline run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BaselineReport {
    /// Per-pair verdicts, in enumeration order.
    pub pairs: Vec<BaselinePair>,
    /// Banerjee/GCD invocations performed.
    pub tests_run: u64,
}

impl BaselineReport {
    /// Number of pairs proven independent.
    #[must_use]
    pub fn independent_count(&self) -> usize {
        self.pairs.iter().filter(|p| p.independent).count()
    }

    /// Total direction vectors reported.
    #[must_use]
    pub fn direction_vector_count(&self) -> usize {
        self.pairs.iter().map(|p| p.direction_vectors.len()).sum()
    }
}

/// Analyzes one pair with the inexact cascade (simple GCD, then plain
/// Banerjee); optionally enumerates direction vectors with Wolfe's
/// extension.
#[must_use]
pub fn baseline_pair(
    a: &Access,
    b: &Access,
    common: usize,
    directions: bool,
    tests_run: &mut u64,
) -> BaselinePair {
    let array = a.array.clone();
    if let Some(dependent) = constant_compare(a, b) {
        return BaselinePair {
            array,
            independent: !dependent,
            direction_vectors: if dependent && directions {
                vec![DirectionVector::any(common)]
            } else {
                Vec::new()
            },
        };
    }
    let Some(model) = build_model(a, b, common) else {
        return BaselinePair {
            array,
            independent: false,
            direction_vectors: if directions {
                vec![DirectionVector::any(common)]
            } else {
                Vec::new()
            },
        };
    };
    if directions {
        let (vectors, n) = wolfe_direction_vectors(&model);
        *tests_run += n + 1; // + the up-front GCD call
        BaselinePair {
            array,
            independent: vectors.is_empty(),
            direction_vectors: vectors,
        }
    } else {
        *tests_run += 1;
        if simple_gcd_independent(&model) {
            return BaselinePair {
                array,
                independent: true,
                direction_vectors: Vec::new(),
            };
        }
        *tests_run += 1;
        BaselinePair {
            array,
            independent: banerjee_independent_star(&model),
            direction_vectors: Vec::new(),
        }
    }
}

/// Runs the baseline analyzer over a whole (normalized) program.
///
/// # Examples
///
/// ```
/// use dda_ir::parse_program;
/// use dda_baselines::analyze_with_baselines;
///
/// let p = parse_program("for i = 1 to 10 { a[i] = a[i + 10]; }")?;
/// let report = analyze_with_baselines(&p, false);
/// assert_eq!(report.independent_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn analyze_with_baselines(program: &Program, directions: bool) -> BaselineReport {
    let set = extract_accesses(program);
    let pairs = reference_pairs(&set, false);
    let mut report = BaselineReport::default();
    for p in pairs {
        let verdict = baseline_pair(p.a, p.b, p.common, directions, &mut report.tests_run);
        report.pairs.push(verdict);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_core::DependenceAnalyzer;
    use dda_ir::parse_program;

    #[test]
    fn baseline_sound_but_weaker_than_exact() {
        // Coupled subscripts: i = i′ (dim 0) and i = i′ + 1 (dim 1) are
        // jointly impossible. The exact analyzer sees it (inconsistent
        // equality system); per-dimension baselines cannot.
        let src = "for i = 1 to 10 { a[i][i] = a[i][i + 1]; }";
        let p = parse_program(src).unwrap();
        let base = analyze_with_baselines(&p, false);
        assert_eq!(base.independent_count(), 0);
        let exact = DependenceAnalyzer::new().analyze_program(&p);
        assert_eq!(exact.independent_count(), 1);
    }

    #[test]
    fn baseline_never_contradicts_exact_independence() {
        // Soundness: whenever the baseline says independent, the exact
        // analyzer agrees.
        let srcs = [
            "for i = 1 to 10 { a[i] = a[i + 10]; }",
            "for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }",
            "for i = 1 to 10 { a[i + 1] = a[i]; }",
            "for i = 1 to 10 { for j = 1 to 10 { a[i][j] = a[j][i]; } }",
        ];
        for src in srcs {
            let p = parse_program(src).unwrap();
            let base = analyze_with_baselines(&p, false);
            let exact = DependenceAnalyzer::new().analyze_program(&p);
            for (bp, ep) in base.pairs.iter().zip(exact.pairs()) {
                if bp.independent {
                    assert!(ep.result.is_independent(), "baseline unsound on {src}");
                }
            }
        }
    }

    #[test]
    fn baseline_direction_vectors_superset_of_exact() {
        let srcs = [
            "for i = 1 to 10 { a[i + 1] = a[i]; }",
            "for i = 1 to 4 { for j = 1 to 4 { a[i][j] = a[j][i]; } }",
            "for i = 1 to 10 { for j = 1 to 10 { a[j + 5] = a[j]; } }",
        ];
        for src in srcs {
            let p = parse_program(src).unwrap();
            let base = analyze_with_baselines(&p, true);
            let exact = DependenceAnalyzer::new().analyze_program(&p);
            let exact_total: usize = exact
                .pairs()
                .iter()
                .map(|r| r.direction_vectors.len())
                .sum();
            assert!(
                base.direction_vector_count() >= exact_total,
                "baseline must over- or equally report on {src}"
            );
        }
    }
}
