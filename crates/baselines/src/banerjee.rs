//! Banerjee's inequalities (the trapezoidal test, algorithm 4.3.1), with
//! Wolfe's direction-vector restriction.
//!
//! For each dimension, bound the real-valued range of `f(i) − f′(i′)` over
//! the iteration space (optionally restricted by a direction at each
//! common level). If 0 falls outside the range, the dimension — and hence
//! the pair — is independent. The test is inexact in two ways the paper's
//! suite repairs: it relaxes to the reals, and it treats dimensions
//! separately (no coupled subscripts).
//!
//! Triangular (trapezoidal) bounds are handled by interval-evaluating each
//! bound expression over the outer loops' ranges before bounding the
//! terms, which is the interval form of Banerjee's trapezoidal extension.

use crate::interval::Interval;
use crate::model::PairModel;

/// A direction restriction at one common level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `i < i′`
    Lt,
    /// `i = i′`
    Eq,
    /// `i > i′`
    Gt,
    /// Unrestricted.
    Any,
}

/// Bounds `a·x − b·y` for `x, y` in `range` subject to `x dir y`.
///
/// Returns `None` when the restricted region is empty (which proves
/// independence under that direction).
fn term_bounds(a: i64, b: i64, range: Interval, dir: Dir) -> Option<Interval> {
    match dir {
        Dir::Any => Some(range.scale(a).add(&range.scale(-b))),
        Dir::Eq => {
            if range.is_empty() {
                return None;
            }
            Some(range.scale(a - b))
        }
        Dir::Lt | Dir::Gt => {
            // Restricted triangle; exact vertex enumeration needs finite
            // bounds — otherwise stay conservative (unbounded).
            let (Some(lo), Some(hi)) = (range.lo, range.hi) else {
                return Some(Interval::UNBOUNDED);
            };
            if lo > hi {
                return None;
            }
            // Region: lo ≤ x, y ≤ hi and x ≤ y − 1 (Lt) or x ≥ y + 1 (Gt).
            // With x, y from the same loop range, the triangle is empty
            // exactly when the range has a single point.
            if lo + 1 > hi {
                return None;
            }
            // Vertices of {lo ≤ x ≤ hi, lo ≤ y ≤ hi, x ≤ y − 1}:
            // (lo, lo+1), (lo, hi), (hi−1, hi).
            let verts_lt = [(lo, lo + 1), (lo, hi), (hi - 1, hi)];
            let value = |(x, y): (i64, i64)| {
                a.checked_mul(x)?
                    .checked_add(b.checked_neg()?.checked_mul(y)?)
            };
            let mut min: Option<i64> = None;
            let mut max: Option<i64> = None;
            for v in verts_lt {
                let v = if matches!(dir, Dir::Gt) {
                    (v.1, v.0)
                } else {
                    v
                };
                let Some(t) = value(v) else {
                    return Some(Interval::UNBOUNDED);
                };
                min = Some(min.map_or(t, |m| m.min(t)));
                max = Some(max.map_or(t, |m| m.max(t)));
            }
            Some(Interval { lo: min, hi: max })
        }
    }
}

/// Runs the Banerjee inequalities with per-level direction restrictions
/// (`dirs.len()` must equal the number of common levels; use `Dir::Any`
/// everywhere for the plain test).
///
/// Returns `true` when the pair is provably independent under the given
/// directions.
#[must_use]
pub fn banerjee_independent(model: &PairModel, dirs: &[Dir]) -> bool {
    assert_eq!(dirs.len(), model.num_common, "one direction per level");
    model.dims.iter().any(|dim| {
        if dim.has_symbolic {
            return false;
        }
        let mut range = Interval::point(dim.constant);
        for (k, &(a, b)) in dim.common.iter().enumerate() {
            match term_bounds(a, b, model.common_intervals[k], dirs[k]) {
                Some(t) => range = range.add(&t),
                None => return true, // empty region: independent
            }
        }
        for &(c, iv) in &dim.extra {
            range = range.add(&iv.scale(c));
        }
        !range.contains(0)
    })
}

/// The plain (all-`*`) Banerjee test.
#[must_use]
pub fn banerjee_independent_star(model: &PairModel) -> bool {
    banerjee_independent(model, &vec![Dir::Any; model.num_common])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_model;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    fn model(src: &str) -> PairModel {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        build_model(pairs[0].a, pairs[0].b, pairs[0].common).unwrap()
    }

    #[test]
    fn bounds_conflict_detected() {
        // a[i] vs a[i+10] over 1..10: range of i − i' − 10 is [-19, -1].
        let m = model("for i = 1 to 10 { a[i] = a[i + 10]; }");
        assert!(banerjee_independent_star(&m));
    }

    #[test]
    fn overlapping_case_unknown() {
        let m = model("for i = 1 to 10 { a[i + 1] = a[i]; }");
        assert!(!banerjee_independent_star(&m));
    }

    #[test]
    fn coupled_subscripts_missed() {
        // a[i][i] vs a[i'][i'+1]: dimension 0 forces i = i′, dimension 1
        // forces i = i′ + 1 — jointly impossible, but each dimension
        // alone can reach zero, so per-dimension Banerjee cannot see it.
        let m = model("for i = 1 to 10 { a[i][i] = a[i][i + 1]; }");
        assert!(!banerjee_independent_star(&m), "baseline is inexact here");
    }

    #[test]
    fn directions_tighten_the_range() {
        // a[i+1] = a[i]: i + 1 = i', so i < i'. Direction '>' (i > i')
        // forces i − i' + 1 ∈ [2, 10]: independent. '<' stays possible.
        let m = model("for i = 1 to 10 { a[i + 1] = a[i]; }");
        assert!(banerjee_independent(&m, &[Dir::Gt]));
        assert!(banerjee_independent(&m, &[Dir::Eq]));
        assert!(!banerjee_independent(&m, &[Dir::Lt]));
    }

    #[test]
    fn lt_region_empty_for_singleton_range() {
        let m = model("for i = 5 to 5 { a[i + 1] = a[i]; }");
        assert!(banerjee_independent(&m, &[Dir::Lt]));
        assert!(banerjee_independent(&m, &[Dir::Gt]));
    }

    #[test]
    fn symbolic_bounds_stay_unknown() {
        let m = model("for i = 1 to n { a[i] = a[i + 10]; }");
        assert!(!banerjee_independent_star(&m), "unbounded range");
    }

    #[test]
    fn real_relaxation_misses_integer_gaps() {
        // 2i = 2i' + 1 has a real solution inside the bounds but no
        // integer one; Banerjee (without GCD) cannot reject it.
        let m = model("for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }");
        assert!(!banerjee_independent_star(&m));
    }

    #[test]
    fn term_bounds_vertices() {
        // T = x − y over 1..10 with x < y: vertices (1,2),(1,10),(9,10):
        // values -1, -9, -1 → [-9, -1].
        assert_eq!(
            term_bounds(1, 1, Interval::new(1, 10), Dir::Lt),
            Some(Interval::new(-9, -1))
        );
        // x > y mirrors to [1, 9].
        assert_eq!(
            term_bounds(1, 1, Interval::new(1, 10), Dir::Gt),
            Some(Interval::new(1, 9))
        );
        // Eq collapses to (a−b)·z.
        assert_eq!(
            term_bounds(3, 1, Interval::new(0, 5), Dir::Eq),
            Some(Interval::new(0, 10))
        );
    }
}
