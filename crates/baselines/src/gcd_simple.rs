//! The simple (per-dimension) GCD test — Banerjee's algorithm 5.4.1.
//!
//! For each array dimension, the dependence equation
//! `Σ aₖ·iₖ − Σ bₖ·i′ₖ + … = c` has an integer solution only if the gcd of
//! all variable coefficients divides `c`. Bounds are ignored, dimensions
//! are tested separately (no coupled-subscript reasoning), and a passing
//! gcd check proves nothing — the classic inexact workhorse the paper
//! measures against.

use dda_linalg::num::gcd;

use crate::model::PairModel;

/// Runs the simple GCD test.
///
/// Returns `true` when some dimension's gcd fails to divide its constant:
/// the references are provably independent. `false` means "maybe
/// dependent".
///
/// # Examples
///
/// ```
/// use dda_ir::{parse_program, extract_accesses, reference_pairs};
/// use dda_baselines::model::build_model;
/// use dda_baselines::gcd_simple::simple_gcd_independent;
///
/// let p = parse_program("for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }")?;
/// let set = extract_accesses(&p);
/// let pairs = reference_pairs(&set, false);
/// let m = build_model(pairs[0].a, pairs[0].b, pairs[0].common).unwrap();
/// assert!(simple_gcd_independent(&m)); // gcd(2,2) = 2 does not divide 1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn simple_gcd_independent(model: &PairModel) -> bool {
    model.dims.iter().any(|dim| {
        if dim.has_symbolic {
            // A symbolic term with unknown value can absorb any residue.
            return false;
        }
        let mut g = 0i64;
        for &(a, b) in &dim.common {
            g = gcd(g, a);
            g = gcd(g, b);
        }
        for &(c, _) in &dim.extra {
            g = gcd(g, c);
        }
        if g == 0 {
            // No variables at all: dependent iff the constant is zero.
            dim.constant != 0
        } else {
            dim.constant % g != 0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_model;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    fn run(src: &str) -> bool {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        let m = build_model(pairs[0].a, pairs[0].b, pairs[0].common).unwrap();
        simple_gcd_independent(&m)
    }

    #[test]
    fn parity_case_independent() {
        assert!(run("for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }"));
    }

    #[test]
    fn divisible_case_unknown() {
        assert!(!run("for i = 1 to 10 { a[2 * i] = a[2 * i + 4]; }"));
    }

    #[test]
    fn misses_bounds_based_independence() {
        // Exactly the weakness the paper's exact suite fixes: gcd(1,1)=1
        // divides 10, so the simple test cannot see the bounds conflict.
        assert!(!run("for i = 1 to 10 { a[i] = a[i + 10]; }"));
    }

    #[test]
    fn multi_dimensional_any_dim_suffices() {
        assert!(run(
            "for i = 1 to 10 { for j = 1 to 10 { a[i][2 * j] = a[i][2 * j + 1]; } }"
        ));
    }

    #[test]
    fn symbolic_blocks_conclusion() {
        assert!(!run(
            "read(n); for i = 1 to 10 { a[2 * i + n] = a[2 * i + 1]; }"
        ));
    }
}
