//! Interval arithmetic over possibly-unbounded integer ranges.
//!
//! The Banerjee-style baseline tests bound the value of a linear form over
//! the (real relaxation of the) iteration space. Loop ranges with symbolic
//! bounds become unbounded intervals, which can never exclude a
//! dependence — exactly the conservatism the inexact baselines exhibit.

/// A closed integer interval, possibly unbounded on either side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower end (`None` = −∞).
    pub lo: Option<i64>,
    /// Upper end (`None` = +∞).
    pub hi: Option<i64>,
}

impl Interval {
    /// The full line (−∞, +∞).
    pub const UNBOUNDED: Interval = Interval { lo: None, hi: None };

    /// A singleton interval.
    #[must_use]
    pub fn point(v: i64) -> Interval {
        Interval {
            lo: Some(v),
            hi: Some(v),
        }
    }

    /// A finite interval `[lo, hi]`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Interval {
        Interval {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// Whether the interval is certainly empty (`lo > hi`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// Whether `v` lies in the interval.
    #[must_use]
    pub fn contains(&self, v: i64) -> bool {
        self.lo.is_none_or(|l| l <= v) && self.hi.is_none_or(|h| v <= h)
    }

    /// Interval sum (saturating: an overflowing end becomes unbounded,
    /// which is conservative).
    #[must_use]
    pub fn add(&self, rhs: &Interval) -> Interval {
        let lo = match (self.lo, rhs.lo) {
            (Some(a), Some(b)) => a.checked_add(b),
            _ => None,
        };
        let hi = match (self.hi, rhs.hi) {
            (Some(a), Some(b)) => a.checked_add(b),
            _ => None,
        };
        Interval { lo, hi }
    }

    /// Scales by `k`, flipping ends for negative `k`.
    #[must_use]
    pub fn scale(&self, k: i64) -> Interval {
        if k == 0 {
            return Interval::point(0);
        }
        let mul = |v: Option<i64>| v.and_then(|x| x.checked_mul(k));
        if k > 0 {
            Interval {
                lo: mul(self.lo),
                hi: mul(self.hi),
            }
        } else {
            Interval {
                lo: mul(self.hi),
                hi: mul(self.lo),
            }
        }
    }

    /// Intersection.
    #[must_use]
    pub fn intersect(&self, rhs: &Interval) -> Interval {
        let lo = match (self.lo, rhs.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, None) => a,
            (None, b) => b,
        };
        let hi = match (self.hi, rhs.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        Interval { lo, hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_empty() {
        let i = Interval::new(1, 5);
        assert!(i.contains(1) && i.contains(5) && !i.contains(6));
        assert!(!i.is_empty());
        assert!(Interval::new(3, 2).is_empty());
        assert!(Interval::UNBOUNDED.contains(i64::MIN));
    }

    #[test]
    fn arithmetic() {
        let a = Interval::new(1, 5);
        let b = Interval::new(-2, 3);
        assert_eq!(a.add(&b), Interval::new(-1, 8));
        assert_eq!(a.scale(-2), Interval::new(-10, -2));
        assert_eq!(a.scale(0), Interval::point(0));
        let u = Interval {
            lo: Some(0),
            hi: None,
        };
        assert_eq!(
            u.scale(-1),
            Interval {
                lo: None,
                hi: Some(0)
            }
        );
        assert_eq!(a.add(&u).lo, Some(1));
        assert_eq!(a.add(&u).hi, None);
    }

    #[test]
    fn intersect() {
        let a = Interval::new(1, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.intersect(&b), Interval::new(5, 10));
        assert_eq!(a.intersect(&Interval::UNBOUNDED), a);
    }

    #[test]
    fn overflow_saturates_to_unbounded() {
        let a = Interval::new(i64::MAX - 1, i64::MAX);
        let sum = a.add(&a);
        assert_eq!(sum.lo, None);
        assert_eq!(sum.hi, None);
    }
}
