//! Inexact baseline dependence tests — the Section 7 comparators.
//!
//! The paper quantifies what exactness buys by re-running the PERFECT
//! suite with the traditional inexact pipeline:
//!
//! - the **simple GCD test** (Banerjee alg. 5.4.1): per-dimension
//!   divisibility, no bounds — [`gcd_simple`];
//! - the **Banerjee inequalities** (trapezoidal test, alg. 4.3.1): bound
//!   the real range of `f − f′` per dimension — [`banerjee`];
//! - **Wolfe's direction-vector extension** (alg. 2.5.2): hierarchical
//!   direction enumeration decided by the two tests above — [`wolfe`].
//!
//! The paper measured these baselines missing 16% of independent pairs
//! and reporting 22% more direction vectors than the exact answer; the
//! `section7` benchmark binary reproduces that comparison on the
//! synthetic suite.
//!
//! # Examples
//!
//! ```
//! use dda_ir::parse_program;
//! use dda_baselines::analyze_with_baselines;
//!
//! // Coupled subscripts (i = i′ and i = i′ + 1 jointly impossible):
//! // the inexact per-dimension tests must assume dependence.
//! let p = parse_program("for i = 1 to 10 { a[i][i] = a[i][i + 1]; }")?;
//! let report = analyze_with_baselines(&p, false);
//! assert_eq!(report.independent_count(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analyzer;
pub mod banerjee;
pub mod gcd_simple;
pub mod interval;
pub mod model;
pub mod wolfe;

pub use analyzer::{analyze_with_baselines, baseline_pair, BaselinePair, BaselineReport};
pub use interval::Interval;
