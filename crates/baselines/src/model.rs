//! A per-pair model shared by the baseline tests: linear terms per array
//! dimension plus interval approximations of every loop range.

use std::collections::BTreeMap;

use dda_ir::{Access, AffineExpr, Bound};

use crate::interval::Interval;

/// The linear form `f(i) − f′(i′)` of one array dimension, decomposed the
/// way the classic tests consume it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimTerms {
    /// Per common level `k`: `(a_k, b_k)` — the coefficient of `i_k` in
    /// the first subscript and of `i′_k` in the second. The level's term
    /// is `a_k·i_k − b_k·i′_k`.
    pub common: Vec<(i64, i64)>,
    /// Terms over loops enclosing only one reference: `(coefficient,
    /// value interval)`.
    pub extra: Vec<(i64, Interval)>,
    /// Whether a symbolic constant survives with a non-zero net
    /// coefficient (making the dimension's range unbounded).
    pub has_symbolic: bool,
    /// Constant difference `const(f) − const(f′)`; the dimension's form
    /// must be able to reach 0 overall.
    pub constant: i64,
}

/// Everything the baseline tests need about one reference pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairModel {
    /// One decomposition per array dimension.
    pub dims: Vec<DimTerms>,
    /// Value interval of each common loop index.
    pub common_intervals: Vec<Interval>,
    /// Number of common loops.
    pub num_common: usize,
    /// Per common level: whether its bounds couple it to other loops (its
    /// bound expressions mention variables, or another loop's bounds
    /// mention it). Coupled levels must be refined even when they appear
    /// in no subscript — the same rule the exact analyzer uses, keeping
    /// the Section 7 vector counts comparable.
    pub level_coupled: Vec<bool>,
}

/// Interval-evaluates an affine bound expression over known loop
/// intervals; symbolic variables make it unbounded.
fn eval_interval(e: &AffineExpr, env: &BTreeMap<&str, Interval>) -> Interval {
    let mut acc = Interval::point(e.constant_part());
    for (v, c) in e.iter_terms() {
        let vi = env.get(v).copied().unwrap_or(Interval::UNBOUNDED);
        acc = acc.add(&vi.scale(c));
    }
    acc
}

/// Computes the value interval of every loop in `acc`'s stack,
/// outermost-in.
fn loop_intervals(acc: &Access) -> Vec<Interval> {
    let mut env: BTreeMap<&str, Interval> = BTreeMap::new();
    let mut out = Vec::with_capacity(acc.loops.len());
    for l in &acc.loops {
        let lo = match &l.lower {
            Bound::Affine(e) => eval_interval(e, &env).lo,
            Bound::NonAffine => None,
        };
        let hi = match &l.upper {
            Bound::Affine(e) => eval_interval(e, &env).hi,
            Bound::NonAffine => None,
        };
        let iv = Interval { lo, hi };
        env.insert(l.var.as_str(), iv);
        out.push(iv);
    }
    out
}

/// Builds the baseline model for a pair. Returns `None` when a subscript
/// is non-affine (the baselines then assume dependence, like everyone
/// else) or the references disagree on rank.
#[must_use]
pub fn build_model(a: &Access, b: &Access, common: usize) -> Option<PairModel> {
    if a.subscripts.len() != b.subscripts.len() {
        return None;
    }
    let ivs_a = loop_intervals(a);
    let ivs_b = loop_intervals(b);

    let pos_a: BTreeMap<&str, usize> = a
        .loops
        .iter()
        .enumerate()
        .map(|(k, l)| (l.var.as_str(), k))
        .collect();
    let pos_b: BTreeMap<&str, usize> = b
        .loops
        .iter()
        .enumerate()
        .map(|(k, l)| (l.var.as_str(), k))
        .collect();

    let mut dims = Vec::with_capacity(a.subscripts.len());
    for (sa, sb) in a.subscripts.iter().zip(&b.subscripts) {
        let ea = sa.as_affine()?;
        let eb = sb.as_affine()?;
        let mut common_terms = vec![(0i64, 0i64); common];
        let mut extra: Vec<(i64, Interval)> = Vec::new();
        let mut symbolic: BTreeMap<&str, i64> = BTreeMap::new();

        for (v, c) in ea.iter_terms() {
            match pos_a.get(v) {
                Some(&k) if k < common => common_terms[k].0 += c,
                Some(&k) => extra.push((c, ivs_a[k])),
                None => *symbolic.entry(v).or_insert(0) += c,
            }
        }
        for (v, c) in eb.iter_terms() {
            match pos_b.get(v) {
                Some(&k) if k < common => common_terms[k].1 += c,
                Some(&k) => extra.push((-c, ivs_b[k])),
                None => *symbolic.entry(v).or_insert(0) -= c,
            }
        }
        dims.push(DimTerms {
            common: common_terms,
            extra,
            has_symbolic: symbolic.values().any(|&c| c != 0),
            constant: ea.constant_part() - eb.constant_part(),
        });
    }

    let common_intervals = ivs_a.iter().take(common).copied().collect();
    let _ = ivs_b;

    let mut level_coupled = vec![false; common];
    for acc in [a, b] {
        for (k, l) in acc.loops.iter().enumerate() {
            let mut mentioned: Vec<&str> = Vec::new();
            for bnd in [&l.lower, &l.upper] {
                match bnd {
                    Bound::Affine(e) => mentioned.extend(e.vars()),
                    Bound::NonAffine => {
                        if k < common {
                            level_coupled[k] = true;
                        }
                    }
                }
            }
            if k < common && !mentioned.is_empty() {
                level_coupled[k] = true;
            }
            // Any common loop referenced by this loop's bounds is coupled.
            for v in mentioned {
                if let Some(&kk) = (if std::ptr::eq(acc, a) { &pos_a } else { &pos_b }).get(v) {
                    if kk < common {
                        level_coupled[kk] = true;
                    }
                }
            }
        }
    }

    Some(PairModel {
        dims,
        common_intervals,
        num_common: common,
        level_coupled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    fn model(src: &str) -> PairModel {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        assert_eq!(pairs.len(), 1);
        build_model(pairs[0].a, pairs[0].b, pairs[0].common).unwrap()
    }

    #[test]
    fn simple_model() {
        let m = model("for i = 1 to 10 { a[2 * i + 3] = a[i]; }");
        assert_eq!(m.num_common, 1);
        assert_eq!(m.dims[0].common, vec![(2, 1)]);
        assert_eq!(m.dims[0].constant, 3);
        assert_eq!(m.common_intervals[0], Interval::new(1, 10));
    }

    #[test]
    fn triangular_interval_widens() {
        let m = model("for i = 1 to 10 { for j = i to 10 { a[j] = a[j - 1]; } }");
        // j's lower bound is i ∈ [1,10], so j ∈ [1, 10] conservatively.
        assert_eq!(m.common_intervals[1], Interval::new(1, 10));
    }

    #[test]
    fn symbolic_net_coefficient() {
        let m = model("read(n); for i = 1 to 10 { a[i + n] = a[i + n]; }");
        assert!(!m.dims[0].has_symbolic, "n cancels");
        let m2 = model("read(n); for i = 1 to 10 { a[i + 2 * n] = a[i + n]; }");
        assert!(m2.dims[0].has_symbolic);
    }

    #[test]
    fn symbolic_bounds_unbounded() {
        let m = model("for i = 1 to n { a[i] = a[i + 1]; }");
        assert_eq!(m.common_intervals[0].lo, Some(1));
        assert_eq!(m.common_intervals[0].hi, None);
    }

    #[test]
    fn extra_loops_become_interval_terms() {
        let m = model("for i = 1 to 10 { a[i] = 1; } for j = 1 to 5 { a[j + 7] = 2; }");
        assert_eq!(m.num_common, 0);
        assert_eq!(m.dims[0].common.len(), 0);
        assert_eq!(m.dims[0].extra.len(), 2);
    }
}
