//! Wolfe's direction-vector extension of the rectangular Banerjee test
//! (algorithm 2.5.2 in *Optimizing Supercompilers for Supercomputers*).
//!
//! Directions are enumerated hierarchically exactly like the exact
//! analyzer's Burke–Cytron refinement, but each node is decided by the
//! *inexact* pair of simple GCD + direction-restricted Banerjee
//! inequalities. Unused loop indices are eliminated first, so `a[i]` vs
//! `a[i-1]` under an irrelevant outer loop reports the single vector
//! `(*, <)` — matching the methodology of the paper's Section 7
//! comparison.

use dda_core::{Direction, DirectionVector};

use crate::banerjee::{banerjee_independent, Dir};
use crate::gcd_simple::simple_gcd_independent;
use crate::model::PairModel;

fn to_dir(d: Direction) -> Dir {
    match d {
        Direction::Lt => Dir::Lt,
        Direction::Eq => Dir::Eq,
        Direction::Gt => Dir::Gt,
        Direction::Any => Dir::Any,
    }
}

/// Whether common level `k` is used by any subscript.
fn level_used(model: &PairModel, k: usize) -> bool {
    model.dims.iter().any(|d| d.common[k] != (0, 0))
}

/// Counts a Banerjee invocation and answers "maybe dependent under these
/// directions?".
fn maybe_dependent(model: &PairModel, dirs: &[Direction], tests: &mut u64) -> bool {
    *tests += 1;
    let dirs: Vec<Dir> = dirs.iter().map(|&d| to_dir(d)).collect();
    !banerjee_independent(model, &dirs)
}

/// The baseline direction-vector computation: every vector the inexact
/// tests cannot rule out. Also returns the number of Banerjee
/// invocations performed.
///
/// An empty result means even the baseline proved full independence.
#[must_use]
pub fn wolfe_direction_vectors(model: &PairModel) -> (Vec<DirectionVector>, u64) {
    let mut tests = 0u64;
    // The simple GCD test ignores directions entirely; one call up front.
    if simple_gcd_independent(model) {
        return (Vec::new(), tests);
    }
    let n = model.num_common;
    let mut dirs = vec![Direction::Any; n];
    if !maybe_dependent(model, &dirs, &mut tests) {
        return (Vec::new(), tests);
    }
    let refine: Vec<usize> = (0..n)
        .filter(|&k| level_used(model, k) || model.level_coupled[k])
        .collect();
    let mut out = Vec::new();
    expand(model, &refine, 0, &mut dirs, &mut out, &mut tests);
    (out, tests)
}

fn expand(
    model: &PairModel,
    refine: &[usize],
    idx: usize,
    dirs: &mut Vec<Direction>,
    out: &mut Vec<DirectionVector>,
    tests: &mut u64,
) {
    if idx == refine.len() {
        out.push(DirectionVector(dirs.clone()));
        return;
    }
    let level = refine[idx];
    for d in Direction::REFINED {
        dirs[level] = d;
        if maybe_dependent(model, dirs, tests) {
            expand(model, refine, idx + 1, dirs, out, tests);
        }
    }
    dirs[level] = Direction::Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_model;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    fn vectors(src: &str) -> Vec<String> {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        let m = build_model(pairs[0].a, pairs[0].b, pairs[0].common).unwrap();
        let (vs, _) = wolfe_direction_vectors(&m);
        let mut out: Vec<String> = vs.iter().map(ToString::to_string).collect();
        out.sort();
        out
    }

    #[test]
    fn distance_one_flow() {
        assert_eq!(vectors("for i = 1 to 10 { a[i + 1] = a[i]; }"), vec!["(<)"]);
    }

    #[test]
    fn unused_outer_level_reports_star() {
        // The paper's stated methodology: a[j] vs a[j-1] under an unused
        // outer loop yields (*, <), not three vectors.
        assert_eq!(
            vectors("for i = 1 to 10 { for j = 1 to 10 { a[j + 1] = a[j]; } }"),
            vec!["(*, <)"]
        );
    }

    #[test]
    fn inexact_coupled_case_over_reports() {
        // Exact answer: (<, >), (=, =), (>, <). The per-dimension
        // baseline cannot couple i with j, so it reports extra vectors.
        let vs = vectors("for i = 1 to 4 { for j = 1 to 4 { a[i][j] = a[j][i] + 1; } }");
        assert!(vs.contains(&"(=, =)".to_owned()));
        assert!(
            vs.len() > 3,
            "baseline should over-report ({} vectors: {vs:?})",
            vs.len()
        );
    }

    #[test]
    fn gcd_rejects_before_enumeration() {
        let vs = vectors("for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }");
        assert!(vs.is_empty());
    }

    #[test]
    fn bounds_reject_star_immediately() {
        let vs = vectors("for i = 1 to 10 { a[i] = a[i + 10]; }");
        assert!(vs.is_empty());
    }
}
