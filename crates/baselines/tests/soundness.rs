//! Property tests: the inexact baselines are *sound* — whenever they
//! claim independence, the exact analyzer (whose own exactness is
//! oracle-validated) agrees — and their direction vectors always cover
//! the exact set.

use dda_baselines::{analyze_with_baselines, banerjee, gcd_simple, model};
use dda_core::{DependenceAnalyzer, Direction};
use dda_ir::{extract_accesses, parse_program, reference_pairs};
use proptest::prelude::*;

/// A random single- or double-loop program over one array with affine
/// subscripts (constant bounds so both sides fully apply).
fn arb_program() -> impl Strategy<Value = String> {
    (
        1usize..=2,
        proptest::collection::vec((-2i64..=2, -2i64..=2, -6i64..=6), 2),
        2i64..=8,
    )
        .prop_map(|(depth, subs, hi)| {
            let mut src = String::new();
            for k in 0..depth {
                src.push_str(&format!("for v{k} = 1 to {hi} {{ "));
            }
            let sub = |&(ci, cj, c): &(i64, i64, i64)| {
                if depth == 2 {
                    format!("{ci} * v0 + {cj} * v1 + {c}")
                } else {
                    format!("{ci} * v0 + {c}")
                }
            };
            src.push_str(&format!(
                "arr[{}] = arr[{}] + 1; ",
                sub(&subs[0]),
                sub(&subs[1])
            ));
            for _ in 0..depth {
                src.push_str("} ");
            }
            src
        })
}

/// Expands `*` components so vector-set coverage can be compared.
fn covers(reported: &[Direction], observed: &[Direction]) -> bool {
    reported
        .iter()
        .zip(observed)
        .all(|(r, o)| *r == Direction::Any || r == o)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// Baseline "independent" never contradicts the exact answer, with or
    /// without direction vectors.
    #[test]
    fn baselines_sound(src in arb_program()) {
        let program = parse_program(&src).expect("parse");
        let exact = DependenceAnalyzer::new().analyze_program(&program);
        for directions in [false, true] {
            let base = analyze_with_baselines(&program, directions);
            for (bp, ep) in base.pairs.iter().zip(exact.pairs()) {
                if bp.independent {
                    prop_assert!(
                        ep.result.is_independent(),
                        "baseline (directions={directions}) wrongly independent on\n{src}"
                    );
                }
            }
        }
    }

    /// Every exact direction vector is covered by some baseline vector.
    #[test]
    fn baseline_vectors_cover_exact(src in arb_program()) {
        let program = parse_program(&src).expect("parse");
        let exact = DependenceAnalyzer::new().analyze_program(&program);
        let base = analyze_with_baselines(&program, true);
        for (bp, ep) in base.pairs.iter().zip(exact.pairs()) {
            for ev in &ep.direction_vectors {
                // Exact vectors may contain `*` (pruned levels); any
                // concrete refinement of them must still be covered, so
                // compare conservatively: a baseline vector covers an
                // exact one if they agree wherever both are concrete.
                let ok = bp.direction_vectors.iter().any(|bv| {
                    bv.0.iter().zip(&ev.0).all(|(b, e)| {
                        *b == Direction::Any || *e == Direction::Any || b == e
                    })
                });
                prop_assert!(
                    ok,
                    "exact vector {ev} uncovered by baseline {:?} on\n{src}",
                    bp.direction_vectors
                );
            }
        }
    }

    /// The per-test entry points never panic and never disagree with the
    /// combined driver.
    #[test]
    fn baseline_parts_consistent(src in arb_program()) {
        let program = parse_program(&src).expect("parse");
        let set = extract_accesses(&program);
        let pairs = reference_pairs(&set, false);
        for p in &pairs {
            if let Some(m) = model::build_model(p.a, p.b, p.common) {
                let gcd_ind = gcd_simple::simple_gcd_independent(&m);
                let ban_ind = banerjee::banerjee_independent_star(&m);
                let combined = analyze_with_baselines(&program, false);
                if gcd_ind || ban_ind {
                    prop_assert!(
                        combined.pairs.iter().any(|bp| bp.independent),
                        "driver missed a component's independence on\n{src}"
                    );
                }
            }
        }
    }

    /// `covers` sanity (meta-test for the helper used above).
    #[test]
    fn covers_reflexive(dirs in proptest::collection::vec(
        prop::sample::select(vec![Direction::Lt, Direction::Eq, Direction::Gt]), 1..3))
    {
        prop_assert!(covers(&dirs, &dirs));
    }
}
