//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - cascade vs Fourier–Motzkin-only on the reduced system;
//! - extended-GCD preprocessing vs FM on the raw x-space system (the
//!   constraint/variable reduction the paper credits it with);
//! - memoization off / simple / improved;
//! - direction-vector pruning none / unused-vars / distance / both.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use dda_bench::xspace_system;
use dda_core::cascade::run_cascade;
use dda_core::fourier_motzkin::{fourier_motzkin, FmLimits};
use dda_core::gcd::{gcd_preprocess, GcdOutcome};
use dda_core::pipeline::{run_pipeline, NullProbe, PipelineConfig};
use dda_core::problem::build_problem;
use dda_core::{AnalyzerConfig, DependenceAnalyzer, MemoMode, TestKind};
use dda_ir::{extract_accesses, parse_program, reference_pairs};
use dda_perfect::{generate, SPECS};

const PATTERNS: &[&str] = &[
    "for i = 1 to 10 { a[i + 3] = a[i] + 1; }",
    "for i = 1 to 10 { for j = i to 10 { a[j + 2] = a[j] + 1; } }",
    "for i = 1 to 10 { for j = 1 to 10 { a[2 * i + j] = a[i + 2 * j + 1] + 1; } }",
    "for i1 = 1 to 10 { for i2 = 1 to 10 { a[i1][i2] = a[i2 + 10][i1 + 9]; } }",
];

fn bench_cascade_vs_fm(c: &mut Criterion) {
    let problems: Vec<_> = PATTERNS
        .iter()
        .map(|src| {
            let p = parse_program(src).unwrap();
            let set = extract_accesses(&p);
            let pairs = reference_pairs(&set, false);
            build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap()
        })
        .collect();
    let reduced: Vec<_> = problems
        .iter()
        .map(|p| match gcd_preprocess(p).unwrap() {
            GcdOutcome::Reduced(r) => r,
            GcdOutcome::Independent => unreachable!(),
        })
        .collect();

    // Every variant runs through run_pipeline — the exact code path the
    // analyzer uses — so ablations measure configuration, not a parallel
    // reimplementation.
    let mut group = c.benchmark_group("cascade_order");
    let variants = [
        ("cascade", PipelineConfig::full()),
        (
            "fm_only",
            PipelineConfig::from_tests(&[TestKind::FourierMotzkin]).expect("valid order"),
        ),
        ("no_svpc", PipelineConfig::full().without(TestKind::Svpc)),
        (
            "fm_first",
            PipelineConfig::from_tests(&[
                TestKind::FourierMotzkin,
                TestKind::Svpc,
                TestKind::Acyclic,
                TestKind::LoopResidue,
            ])
            .expect("valid order"),
        ),
    ];
    for (label, cfg) in variants {
        group.bench_function(label, |b| {
            b.iter(|| {
                for r in &reduced {
                    std::hint::black_box(run_pipeline(
                        &r.system,
                        &cfg,
                        FmLimits::default(),
                        &mut NullProbe,
                    ));
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gcd_preprocessing");
    group.bench_function("with_gcd_then_cascade", |b| {
        b.iter(|| {
            for p in &problems {
                let GcdOutcome::Reduced(r) = gcd_preprocess(p).unwrap() else {
                    continue;
                };
                std::hint::black_box(run_cascade(&r.system));
            }
        })
    });
    group.bench_function("fm_on_raw_xspace", |b| {
        b.iter(|| {
            for p in &problems {
                let sys = xspace_system(p);
                std::hint::black_box(fourier_motzkin(sys.num_vars, &sys.constraints));
            }
        })
    });
    group.finish();
}

fn bench_memo_modes(c: &mut Criterion) {
    let spec = SPECS.iter().find(|s| s.name == "SR").unwrap(); // most repetitive
    let prog = generate(spec, 0.05);
    let mut group = c.benchmark_group("memo_mode");
    for (label, mode) in [
        ("off", MemoMode::Off),
        ("simple", MemoMode::Simple),
        ("improved", MemoMode::Improved),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut an = DependenceAnalyzer::with_config(AnalyzerConfig {
                    memo: mode,
                    ..AnalyzerConfig::default()
                });
                std::hint::black_box(an.analyze_program(&prog.program))
            })
        });
    }
    group.finish();
}

fn bench_pruning_modes(c: &mut Criterion) {
    let spec = SPECS.iter().find(|s| s.name == "NA").unwrap(); // direction-heavy
    let prog = generate(spec, 0.05);
    let mut group = c.benchmark_group("direction_pruning");
    for (label, unused, distance) in [
        ("none", false, false),
        ("unused_only", true, false),
        ("distance_only", false, true),
        ("both", true, true),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut an = DependenceAnalyzer::with_config(AnalyzerConfig {
                    memo: MemoMode::Improved,
                    prune_unused: unused,
                    prune_distance: distance,
                    ..AnalyzerConfig::default()
                });
                std::hint::black_box(an.analyze_program(&prog.program))
            })
        });
    }
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    // Symmetric memoization on a workload full of mirrored pairs.
    let mut src = String::new();
    for k in 0..100 {
        if k % 2 == 0 {
            src.push_str(&format!("for i = 1 to 50 {{ x{k}[i + 1] = x{k}[i]; }}\n"));
        } else {
            src.push_str(&format!("for i = 1 to 50 {{ x{k}[i] = x{k}[i + 1]; }}\n"));
        }
    }
    let program = parse_program(&src).unwrap();
    let mut group = c.benchmark_group("memo_symmetry");
    for (label, sym) in [("off", false), ("on", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut an = DependenceAnalyzer::with_config(AnalyzerConfig {
                    memo_symmetry: sym,
                    ..AnalyzerConfig::default()
                });
                std::hint::black_box(an.analyze_program(&program))
            })
        });
    }
    group.finish();

    // Separable direction computation on decoupled 2-D refs (unpruned so
    // both levels actually refine).
    let src = "for i = 1 to 12 { for j = 1 to 12 { a[2 * i][2 * j] = a[i][j]; } }";
    let program = parse_program(src).unwrap();
    let mut group = c.benchmark_group("separable_directions");
    for (label, sep) in [("hierarchical", false), ("separable", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut an = DependenceAnalyzer::with_config(AnalyzerConfig {
                    memo: MemoMode::Off,
                    prune_distance: false,
                    prune_unused: false,
                    separable_directions: sep,
                    ..AnalyzerConfig::default()
                });
                std::hint::black_box(an.analyze_program(&program))
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cascade_vs_fm, bench_memo_modes, bench_pruning_modes, bench_extensions
}
criterion_main!(benches);
