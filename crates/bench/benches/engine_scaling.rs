//! Batch-engine scaling: the 13-program synthetic PERFECT suite analyzed
//! by `dda-engine` at 1/2/4/8 workers, plus the serial analyzer as the
//! reference point. Output is deterministic and identical across worker
//! counts (tested in `crates/engine`); this measures only throughput.
//!
//! Scale with `DDA_SCALE` (default 0.1 here): larger programs amortize
//! the serial assembly wave and show the parallel section more clearly.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dda_core::DependenceAnalyzer;
use dda_engine::{Engine, EngineConfig};
use dda_ir::Program;

fn scale() -> f64 {
    std::env::var("DDA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1)
}

fn bench_scaling(c: &mut Criterion) {
    let programs: Vec<Program> = dda_perfect::perfect_suite(scale())
        .into_iter()
        .map(|p| p.program)
        .collect();

    let mut group = c.benchmark_group("engine_scaling");
    group.bench_function("serial_analyzer", |b| {
        b.iter(|| {
            let mut an = DependenceAnalyzer::new();
            for p in &programs {
                std::hint::black_box(an.analyze_program(p));
            }
        })
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut engine = Engine::with_config(EngineConfig {
                        workers,
                        ..EngineConfig::default()
                    });
                    std::hint::black_box(engine.analyze_programs(&programs))
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scaling
}
criterion_main!(benches);
