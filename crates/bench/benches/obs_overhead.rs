//! Overhead guard for the always-on observability layer.
//!
//! Three probes analyze the same corpus (the calibrated cascade
//! patterns plus the paper's running example, memoization off so every
//! pair emits timed events): the zero-cost `NullProbe` baseline, the
//! `StatsProbe` the `--stats` path uses, and the `MetricsProbe` feeding
//! the registry. The per-event recording cost is also measured bare.
//!
//! The numbers land in `results/obs_overhead.txt`; the probe path
//! being allocation-free is asserted separately by the counting
//! allocator in `crates/obs/tests/alloc.rs` — this bench documents
//! that the remaining cost (a few relaxed atomic adds per event) stays
//! in the noise of an analysis run.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use dda_core::pipeline::{GcdVerdict, Probe, StageVerdict, TraceEvent};
use dda_core::{AnalyzerConfig, DependenceAnalyzer, MemoMode, StatsProbe, TestKind};
use dda_ir::{parse_program, passes, Program};
use dda_obs::{MetricsProbe, MetricsRegistry};

fn corpus() -> Vec<Program> {
    [
        "for i = 1 to 10 { a[i + 3] = a[i] + 1; }",
        "for i = 1 to 10 { for j = i to 10 { a[j + 2] = a[j] + 1; } }",
        "for i = 1 to 10 { for j = i to i + 3 { a[j] = a[j + 1] + 1; } }",
        "for i = 1 to 10 { for j = 1 to 10 { a[2 * i + j] = a[i + 2 * j + 1] + 1; } }",
        "for i = 1 to 100 { for j = 1 to 100 { a[i][j] = a[i][j + 1] + a[i + 1][j]; } }",
    ]
    .iter()
    .map(|src| {
        let mut p = parse_program(src).expect("corpus parses");
        passes::normalize(&mut p);
        p
    })
    .collect()
}

fn analyzer() -> DependenceAnalyzer {
    DependenceAnalyzer::with_config(AnalyzerConfig {
        memo: MemoMode::Off,
        ..AnalyzerConfig::default()
    })
}

fn bench_probe_overhead(c: &mut Criterion) {
    let programs = corpus();
    let mut group = c.benchmark_group("obs_overhead");

    group.bench_function("analyze/null_probe", |b| {
        b.iter(|| {
            let mut a = analyzer();
            for p in &programs {
                std::hint::black_box(a.analyze_program(p));
            }
        })
    });
    group.bench_function("analyze/stats_probe", |b| {
        b.iter(|| {
            let mut a = analyzer();
            let mut probe = StatsProbe::default();
            for p in &programs {
                std::hint::black_box(a.analyze_program_probed(p, &mut probe));
            }
        })
    });
    group.bench_function("analyze/metrics_probe", |b| {
        let registry = MetricsRegistry::new();
        b.iter(|| {
            let mut a = analyzer();
            let mut probe = MetricsProbe::new(&registry);
            for p in &programs {
                std::hint::black_box(a.analyze_program_probed(p, &mut probe));
            }
        })
    });

    // The bare per-event cost, outside any analysis: one Stage and one
    // GCD event through the probe per iteration.
    group.bench_function("record/stage_and_gcd_event", |b| {
        let registry = MetricsRegistry::new();
        let mut probe = MetricsProbe::new(&registry);
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            probe.record(TraceEvent::Stage {
                test: TestKind::Svpc,
                verdict: StageVerdict::Independent,
                nanos: n,
            });
            probe.record(TraceEvent::Gcd {
                verdict: GcdVerdict::Lattice,
                cached: false,
                nanos: n,
            });
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_probe_overhead
}
criterion_main!(benches);
