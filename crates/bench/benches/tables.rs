//! Whole-program analysis benchmarks over the synthetic PERFECT suite —
//! the Criterion counterpart of the `table1`/`table6` binaries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dda_bench::table1_config;
use dda_core::{AnalyzerConfig, DependenceAnalyzer};
use dda_perfect::{generate, SPECS};

fn bench_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("perfect_program");
    // A representative subset at 5% scale keeps bench times sane.
    for name in ["AP", "NA", "SR", "WS"] {
        let spec = SPECS.iter().find(|s| s.name == name).expect("known");
        let prog = generate(spec, 0.05);
        group.bench_with_input(BenchmarkId::new("full", name), &prog, |b, prog| {
            b.iter(|| {
                let mut an = DependenceAnalyzer::new();
                std::hint::black_box(an.analyze_program(&prog.program))
            })
        });
        group.bench_with_input(BenchmarkId::new("table1_mode", name), &prog, |b, prog| {
            b.iter(|| {
                let mut an = DependenceAnalyzer::with_config(table1_config());
                std::hint::black_box(an.analyze_program(&prog.program))
            })
        });
    }
    group.finish();
}

fn bench_suite(c: &mut Criterion) {
    let suite = dda_perfect::perfect_suite(0.02);
    c.bench_function("perfect_suite_2pct", |b| {
        b.iter(|| {
            let mut an = DependenceAnalyzer::with_config(AnalyzerConfig::default());
            for p in &suite {
                std::hint::black_box(an.analyze_program(&p.program));
            }
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_programs, bench_suite
}
criterion_main!(benches);
