//! Micro-benchmarks for the individual dependence tests — the per-test
//! cost ordering behind the paper's cascade (Section 7 reports SVPC ≈
//! 0.1 ms, Acyclic ≈ 0.5 ms, Loop Residue ≈ 0.9 ms, FM ≈ 3 ms on a 1991
//! MIPS R2000; only the ordering is expected to survive 35 years).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use dda_core::cascade::run_cascade;
use dda_core::gcd::{gcd_preprocess, GcdOutcome, Reduced};
use dda_core::memo::{bounds_key, nobounds_key};
use dda_core::problem::{build_problem, DependenceProblem};
use dda_ir::{extract_accesses, parse_program, reference_pairs};

fn problem_for(src: &str) -> DependenceProblem {
    let p = parse_program(src).expect("parse");
    let set = extract_accesses(&p);
    let pairs = reference_pairs(&set, false);
    build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).expect("affine")
}

fn reduced_for(src: &str) -> Reduced {
    let problem = problem_for(src);
    match gcd_preprocess(&problem).expect("no overflow") {
        GcdOutcome::Reduced(r) => r,
        GcdOutcome::Independent => panic!("pattern must reach the cascade"),
    }
}

fn bench_cascade(c: &mut Criterion) {
    let cases = [
        ("svpc", "for i = 1 to 10 { a[i + 3] = a[i] + 1; }"),
        (
            "acyclic",
            "for i = 1 to 10 { for j = i to 10 { a[j + 2] = a[j] + 1; } }",
        ),
        (
            "loop_residue",
            "for i = 1 to 10 { for j = i to i + 3 { a[j] = a[j + 1] + 1; } }",
        ),
        (
            "fourier_motzkin",
            "for i = 1 to 10 { for j = 1 to 10 { a[2 * i + j] = a[i + 2 * j + 1] + 1; } }",
        ),
    ];
    let mut group = c.benchmark_group("cascade");
    for (name, src) in cases {
        let reduced = reduced_for(src);
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(run_cascade(&reduced.system)))
        });
    }
    group.finish();
}

fn bench_gcd(c: &mut Criterion) {
    let coupled =
        problem_for("for i1 = 1 to 10 { for i2 = 1 to 10 { a[i1][i2] = a[i2 + 10][i1 + 9]; } }");
    let simple = problem_for("for i = 1 to 10 { a[i + 3] = a[i]; }");
    let mut group = c.benchmark_group("gcd_preprocess");
    group.bench_function("one_equation", |b| {
        b.iter(|| std::hint::black_box(gcd_preprocess(&simple)))
    });
    group.bench_function("coupled_2d", |b| {
        b.iter(|| std::hint::black_box(gcd_preprocess(&coupled)))
    });
    group.finish();
}

fn bench_memo_keys(c: &mut Criterion) {
    let problem = problem_for("for i = 1 to 10 { for j = 1 to 10 { a[i][j + 2] = a[i][j] + 1; } }");
    let mut group = c.benchmark_group("memo");
    group.bench_function("nobounds_key", |b| {
        b.iter(|| std::hint::black_box(nobounds_key(&problem, true)))
    });
    group.bench_function("bounds_key_simple", |b| {
        b.iter(|| std::hint::black_box(bounds_key(&problem, false)))
    });
    group.bench_function("bounds_key_improved", |b| {
        b.iter(|| std::hint::black_box(bounds_key(&problem, true)))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cascade, bench_gcd, bench_memo_keys
}
criterion_main!(benches);
