//! Scratch calibration tool: prints which test resolves each candidate
//! synthetic pattern (used while tuning the PERFECT generator).

use dda_core::{AnalyzerConfig, DependenceAnalyzer, MemoMode};
use dda_ir::parse_program;

fn main() {
    let candidates: &[(&str, &str)] = &[
        ("const_dep", "for i = 1 to 10 { a[5] = a[5] + 1; }"),
        ("const_ind", "for i = 1 to 10 { a[5] = a[6] + 1; }"),
        ("gcd", "for i = 1 to 10 { a[2 * i] = a[2 * i + 1] + 1; }"),
        ("sv1", "for i = 1 to 10 { a[i + 3] = a[i] + 1; }"),
        ("sv2", "for i = 1 to 10 { a[i] = a[i + 13] + 1; }"),
        ("sv3", "for i = 1 to 10 { a[i] = a[2 * i + 1] + 1; }"),
        (
            "sv4",
            "for i = 1 to 10 { for j = 1 to 10 { a[i][j] = a[j + 10][i + 9] + 1; } }",
        ),
        (
            "sv5",
            "for i = 1 to 10 { for j = 1 to 10 { a[i][j + 2] = a[i][j] + 1; } }",
        ),
        (
            "ac1",
            "for i = 1 to 10 { for j = 1 to 10 { a[i + j] = a[i + j + 3] + 1; } }",
        ),
        (
            "ac2",
            "for i = 1 to 10 { for j = i to 10 { a[j] = a[j - 1] + 1; } }",
        ),
        (
            "ac3",
            "for i = 1 to 10 { for j = 1 to 10 { a[i - j] = a[i - j + 2] + 1; } }",
        ),
        (
            "lr1",
            "for i = 1 to 10 { for j = i to 10 { a[i + j] = a[i + j + 1] + 1; } }",
        ),
        (
            "lr2",
            "for i = 1 to 10 { for j = i to 10 { a[j - i] = a[j - i + 1] + 1; } }",
        ),
        (
            "fm1",
            "for i = 1 to 10 { for j = 1 to 10 { a[2 * i + j] = a[i + 2 * j + 1] + 1; } }",
        ),
        (
            "fm2",
            "for i = 1 to 10 { for j = i to 10 { a[2 * i + j] = a[i + 2 * j + 1] + 1; } }",
        ),
        (
            "fm3",
            "for i = 1 to 6 { for j = 1 to 6 { for k = 1 to 6 { a[2*i + 3*j + k] = a[i + j + 5*k + 1] + 1; } } }",
        ),
        (
            "lr3",
            "for i = 1 to 10 { for j = i to i + 3 { a[j] = a[j + 1] + 1; } }",
        ),
        (
            "lr4",
            "for i = 1 to 10 { for j = i to i + 5 { a[j + 2] = a[j] + 1; } }",
        ),
        (
            "lr5_ind",
            "for i = 1 to 10 { for j = i to i + 3 { a[j] = a[j + 7] + 1; } }",
        ),
        (
            "ac4",
            "for i = 1 to 10 { for j = i to 10 { a[j + 2] = a[j] + 1; } }",
        ),
        (
            "ac5_ind",
            "for i = 1 to 10 { for j = i to 10 { a[j + 20] = a[j] + 1; } }",
        ),
        (
            "sy3",
            "read(n); for i = 1 to 10 { a[i + n] = a[i + n + 2] + 1; }",
        ),
        (
            "sy1",
            "read(n); for i = 1 to 10 { a[i + n] = a[i + 2 * n + 1] + 1; }",
        ),
        ("sy2", "for i = 1 to n { a[i + 3] = a[i] + 1; }"),
    ];

    for (name, src) in candidates {
        let program = parse_program(src).expect("parse");
        let mut an = DependenceAnalyzer::with_config(AnalyzerConfig {
            memo: MemoMode::Off,
            ..AnalyzerConfig::default()
        });
        let report = an.analyze_program(&program);
        let p = &report.pairs()[0];
        let vecs: Vec<String> = p
            .direction_vectors
            .iter()
            .map(ToString::to_string)
            .collect();
        println!(
            "{name:10} resolved_by={:<16} answer={:?} dir_tests=[{}] vectors={:?}",
            p.result.resolved_by.to_string(),
            p.result.answer,
            report.stats.direction_tests,
            vecs,
        );
    }
}
