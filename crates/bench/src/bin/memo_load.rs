//! Memo warm-start benchmark: the numbers behind the v3 binary archive
//! (`results/memo_load.txt`).
//!
//! Three views:
//!
//! 1. **Load latency** for the same trained memo persisted three ways —
//!    v2 text (parse every record into the table), v3 buffered (read
//!    the whole file into an aligned buffer, verify checksums, decode
//!    nothing), and v3 mmap (map, verify checksums, decode nothing).
//!    The v3 paths attach the archive as a lazy read tier; records
//!    fault in on first lookup.
//! 2. **Warm-batch wall time**: load + analyze the full corpus, cold vs
//!    v2-warm vs v3-warm, on the parallel engine. Verdict equality is
//!    asserted, not assumed.
//! 3. **Incremental re-analysis**: edit a fraction of the corpus and
//!    re-run warm; report the spliced/re-solved split from the
//!    `dda_incremental_*` counters and the wall time against a full
//!    cold re-analysis.
//!
//! Single-core container caveat: absolute numbers are indicative only;
//! before/after deltas on the same machine are the point.

use std::path::PathBuf;
use std::time::Instant;

use dda_core::{MemoArchive, MemoFormat, SharedMemo};
use dda_engine::{Engine, EngineConfig};
use dda_ir::{parse_program, Program};

const LOAD_REPS: usize = 25;
const EDIT_EVERY: usize = 10;

/// A corpus large enough that load time is measurable: distinct
/// one- and two-dimensional affine patterns (distinct memo keys).
fn corpus() -> Vec<Program> {
    let mut sources = Vec::new();
    for k in 1..=400usize {
        sources.push(format!("for i = 1 to 50 {{ a[i] = a[i + {k}] + 1; }}"));
        sources.push(format!(
            "for i = 1 to 20 {{ for j = 1 to 20 {{ b[i][j + {k}] = b[j][i] + 1; }} }}"
        ));
    }
    sources
        .iter()
        .map(|s| parse_program(s).expect("corpus parses"))
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dda_memo_load_bench");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Median wall nanoseconds of `f` over [`LOAD_REPS`] runs.
fn median_nanos(mut f: impl FnMut()) -> u64 {
    let mut samples = Vec::with_capacity(LOAD_REPS);
    for _ in 0..LOAD_REPS {
        let start = Instant::now();
        f();
        samples.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

fn main() {
    let programs = corpus();
    let v2_path = tmp("memo.dda");
    let v3_path = tmp("memo.dda3");

    // Train once, persist both formats.
    let mut trainer = Engine::with_config(EngineConfig::default());
    let cold_start = Instant::now();
    let cold_reports = trainer.analyze_programs(&programs);
    let cold_nanos = u64::try_from(cold_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    trainer.save_memo_file(&v2_path).expect("save v2");
    trainer.save_memo_file_v3(&v3_path, 16).expect("save v3");
    let records = {
        let memo = trainer.memo();
        memo.gcd.unique_entries() + memo.full.unique_entries()
    };
    let v2_bytes = std::fs::metadata(&v2_path).unwrap().len();
    let v3_bytes = std::fs::metadata(&v3_path).unwrap().len();
    println!(
        "corpus: {} programs, {} pairs, {records} memo records",
        programs.len(),
        trainer.stats().pairs,
    );
    println!("file size: v2 text {v2_bytes} bytes | v3 binary {v3_bytes} bytes");
    println!();

    // --- view 1: load latency -------------------------------------------
    let v2_load = median_nanos(|| {
        let memo = SharedMemo::new(16);
        assert_eq!(
            memo.load_memo_file(&v2_path).expect("v2 loads"),
            MemoFormat::V2Text
        );
        std::hint::black_box(&memo);
    });
    let v3_buffered = median_nanos(|| {
        let archive = MemoArchive::open_buffered(&v3_path).expect("v3 buffered opens");
        std::hint::black_box(&archive);
    });
    let v3_mmap = median_nanos(|| {
        let archive = MemoArchive::open(&v3_path).expect("v3 opens");
        std::hint::black_box(&archive);
    });
    println!("memo load (median of {LOAD_REPS}):");
    println!("  v2 text parse      {:>10.3} ms", ms(v2_load));
    println!(
        "  v3 buffered read   {:>10.3} ms   ({:.1}x vs v2)",
        ms(v3_buffered),
        v2_load as f64 / v3_buffered as f64
    );
    println!(
        "  v3 mmap            {:>10.3} ms   ({:.1}x vs v2)",
        ms(v3_mmap),
        v2_load as f64 / v3_mmap as f64
    );
    println!();

    // --- view 2: warm-batch wall time -----------------------------------
    let mut v2_engine = Engine::with_config(EngineConfig::default());
    let v2_warm = {
        let start = Instant::now();
        v2_engine.load_memo_file(&v2_path).expect("v2 loads");
        let reports = v2_engine.analyze_programs(&programs);
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        assert_eq!(reports.len(), cold_reports.len());
        nanos
    };
    let mut v3_engine = Engine::with_config(EngineConfig::default());
    let v3_warm = {
        let start = Instant::now();
        v3_engine.load_memo_file(&v3_path).expect("v3 loads");
        let reports = v3_engine.analyze_programs(&programs);
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        for (warm, cold) in reports.iter().zip(&cold_reports) {
            for (w, c) in warm.pairs().iter().zip(cold.pairs()) {
                assert_eq!(w.result.answer, c.result.answer, "warm verdict drifted");
            }
        }
        nanos
    };
    println!("full-corpus batch (load + analyze):");
    println!("  cold               {:>10.3} ms", ms(cold_nanos));
    println!(
        "  v2 warm            {:>10.3} ms   ({:.1}x vs cold)",
        ms(v2_warm),
        cold_nanos as f64 / v2_warm as f64
    );
    println!(
        "  v3 warm            {:>10.3} ms   ({:.1}x vs cold)",
        ms(v3_warm),
        cold_nanos as f64 / v3_warm as f64
    );
    let faults = v3_engine.memo().memo_load_stats().archive_faults;
    println!("  v3 archive faults  {faults:>10} records (of {records})");
    println!();

    // --- view 3: incremental re-analysis --------------------------------
    let mut edited = programs.clone();
    let mut edits = 0usize;
    for (i, slot) in edited.iter_mut().enumerate() {
        if i % EDIT_EVERY == 0 {
            let src = format!("for i = 1 to 50 {{ c[3 * i] = c[3 * i + {}] + 1; }}", i + 7);
            *slot = parse_program(&src).expect("edit parses");
            edits += 1;
        }
    }
    let mut incr = Engine::with_config(EngineConfig::default());
    let incr_nanos = {
        let start = Instant::now();
        incr.load_memo_file(&v3_path).expect("v3 loads");
        let reports = incr.analyze_programs(&edited);
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        std::hint::black_box(&reports);
        nanos
    };
    let spliced = incr.metrics().incremental_spliced();
    let resolved = incr.metrics().incremental_resolved();
    let mut cold_again = Engine::with_config(EngineConfig::default());
    let cold_edit_nanos = {
        let start = Instant::now();
        let reports = cold_again.analyze_programs(&edited);
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        std::hint::black_box(&reports);
        nanos
    };
    println!(
        "incremental re-analysis ({edits}/{} programs edited):",
        edited.len()
    );
    println!("  cold re-analysis   {:>10.3} ms", ms(cold_edit_nanos));
    println!(
        "  v3 incremental     {:>10.3} ms   ({:.1}x vs cold)",
        ms(incr_nanos),
        cold_edit_nanos as f64 / incr_nanos as f64
    );
    println!(
        "  spliced {spliced} / re-solved {resolved} pairs  (splice ratio {:.1}%)",
        100.0 * spliced as f64 / (spliced + resolved) as f64
    );

    std::fs::remove_file(&v2_path).ok();
    std::fs::remove_file(&v3_path).ok();
}
