//! Section 7: exact suite vs traditional inexact tests.
//!
//! The paper ran two comparisons on the PERFECT suite:
//!
//! - *plain independence* ("not computing direction vectors"): simple
//!   GCD + trapezoidal Banerjee found 415 of 482 independent pairs,
//!   missing 16%;
//! - *direction vectors*: simple GCD + Wolfe's rectangular extension
//!   returned 8,314 vectors, 22% more than the exact 6,828.
//!
//! Constant-subscript pairs are excluded from the independence comparison
//! (both sides resolve them without dependence testing).

use dda_baselines::analyze_with_baselines;
use dda_bench::suite_from_env;
use dda_core::{AnalyzerConfig, DependenceAnalyzer, MemoMode, ResolvedBy};

fn main() {
    let suite = suite_from_env();
    let mut exact_ind = 0u64;
    let mut base_ind = 0u64;
    let mut unsound = 0u64;
    let mut exact_vecs = 0u64;
    let mut base_vecs = 0u64;

    println!("Section 7: exact vs inexact (per program)\n");
    println!(
        "{:<8} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "Program", "exact-ind", "base-ind", "missed", "exact-vecs", "base-vecs"
    );
    for prog in &suite {
        let mut analyzer = DependenceAnalyzer::with_config(AnalyzerConfig {
            memo: MemoMode::Improved,
            compute_directions: true,
            ..AnalyzerConfig::default()
        });
        let exact = analyzer.analyze_program(&prog.program);
        let plain = analyze_with_baselines(&prog.program, false);
        let dirs = analyze_with_baselines(&prog.program, true);

        let mut ei = 0u64;
        let mut bi = 0u64;
        for (ep, bp) in exact.pairs().iter().zip(&plain.pairs) {
            if ep.result.resolved_by == ResolvedBy::Constant {
                continue;
            }
            if ep.result.is_independent() {
                ei += 1;
                if bp.independent {
                    bi += 1;
                }
            } else if bp.independent {
                unsound += 1; // must never happen
            }
        }
        let ev: u64 = exact
            .pairs()
            .iter()
            .map(|p| p.direction_vectors.len() as u64)
            .sum();
        let bv = dirs.direction_vector_count() as u64;
        println!(
            "{:<8} {:>11} {:>11} {:>11} {:>11} {:>11}",
            prog.name(),
            ei,
            bi,
            ei - bi,
            ev,
            bv
        );
        exact_ind += ei;
        base_ind += bi;
        exact_vecs += ev;
        base_vecs += bv;
    }

    let missed = exact_ind - base_ind;
    println!(
        "\nIndependent pairs (non-constant): exact {exact_ind}, baseline {base_ind} \
         -> baseline misses {missed} ({:.0}%; paper: 16% = 67 of 482).",
        100.0 * missed as f64 / exact_ind.max(1) as f64
    );
    println!(
        "Direction vectors: exact {exact_vecs}, baseline {base_vecs} (+{:.0}%; \
         paper: +22% = 8,314 vs 6,828).",
        100.0 * (base_vecs as f64 - exact_vecs as f64) / exact_vecs.max(1) as f64
    );
    assert_eq!(
        unsound, 0,
        "baseline claimed independence on a dependent pair"
    );
}
