//! Solver-core micro-benchmark: the numbers behind the tiered-numeric /
//! inline-storage refactor (`results/solver_core.txt`).
//!
//! Three views, each chosen to isolate what the refactor touches:
//!
//! 1. **Resolving-path latency** per cascade stage, on the same calibrated
//!    patterns as `stage_times` — but timed wall-clock per `run_pipeline`
//!    call with a [`NullProbe`] (the zero-cost configuration) and reported
//!    as *exact* quantiles from sorted samples, not log2 buckets, so a
//!    1.5× move is visible instead of rounding to a bucket edge.
//! 2. **Allocations per resolving call**, counted by a global allocator:
//!    the inline small-system storage story in one number.
//! 3. **Raw Fourier–Motzkin** on fixed adversarial systems (feasible,
//!    branch-and-bound refuted, integer gap): elimination + certificate
//!    cost without the pipeline around it.
//!
//! Single-core container caveat: absolute numbers are indicative only;
//! before/after deltas on the same machine are the point.

use std::alloc::{GlobalAlloc, Layout, System as SysAlloc};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dda_core::fourier_motzkin::{fourier_motzkin_with, FmLimits, FmOutcome};
use dda_core::gcd::{gcd_preprocess, GcdOutcome};
use dda_core::pipeline::{run_pipeline, NullProbe};
use dda_core::problem::build_problem;
use dda_core::system::{Constraint, System};
use dda_core::{PipelineConfig, TestKind};
use dda_ir::{extract_accesses, parse_program, reference_pairs};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SysAlloc.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SysAlloc.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const WARMUP: usize = 200;
const SAMPLES: usize = 5_000;

/// The calibrated source pattern each cascade stage resolves (identical
/// to `stage_times`, the Table 6-comparable view).
fn pattern(kind: TestKind) -> &'static str {
    match kind {
        TestKind::Svpc => "for i = 1 to 10 { a[i + 3] = a[i] + 1; }",
        TestKind::Acyclic => "for i = 1 to 10 { for j = i to 10 { a[j + 2] = a[j] + 1; } }",
        TestKind::LoopResidue => "for i = 1 to 10 { for j = i to i + 3 { a[j] = a[j + 1] + 1; } }",
        TestKind::FourierMotzkin => {
            "for i = 1 to 10 { for j = 1 to 10 { a[2 * i + j] = a[i + 2 * j + 1] + 1; } }"
        }
    }
}

fn reduced_system(src: &str) -> System {
    let program = parse_program(src).expect("pattern parses");
    let set = extract_accesses(&program);
    let pairs = reference_pairs(&set, false);
    let problem =
        build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).expect("pattern is affine");
    let GcdOutcome::Reduced(reduced) = gcd_preprocess(&problem).expect("no overflow") else {
        panic!("pattern must reach the cascade");
    };
    reduced.system
}

struct Quantiles {
    mean: f64,
    p50: f64,
    p99: f64,
}

fn quantiles(mut nanos: Vec<u64>) -> Quantiles {
    nanos.sort_unstable();
    let sum: u64 = nanos.iter().sum();
    let pick = |q: f64| nanos[((nanos.len() - 1) as f64 * q) as usize] as f64;
    Quantiles {
        mean: sum as f64 / nanos.len() as f64,
        p50: pick(0.50),
        p99: pick(0.99),
    }
}

fn resolving_row(kind: TestKind) -> (Quantiles, u64) {
    let system = reduced_system(pattern(kind));
    let config = PipelineConfig::full();
    let limits = FmLimits::default();
    for _ in 0..WARMUP {
        let out = std::hint::black_box(run_pipeline(&system, &config, limits, &mut NullProbe));
        assert_eq!(out.used, kind, "calibration drift");
    }
    // Allocations per call, averaged over a window with no timing noise.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000u32 {
        std::hint::black_box(run_pipeline(&system, &config, limits, &mut NullProbe));
    }
    let allocs = (ALLOCATIONS.load(Ordering::Relaxed) - before).div_ceil(1_000);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        std::hint::black_box(run_pipeline(&system, &config, limits, &mut NullProbe));
        samples.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    (quantiles(samples), allocs)
}

/// Fixed raw-FM systems: certificate-heavy refutations and a feasible
/// back-substitution, without the pipeline's cheap tests in front.
fn fm_fixtures() -> Vec<(&'static str, usize, Vec<Constraint>, bool)> {
    let c = |coeffs: &[i64], rhs: i64| Constraint::new(coeffs.to_vec(), rhs);
    vec![
        (
            "fm feasible 3-var",
            3,
            vec![
                c(&[1, 1, 1], 10),
                c(&[-1, -1, -1], -10),
                c(&[-1, 0, 0], 0),
                c(&[0, -1, 0], 0),
                c(&[0, 0, -1], 0),
                c(&[1, 0, 0], 4),
                c(&[0, 1, 0], 4),
                c(&[0, 0, 1], 4),
            ],
            true,
        ),
        (
            "fm branch-refuted",
            2,
            vec![
                c(&[3, 5], 7),
                c(&[-3, -5], -7),
                c(&[-1, 0], 0),
                c(&[0, -1], 0),
                c(&[1, 0], 10),
                c(&[0, 1], 10),
            ],
            false,
        ),
        ("fm integer gap", 1, vec![c(&[2], 1), c(&[-2], -1)], false),
    ]
}

fn fm_row(name: &str, n: usize, cs: &[Constraint], feasible: bool) -> (Quantiles, u64) {
    let limits = FmLimits::default();
    for _ in 0..WARMUP {
        let out = std::hint::black_box(fourier_motzkin_with(n, cs, limits));
        match out {
            FmOutcome::Sample(_) => assert!(feasible, "{name}: unexpected sample"),
            FmOutcome::Infeasible => assert!(!feasible, "{name}: unexpected refutation"),
            FmOutcome::Unknown => panic!("{name}: fixture must decide"),
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000u32 {
        std::hint::black_box(fourier_motzkin_with(n, cs, limits));
    }
    let allocs = (ALLOCATIONS.load(Ordering::Relaxed) - before).div_ceil(1_000);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        std::hint::black_box(fourier_motzkin_with(n, cs, limits));
        samples.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    (quantiles(samples), allocs)
}

fn print_row(label: &str, q: &Quantiles, allocs: u64) {
    println!(
        "{:<22} {:>11.3} {:>10.3} {:>10.3} {:>12}",
        label,
        q.mean / 1e3,
        q.p50 / 1e3,
        q.p99 / 1e3,
        allocs
    );
}

fn main() {
    println!("Solver-core micro-benchmark (exact quantiles, sorted samples)\n");
    println!("Pipeline latency per resolving test (calibrated patterns, NullProbe):");
    println!(
        "{:<22} {:>11} {:>10} {:>10} {:>12}",
        "Resolved by", "mean (us)", "p50 (us)", "p99 (us)", "allocs/call"
    );
    for kind in TestKind::ALL {
        let (q, allocs) = resolving_row(kind);
        print_row(&kind.to_string(), &q, allocs);
    }

    println!("\nRaw Fourier-Motzkin (elimination + certificate, no pipeline):");
    println!(
        "{:<22} {:>11} {:>10} {:>10} {:>12}",
        "System", "mean (us)", "p50 (us)", "p99 (us)", "allocs/call"
    );
    for (name, n, cs, feasible) in fm_fixtures() {
        let (q, allocs) = fm_row(name, n, &cs, feasible);
        print_row(name, &q, allocs);
    }
}
