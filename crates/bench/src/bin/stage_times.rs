//! Per-stage latency table from the instrumented pipeline.
//!
//! Two views, both recorded by the probes the analyzer itself threads
//! through its pipeline (no parallel timing harness):
//!
//! 1. Suite-wide distributions: the PERFECT suite analyzed with
//!    memoization off so every pair contributes timed samples, recorded
//!    through a [`MetricsProbe`] into the observability registry's
//!    log2-bucketed histograms — calls, totals, means, and the p50/p99
//!    spread per cascade stage. Cheap tests also *run* (and quickly
//!    pass) on systems they cannot decide, so the distributions blend
//!    deciding and passing calls; the quantiles make that visible where
//!    a bare mean hides it.
//! 2. Resolving latency per test: one calibrated pattern per test (the
//!    pattern each test resolves), timed through [`run_pipeline`] —
//!    earlier tests pass, the named test decides, and the whole pipeline
//!    run is the latency, one histogram sample per run. This is the view
//!    comparable to the paper's Table 6 and must reproduce its cost
//!    ordering: SVPC < Acyclic < Loop Residue < Fourier–Motzkin.
//!
//! Quantiles are log2-bucket upper bounds (see [`Histogram`]), so p50
//! and p99 read as "at most" figures with power-of-two resolution.

use dda_bench::suite_from_env;
use dda_core::fourier_motzkin::FmLimits;
use dda_core::gcd::{gcd_preprocess, GcdOutcome};
use dda_core::pipeline::run_pipeline;
use dda_core::problem::build_problem;
use dda_core::{
    AnalyzerConfig, DependenceAnalyzer, MemoMode, PipelineConfig, StatsProbe, TestKind,
};
use dda_ir::{extract_accesses, parse_program, reference_pairs};
use dda_obs::{Histogram, LatencySummary, MetricsProbe, MetricsRegistry};

/// Latency distribution of the pipeline resolving `kind`'s calibrated
/// pattern: each sample is the sum of every stage that runs (earlier
/// tests pass first, then `kind` decides) — the paper's notion of
/// per-test latency.
fn resolving_latency(kind: TestKind) -> LatencySummary {
    let src = match kind {
        TestKind::Svpc => "for i = 1 to 10 { a[i + 3] = a[i] + 1; }",
        TestKind::Acyclic => "for i = 1 to 10 { for j = i to 10 { a[j + 2] = a[j] + 1; } }",
        TestKind::LoopResidue => "for i = 1 to 10 { for j = i to i + 3 { a[j] = a[j + 1] + 1; } }",
        TestKind::FourierMotzkin => {
            "for i = 1 to 10 { for j = 1 to 10 { a[2 * i + j] = a[i + 2 * j + 1] + 1; } }"
        }
    };
    let program = parse_program(src).expect("pattern parses");
    let set = extract_accesses(&program);
    let pairs = reference_pairs(&set, false);
    let problem =
        build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).expect("pattern is affine");
    let GcdOutcome::Reduced(reduced) = gcd_preprocess(&problem).expect("no overflow") else {
        panic!("pattern must reach the cascade");
    };
    let config = PipelineConfig::full();
    let histogram = Histogram::new();
    for _ in 0..100 {
        std::hint::black_box(run_pipeline(
            &reduced.system,
            &config,
            FmLimits::default(),
            &mut StatsProbe::default(),
        ));
    }
    for _ in 0..2_000 {
        let mut probe = StatsProbe::default();
        let out = std::hint::black_box(run_pipeline(
            &reduced.system,
            &config,
            FmLimits::default(),
            &mut probe,
        ));
        assert_eq!(out.used, kind, "calibration drift");
        histogram.record(probe.timings.nanos.iter().sum());
    }
    histogram.summary()
}

fn print_row(label: &str, s: LatencySummary) {
    println!(
        "{:<16} {:>9} {:>12.2} {:>12.3} {:>10.3} {:>10.3}",
        label,
        s.count,
        s.sum as f64 / 1e6,
        if s.count == 0 {
            0.0
        } else {
            s.sum as f64 / s.count as f64 / 1e3
        },
        s.p50.unwrap_or(0) as f64 / 1e3,
        s.p99.unwrap_or(0) as f64 / 1e3
    );
}

fn main() {
    println!("Per-stage latency (probed pipeline, memoization off)\n");
    let suite = suite_from_env();
    let config = AnalyzerConfig {
        memo: MemoMode::Off,
        ..AnalyzerConfig::default()
    };

    let registry = MetricsRegistry::new();
    let mut probe = MetricsProbe::new(&registry);
    for prog in &suite {
        // Fresh analyzer per program (the paper's per-compilation
        // setting); the probe accumulates across the whole suite.
        let mut analyzer = DependenceAnalyzer::with_config(config);
        std::hint::black_box(analyzer.analyze_program_probed(&prog.program, &mut probe));
    }

    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "Stage", "calls", "total (ms)", "mean (us)", "p50 (us)", "p99 (us)"
    );
    print_row("extended GCD", registry.gcd_latency());
    for kind in TestKind::ALL {
        print_row(&kind.to_string(), registry.stage_latency(kind));
    }

    println!(
        "\n(suite-wide figures blend deciding and quick-pass calls; the\n\
         resolving latency below is the Table 6-comparable view.\n\
         p50/p99 are log2-bucket upper bounds)\n"
    );

    println!("Pipeline latency per resolving test (calibrated patterns):");
    println!(
        "{:<16} {:>12} {:>10} {:>10}",
        "Resolved by", "mean (us)", "p50 (us)", "p99 (us)"
    );
    let means: Vec<f64> = TestKind::ALL
        .iter()
        .map(|&kind| {
            let s = resolving_latency(kind);
            let mean = s.sum as f64 / s.count as f64;
            println!(
                "{:<16} {:>12.3} {:>10.3} {:>10.3}",
                kind.to_string(),
                mean / 1e3,
                s.p50.unwrap_or(0) as f64 / 1e3,
                s.p99.unwrap_or(0) as f64 / 1e3
            );
            mean
        })
        .collect();
    let ordered = means.windows(2).all(|w| w[0] <= w[1]);
    println!(
        "\ncost ordering SVPC <= Acyclic <= Loop Residue <= Fourier-Motzkin: {}",
        if ordered { "holds" } else { "VIOLATED" }
    );
}
