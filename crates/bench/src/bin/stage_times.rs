//! Per-stage wall-time table from the instrumented pipeline.
//!
//! Two views, both recorded by the [`StatsProbe`] the analyzer itself
//! threads through its pipeline (no parallel timing harness):
//!
//! 1. Suite-wide totals: the PERFECT suite analyzed with memoization off
//!    so every pair contributes timed samples. Cheap tests also *run*
//!    (and quickly pass) on systems they cannot decide, so their means
//!    blend deciding and passing calls.
//! 2. Resolving latency per test: one calibrated pattern per test (the
//!    pattern each test resolves), timed through [`run_pipeline`] —
//!    earlier tests pass, the named test decides, and the whole pipeline
//!    run is the latency. This is the view comparable to the paper's
//!    Table 6 and must reproduce its cost ordering:
//!    SVPC < Acyclic < Loop Residue < Fourier–Motzkin.

use dda_bench::suite_from_env;
use dda_core::fourier_motzkin::FmLimits;
use dda_core::gcd::{gcd_preprocess, GcdOutcome};
use dda_core::pipeline::run_pipeline;
use dda_core::problem::build_problem;
use dda_core::{
    AnalyzerConfig, DependenceAnalyzer, MemoMode, PipelineConfig, StatsProbe, TestKind,
};
use dda_ir::{extract_accesses, parse_program, reference_pairs};

/// Mean nanoseconds the pipeline spends resolving `kind`'s calibrated
/// pattern: the sum of every stage that runs (earlier tests pass first,
/// then `kind` decides) — the paper's notion of per-test latency.
fn resolving_mean_nanos(kind: TestKind) -> f64 {
    let src = match kind {
        TestKind::Svpc => "for i = 1 to 10 { a[i + 3] = a[i] + 1; }",
        TestKind::Acyclic => "for i = 1 to 10 { for j = i to 10 { a[j + 2] = a[j] + 1; } }",
        TestKind::LoopResidue => "for i = 1 to 10 { for j = i to i + 3 { a[j] = a[j + 1] + 1; } }",
        TestKind::FourierMotzkin => {
            "for i = 1 to 10 { for j = 1 to 10 { a[2 * i + j] = a[i + 2 * j + 1] + 1; } }"
        }
    };
    let program = parse_program(src).expect("pattern parses");
    let set = extract_accesses(&program);
    let pairs = reference_pairs(&set, false);
    let problem =
        build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).expect("pattern is affine");
    let GcdOutcome::Reduced(reduced) = gcd_preprocess(&problem).expect("no overflow") else {
        panic!("pattern must reach the cascade");
    };
    let config = PipelineConfig::full();
    let mut probe = StatsProbe::default();
    for _ in 0..100 {
        std::hint::black_box(run_pipeline(
            &reduced.system,
            &config,
            FmLimits::default(),
            &mut StatsProbe::default(),
        ));
    }
    for _ in 0..2_000 {
        let out = std::hint::black_box(run_pipeline(
            &reduced.system,
            &config,
            FmLimits::default(),
            &mut probe,
        ));
        assert_eq!(out.used, kind, "calibration drift");
    }
    probe.timings.nanos.iter().sum::<u64>() as f64 / 2_000.0
}

fn main() {
    println!("Per-stage timing (probed pipeline, memoization off)\n");
    let suite = suite_from_env();
    let config = AnalyzerConfig {
        memo: MemoMode::Off,
        ..AnalyzerConfig::default()
    };

    let mut probe = StatsProbe::default();
    for prog in &suite {
        // Fresh analyzer per program (the paper's per-compilation
        // setting); the probe accumulates across the whole suite.
        let mut analyzer = DependenceAnalyzer::with_config(config);
        std::hint::black_box(analyzer.analyze_program_probed(&prog.program, &mut probe));
    }
    let t = &probe.timings;

    println!(
        "{:<16} {:>9} {:>12} {:>12}",
        "Stage", "calls", "total (ms)", "mean (us)"
    );
    println!(
        "{:<16} {:>9} {:>12.2} {:>12.3}",
        "extended GCD",
        t.gcd_calls,
        t.gcd_nanos as f64 / 1e6,
        if t.gcd_calls == 0 {
            0.0
        } else {
            t.gcd_nanos as f64 / t.gcd_calls as f64 / 1e3
        }
    );
    for kind in TestKind::ALL {
        println!(
            "{:<16} {:>9} {:>12.2} {:>12.3}",
            kind.to_string(),
            t.calls_for(kind),
            t.nanos_for(kind) as f64 / 1e6,
            t.mean_nanos(kind) / 1e3
        );
    }

    println!(
        "\n(suite-wide means blend deciding and quick-pass calls; the\n\
         resolving latency below is the Table 6-comparable view)\n"
    );

    println!("Pipeline latency per resolving test (calibrated patterns):");
    println!("{:<16} {:>12}", "Resolved by", "mean (us)");
    let means: Vec<f64> = TestKind::ALL
        .iter()
        .map(|&kind| {
            let mean = resolving_mean_nanos(kind);
            println!("{:<16} {:>12.3}", kind.to_string(), mean / 1e3);
            mean
        })
        .collect();
    let ordered = means.windows(2).all(|w| w[0] <= w[1]);
    println!(
        "\ncost ordering SVPC <= Acyclic <= Loop Residue <= Fourier-Motzkin: {}",
        if ordered { "holds" } else { "VIOLATED" }
    );
}
