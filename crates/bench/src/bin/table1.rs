//! Table 1: number of times each dependence test is called per program.
//!
//! Configuration: no memoization, no direction vectors — every pair runs
//! the cascade once and is credited to the resolving test. Paper values
//! in parentheses. Symbolic pairs (a Table 7 ingredient baked into the
//! synthetic suite) resolve through regular tests, so test columns may
//! exceed the paper count by the program's symbolic allowance.

use dda_bench::{cell, run_suite, suite_from_env, table1_config, total};
use dda_perfect::SPECS;

fn main() {
    let suite = suite_from_env();
    let runs = run_suite(&suite, table1_config());

    println!("Table 1: dependence test frequency (measured (paper))\n");
    println!(
        "{:<8} {:>7} {:>14} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "Program", "#Lines", "Constant", "GCD", "SVPC", "Acyclic", "LoopRes", "FM"
    );
    for (run, spec) in runs.iter().zip(&SPECS) {
        let t = &run.stats.base_tests;
        println!(
            "{:<8} {:>7} {:>14} {:>12} {:>14} {:>12} {:>12} {:>10}",
            run.name,
            run.lines,
            cell(run.stats.constant, spec.constant),
            cell(run.stats.gcd_independent, spec.gcd),
            cell(t.calls[0], spec.svpc),
            cell(t.calls[1], spec.acyclic),
            cell(t.calls[2], spec.loop_residue),
            cell(t.calls[3], spec.fourier_motzkin),
        );
    }
    println!(
        "{:<8} {:>7} {:>14} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "TOTAL",
        59_412,
        cell(total(&runs, |r| r.stats.constant), 11_859),
        cell(total(&runs, |r| r.stats.gcd_independent), 384),
        cell(total(&runs, |r| r.stats.base_tests.calls[0]), 5_176),
        cell(total(&runs, |r| r.stats.base_tests.calls[1]), 323),
        cell(total(&runs, |r| r.stats.base_tests.calls[2]), 6),
        cell(total(&runs, |r| r.stats.base_tests.calls[3]), 174),
    );
    println!(
        "\nEvery pair resolved exactly ({} assumed-dependent fallbacks).",
        total(&runs, |r| r.stats.assumed)
    );
}
