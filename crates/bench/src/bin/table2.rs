//! Table 2: percentage of unique cases under memoization.
//!
//! Two hash tables (the paper's design): the no-bounds table serving the
//! extended GCD phase, and the with-bounds table serving full results.
//! "Simple" matches inputs exactly; "Improved" eliminates unused loop
//! variables first. Paper values (improved, with bounds) in parentheses.

use dda_bench::{run_suite, suite_from_env};
use dda_core::{AnalyzerConfig, MemoMode};
use dda_perfect::SPECS;

fn pct(unique: u64, total: u64) -> f64 {
    if total == 0 {
        100.0
    } else {
        100.0 * unique as f64 / total as f64
    }
}

fn main() {
    let suite = suite_from_env();
    let simple = run_suite(
        &suite,
        AnalyzerConfig {
            memo: MemoMode::Simple,
            compute_directions: false,
            ..AnalyzerConfig::default()
        },
    );
    let improved = run_suite(
        &suite,
        AnalyzerConfig {
            memo: MemoMode::Improved,
            compute_directions: false,
            ..AnalyzerConfig::default()
        },
    );

    println!("Table 2: percentage of unique cases under memoization\n");
    println!(
        "{:<8} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
        "", "----- no", "bounds (GCD)", "-----", "-------", "with", "bounds", "-------"
    );
    println!(
        "{:<8} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
        "Program", "total", "simple%", "improv%", "total", "simple%", "improv%", "(paper)"
    );
    let mut acc = [0u64; 6];
    for ((s, i), spec) in simple.iter().zip(&improved).zip(&SPECS) {
        let gq = s.stats.gcd_memo_queries;
        let gu_s = gq - s.stats.gcd_memo_hits;
        let gu_i = i.stats.gcd_memo_queries - i.stats.gcd_memo_hits;
        let bq = s.stats.memo_queries;
        let bu_s = bq - s.stats.memo_hits;
        let bu_i = i.stats.memo_queries - i.stats.memo_hits;
        acc[0] += gq;
        acc[1] += gu_s;
        acc[2] += gu_i;
        acc[3] += bq;
        acc[4] += bu_s;
        acc[5] += bu_i;
        println!(
            "{:<8} | {:>9} {:>8.1}% {:>8.1}% | {:>9} {:>8.1}% {:>8.1}% {:>8.1}%",
            s.name,
            gq,
            pct(gu_s, gq),
            pct(gu_i, i.stats.gcd_memo_queries),
            bq,
            pct(bu_s, bq),
            pct(bu_i, i.stats.memo_queries),
            spec.unique_pct,
        );
    }
    println!(
        "{:<8} | {:>9} {:>8.1}% {:>8.1}% | {:>9} {:>8.1}% {:>8.1}% {:>8.1}%",
        "TOTAL",
        acc[0],
        pct(acc[1], acc[0]),
        pct(acc[2], acc[0]),
        acc[3],
        pct(acc[4], acc[3]),
        pct(acc[5], acc[3]),
        5.8,
    );
    println!("\nPaper totals: 5.7%/4.4% without bounds, 7.3%/5.8% with bounds.");
}
