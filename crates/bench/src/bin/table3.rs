//! Table 3: number of times each test is called on *unique* cases only
//! (improved memoization on; cache hits never re-run a test).
//!
//! The paper's headline: memoization reduces 5,679 tests to 332.

use dda_bench::{cell, run_suite, suite_from_env, total};
use dda_core::{AnalyzerConfig, MemoMode};

fn main() {
    let suite = suite_from_env();
    let runs = run_suite(
        &suite,
        AnalyzerConfig {
            memo: MemoMode::Improved,
            compute_directions: false,
            ..AnalyzerConfig::default()
        },
    );

    // Paper's Table 3 per-program unique test counts.
    let paper: &[(u32, u32, u32, u32)] = &[
        (27, 0, 0, 0),
        (14, 6, 0, 0),
        (23, 0, 0, 0),
        (15, 2, 0, 0),
        (14, 0, 0, 0),
        (48, 11, 1, 1),
        (5, 0, 0, 0),
        (36, 6, 3, 4),
        (8, 0, 0, 0),
        (14, 0, 0, 0),
        (20, 0, 0, 0),
        (3, 8, 0, 0),
        (35, 1, 0, 27),
    ];

    println!("Table 3: unique-case test frequency with memoization (measured (paper))\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Program", "TotalCases", "SVPC", "Acyclic", "LoopRes", "FM"
    );
    for (run, p) in runs.iter().zip(paper) {
        let t = &run.stats.base_tests;
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            run.name,
            run.stats.memo_queries,
            cell(t.calls[0], p.0),
            cell(t.calls[1], p.1),
            cell(t.calls[2], p.2),
            cell(t.calls[3], p.3),
        );
    }
    let unique_tests = total(&runs, |r| r.stats.base_tests.total());
    let queries = total(&runs, |r| r.stats.memo_queries);
    println!(
        "\nTOTAL: {queries} memo queries -> {unique_tests} tests actually run \
         (paper: 5,679 -> 332)."
    );
}
