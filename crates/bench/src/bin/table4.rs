//! Table 4: test counts when computing direction vectors with plain
//! Burke–Cytron hierarchical refinement — *no* pruning.
//!
//! The paper's point: without further optimization, direction vectors
//! blow the test count up from ~330 to ~12,500, shifting work into the
//! Acyclic and Loop Residue tests (added direction constraints break the
//! single-variable and acyclic shapes).

use dda_bench::{cell, run_suite, suite_from_env, total, ProgramRun};
use dda_core::stats::TestCounts;
use dda_core::{AnalyzerConfig, MemoMode};

/// Base + refinement tests combined (the paper counts "every direction
/// tested").
fn combined(run: &ProgramRun) -> TestCounts {
    let mut t = run.stats.base_tests;
    t.add(&run.stats.direction_tests);
    t
}

fn main() {
    let suite = suite_from_env();
    let runs = run_suite(
        &suite,
        AnalyzerConfig {
            memo: MemoMode::Improved,
            compute_directions: true,
            prune_unused: false,
            prune_distance: false,
            symbolic: false,
            ..AnalyzerConfig::default()
        },
    );

    let paper: &[(u32, u32, u32, u32)] = &[
        (363, 104, 100, 0),
        (127, 48, 34, 0),
        (1067, 1138, 4619, 0),
        (132, 73, 59, 0),
        (120, 32, 16, 0),
        (295, 124, 172, 23),
        (37, 8, 4, 0),
        (309, 106, 120, 28),
        (355, 110, 169, 0),
        (130, 30, 18, 0),
        (169, 16, 11, 0),
        (780, 267, 703, 0),
        (303, 105, 52, 106),
    ];

    println!("Table 4: direction-vector test frequency, no pruning (measured (paper))\n");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>12}",
        "Program", "SVPC", "Acyclic", "LoopRes", "FM"
    );
    for (run, p) in runs.iter().zip(paper) {
        let t = combined(run);
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>12}",
            run.name,
            cell(t.calls[0], p.0),
            cell(t.calls[1], p.1),
            cell(t.calls[2], p.2),
            cell(t.calls[3], p.3),
        );
    }
    let grand = total(&runs, |r| combined(r).total());
    println!("\nTOTAL tests: {grand} (paper: 12,582 = 4,187 + 2,161 + 6,077 + 157).");
    println!(
        "Direction vectors found: {}",
        total(&runs, |r| r.stats.direction_vectors_found)
    );
}
