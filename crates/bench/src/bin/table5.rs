//! Table 5: direction-vector test counts with the paper's two prunings —
//! unused-variable elimination and distance-vector pruning.
//!
//! The paper's point: pruning brings ~12,500 tests back down to ~900.

use dda_bench::{cell, run_suite, suite_from_env, total, ProgramRun};
use dda_core::stats::TestCounts;
use dda_core::{AnalyzerConfig, MemoMode};

fn combined(run: &ProgramRun) -> TestCounts {
    let mut t = run.stats.base_tests;
    t.add(&run.stats.direction_tests);
    t
}

fn main() {
    let suite = suite_from_env();
    let runs = run_suite(
        &suite,
        AnalyzerConfig {
            memo: MemoMode::Improved,
            compute_directions: true,
            prune_unused: true,
            prune_distance: true,
            symbolic: false,
            ..AnalyzerConfig::default()
        },
    );

    let paper: &[(u32, u32, u32, u32)] = &[
        (27, 6, 6, 0),
        (14, 16, 14, 0),
        (44, 6, 6, 0),
        (15, 12, 5, 0),
        (14, 0, 0, 0),
        (48, 59, 118, 7),
        (5, 0, 0, 0),
        (54, 20, 55, 28),
        (8, 0, 0, 0),
        (14, 0, 0, 0),
        (23, 0, 0, 0),
        (3, 38, 72, 0),
        (35, 15, 0, 106),
    ];

    println!("Table 5: direction-vector tests with unused-variable and distance pruning\n");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>12}",
        "Program", "SVPC", "Acyclic", "LoopRes", "FM"
    );
    for (run, p) in runs.iter().zip(paper) {
        let t = combined(run);
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>12}",
            run.name,
            cell(t.calls[0], p.0),
            cell(t.calls[1], p.1),
            cell(t.calls[2], p.2),
            cell(t.calls[3], p.3),
        );
    }
    let grand = total(&runs, |r| combined(r).total());
    println!("\nTOTAL tests: {grand} (paper: 893 = 304 + 172 + 276 + 141).");
    println!(
        "Direction vectors found: {}",
        total(&runs, |r| r.stats.direction_vectors_found)
    );
}
