//! Table 6: cost of dependence testing.
//!
//! The paper timed its analyzer on a 12-MIPS MIPS R2000 against `f77 -O3`
//! compile times, reporting per-test averages (SVPC ≈ 0.1 ms, Acyclic ≈
//! 0.5 ms, Loop Residue ≈ 0.9 ms, Fourier–Motzkin ≈ 3 ms) and a ~3%
//! compile-time overhead. Absolute 1991 numbers are not reproducible; this
//! binary reproduces the *structure*: per-test average latency (same
//! ordering), per-program analysis time, and the overhead relative to a
//! simulated baseline compilation (parsing + normalization + access
//! extraction, standing in for scalar optimization).

use std::time::{Duration, Instant};

use dda_bench::{run_suite, suite_from_env};
use dda_core::cascade::run_cascade;
use dda_core::gcd::{gcd_preprocess, GcdOutcome};
use dda_core::problem::build_problem;
use dda_core::{AnalyzerConfig, MemoMode, TestKind};
use dda_ir::{extract_accesses, parse_program, passes, reference_pairs};

/// Measures the average latency of a cascade that resolves via `kind`,
/// using a calibrated representative pattern.
fn time_test(kind: TestKind) -> Duration {
    let src = match kind {
        TestKind::Svpc => "for i = 1 to 10 { a[i + 3] = a[i] + 1; }",
        TestKind::Acyclic => "for i = 1 to 10 { for j = i to 10 { a[j + 2] = a[j] + 1; } }",
        TestKind::LoopResidue => "for i = 1 to 10 { for j = i to i + 3 { a[j] = a[j + 1] + 1; } }",
        TestKind::FourierMotzkin => {
            "for i = 1 to 10 { for j = 1 to 10 { a[2 * i + j] = a[i + 2 * j + 1] + 1; } }"
        }
    };
    let program = parse_program(src).expect("pattern parses");
    let set = extract_accesses(&program);
    let pairs = reference_pairs(&set, false);
    let problem =
        build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).expect("pattern is affine");
    let GcdOutcome::Reduced(reduced) = gcd_preprocess(&problem).expect("no overflow") else {
        panic!("pattern must reach the cascade");
    };
    // Warm up, then measure.
    let iters = 2_000u32;
    for _ in 0..100 {
        std::hint::black_box(run_cascade(&reduced.system));
    }
    let start = Instant::now();
    for _ in 0..iters {
        let out = std::hint::black_box(run_cascade(&reduced.system));
        assert_eq!(out.used, kind, "calibration drift");
    }
    start.elapsed() / iters
}

fn main() {
    println!("Table 6: cost of dependence testing\n");
    println!("Per-test average latency (paper, on a 1991 MIPS R2000):");
    let paper_us = [100.0, 500.0, 900.0, 3000.0];
    for (kind, paper) in TestKind::ALL.into_iter().zip(paper_us) {
        let d = time_test(kind);
        println!(
            "  {kind:<16} {:>9.2} us/test   (paper ~{:.0} us)",
            d.as_secs_f64() * 1e6,
            paper
        );
    }

    println!(
        "\nPer-program analysis time. The paper compared against `f77 -O3`\n\
         (~3% overhead); no 1991 Fortran compiler is available, so the\n\
         \"front end\" column (parse + normalize + extract, x3) is only a\n\
         crude floor for the rest of a compiler — the meaningful measures\n\
         are the absolute times and ms per 1,000 source lines:"
    );
    println!(
        "{:<8} {:>12} {:>15} {:>14}",
        "Program", "dep (ms)", "front end (ms)", "ms/1k lines"
    );
    let suite = suite_from_env();
    let runs = run_suite(
        &suite,
        AnalyzerConfig {
            memo: MemoMode::Improved,
            compute_directions: true,
            ..AnalyzerConfig::default()
        },
    );
    let mut dep_total = Duration::ZERO;
    let mut base_total = Duration::ZERO;
    for (run, prog) in runs.iter().zip(&suite) {
        // Simulated "rest of the compiler": re-parse, normalize, extract.
        let start = Instant::now();
        for _ in 0..3 {
            let mut p = parse_program(&prog.source).expect("parses");
            passes::normalize(&mut p);
            std::hint::black_box(extract_accesses(&p));
        }
        let baseline = start.elapsed();
        dep_total += run.elapsed;
        base_total += baseline;
        println!(
            "{:<8} {:>12.2} {:>15.2} {:>14.2}",
            run.name,
            run.elapsed.as_secs_f64() * 1e3,
            baseline.as_secs_f64() * 1e3,
            run.elapsed.as_secs_f64() * 1e6 / f64::from(run.lines),
        );
    }
    let total_lines: u32 = runs.iter().map(|r| r.lines).sum();
    println!(
        "\nTOTAL: dependence testing {:.1} ms for {} (paper-equivalent) source \
         lines = {:.2} ms per 1,000 lines; front-end proxy {:.1} ms.\n\
         The paper's own totals were ~31 s of dependence testing against \
         ~1,477 s of f77 -O3 on a 12-MIPS machine (~3%).",
        dep_total.as_secs_f64() * 1e3,
        total_lines,
        dep_total.as_secs_f64() * 1e6 / f64::from(total_lines),
        base_total.as_secs_f64() * 1e3,
    );
}
