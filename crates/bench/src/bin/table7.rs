//! Table 7: test counts with symbolic (Section 8) constraints enabled.
//!
//! Identical configuration to Table 5 except that pairs involving
//! loop-invariant unknowns are now *tested* (the unknown enters the
//! system as an unbounded variable) instead of being assumed dependent.
//! The paper: ~900 tests grow to only ~1,060 — exactness for symbolic
//! terms is nearly free.

use dda_bench::{cell, run_suite, suite_from_env, total, ProgramRun};
use dda_core::stats::TestCounts;
use dda_core::{AnalyzerConfig, MemoMode};

fn combined(run: &ProgramRun) -> TestCounts {
    let mut t = run.stats.base_tests;
    t.add(&run.stats.direction_tests);
    t
}

fn main() {
    let suite = suite_from_env();
    let config = AnalyzerConfig {
        memo: MemoMode::Improved,
        compute_directions: true,
        prune_unused: true,
        prune_distance: true,
        symbolic: true,
        ..AnalyzerConfig::default()
    };
    let runs = run_suite(&suite, config);
    let without = run_suite(
        &suite,
        AnalyzerConfig {
            symbolic: false,
            ..config
        },
    );

    let paper: &[(u32, u32, u32, u32)] = &[
        (33, 22, 6, 0),
        (20, 24, 19, 0),
        (48, 6, 6, 0),
        (15, 12, 5, 0),
        (19, 0, 0, 0),
        (55, 149, 101, 7),
        (5, 1, 0, 0),
        (54, 20, 55, 28),
        (8, 0, 0, 0),
        (21, 1, 2, 0),
        (43, 0, 0, 0),
        (3, 38, 72, 0),
        (35, 19, 0, 106),
    ];

    println!("Table 7: tests with symbolic constraints enabled (measured (paper))\n");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>12} {:>10}",
        "Program", "SVPC", "Acyclic", "LoopRes", "FM", "assumed"
    );
    for (run, p) in runs.iter().zip(paper) {
        let t = combined(run);
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>12} {:>10}",
            run.name,
            cell(t.calls[0], p.0),
            cell(t.calls[1], p.1),
            cell(t.calls[2], p.2),
            cell(t.calls[3], p.3),
            run.stats.assumed,
        );
    }
    let with_total = total(&runs, |r| combined(r).total());
    let without_total = total(&without, |r| combined(r).total());
    let assumed_without = total(&without, |r| r.stats.assumed);
    println!(
        "\nTOTAL tests: {with_total} with symbolic vs {without_total} without \
         (paper: ~1,060 vs ~900)."
    );
    println!(
        "Pairs assumed dependent without symbolic support: {assumed_without}; \
         with support: {}.",
        total(&runs, |r| r.stats.assumed)
    );
}
