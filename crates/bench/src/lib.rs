//! Benchmark harness: regenerates every table of the paper's evaluation.
//!
//! Each table has a binary (`table1` … `table7`, `section7`) that runs the
//! synthetic PERFECT suite through the analyzer in the configuration the
//! paper used for that table and prints measured values next to the
//! paper's published ones. The Criterion benches in `benches/` time the
//! individual tests, whole-program analysis, and the ablations called out
//! in `DESIGN.md`.
//!
//! Set `DDA_SCALE` (default `1.0`) to shrink the suite proportionally for
//! quick runs.

#![warn(missing_docs)]

pub mod record;

use std::time::{Duration, Instant};

use dda_core::system::{Constraint, System};
use dda_core::{AnalyzerConfig, DependenceAnalyzer, MemoMode};
use dda_perfect::{perfect_suite, SyntheticProgram};

pub use dda_core::stats::AnalysisStats;

/// Reads the workload scale from `DDA_SCALE` (default 1.0).
#[must_use]
pub fn scale_from_env() -> f64 {
    std::env::var("DDA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s: &f64| s > 0.0 && s <= 1.0)
        .unwrap_or(1.0)
}

/// Generates the suite at the environment scale, printing a note when
/// scaled down.
#[must_use]
pub fn suite_from_env() -> Vec<SyntheticProgram> {
    let scale = scale_from_env();
    if (scale - 1.0).abs() > f64::EPSILON {
        println!("(running at DDA_SCALE={scale}; counts scale proportionally)\n");
    }
    perfect_suite(scale)
}

/// The result of analyzing one program, with timing.
#[derive(Debug, Clone)]
pub struct ProgramRun {
    /// Program acronym.
    pub name: &'static str,
    /// Original Fortran line count (from the paper).
    pub lines: u32,
    /// The per-program statistics.
    pub stats: AnalysisStats,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
}

/// Runs the analyzer over every program with the given configuration.
/// A fresh analyzer per program (the paper's per-compilation setting).
#[must_use]
pub fn run_suite(suite: &[SyntheticProgram], config: AnalyzerConfig) -> Vec<ProgramRun> {
    suite
        .iter()
        .map(|p| {
            let mut analyzer = DependenceAnalyzer::with_config(config);
            let start = Instant::now();
            let report = analyzer.analyze_program(&p.program);
            let elapsed = start.elapsed();
            ProgramRun {
                name: p.name(),
                lines: p.spec.lines,
                stats: report.stats,
                elapsed,
            }
        })
        .collect()
}

/// The analyzer configuration used for Table 1: no memoization, no
/// direction vectors — count every base test.
#[must_use]
pub fn table1_config() -> AnalyzerConfig {
    AnalyzerConfig {
        memo: MemoMode::Off,
        compute_directions: false,
        ..AnalyzerConfig::default()
    }
}

/// Sums a column over runs.
#[must_use]
pub fn total<F: Fn(&ProgramRun) -> u64>(runs: &[ProgramRun], f: F) -> u64 {
    runs.iter().map(f).sum()
}

/// Builds a single x-space inequality system for a dependence problem
/// (equalities expanded to inequality pairs) — the "no GCD preprocessing"
/// ablation input.
#[must_use]
pub fn xspace_system(problem: &dda_core::problem::DependenceProblem) -> System {
    let n = problem.num_vars();
    let mut system = System::new(n);
    for (row, &rhs) in problem.eq_coeffs.iter().zip(&problem.eq_rhs) {
        system.push(Constraint::new(row.clone(), rhs));
        let neg: Vec<i64> = row.iter().map(|&c| -c).collect();
        system.push(Constraint::new(neg, -rhs));
    }
    for b in &problem.bounds {
        system.push(b.clone());
    }
    system
}

/// Formats a measured/paper column pair, e.g. `613 (613)`.
#[must_use]
pub fn cell(measured: u64, paper: u32) -> String {
    format!("{measured} ({paper})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_perfect::SPECS;

    #[test]
    fn table1_shape_matches_paper() {
        // At 5% scale the attribution must match the spec per program
        // (templates are calibrated). Symbolic pairs resolve through
        // regular tests, so each test column may exceed its spec count by
        // at most the symbolic allowance.
        let suite = dda_perfect::perfect_suite(0.05);
        let runs = run_suite(&suite, table1_config());
        for (run, spec) in runs.iter().zip(&SPECS) {
            let scaled = |c: u32| -> u64 {
                if c == 0 {
                    0
                } else {
                    (((f64::from(c)) * 0.05).round() as u64).max(1)
                }
            };
            assert_eq!(run.stats.constant, scaled(spec.constant), "{}", run.name);
            assert_eq!(run.stats.gcd_independent, scaled(spec.gcd), "{}", run.name);
            let sym = scaled(spec.symbolic);
            let cols = [
                (0, spec.svpc),
                (1, spec.acyclic),
                (2, spec.loop_residue),
                (3, spec.fourier_motzkin),
            ];
            for (idx, expected) in cols {
                let got = run.stats.base_tests.calls[idx];
                let lo = scaled(expected);
                assert!(
                    got >= lo && got <= lo + sym,
                    "{}: column {idx} got {got}, expected {lo}..={}",
                    run.name,
                    lo + sym
                );
            }
            assert_eq!(
                run.stats.base_tests.total(),
                scaled(spec.svpc)
                    + scaled(spec.acyclic)
                    + scaled(spec.loop_residue)
                    + scaled(spec.fourier_motzkin)
                    + sym,
                "{}: total tests",
                run.name
            );
            assert_eq!(run.stats.assumed, 0, "{}", run.name);
        }
    }

    #[test]
    fn xspace_system_equivalent() {
        use dda_core::problem::build_problem;
        use dda_ir::{extract_accesses, parse_program, reference_pairs};
        let p = parse_program("for i = 1 to 10 { a[i] = a[i + 3]; }").unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        let problem = build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap();
        let sys = xspace_system(&problem);
        // a[i] meets a[i′ + 3] when i = i′ + 3: (7, 4) is a witness.
        assert_eq!(sys.is_satisfied_by(&[7, 4]), Some(true));
        assert_eq!(sys.is_satisfied_by(&[7, 5]), Some(false));
    }
}
