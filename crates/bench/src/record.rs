//! `dda bench record` / `dda bench gate`: schema-versioned benchmark
//! snapshots and the CI regression gate.
//!
//! [`record`] re-runs the harness's standing measurements — per-stage
//! resolving latency over the calibrated patterns (the Table 6 view),
//! whole-corpus analyze wall time over the PERFECT suite, and v3 memo
//! archive load latency — collecting **raw nanosecond samples** and
//! reporting exact sorted percentiles rather than the registry's
//! log2-bucket upper bounds. Bucketed quantiles quantize to powers of
//! two, so a real 30% regression can hide inside one bucket; the gate
//! needs exact figures to mean anything.
//!
//! The snapshot serializes as `BENCH_<date>.json` with a `schema` tag
//! (see [`SCHEMA`]); [`gate`] parses two snapshots with a dependency-free
//! JSON reader and fails on any p99 regression beyond the tolerance
//! (default 25%) **that the median confirms**: a genuine slowdown moves
//! the whole distribution, so the gate requires both the p99 and the p50
//! to exceed the band before failing. Tail-only excursions — p99 up,
//! median unmoved — are the signature of scheduler preemption on shared
//! single-core CI runners and are reported as `tail-noise`, not failed.
//! Absolute numbers are machine-specific — the committed
//! `results/BENCH_baseline.json` is only comparable to runs on the same
//! container class, which is exactly the CI setting.

use std::time::{Instant, SystemTime};

use dda_core::fourier_motzkin::FmLimits;
use dda_core::gcd::{gcd_preprocess, GcdOutcome};
use dda_core::pipeline::run_pipeline;
use dda_core::problem::build_problem;
use dda_core::{DependenceAnalyzer, MemoArchive, PipelineConfig, StatsProbe, TestKind};
use dda_engine::{Engine, EngineConfig};
use dda_ir::{extract_accesses, parse_program, reference_pairs, Program};
use dda_perfect::perfect_suite;

use crate::{scale_from_env, table1_config};

/// Schema tag carried by every snapshot; the gate refuses to compare
/// across schema versions.
pub const SCHEMA: &str = "dda-bench-v1";

/// Default gate tolerance: fail on a p99 regression beyond this many
/// percent over baseline.
pub const DEFAULT_TOLERANCE_PCT: f64 = 25.0;

/// Baselines below this are clamped up before the percentage check —
/// at sub-microsecond scale a 25% delta is timer noise, not regression.
const NOISE_FLOOR_NANOS: u64 = 1_000;

/// Exact latency figures from a raw sample set (sorted nearest-rank
/// percentiles, not bucket upper bounds).
#[derive(Debug, Clone, Copy)]
pub struct ExactSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_nanos: u64,
    /// Exact 50th percentile (nearest rank).
    pub p50_nanos: u64,
    /// Exact 99th percentile (nearest rank).
    pub p99_nanos: u64,
}

impl ExactSummary {
    /// Summarizes a sample vector. Empty input yields all zeros.
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> ExactSummary {
        samples.sort_unstable();
        ExactSummary {
            count: samples.len() as u64,
            sum_nanos: samples.iter().sum(),
            p50_nanos: percentile(&samples, 50.0),
            p99_nanos: percentile(&samples, 99.0),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set; 0 when
/// empty.
#[must_use]
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One benchmark snapshot, as written to `BENCH_<date>.json`.
#[derive(Debug)]
pub struct BenchReport {
    /// ISO date (UTC) the snapshot was recorded.
    pub date: String,
    /// Whether this was a `--quick` run (fewer reps, scaled suite).
    pub quick: bool,
    /// Resolving-pattern pipeline latency per stage, in cascade order.
    pub stages: Vec<(&'static str, ExactSummary)>,
    /// Programs in the analyzed corpus.
    pub corpus_programs: u64,
    /// Reference pairs analyzed per corpus run.
    pub corpus_pairs: u64,
    /// Whole-corpus analyze wall time (one sample per full pass).
    pub corpus_wall: ExactSummary,
    /// Records in the memo archive used for the load measurement.
    pub memo_records: u64,
    /// v3 memo archive open latency (mmap + checksum verify).
    pub memo_load: ExactSummary,
}

/// Canonical lowercase stage token, matching `--tests` syntax and the
/// registry's stage labels.
fn stage_token(kind: TestKind) -> &'static str {
    match kind {
        TestKind::Svpc => "svpc",
        TestKind::Acyclic => "acyclic",
        TestKind::LoopResidue => "residue",
        TestKind::FourierMotzkin => "fm",
    }
}

/// Pipeline latency samples for `kind`'s calibrated pattern: each
/// sample is a full cascade run in which the earlier tests pass and
/// `kind` decides — the same patterns `stage_times` uses, but with raw
/// samples kept for exact percentiles.
fn resolving_samples(kind: TestKind, reps: usize) -> Vec<u64> {
    let src = match kind {
        TestKind::Svpc => "for i = 1 to 10 { a[i + 3] = a[i] + 1; }",
        TestKind::Acyclic => "for i = 1 to 10 { for j = i to 10 { a[j + 2] = a[j] + 1; } }",
        TestKind::LoopResidue => "for i = 1 to 10 { for j = i to i + 3 { a[j] = a[j + 1] + 1; } }",
        TestKind::FourierMotzkin => {
            "for i = 1 to 10 { for j = 1 to 10 { a[2 * i + j] = a[i + 2 * j + 1] + 1; } }"
        }
    };
    let program = parse_program(src).expect("pattern parses");
    let set = extract_accesses(&program);
    let pairs = reference_pairs(&set, false);
    let problem =
        build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).expect("pattern is affine");
    let GcdOutcome::Reduced(reduced) = gcd_preprocess(&problem).expect("no overflow") else {
        panic!("pattern must reach the cascade");
    };
    let config = PipelineConfig::full();
    for _ in 0..(reps / 10).max(20) {
        std::hint::black_box(run_pipeline(
            &reduced.system,
            &config,
            FmLimits::default(),
            &mut StatsProbe::default(),
        ));
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut probe = StatsProbe::default();
        let out = std::hint::black_box(run_pipeline(
            &reduced.system,
            &config,
            FmLimits::default(),
            &mut probe,
        ));
        assert_eq!(out.used, kind, "calibration drift");
        samples.push(probe.timings.nanos.iter().sum());
    }
    samples
}

/// A memo-training corpus sized for measurable archive loads.
fn memo_corpus(patterns: usize) -> Vec<Program> {
    let mut programs = Vec::new();
    for k in 1..=patterns {
        let src = format!("for i = 1 to 50 {{ a[i] = a[i + {k}] + 1; }}");
        programs.push(parse_program(&src).expect("corpus parses"));
    }
    programs
}

fn elapsed_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Records one benchmark snapshot. `quick` shrinks every dimension
/// (reps, suite scale, memo corpus) for CI smoke use; absolute figures
/// drop but the schema and the gate semantics are identical.
#[must_use]
pub fn record(quick: bool) -> BenchReport {
    // Sample counts are sized so the p99s the gate compares are real
    // order statistics, not the maximum: on a small shared core a
    // single scheduler preemption inflates any max-of-N by 2-10x, and
    // a gate reading maxima flakes. With >=100 samples the nearest-rank
    // p99 sits below the largest samples and isolated spikes fall out.
    let stage_reps = if quick { 1_200 } else { 3_000 };
    let corpus_runs = if quick { 100 } else { 40 };
    let suite_scale = if quick { 0.05 } else { scale_from_env() };
    let memo_patterns = if quick { 120 } else { 400 };
    let memo_reps = if quick { 150 } else { 200 };

    // 1. Per-stage resolving latency (exact percentiles).
    let stages: Vec<(&'static str, ExactSummary)> = TestKind::ALL
        .iter()
        .map(|&kind| {
            (
                stage_token(kind),
                ExactSummary::from_samples(resolving_samples(kind, stage_reps)),
            )
        })
        .collect();

    // 2. Whole-corpus analyze wall: the PERFECT suite, fresh analyzer
    // per program (the paper's per-compilation setting), one sample per
    // full pass.
    let suite = perfect_suite(suite_scale);
    let mut pairs = 0u64;
    let mut wall = Vec::with_capacity(corpus_runs);
    // One untimed warmup pass, then timed passes: with a handful of
    // samples p99 is the max, and the gate must not compare cold-cache
    // first passes against warmed ones.
    for run in 0..=corpus_runs {
        let start = Instant::now();
        let mut run_pairs = 0u64;
        for prog in &suite {
            let mut analyzer = DependenceAnalyzer::with_config(table1_config());
            let report = std::hint::black_box(analyzer.analyze_program(&prog.program));
            run_pairs += report.stats.pairs;
        }
        if run > 0 {
            wall.push(elapsed_nanos(start));
        }
        pairs = run_pairs;
    }

    // 3. Memo archive load: train once, persist v3, time the open
    // (mmap + checksum verify; records fault in lazily afterwards).
    let programs = memo_corpus(memo_patterns);
    let mut trainer = Engine::with_config(EngineConfig::default());
    std::hint::black_box(trainer.analyze_programs(&programs));
    let memo_records = {
        let memo = trainer.memo();
        (memo.full.unique_entries() + memo.gcd.unique_entries()) as u64
    };
    let dir = std::env::temp_dir().join(format!("dda_bench_record_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let v3_path = dir.join("memo.dda3");
    trainer.save_memo_file_v3(&v3_path, 16).expect("save v3");
    // Warm the page cache with untimed opens first — the cold first
    // open is 10-20x the steady state and would own the p99 outright.
    for _ in 0..3 {
        std::hint::black_box(MemoArchive::open(&v3_path).expect("v3 opens"));
    }
    let mut loads = Vec::with_capacity(memo_reps);
    for _ in 0..memo_reps {
        let start = Instant::now();
        let archive = MemoArchive::open(&v3_path).expect("v3 opens");
        std::hint::black_box(&archive);
        loads.push(elapsed_nanos(start));
    }
    std::fs::remove_file(&v3_path).ok();
    std::fs::remove_dir(&dir).ok();

    BenchReport {
        date: utc_date(),
        quick,
        stages,
        corpus_programs: suite.len() as u64,
        corpus_pairs: pairs,
        corpus_wall: ExactSummary::from_samples(wall),
        memo_records,
        memo_load: ExactSummary::from_samples(loads),
    }
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days; no external time
/// crates in this tree).
#[must_use]
pub fn utc_date() -> String {
    let secs = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to (year, month, day), Howard Hinnant's public
/// domain `civil_from_days` algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn summary_json(s: ExactSummary) -> String {
    format!(
        "{{\"count\":{},\"sum_nanos\":{},\"p50_nanos\":{},\"p99_nanos\":{}}}",
        s.count, s.sum_nanos, s.p50_nanos, s.p99_nanos
    )
}

impl BenchReport {
    /// The snapshot as schema-versioned JSON (one pretty-printed object;
    /// key order is fixed so diffs of committed baselines stay small).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"date\": \"{}\",", self.date);
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"stages\": [");
        for (i, (name, s)) in self.stages.iter().enumerate() {
            let comma = if i + 1 < self.stages.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\":\"{name}\",\"count\":{},\"sum_nanos\":{},\
                 \"p50_nanos\":{},\"p99_nanos\":{}}}{comma}",
                s.count, s.sum_nanos, s.p50_nanos, s.p99_nanos
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(
            out,
            "  \"corpus\": {{\"programs\":{},\"pairs\":{},\"wall\":{}}},",
            self.corpus_programs,
            self.corpus_pairs,
            summary_json(self.corpus_wall)
        );
        let _ = writeln!(
            out,
            "  \"memo_load\": {{\"records\":{},\"open\":{}}}",
            self.memo_records,
            summary_json(self.memo_load)
        );
        let _ = writeln!(out, "}}");
        out
    }
}

// --- minimal JSON reader (gate side) ---------------------------------

/// A parsed JSON value — just enough structure for the gate to walk a
/// snapshot. No external dependencies; the container is offline.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, kept as f64 (snapshot values fit exactly).
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as u64 (truncating), if this is a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a byte-offset-located reason on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        *pos += 4;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Re-sync to char boundaries for multi-byte UTF-8.
                let start = *pos - 1;
                let mut end = *pos;
                while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..end]).map_err(|_| "bad UTF-8 in string")?,
                );
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}

// --- the gate --------------------------------------------------------

/// The outcome of gating one snapshot against a baseline.
#[derive(Debug)]
pub struct GateReport {
    /// One human-readable line per compared metric.
    pub lines: Vec<String>,
    /// Metrics that regressed beyond tolerance (empty = pass).
    pub failures: Vec<String>,
}

impl GateReport {
    /// Whether the gate passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One gated metric: exact p50 and p99 extracted from a snapshot.
#[derive(Debug, PartialEq)]
struct GatedMetric {
    name: String,
    p50: u64,
    p99: u64,
}

fn quantiles_of(obj: &Json, what: &str) -> Result<(u64, u64), String> {
    let p50 = obj
        .get("p50_nanos")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what} without `p50_nanos`"))?;
    let p99 = obj
        .get("p99_nanos")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what} without `p99_nanos`"))?;
    Ok((p50, p99))
}

/// Extracts the gated metrics from a parsed snapshot.
fn gated_metrics(doc: &Json) -> Result<Vec<GatedMetric>, String> {
    let mut metrics = Vec::new();
    let stages = match doc.get("stages") {
        Some(Json::Arr(items)) => items.as_slice(),
        _ => return Err("missing `stages` array".into()),
    };
    for stage in stages {
        let name = stage
            .get("name")
            .and_then(Json::as_str)
            .ok_or("stage without `name`")?;
        let (p50, p99) = quantiles_of(stage, "stage")?;
        metrics.push(GatedMetric {
            name: format!("stage:{name}"),
            p50,
            p99,
        });
    }
    let wall = doc
        .get("corpus")
        .and_then(|c| c.get("wall"))
        .ok_or("missing `corpus.wall`")?;
    let (p50, p99) = quantiles_of(wall, "corpus.wall")?;
    metrics.push(GatedMetric {
        name: "corpus:wall".into(),
        p50,
        p99,
    });
    let open = doc
        .get("memo_load")
        .and_then(|m| m.get("open"))
        .ok_or("missing `memo_load.open`")?;
    let (p50, p99) = quantiles_of(open, "memo_load.open")?;
    metrics.push(GatedMetric {
        name: "memo_load:open".into(),
        p50,
        p99,
    });
    Ok(metrics)
}

/// Whether `cur` exceeds the tolerance band over `base`, with
/// sub-microsecond baselines clamped to the noise floor first.
fn over_tolerance(cur: u64, base: u64, tolerance_pct: f64) -> bool {
    let floor = base.max(NOISE_FLOOR_NANOS);
    cur as f64 > floor as f64 * (1.0 + tolerance_pct / 100.0)
}

fn delta_pct(cur: u64, base: u64) -> f64 {
    if base == 0 {
        f64::INFINITY
    } else {
        100.0 * (cur as f64 - base as f64) / base as f64
    }
}

/// Gates `current` (JSON text) against `baseline` (JSON text): a metric
/// fails when its p99 regresses beyond `tolerance_pct` percent of the
/// baseline **and** the median confirms it — the p50 is over the same
/// band. A genuine slowdown shifts the whole distribution; a tail-only
/// excursion with an unmoved median is scheduler noise on shared CI
/// hardware, reported as `tail-noise` but not failed. Sub-microsecond
/// baselines are clamped to a noise floor before the percentage check.
/// Metrics present on only one side fail the gate (schema drift).
///
/// # Errors
///
/// Returns a reason when either document is malformed or carries a
/// different schema tag.
pub fn gate(current: &str, baseline: &str, tolerance_pct: f64) -> Result<GateReport, String> {
    let cur = parse_json(current).map_err(|e| format!("current: {e}"))?;
    let base = parse_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    for (label, doc) in [("current", &cur), ("baseline", &base)] {
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(format!("{label}: schema `{s}`, expected `{SCHEMA}`")),
            None => return Err(format!("{label}: missing `schema`")),
        }
    }
    let cur_metrics = gated_metrics(&cur).map_err(|e| format!("current: {e}"))?;
    let base_metrics = gated_metrics(&base).map_err(|e| format!("baseline: {e}"))?;

    let mut report = GateReport {
        lines: Vec::new(),
        failures: Vec::new(),
    };
    for m in &cur_metrics {
        let Some(b) = base_metrics.iter().find(|b| b.name == m.name) else {
            report.failures.push(format!("{}: not in baseline", m.name));
            continue;
        };
        let tail_over = over_tolerance(m.p99, b.p99, tolerance_pct);
        let median_over = over_tolerance(m.p50, b.p50, tolerance_pct);
        let regressed = tail_over && median_over;
        let verdict = if regressed {
            "FAIL"
        } else if tail_over {
            "tail-noise"
        } else {
            "ok"
        };
        report.lines.push(format!(
            "{:<16} p99 {:>12} ns vs {:>12} ns ({:+.1}%)  p50 {:>12} ns vs {:>12} ns ({:+.1}%) {}",
            m.name,
            m.p99,
            b.p99,
            delta_pct(m.p99, b.p99),
            m.p50,
            b.p50,
            delta_pct(m.p50, b.p50),
            verdict
        ));
        if regressed {
            report.failures.push(format!(
                "{}: p99 {} ns over baseline {} ns by {:.1}% and p50 {} ns over {} ns by {:.1}% \
                 (tolerance {tolerance_pct}%)",
                m.name,
                m.p99,
                b.p99,
                delta_pct(m.p99, b.p99),
                m.p50,
                b.p50,
                delta_pct(m.p50, b.p50),
            ));
        }
    }
    for b in &base_metrics {
        if !cur_metrics.iter().any(|m| m.name == b.name) {
            report
                .failures
                .push(format!("{}: missing from current", b.name));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_exact_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(20_673), (2026, 8, 8));
    }

    #[test]
    fn json_parser_round_trips_a_snapshot() {
        let report = BenchReport {
            date: "2026-08-08".into(),
            quick: true,
            stages: vec![
                (
                    "svpc",
                    ExactSummary {
                        count: 10,
                        sum_nanos: 100,
                        p50_nanos: 9,
                        p99_nanos: 15,
                    },
                ),
                (
                    "fm",
                    ExactSummary {
                        count: 10,
                        sum_nanos: 400,
                        p50_nanos: 38,
                        p99_nanos: 60,
                    },
                ),
            ],
            corpus_programs: 13,
            corpus_pairs: 900,
            corpus_wall: ExactSummary {
                count: 3,
                sum_nanos: 3_000,
                p50_nanos: 1_000,
                p99_nanos: 1_200,
            },
            memo_records: 120,
            memo_load: ExactSummary {
                count: 10,
                sum_nanos: 5_000,
                p50_nanos: 480,
                p99_nanos: 700,
            },
        };
        let doc = parse_json(&report.to_json()).expect("emitted JSON parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("quick"), Some(&Json::Bool(true)));
        let metrics = gated_metrics(&doc).unwrap();
        let expect = [
            ("stage:svpc", 9, 15),
            ("stage:fm", 38, 60),
            ("corpus:wall", 1_000, 1_200),
            ("memo_load:open", 480, 700),
        ];
        assert_eq!(metrics.len(), expect.len());
        for (m, (name, p50, p99)) in metrics.iter().zip(expect) {
            assert_eq!(m.name, name);
            assert_eq!(m.p50, p50);
            assert_eq!(m.p99, p99);
        }
    }

    #[test]
    fn json_parser_rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    /// A synthetic snapshot where each metric's p50 is half its p99, so
    /// scaling a p99 models a whole-distribution shift (a genuine
    /// regression), not a tail-only spike.
    fn snapshot(p99s: [u64; 4], corpus: u64, memo: u64) -> String {
        let stage = |name: &str, p99: u64| {
            format!(
                "{{\"name\":\"{name}\",\"count\":1,\"sum_nanos\":1,\
                 \"p50_nanos\":{},\"p99_nanos\":{p99}}}",
                p99 / 2
            )
        };
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"date\":\"2026-08-08\",\"quick\":true,\
             \"stages\":[{},{},{},{}],\
             \"corpus\":{{\"programs\":1,\"pairs\":1,\"wall\":{{\"count\":1,\"sum_nanos\":1,\
             \"p50_nanos\":{},\"p99_nanos\":{corpus}}}}},\
             \"memo_load\":{{\"records\":1,\"open\":{{\"count\":1,\"sum_nanos\":1,\
             \"p50_nanos\":{},\"p99_nanos\":{memo}}}}}}}",
            stage("svpc", p99s[0]),
            stage("acyclic", p99s[1]),
            stage("residue", p99s[2]),
            stage("fm", p99s[3]),
            corpus / 2,
            memo / 2,
        )
    }

    #[test]
    fn gate_passes_identical_snapshots() {
        let snap = snapshot([10_000, 20_000, 30_000, 40_000], 5_000_000, 600_000);
        let report = gate(&snap, &snap, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.lines.len(), 6);
    }

    #[test]
    fn gate_fails_on_p99_regression_beyond_tolerance() {
        let base = snapshot([10_000, 20_000, 30_000, 40_000], 5_000_000, 600_000);
        let cur = snapshot([10_000, 20_000, 30_000, 40_000], 6_500_000, 600_000);
        let report = gate(&cur, &base, 25.0).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(
            report.failures[0].contains("corpus:wall"),
            "{:?}",
            report.failures
        );
        // 30% over on a stage also trips it.
        let cur2 = snapshot([13_000, 20_000, 30_000, 40_000], 5_000_000, 600_000);
        let report2 = gate(&cur2, &base, 25.0).unwrap();
        assert!(report2.failures.iter().any(|f| f.contains("stage:svpc")));
    }

    #[test]
    fn gate_treats_tail_only_spikes_as_noise() {
        // Triple the memo-open p99 but leave its median untouched: the
        // signature of a preemption spike, not a regression. The gate
        // reports it as tail-noise and still passes.
        let base = snapshot([10_000, 20_000, 30_000, 40_000], 5_000_000, 600_000);
        let cur = base.replace("\"p99_nanos\":600000", "\"p99_nanos\":1800000");
        assert_ne!(base, cur, "replacement must hit the memo p99");
        let report = gate(&cur, &base, 25.0).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        assert!(
            report
                .lines
                .iter()
                .any(|l| l.contains("memo_load:open") && l.contains("tail-noise")),
            "{:?}",
            report.lines
        );
    }

    #[test]
    fn gate_tolerates_noise_on_tiny_baselines() {
        // 800 ns -> 1.2 us is +50%, but under the 1 us noise floor's
        // 25% band (1.25 us), so it must not trip the gate.
        let base = snapshot([800, 20_000, 30_000, 40_000], 5_000_000, 600_000);
        let cur = snapshot([1_200, 20_000, 30_000, 40_000], 5_000_000, 600_000);
        assert!(gate(&cur, &base, 25.0).unwrap().passed());
    }

    #[test]
    fn gate_rejects_schema_drift() {
        let good = snapshot([1, 1, 1, 1], 1, 1);
        let bad = good.replace(SCHEMA, "dda-bench-v0");
        assert!(gate(&good, &bad, 25.0).is_err());
        assert!(gate(&bad, &good, 25.0).is_err());
    }
}
