//! `dda-check`: an independent proof-checking kernel for
//! certificate-carrying dependence verdicts.
//!
//! The analyzer (`dda-core`) attaches a [`Certificate`] to every pair
//! verdict. This crate re-verifies those certificates **without trusting
//! any solver code**: it shares only *data types* with the analyzer
//! ([`DependenceProblem`], [`Matrix`], the certificate grammar) and
//! re-derives everything else — witness substitution, lattice soundness,
//! the translated bound rows, and every derivation step — in exact `i128`
//! arithmetic of its own. In particular it does **not** call into the
//! extended-GCD solver, any cascade stage, the Fourier–Motzkin
//! eliminator, the direction refiner, the memo table, or the persistence
//! layer; evidence originating in all of those is rechecked from first
//! principles.
//!
//! ## Trust base
//!
//! A [`CheckOutcome::Verified`] outcome means the reported verdict
//! follows from:
//!
//! - [`build_problem`]: the translation from subscripts and loop bounds
//!   to the equality system `A·x = b` and the bound rows (the checker
//!   rebuilds the problem itself rather than accepting the analyzer's);
//! - the shared data-type definitions;
//! - this crate's own checking code.
//!
//! ## What is checked, per certificate
//!
//! - [`Certificate::Witness`]: the point satisfies every equality and
//!   bound of the rebuilt problem, by substitution.
//! - [`Certificate::ConstantsEqual`] / [`ConstantsDiffer`]: the
//!   subscripts really are all constant and equal (resp. differ
//!   somewhere), recomputed from the accesses.
//! - [`Certificate::GcdRefutation`]: the rational multiplier `y =
//!   numer/denom` has `yᵀA` integral with `yᵀb` fractional, or `yᵀA = 0`
//!   with `yᵀb ≠ 0` — either way `A·x = b` has no integer solution.
//! - [`Certificate::Refuted`]: the recorded lattice is sound (`A·x₀ = b`
//!   and `A·B = 0`, so `x₀ + B·t` covers only solutions of the equality
//!   system) **and complete** — the kernel derives its own ℤ-basis of
//!   `ker(A)` by integer column reduction and requires every generator
//!   to be an integer combination of `B`'s columns, so `x₀ + B·t`
//!   covers *every* solution and a refutation over `t` cannot quietly
//!   skip real dependences hiding in a strict sub-lattice — and the
//!   derivation refutes the bound rows translated onto `t` by the
//!   checker itself.
//! - [`Certificate::DirectionsExhausted`]: additionally, every leaf of
//!   the direction trichotomy tree refutes its region, where the
//!   direction rows are recomputed from the lattice and each split's
//!   three branches cover all of ℤ by construction.
//!
//! Derivations are nonnegative combinations and integer-division
//! tightenings of premise rows, where a premise is accepted only if it is
//! *literally a member* of the checker's recomputed row pool — the
//! analyzer cannot smuggle in a constraint the program does not imply.
//!
//! [`ConstantsDiffer`]: Certificate::ConstantsDiffer

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::arithmetic_side_effects)]

use dda_core::certificate::{Certificate, DirTree, FmTree, RefProof, Rule, SystemRefutation};
use dda_core::problem::{build_problem, DependenceProblem, XVar};
use dda_core::result::Answer;
use dda_core::{PairReport, ProgramReport};
use dda_ir::{extract_accesses, reference_pairs, Access, Program};
use dda_linalg::Matrix;

/// The kernel's judgement on one pair's certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The certificate proves the reported verdict.
    Verified,
    /// There is no checkable evidence (a conservative claim, or evidence
    /// that did not transfer through the memo table): the verdict is not
    /// contradicted, but not independently established either. Callers
    /// running under `--check` resolve these by re-analysis.
    Unverified,
    /// The certificate is ill-formed or does not support the verdict.
    Rejected(String),
}

impl CheckOutcome {
    /// Whether this outcome is [`Verified`](CheckOutcome::Verified).
    #[must_use]
    pub fn is_verified(&self) -> bool {
        matches!(self, CheckOutcome::Verified)
    }
}

/// A `≤`-row over the free variables: `coeffs · t ≤ rhs`, in exact
/// kernel arithmetic.
type Row = (Vec<i128>, i128);

const OVERFLOW: &str = "arithmetic overflow while checking";

// ---------------------------------------------------------------------
// Kernel arithmetic. Deliberately re-implemented here: the checker must
// not share `dda_linalg::num` with the code it is auditing.
// ---------------------------------------------------------------------

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a.checked_rem(b).unwrap_or(0);
        a = b;
        b = r;
    }
    a
}

/// Floor division by a *positive* divisor. `None` when `d ≤ 0` or on
/// overflow.
fn div_floor128(a: i128, d: i128) -> Option<i128> {
    if d <= 0 {
        return None;
    }
    let q = a.checked_div(d)?;
    let r = a.checked_rem(d)?;
    if r < 0 {
        q.checked_sub(1)
    } else {
        Some(q)
    }
}

/// `coeffs · x` in `i128`. `None` on arity mismatch or overflow.
fn dot128(coeffs: &[i64], x: &[i64]) -> Option<i128> {
    if coeffs.len() != x.len() {
        return None;
    }
    let mut acc: i128 = 0;
    for (&c, &v) in coeffs.iter().zip(x) {
        acc = acc.checked_add(i128::from(c).checked_mul(i128::from(v))?)?;
    }
    Some(acc)
}

// ---------------------------------------------------------------------
// Derivation checking.
// ---------------------------------------------------------------------

fn combine(a: &Row, b: &Row, ca: i128, cb: i128) -> Option<Row> {
    if a.0.len() != b.0.len() {
        return None;
    }
    let coeffs: Option<Vec<i128>> =
        a.0.iter()
            .zip(&b.0)
            .map(|(&x, &y)| ca.checked_mul(x)?.checked_add(cb.checked_mul(y)?))
            .collect();
    let rhs = ca.checked_mul(a.1)?.checked_add(cb.checked_mul(b.1)?)?;
    Some((coeffs?, rhs))
}

fn divide(row: &Row, d: i128) -> Result<Row, String> {
    let mut coeffs = Vec::with_capacity(row.0.len());
    for &c in &row.0 {
        if c.checked_rem(d).ok_or(OVERFLOW)? != 0 {
            return Err("divisor does not divide every coefficient".into());
        }
        coeffs.push(c.checked_div(d).ok_or(OVERFLOW)?);
    }
    let rhs = div_floor128(row.1, d).ok_or(OVERFLOW)?;
    Ok((coeffs, rhs))
}

/// Evaluates a rule list into concrete rows. Premises must be members of
/// `pool`; `Comb`/`Div` steps may reference only earlier steps.
fn eval_rules(num_t: usize, pool: &[Row], rules: &[Rule]) -> Result<Vec<Row>, String> {
    let mut rows: Vec<Row> = Vec::with_capacity(rules.len());
    for (idx, rule) in rules.iter().enumerate() {
        let row = match rule {
            Rule::Premise { coeffs, rhs } => {
                if coeffs.len() != num_t {
                    return Err(format!(
                        "step {idx}: premise has {} coefficients, system has {num_t} variables",
                        coeffs.len()
                    ));
                }
                let row: Row = (
                    coeffs.iter().map(|&c| i128::from(c)).collect(),
                    i128::from(*rhs),
                );
                if !pool.contains(&row) {
                    return Err(format!(
                        "step {idx}: premise is not a row of the recomputed system"
                    ));
                }
                row
            }
            Rule::Comb { a, ca, b, cb } => {
                if *ca < 0 || *cb < 0 {
                    return Err(format!("step {idx}: negative combination multiplier"));
                }
                let (ra, rb) = match (a, b) {
                    _ if *a >= idx || *b >= idx => {
                        return Err(format!("step {idx}: reference to a non-earlier step"))
                    }
                    _ => (&rows[*a], &rows[*b]),
                };
                combine(ra, rb, i128::from(*ca), i128::from(*cb))
                    .ok_or_else(|| format!("step {idx}: {OVERFLOW}"))?
            }
            Rule::Div { of, d } => {
                if *d < 1 {
                    return Err(format!("step {idx}: non-positive divisor"));
                }
                if *of >= idx {
                    return Err(format!("step {idx}: reference to a non-earlier step"));
                }
                divide(&rows[*of], i128::from(*d)).map_err(|e| format!("step {idx}: {e}"))?
            }
        };
        rows.push(row);
    }
    Ok(rows)
}

fn check_seal(rows: &[Row], seal: usize) -> Result<(), String> {
    let row = rows
        .get(seal)
        .ok_or_else(|| format!("seal index {seal} is out of range"))?;
    if row.0.iter().all(|&c| c == 0) && row.1 < 0 {
        Ok(())
    } else {
        Err(format!(
            "seal step {seal} is not a contradiction (needs all-zero coefficients and negative rhs)"
        ))
    }
}

fn verify_fmtree(num_t: usize, pool: &[Row], tree: &FmTree) -> Result<(), String> {
    match tree {
        FmTree::Sealed(d) => {
            let rows = eval_rules(num_t, pool, &d.rules)?;
            check_seal(&rows, d.seal)
        }
        FmTree::Split {
            var,
            le,
            ge,
            left,
            right,
        } => {
            if *var >= num_t {
                return Err(format!("split variable t{var} is out of range"));
            }
            // Coverage: `t ≤ le ∨ t ≥ ge` exhausts ℤ only if ge ≤ le + 1.
            if i128::from(*ge) > i128::from(*le).checked_add(1).ok_or(OVERFLOW)? {
                return Err(format!(
                    "branch hypotheses t{var} ≤ {le} ∨ t{var} ≥ {ge} do not cover ℤ"
                ));
            }
            let mut unit = vec![0i128; num_t];
            unit[*var] = 1;
            let mut left_pool = pool.to_vec();
            left_pool.push((unit.clone(), i128::from(*le)));
            verify_fmtree(num_t, &left_pool, left)?;
            let mut neg_unit = vec![0i128; num_t];
            neg_unit[*var] = -1;
            let mut right_pool = pool.to_vec();
            right_pool.push((neg_unit, i128::from(*ge).checked_neg().ok_or(OVERFLOW)?));
            verify_fmtree(num_t, &right_pool, right)
        }
    }
}

fn verify_rows_refutation(
    num_t: usize,
    pool: &[Row],
    refutation: &SystemRefutation,
) -> Result<(), String> {
    let arena = eval_rules(num_t, pool, &refutation.arena)?;
    match &refutation.proof {
        RefProof::Arena { seal } => check_seal(&arena, *seal),
        // Fourier–Motzkin leaves draw premises from the evaluated arena
        // rows plus the branch hypotheses accumulated down their path.
        RefProof::Fm { tree } => verify_fmtree(num_t, &arena, tree),
    }
}

/// Verifies a [`SystemRefutation`] against an explicit row pool
/// `rows[i].0 · t ≤ rows[i].1` over `num_t` variables.
///
/// This is the raw entry point used by translation-validation tests; the
/// higher-level [`check_pair`] recomputes the pool from the problem.
///
/// # Errors
///
/// Returns a description of the first invalid step when the derivation
/// does not refute the row system.
pub fn verify_refutation(
    num_t: usize,
    rows: &[(Vec<i64>, i64)],
    refutation: &SystemRefutation,
) -> Result<(), String> {
    let pool: Vec<Row> = rows
        .iter()
        .map(|(c, r)| (c.iter().map(|&v| i128::from(v)).collect(), i128::from(*r)))
        .collect();
    verify_rows_refutation(num_t, &pool, refutation)
}

// ---------------------------------------------------------------------
// Problem-level checks.
// ---------------------------------------------------------------------

fn rebuild_problem(a: &Access, b: &Access, common: usize) -> Result<DependenceProblem, String> {
    // Symbolic support is always on here: analyzer configurations with
    // symbolics disabled answer conservatively for such pairs and never
    // emit a checkable certificate, so rebuilding in the more general
    // model is safe and keeps the kernel configuration-free.
    build_problem(a, b, common, true).map_err(|e| format!("problem construction failed: {e}"))
}

fn check_witness(problem: &DependenceProblem, x: &[i64]) -> Result<(), String> {
    if x.len() != problem.num_vars() {
        return Err(format!(
            "witness has {} coordinates, problem has {} variables",
            x.len(),
            problem.num_vars()
        ));
    }
    for (i, (row, &rhs)) in problem.eq_coeffs.iter().zip(&problem.eq_rhs).enumerate() {
        if dot128(row, x).ok_or(OVERFLOW)? != i128::from(rhs) {
            return Err(format!("witness violates subscript equation {i}"));
        }
    }
    for (i, c) in problem.bounds.iter().enumerate() {
        if dot128(&c.coeffs, x).ok_or(OVERFLOW)? > i128::from(c.rhs) {
            return Err(format!("witness violates bound row {i}"));
        }
    }
    Ok(())
}

fn constant_subscripts(access: &Access) -> Option<Vec<i64>> {
    access
        .subscripts
        .iter()
        .map(|s| {
            let e = s.as_affine()?;
            e.is_constant().then(|| e.constant_part())
        })
        .collect()
}

fn check_constants(a: &Access, b: &Access, want_equal: bool) -> Result<(), String> {
    let ca = constant_subscripts(a).ok_or("first reference's subscripts are not all constant")?;
    let cb = constant_subscripts(b).ok_or("second reference's subscripts are not all constant")?;
    if ca.len() != cb.len() {
        return Err("references differ in rank".into());
    }
    match (ca == cb, want_equal) {
        (true, true) | (false, false) => Ok(()),
        (true, false) => Err("constant subscripts are equal in every dimension".into()),
        (false, true) => Err("constant subscripts differ".into()),
    }
}

fn check_gcd_refutation(
    problem: &DependenceProblem,
    numer: &[i64],
    denom: i64,
) -> Result<(), String> {
    if denom < 1 {
        return Err("refutation denominator must be positive".into());
    }
    if numer.len() != problem.eq_coeffs.len() {
        return Err(format!(
            "multiplier has {} entries, system has {} equality rows",
            numer.len(),
            problem.eq_coeffs.len()
        ));
    }
    let nv = problem.num_vars();
    let mut col_sums = vec![0i128; nv];
    let mut rhs_sum: i128 = 0;
    for (&y, (row, &rhs)) in numer
        .iter()
        .zip(problem.eq_coeffs.iter().zip(&problem.eq_rhs))
    {
        if row.len() != nv {
            return Err("equality row arity mismatch".into());
        }
        let y = i128::from(y);
        for (sum, &a) in col_sums.iter_mut().zip(row) {
            *sum = sum
                .checked_add(y.checked_mul(i128::from(a)).ok_or(OVERFLOW)?)
                .ok_or(OVERFLOW)?;
        }
        rhs_sum = rhs_sum
            .checked_add(y.checked_mul(i128::from(rhs)).ok_or(OVERFLOW)?)
            .ok_or(OVERFLOW)?;
    }
    // `y = numer/denom` refutes `A·x = b` when yᵀA = 0 but yᵀb ≠ 0
    // (rational infeasibility), or yᵀA is integral while yᵀb is not
    // (every integer x gives an integer left side, never the right).
    if col_sums.iter().all(|&s| s == 0) && rhs_sum != 0 {
        return Ok(());
    }
    let d = i128::from(denom);
    let integral = col_sums
        .iter()
        .all(|&s| s.checked_rem(d).is_some_and(|r| r == 0));
    if integral && rhs_sum.checked_rem(d).ok_or(OVERFLOW)? != 0 {
        return Ok(());
    }
    Err("multiplier does not witness unsolvability of the equality system".into())
}

// ---------------------------------------------------------------------
// Kernel lattice algebra. The checker derives its own ℤ-basis of
// `ker(A)` — sharing no code with `dda_linalg::diophantine` — so a
// certificate's basis can be audited for *completeness*, not just
// soundness: a strict sub-lattice would let a refutation over `t` miss
// real solutions that lie in the kernel but not in the basis's span.
// ---------------------------------------------------------------------

/// Subtracts `q` times column `k` from column `j` (columns are vectors
/// in a slice; `j ≠ k`).
fn col_sub_mul(cols: &mut [Vec<i128>], j: usize, k: usize, q: i128) -> Result<(), String> {
    if q == 0 {
        return Ok(());
    }
    let ck = cols[k].clone();
    for (x, &v) in cols[j].iter_mut().zip(&ck) {
        *x = x
            .checked_sub(q.checked_mul(v).ok_or(OVERFLOW)?)
            .ok_or(OVERFLOW)?;
    }
    Ok(())
}

/// Reduces `cols` to column echelon form by unimodular column operations
/// (swap, and subtracting integer multiples of one column from another),
/// mirroring every operation on `mirror` when present. On return, column
/// `j < p` has its first nonzero entry at the `j`-th pivot row, pivot
/// rows strictly increase with `j`, and columns `≥ p` are zero; returns
/// the pivot count `p`.
fn column_echelon(
    cols: &mut [Vec<i128>],
    mut mirror: Option<&mut [Vec<i128>]>,
) -> Result<usize, String> {
    let ncols = cols.len();
    let nrows = cols.first().map_or(0, Vec::len);
    let mut p = 0;
    for r in 0..nrows {
        if p == ncols {
            break;
        }
        // Gcd-style elimination at row `r` over columns `p..`: repeatedly
        // reduce every entry modulo the smallest one (each pass strictly
        // shrinks the row's magnitude sum) until at most one survives.
        loop {
            let mut best: Option<usize> = None;
            for (j, col) in cols.iter().enumerate().skip(p) {
                if col[r] != 0
                    && best.is_none_or(|b: usize| col[r].unsigned_abs() < cols[b][r].unsigned_abs())
                {
                    best = Some(j);
                }
            }
            let Some(piv) = best else {
                break; // row has no pivot: every column ≥ p is zero here
            };
            let mut reduced_any = false;
            for j in p..ncols {
                if j == piv || cols[j][r] == 0 {
                    continue;
                }
                reduced_any = true;
                let q = cols[j][r].checked_div(cols[piv][r]).ok_or(OVERFLOW)?;
                col_sub_mul(cols, j, piv, q)?;
                if let Some(m) = mirror.as_deref_mut() {
                    col_sub_mul(m, j, piv, q)?;
                }
            }
            if !reduced_any {
                cols.swap(p, piv);
                if let Some(m) = mirror.as_deref_mut() {
                    m.swap(p, piv);
                }
                p = p.checked_add(1).ok_or(OVERFLOW)?;
                break;
            }
        }
    }
    Ok(p)
}

/// The checker's own ℤ-basis of `ker(A)` over `nv` variables: column
/// reduction of `A` under a unimodular transform `U`; since `x = U·y`
/// ranges over all of ℤⁿ, the `U`-columns paired with the zero columns
/// of the reduced `A` generate exactly the integer kernel lattice.
fn kernel_basis(eq: &[Vec<i64>], nv: usize) -> Result<Vec<Vec<i128>>, String> {
    let mut cols: Vec<Vec<i128>> = (0..nv)
        .map(|j| eq.iter().map(|row| i128::from(row[j])).collect())
        .collect();
    let mut u: Vec<Vec<i128>> = (0..nv)
        .map(|j| {
            let mut e = vec![0i128; nv];
            e[j] = 1;
            e
        })
        .collect();
    let pivots = column_echelon(&mut cols, Some(&mut u))?;
    Ok(u.split_off(pivots))
}

/// Whether `v` is an integer combination of `echelon`'s columns, which
/// must already be in column echelon form: peel one pivot at a time by
/// exact division, then demand a zero residual.
fn lattice_contains(echelon: &[Vec<i128>], v: &[i128]) -> Result<bool, String> {
    let mut rem: Vec<i128> = v.to_vec();
    let mut j = 0;
    for r in 0..rem.len() {
        if j < echelon.len() && echelon[j][r] != 0 {
            // Pivot row of column j: columns > j are still zero here, so
            // the combination's j-th coefficient is forced.
            if rem[r].checked_rem(echelon[j][r]).ok_or(OVERFLOW)? != 0 {
                return Ok(false);
            }
            let q = rem[r].checked_div(echelon[j][r]).ok_or(OVERFLOW)?;
            for (x, &h) in rem.iter_mut().zip(&echelon[j]) {
                *x = x
                    .checked_sub(q.checked_mul(h).ok_or(OVERFLOW)?)
                    .ok_or(OVERFLOW)?;
            }
            j = j.checked_add(1).ok_or(OVERFLOW)?;
        } else if rem[r] != 0 {
            return Ok(false); // no generator reaches this row
        }
    }
    Ok(rem.iter().all(|&x| x == 0))
}

/// Checks that `x = x₀ + B·t` produces *exactly* the solutions of the
/// equality system: soundness (`A·x₀ = b` and `A·B = 0`, so every `t`
/// maps into the solution set) and completeness (every generator of the
/// kernel's own ℤ-basis of `ker(A)` is an integer combination of `B`'s
/// columns, so no solution lies outside the parametrization).
fn check_lattice(problem: &DependenceProblem, x0: &[i64], basis: &Matrix) -> Result<(), String> {
    let nv = problem.num_vars();
    if x0.len() != nv || basis.rows() != nv {
        return Err("lattice dimensions do not match the problem".into());
    }
    for (r, (row, &rhs)) in problem.eq_coeffs.iter().zip(&problem.eq_rhs).enumerate() {
        if row.len() != nv {
            return Err("equality row arity mismatch".into());
        }
        if dot128(row, x0).ok_or(OVERFLOW)? != i128::from(rhs) {
            return Err(format!("particular solution violates equality row {r}"));
        }
        for j in 0..basis.cols() {
            let mut sum: i128 = 0;
            for (i, &a) in row.iter().enumerate() {
                sum = sum
                    .checked_add(
                        i128::from(a)
                            .checked_mul(i128::from(basis[(i, j)]))
                            .ok_or(OVERFLOW)?,
                    )
                    .ok_or(OVERFLOW)?;
            }
            if sum != 0 {
                return Err(format!(
                    "basis column {j} leaves the solution set of equality row {r}"
                ));
            }
        }
    }
    let mut bcols: Vec<Vec<i128>> = (0..basis.cols())
        .map(|j| (0..nv).map(|i| i128::from(basis[(i, j)])).collect())
        .collect();
    column_echelon(&mut bcols, None)?;
    for (k, gen) in kernel_basis(&problem.eq_coeffs, nv)?.iter().enumerate() {
        if !lattice_contains(&bcols, gen)? {
            return Err(format!(
                "basis spans a strict sub-lattice: kernel generator {k} is not an \
                 integer combination of its columns"
            ));
        }
    }
    Ok(())
}

/// Divides a row through by the gcd of its coefficients, flooring the
/// right-hand side — the same integer tightening the analyzer applies to
/// translated bounds, recomputed here so honest certificates' premises
/// match the pool literally.
fn normalize_row(mut row: Row) -> Result<Row, String> {
    let g = row
        .0
        .iter()
        .fold(0u128, |acc, &c| gcd_u128(acc, c.unsigned_abs()));
    if g > 1 {
        let g = i128::try_from(g).map_err(|_| OVERFLOW)?;
        for c in &mut row.0 {
            *c = c.checked_div(g).ok_or(OVERFLOW)?;
        }
        row.1 = div_floor128(row.1, g).ok_or(OVERFLOW)?;
    }
    Ok(row)
}

/// Rewrites the problem's bound rows onto the free variables:
/// `c·x ≤ r` becomes `(c·B)·t ≤ r − c·x₀`, then normalizes.
fn translate_bounds(
    problem: &DependenceProblem,
    x0: &[i64],
    basis: &Matrix,
) -> Result<Vec<Row>, String> {
    let nt = basis.cols();
    let mut out = Vec::with_capacity(problem.bounds.len());
    for c in &problem.bounds {
        if c.coeffs.len() != problem.num_vars() {
            return Err("bound row arity mismatch".into());
        }
        let mut t_coeffs = vec![0i128; nt];
        for (i, &ci) in c.coeffs.iter().enumerate() {
            if ci == 0 {
                continue;
            }
            for (j, tc) in t_coeffs.iter_mut().enumerate() {
                *tc = tc
                    .checked_add(
                        i128::from(ci)
                            .checked_mul(i128::from(basis[(i, j)]))
                            .ok_or(OVERFLOW)?,
                    )
                    .ok_or(OVERFLOW)?;
            }
        }
        let shift = dot128(&c.coeffs, x0).ok_or(OVERFLOW)?;
        let rhs = i128::from(c.rhs).checked_sub(shift).ok_or(OVERFLOW)?;
        out.push(normalize_row((t_coeffs, rhs))?);
    }
    Ok(out)
}

/// Walks a direction trichotomy tree, extending the row pool with the
/// recomputed direction rows of each branch (kept raw, exactly as the
/// analyzer pushes them).
fn verify_dirtree(
    problem: &DependenceProblem,
    x0: &[i64],
    basis: &Matrix,
    pool: &[Row],
    tree: &DirTree,
) -> Result<(), String> {
    match tree {
        DirTree::Refuted(refutation) => verify_rows_refutation(basis.cols(), pool, refutation),
        DirTree::Split { level, lt, eq, gt } => {
            if *level >= problem.num_common {
                return Err(format!("split level {level} exceeds the common nest depth"));
            }
            let ia = problem
                .var_index(&XVar::CommonA(*level))
                .ok_or_else(|| format!("level {level} has no first-reference index variable"))?;
            let ib = problem
                .var_index(&XVar::CommonB(*level))
                .ok_or_else(|| format!("level {level} has no second-reference index variable"))?;
            // `D(t) = i′ − i` over the lattice: coeffs B[ib]−B[ia],
            // constant x₀[ib]−x₀[ia].
            let mut d_coeffs = Vec::with_capacity(basis.cols());
            for j in 0..basis.cols() {
                d_coeffs.push(
                    i128::from(basis[(ib, j)])
                        .checked_sub(i128::from(basis[(ia, j)]))
                        .ok_or(OVERFLOW)?,
                );
            }
            let d_const = i128::from(x0[ib])
                .checked_sub(i128::from(x0[ia]))
                .ok_or(OVERFLOW)?;
            let neg: Vec<i128> = d_coeffs
                .iter()
                .map(|&c| c.checked_neg())
                .collect::<Option<_>>()
                .ok_or(OVERFLOW)?;
            let neg_const = d_const.checked_neg().ok_or(OVERFLOW)?;
            // `<`: D ≥ 1 ⇔ −D_coeffs·t ≤ D_const − 1.
            let mut branch = pool.to_vec();
            branch.push((neg.clone(), d_const.checked_sub(1).ok_or(OVERFLOW)?));
            verify_dirtree(problem, x0, basis, &branch, lt)?;
            // `=`: D = 0, as two inequalities.
            let mut branch = pool.to_vec();
            branch.push((d_coeffs.clone(), neg_const));
            branch.push((neg, d_const));
            verify_dirtree(problem, x0, basis, &branch, eq)?;
            // `>`: D ≤ −1.
            let mut branch = pool.to_vec();
            branch.push((d_coeffs, neg_const.checked_sub(1).ok_or(OVERFLOW)?));
            verify_dirtree(problem, x0, basis, &branch, gt)
        }
    }
}

// ---------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------

fn verify_claim(
    a: &Access,
    b: &Access,
    common: usize,
    answer: &Answer,
    cert: &Certificate,
) -> Result<(), String> {
    let claims_independent = matches!(
        cert,
        Certificate::ConstantsDiffer
            | Certificate::GcdRefutation { .. }
            | Certificate::Refuted { .. }
            | Certificate::DirectionsExhausted { .. }
    );
    match (claims_independent, answer) {
        (true, Answer::Independent) | (false, Answer::Dependent(_)) => {}
        (true, _) => return Err("certificate proves independence but verdict disagrees".into()),
        (false, _) => return Err("certificate proves dependence but verdict disagrees".into()),
    }
    match cert {
        Certificate::Conservative | Certificate::Unverified => {
            unreachable!("dispatched in check_pair")
        }
        Certificate::Witness { x } => check_witness(&rebuild_problem(a, b, common)?, x),
        Certificate::ConstantsEqual => check_constants(a, b, true),
        Certificate::ConstantsDiffer => check_constants(a, b, false),
        Certificate::GcdRefutation { numer, denom } => {
            check_gcd_refutation(&rebuild_problem(a, b, common)?, numer, *denom)
        }
        Certificate::Refuted {
            particular,
            basis,
            refutation,
        } => {
            let problem = rebuild_problem(a, b, common)?;
            check_lattice(&problem, particular, basis)?;
            let pool = translate_bounds(&problem, particular, basis)?;
            verify_rows_refutation(basis.cols(), &pool, refutation)
        }
        Certificate::DirectionsExhausted {
            particular,
            basis,
            tree,
        } => {
            let problem = rebuild_problem(a, b, common)?;
            check_lattice(&problem, particular, basis)?;
            let pool = translate_bounds(&problem, particular, basis)?;
            verify_dirtree(&problem, particular, basis, &pool, tree)
        }
    }
}

/// Checks one pair's certificate against the accesses it was computed
/// from. `common` is the number of loops enclosing both references.
///
/// Conservative claims of dependence are trivially sound and come back
/// [`Verified`](CheckOutcome::Verified); an *independence* verdict
/// without checkable evidence comes back
/// [`Unverified`](CheckOutcome::Unverified).
#[must_use]
pub fn check_pair(a: &Access, b: &Access, common: usize, report: &PairReport) -> CheckOutcome {
    match &report.certificate {
        Certificate::Conservative => {
            if report.result.is_independent() {
                CheckOutcome::Rejected(
                    "independence verdict carries a conservative certificate".into(),
                )
            } else {
                // Assuming dependence never enables an unsound
                // transformation; there is nothing to refute.
                CheckOutcome::Verified
            }
        }
        Certificate::Unverified => CheckOutcome::Unverified,
        cert => match verify_claim(a, b, common, &report.result.answer, cert) {
            Ok(()) => CheckOutcome::Verified,
            Err(e) => CheckOutcome::Rejected(e),
        },
    }
}

/// Checks every pair of a program's report, re-enumerating the reference
/// pairs from the program text. Returns one outcome per pair, in report
/// order.
///
/// # Errors
///
/// Fails when the report does not line up with the program's pair
/// enumeration (wrong count, or mismatched access ids / array names) —
/// a sign the report belongs to a different program.
pub fn check_program(
    program: &Program,
    include_input_deps: bool,
    report: &ProgramReport,
) -> Result<Vec<CheckOutcome>, String> {
    let set = extract_accesses(program);
    let pairs = reference_pairs(&set, include_input_deps);
    if pairs.len() != report.pairs().len() {
        return Err(format!(
            "report covers {} pairs but the program enumerates {}",
            report.pairs().len(),
            pairs.len()
        ));
    }
    pairs
        .iter()
        .zip(report.pairs())
        .enumerate()
        .map(|(i, (p, r))| {
            if r.a_access != p.a.id || r.b_access != p.b.id || r.array != p.a.array {
                return Err(format!("pair {i} does not match the program's enumeration"));
            }
            Ok(check_pair(p.a, p.b, p.common, r))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_core::{AnalyzerConfig, DependenceAnalyzer, MemoMode};
    use dda_ir::parse_program;

    fn analyze(src: &str) -> (Program, ProgramReport) {
        let program = parse_program(src).expect("parse");
        let mut analyzer = DependenceAnalyzer::with_config(AnalyzerConfig {
            memo: MemoMode::Off,
            ..AnalyzerConfig::default()
        });
        let report = analyzer.analyze_program(&program);
        (program, report)
    }

    fn outcomes(src: &str) -> Vec<(PairReport, CheckOutcome)> {
        let (program, report) = analyze(src);
        let checks = check_program(&program, false, &report).expect("enumeration matches");
        report.pairs().iter().cloned().zip(checks).collect()
    }

    #[track_caller]
    fn assert_all_verified(src: &str) {
        for (pair, outcome) in outcomes(src) {
            assert_eq!(
                outcome,
                CheckOutcome::Verified,
                "{src}: {}[{} vs {}] cert {:?}",
                pair.array,
                pair.a_access,
                pair.b_access,
                pair.certificate
            );
        }
    }

    #[test]
    fn dependent_pairs_verify_by_witness() {
        assert_all_verified("for i = 1 to 10 { a[i] = a[i] + 1; }");
        assert_all_verified("for i = 1 to 10 { a[i + 1] = a[i] + 1; }");
        assert_all_verified("for i = 1 to 4 { for j = 1 to 4 { a[i][j] = a[j][i] + 1; } }");
    }

    #[test]
    fn gcd_refutations_verify() {
        // 2i vs 2i′+1: parity refutation.
        assert_all_verified("for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }");
    }

    #[test]
    fn bound_refutations_verify() {
        // Equality solvable, bounds empty: SVPC/FM refutation territory.
        assert_all_verified("for i = 1 to 10 { a[i] = a[i + 20] + 1; }");
        assert_all_verified("for i = 1 to 10 { a[2 * i + 2] = a[2 * i] + 1; }");
    }

    #[test]
    fn constant_subscript_certificates_verify() {
        assert_all_verified("for i = 1 to 10 { a[3] = a[3] + 1; }");
        assert_all_verified("for i = 1 to 10 { a[3] = a[4] + 1; }");
    }

    #[test]
    fn larger_programs_fully_verify() {
        assert_all_verified(
            "for i = 1 to 20 { for j = 1 to 20 {
                a[i][j] = a[i - 1][j] + a[i][j - 1];
                b[2 * i] = b[2 * j + 1] + a[i][j];
                c[i + j] = c[i + j + 50];
            } }",
        );
    }

    fn first_pair(src: &str) -> (Program, PairReport) {
        let (program, report) = analyze(src);
        (program, report.pairs()[0].clone())
    }

    fn recheck(program: &Program, report: &PairReport) -> CheckOutcome {
        let set = extract_accesses(program);
        let pairs = reference_pairs(&set, false);
        let pair = pairs
            .iter()
            .find(|p| p.a.id == report.a_access && p.b.id == report.b_access)
            .expect("pair exists");
        check_pair(pair.a, pair.b, pair.common, report)
    }

    #[test]
    fn mutated_witness_coordinate_is_rejected() {
        let (program, mut report) = first_pair("for i = 1 to 10 { a[i + 1] = a[i] + 1; }");
        let Certificate::Witness { x } = &mut report.certificate else {
            panic!("expected a witness, got {:?}", report.certificate);
        };
        x[0] = x[0].wrapping_add(1);
        assert!(
            matches!(recheck(&program, &report), CheckOutcome::Rejected(_)),
            "corrupted witness must be rejected"
        );
    }

    #[test]
    fn mutated_refutation_row_is_rejected() {
        let (program, mut report) = first_pair("for i = 1 to 10 { a[i] = a[i + 20] + 1; }");
        let Certificate::Refuted { refutation, .. } = &mut report.certificate else {
            panic!("expected a refutation, got {:?}", report.certificate);
        };
        // Weaken one premise's rhs: no longer a member of the pool.
        let premise = refutation
            .arena
            .iter_mut()
            .find_map(|r| match r {
                Rule::Premise { rhs, .. } => Some(rhs),
                _ => None,
            })
            .expect("arena has a premise");
        *premise = premise.wrapping_add(1);
        assert!(
            matches!(recheck(&program, &report), CheckOutcome::Rejected(_)),
            "corrupted premise must be rejected"
        );
    }

    #[test]
    fn mutated_gcd_multiplier_is_rejected() {
        let (program, mut report) = first_pair("for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }");
        let Certificate::GcdRefutation { denom, .. } = &mut report.certificate else {
            panic!("expected a gcd refutation, got {:?}", report.certificate);
        };
        *denom = denom.wrapping_add(1);
        assert!(
            matches!(recheck(&program, &report), CheckOutcome::Rejected(_)),
            "corrupted multiplier must be rejected"
        );
    }

    #[test]
    fn forged_sublattice_refutation_is_rejected() {
        use dda_core::result::{Answer, DependenceResult, ResolvedBy, TestKind};
        // a[i] = a[i] + 1 is dependent: i = i′ has solutions throughout
        // the bounds. Forge an "independence" certificate whose lattice
        // x = x₀ + B·t is *sound* (A·x₀ = b and A·B = 0 for x₀ = 0,
        // B = [20, 20]ᵀ) but spans only the sub-lattice (20t, 20t) — and
        // the bounds 1 ≤ x ≤ 10 integrally refute that sub-lattice
        // (20t ≤ 10 ⇒ t ≤ 0, 1 ≤ 20t ⇒ t ≥ 1) even though the real
        // solutions (i, i) exist. A soundness-only kernel would verify
        // this; completeness must reject it.
        let (program, mut report) = first_pair("for i = 1 to 10 { a[i] = a[i] + 1; }");
        assert!(report.result.answer.is_dependent());
        report.result = DependenceResult {
            answer: Answer::Independent,
            resolved_by: ResolvedBy::Test(TestKind::FourierMotzkin),
        };
        report.witness = None;
        report.direction_vectors.clear();
        report.certificate = Certificate::Refuted {
            particular: vec![0, 0],
            basis: Matrix::from_rows(&[vec![20], vec![20]]),
            refutation: SystemRefutation {
                arena: vec![
                    Rule::Premise {
                        coeffs: vec![1],
                        rhs: 0,
                    },
                    Rule::Premise {
                        coeffs: vec![-1],
                        rhs: -1,
                    },
                    Rule::Comb {
                        a: 0,
                        ca: 1,
                        b: 1,
                        cb: 1,
                    },
                ],
                proof: RefProof::Arena { seal: 2 },
            },
        };
        match recheck(&program, &report) {
            CheckOutcome::Rejected(msg) => assert!(
                msg.contains("sub-lattice"),
                "must be rejected for incompleteness, got: {msg}"
            ),
            other => panic!("forged sub-lattice certificate must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn kernel_basis_and_membership() {
        // ker([1, -1]) is generated by (1, 1).
        let gens = kernel_basis(&[vec![1, -1]], 2).unwrap();
        assert_eq!(gens.len(), 1);
        assert!(gens[0] == vec![1, 1] || gens[0] == vec![-1, -1]);
        // No equations: the kernel is all of ℤⁿ.
        assert_eq!(kernel_basis(&[], 2).unwrap().len(), 2);
        // Membership peels pivots by exact division.
        let mut full = vec![vec![1i128, 1]];
        column_echelon(&mut full, None).unwrap();
        assert!(lattice_contains(&full, &[3, 3]).unwrap());
        assert!(!lattice_contains(&full, &[3, 2]).unwrap());
        let mut doubled = vec![vec![2i128, 2]];
        column_echelon(&mut doubled, None).unwrap();
        assert!(lattice_contains(&doubled, &[4, 4]).unwrap());
        assert!(!lattice_contains(&doubled, &[1, 1]).unwrap());
        // A mixed 2-D lattice: (2, 0) and (1, 1) generate exactly the
        // points with x + y even.
        let mut mixed = vec![vec![2i128, 0], vec![1, 1]];
        column_echelon(&mut mixed, None).unwrap();
        assert!(lattice_contains(&mixed, &[3, 1]).unwrap());
        assert!(lattice_contains(&mixed, &[0, 2]).unwrap());
        assert!(!lattice_contains(&mixed, &[1, 0]).unwrap());
    }

    #[test]
    fn verdict_certificate_mismatch_is_rejected() {
        let (program, mut report) = first_pair("for i = 1 to 10 { a[i] = a[i + 20] + 1; }");
        assert!(report.result.is_independent());
        report.certificate = Certificate::Witness { x: vec![1, 1] };
        assert!(matches!(
            recheck(&program, &report),
            CheckOutcome::Rejected(_)
        ));
    }

    #[test]
    fn unverified_certificates_stay_unverified() {
        let (program, mut report) = first_pair("for i = 1 to 10 { a[i] = a[i + 20] + 1; }");
        report.certificate = Certificate::Unverified;
        assert_eq!(recheck(&program, &report), CheckOutcome::Unverified);
    }

    #[test]
    fn raw_refutation_checker_accepts_and_rejects() {
        use dda_core::certificate::Derivation;
        // Pool: t ≤ −1 and −t ≤ 0 (i.e. t ≥ 0): contradictory.
        let rows = vec![(vec![1], -1), (vec![-1], 0)];
        let good = SystemRefutation {
            arena: vec![
                Rule::Premise {
                    coeffs: vec![1],
                    rhs: -1,
                },
                Rule::Premise {
                    coeffs: vec![-1],
                    rhs: 0,
                },
                Rule::Comb {
                    a: 0,
                    ca: 1,
                    b: 1,
                    cb: 1,
                },
            ],
            proof: RefProof::Arena { seal: 2 },
        };
        assert_eq!(verify_refutation(1, &rows, &good), Ok(()));
        // A premise not in the pool is rejected.
        let bad = SystemRefutation {
            arena: vec![Rule::Premise {
                coeffs: vec![0],
                rhs: -1,
            }],
            proof: RefProof::Arena { seal: 0 },
        };
        assert!(verify_refutation(1, &rows, &bad).is_err());
        // Division floors: 2t ≤ −1 ⇒ t ≤ −1, then t ≥ 0 seals.
        let rows2 = vec![(vec![2, 0], -1), (vec![-1, 0], 0)];
        let div = SystemRefutation {
            arena: vec![
                Rule::Premise {
                    coeffs: vec![2, 0],
                    rhs: -1,
                },
                Rule::Div { of: 0, d: 2 },
                Rule::Premise {
                    coeffs: vec![-1, 0],
                    rhs: 0,
                },
                Rule::Comb {
                    a: 1,
                    ca: 1,
                    b: 2,
                    cb: 1,
                },
            ],
            proof: RefProof::Arena { seal: 3 },
        };
        assert_eq!(verify_refutation(2, &rows2, &div), Ok(()));
        // Negative multipliers are rejected even if they would "seal".
        let neg = SystemRefutation {
            arena: vec![
                Rule::Premise {
                    coeffs: vec![1],
                    rhs: -1,
                },
                Rule::Comb {
                    a: 0,
                    ca: -1,
                    b: 0,
                    cb: 0,
                },
            ],
            proof: RefProof::Arena { seal: 1 },
        };
        assert!(verify_refutation(1, &rows, &neg).is_err());
        // Fm split: t ≤ 0 ∨ t ≥ 1 with 2t ≤ 1 and −2t ≤ −1 (t = 1/2).
        let rows3 = vec![(vec![2], 1), (vec![-2], -1)];
        let fm = SystemRefutation {
            arena: vec![
                Rule::Premise {
                    coeffs: vec![2],
                    rhs: 1,
                },
                Rule::Premise {
                    coeffs: vec![-2],
                    rhs: -1,
                },
            ],
            proof: RefProof::Fm {
                tree: FmTree::Split {
                    var: 0,
                    le: 0,
                    ge: 1,
                    // Left: t ≤ 0 with −2t ≤ −1: 2·hyp + arena row 1.
                    left: Box::new(FmTree::Sealed(Derivation {
                        rules: vec![
                            Rule::Premise {
                                coeffs: vec![1],
                                rhs: 0,
                            },
                            Rule::Premise {
                                coeffs: vec![-2],
                                rhs: -1,
                            },
                            Rule::Comb {
                                a: 0,
                                ca: 2,
                                b: 1,
                                cb: 1,
                            },
                        ],
                        seal: 2,
                    })),
                    // Right: t ≥ 1 (−t ≤ −1) with 2t ≤ 1.
                    right: Box::new(FmTree::Sealed(Derivation {
                        rules: vec![
                            Rule::Premise {
                                coeffs: vec![-1],
                                rhs: -1,
                            },
                            Rule::Premise {
                                coeffs: vec![2],
                                rhs: 1,
                            },
                            Rule::Comb {
                                a: 0,
                                ca: 2,
                                b: 1,
                                cb: 1,
                            },
                        ],
                        seal: 2,
                    })),
                },
            },
        };
        assert_eq!(verify_refutation(1, &rows3, &fm), Ok(()));
    }

    #[test]
    fn direction_exhaustion_certificates_verify() {
        // A pair whose base query is inconclusive but whose direction
        // refinement refutes every branch would carry DirectionsExhausted;
        // independent pairs that resolve earlier carry Refuted. Either
        // way the whole corpus must verify.
        assert_all_verified(
            "for i = 1 to 10 { for j = 1 to 10 { a[2 * i][2 * j] = a[2 * j + 1][i] + 1; } }",
        );
    }
}
