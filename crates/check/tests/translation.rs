//! Translation validation over generated corpora: for every verdict the
//! analyzer produces on a random program, the independent kernel must
//! accept the attached certificate.
//!
//! With memoization off every certificate is fresh, so the bar is strict:
//! every single outcome verifies. With memoization on, rehydrated hits may
//! legitimately degrade to `Unverified` (the cached problem is not this
//! problem), but the kernel must never *reject* — a rejection means the
//! analyzer attached evidence contradicting its own verdict.

use dda_check::{check_program, CheckOutcome};
use dda_core::{AnalyzerConfig, DependenceAnalyzer, MemoMode};
use dda_ir::{parse_program, passes, Program};
use proptest::prelude::*;

/// A subscript over up to `depth` loop variables: usually affine, but
/// sometimes symbolic (`n`) and sometimes non-affine (`b[v0 + 1]`), so
/// every classification path gets exercised.
fn arb_subscript(depth: usize, allow_symbolic: bool) -> impl Strategy<Value = String> {
    let coeffs = proptest::collection::vec(-2i64..=2, depth);
    (coeffs, -6i64..=6, 0u8..=11).prop_map(move |(coeffs, c, kind)| {
        if kind == 0 {
            return "b[v0 + 1]".to_owned();
        }
        let mut s = String::new();
        for (k, a) in coeffs.iter().enumerate() {
            if *a != 0 {
                if !s.is_empty() {
                    s.push_str(" + ");
                }
                s.push_str(&format!("{a} * v{k}"));
            }
        }
        if kind == 1 && allow_symbolic {
            if !s.is_empty() {
                s.push_str(" + ");
            }
            s.push('n');
        }
        if s.is_empty() {
            format!("{c}")
        } else {
            format!("{s} + {c}")
        }
    })
}

/// One random program: a nest of 1–3 loops (possibly triangular) around
/// 1–2 statements of 1–2-D references to a shared array.
fn arb_program() -> impl Strategy<Value = String> {
    (1usize..=3)
        .prop_flat_map(|depth| {
            let allow_symbolic = depth <= 2;
            let bounds = proptest::collection::vec((0i64..=2, 2i64..=5, prop::bool::ANY), depth);
            let dims = 1usize..=2;
            let stmts = proptest::collection::vec(
                (
                    proptest::collection::vec(arb_subscript(depth, allow_symbolic), 2),
                    proptest::collection::vec(arb_subscript(depth, allow_symbolic), 2),
                ),
                1..=2,
            );
            (Just(depth), bounds, dims, stmts)
        })
        .prop_map(|(depth, bounds, dims, stmts)| {
            let mut src = String::new();
            for (k, (lo, hi, triangular)) in bounds.iter().enumerate() {
                let lower = if *triangular && k > 0 {
                    format!("v{}", k - 1)
                } else {
                    lo.to_string()
                };
                src.push_str(&format!("for v{k} = {lower} to {hi} {{ "));
            }
            for (wsubs, rsubs) in &stmts {
                let w: Vec<String> = wsubs.iter().take(dims).map(|s| format!("[{s}]")).collect();
                let r: Vec<String> = rsubs.iter().take(dims).map(|s| format!("[{s}]")).collect();
                src.push_str(&format!("a{} = a{} + 1; ", w.concat(), r.concat()));
            }
            for _ in 0..depth {
                src.push_str("} ");
            }
            if src.contains('n') {
                format!("read(n); {src}")
            } else {
                src
            }
        })
}

fn parsed(src: &str) -> Program {
    let mut p = parse_program(src).expect("generated programs parse");
    passes::normalize(&mut p);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Memo off: every certificate is fresh and every outcome verifies.
    #[test]
    fn fresh_certificates_always_verify(src in arb_program()) {
        let program = parsed(&src);
        let mut analyzer = DependenceAnalyzer::with_config(AnalyzerConfig {
            memo: MemoMode::Off,
            ..AnalyzerConfig::default()
        });
        let report = analyzer.analyze_program(&program);
        let outcomes = check_program(&program, false, &report).expect("pair lists line up");
        for (i, o) in outcomes.iter().enumerate() {
            prop_assert!(
                o.is_verified(),
                "pair {i} of {src:?} did not verify: {o:?}\n{:?}",
                report.pairs()[i]
            );
        }
    }

    /// Memo on (both schemes, analyzing twice so the second run replays
    /// from cache): rehydrated certificates may degrade to Unverified but
    /// are never rejected.
    #[test]
    fn memoized_certificates_never_reject(src in arb_program()) {
        let program = parsed(&src);
        for memo in [MemoMode::Simple, MemoMode::Improved] {
            let mut analyzer = DependenceAnalyzer::with_config(AnalyzerConfig {
                memo,
                memo_symmetry: true,
                ..AnalyzerConfig::default()
            });
            for round in 0..2 {
                let report = analyzer.analyze_program(&program);
                let outcomes =
                    check_program(&program, false, &report).expect("pair lists line up");
                for (i, o) in outcomes.iter().enumerate() {
                    prop_assert!(
                        !matches!(o, CheckOutcome::Rejected(_)),
                        "memo {memo:?} round {round} pair {i} of {src:?} rejected: {o:?}"
                    );
                }
            }
        }
    }
}
