//! The Acyclic test (Section 3.3).
//!
//! When a variable appears in multi-variable constraints with only one
//! sign, it is constrained in only one direction: pinning it to its scalar
//! bound on the blocked side (or discarding the constraints entirely when
//! it has no bound there) preserves satisfiability exactly. Repeating this
//! elimination corresponds to peeling leaves off the paper's signed
//! constraint graph; it decides the system completely exactly when that
//! graph is acyclic.
//!
//! Even when a cycle remains, every variable outside the cycle is
//! eliminated, shrinking the system handed to the Loop Residue and
//! Fourier–Motzkin tests — the paper calls this out explicitly.
//!
//! The implementation uses the substitution formulation the paper
//! recommends ("simply search for variables which are only constrained in
//! one direction and then set them"), and keeps an elimination [`Trace`]
//! so an exact witness can be reconstructed afterwards.

#![warn(clippy::arithmetic_side_effects)]

use dda_linalg::num;

use crate::certificate::{Rule, Trail};
use crate::svpc::first_empty_var;
use crate::system::{Constraint, VarBounds};

/// One elimination step, remembered for witness reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// Variable pinned to a concrete value (its scalar bound on the
    /// blocked side).
    Fixed { var: usize, value: i64 },
    /// Variable only upper-bounded by multi-variable constraints and with
    /// no scalar lower bound: the constraints were discarded; the witness
    /// takes the minimum of their implied upper bounds (and the scalar
    /// upper bound, if any).
    DeferredLow {
        var: usize,
        constraints: Vec<Constraint>,
        ub: Option<i64>,
    },
    /// Mirror image of [`Event::DeferredLow`].
    DeferredHigh {
        var: usize,
        constraints: Vec<Constraint>,
        lb: Option<i64>,
    },
}

/// The elimination history of an Acyclic run.
///
/// After a later test produces values for the variables the Acyclic test
/// left active, [`Trace::complete`] overwrites the eliminated variables
/// with values that provably satisfy every discarded constraint.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Which variables the trace eliminates.
    #[must_use]
    pub fn eliminated_vars(&self) -> Vec<usize> {
        self.events
            .iter()
            .map(|e| match e {
                Event::Fixed { var, .. }
                | Event::DeferredLow { var, .. }
                | Event::DeferredHigh { var, .. } => *var,
            })
            .collect()
    }

    /// Appends the events of `later`, a trace recorded *after* this one
    /// on the already-simplified system. [`Trace::complete`] walks events
    /// in reverse, so the later eliminations are (correctly) undone first.
    pub fn extend(&mut self, later: Trace) {
        self.events.extend(later.events);
    }

    /// Whether the trace records no eliminations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Overwrites the eliminated variables of `sample` (in reverse
    /// elimination order) with witness values.
    ///
    /// Returns `None` on arithmetic overflow.
    #[must_use]
    // i128-widened arithmetic over i64 inputs with a handful of terms:
    // the accumulator cannot reach the i128 boundary.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn complete(&self, sample: &mut [i64]) -> Option<()> {
        for e in self.events.iter().rev() {
            match e {
                Event::Fixed { var, value } => sample[*var] = *value,
                Event::DeferredLow {
                    var,
                    constraints,
                    ub,
                } => {
                    let mut best = ub.map(i128::from);
                    for c in constraints {
                        let a = c.coeffs[*var];
                        debug_assert!(a > 0);
                        let mut rest = i128::from(c.rhs);
                        for (j, &aj) in c.coeffs.iter().enumerate() {
                            if j != *var && aj != 0 {
                                rest -= i128::from(aj) * i128::from(sample[j]);
                            }
                        }
                        let bound = rest.div_euclid(i128::from(a));
                        best = Some(best.map_or(bound, |b| b.min(bound)));
                    }
                    sample[*var] = i64::try_from(best?).ok()?;
                }
                Event::DeferredHigh {
                    var,
                    constraints,
                    lb,
                } => {
                    let mut best = lb.map(i128::from);
                    for c in constraints {
                        let a = c.coeffs[*var];
                        debug_assert!(a < 0);
                        let mut rest = i128::from(c.rhs);
                        for (j, &aj) in c.coeffs.iter().enumerate() {
                            if j != *var && aj != 0 {
                                rest -= i128::from(aj) * i128::from(sample[j]);
                            }
                        }
                        // a·t ≤ rest with a < 0  ⇒  t ≥ ⌈rest/a⌉.
                        let bound = -rest.div_euclid(i128::from(-a));
                        best = Some(best.map_or(bound, |b| b.max(bound)));
                    }
                    sample[*var] = i64::try_from(best?).ok()?;
                }
            }
        }
        Some(())
    }
}

/// Outcome of the Acyclic test.
// Boxing the `Stuck` payload would put a heap allocation back on the hot
// path that the inline-storage refactor removed; the enum lives briefly on
// the stack inside the cascade, so the size skew is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcyclicOutcome {
    /// A contradiction surfaced during elimination: independent (exact).
    Infeasible,
    /// Every variable was eliminated or free: dependent (exact), with a
    /// full witness.
    Complete {
        /// A satisfying assignment of all variables.
        sample: Vec<i64>,
    },
    /// A cycle remains. `bounds`/`residual` describe the simplified
    /// system over the still-active variables; `trace` reconstructs the
    /// eliminated ones once the active ones are known.
    Stuck {
        /// Tightened scalar bounds.
        bounds: VarBounds,
        /// Remaining multi-variable constraints.
        residual: Vec<Constraint>,
        /// Elimination history.
        trace: Trace,
    },
}

/// Signs with which a variable occurs in the residual constraints.
fn occurrence_signs(residual: &[Constraint], v: usize) -> (bool, bool) {
    let mut pos = false;
    let mut neg = false;
    for c in residual {
        match c.coeffs[v].cmp(&0) {
            std::cmp::Ordering::Greater => pos = true,
            std::cmp::Ordering::Less => neg = true,
            std::cmp::Ordering::Equal => {}
        }
    }
    (pos, neg)
}

/// Folds trivial and single-variable constraints of `residual` into
/// `bounds`; returns `false` on contradiction.
///
/// `trail.row_step` mirrors `residual` (including `swap_remove`s), and
/// each contradiction seals the trail: a violated trivial row directly,
/// an empty scalar range via the sum of its two bound rows.
// The only unchecked op is a usize scan index bounded by `residual.len()`.
#[allow(clippy::arithmetic_side_effects)]
fn absorb_simple(
    bounds: &mut VarBounds,
    residual: &mut Vec<Constraint>,
    trail: &mut Trail,
) -> bool {
    let mut i = 0;
    while i < residual.len() {
        let c = &mut residual[i];
        let g = num::gcd_slice(&c.coeffs);
        c.normalize();
        if g > 1 {
            trail.row_step[i] = trail.push(Rule::Div {
                of: trail.row_step[i],
                d: g,
            });
        }
        if c.is_trivial() {
            if !c.trivially_satisfied() {
                trail.seal = Some(trail.row_step[i]);
                return false;
            }
            residual.swap_remove(i);
            trail.row_step.swap_remove(i);
            continue;
        }
        if let Some(v) = c.single_var() {
            // Normalized single-variable rows have coefficient ±1, so the
            // row itself is the bound row `v ≤ q` / `−v ≤ −q`.
            let a = c.coeffs[v];
            let step = trail.row_step[i];
            let absorbed = if a > 0 {
                num::checked_div_floor(c.rhs, a).map(|q| {
                    let old = bounds.ub[v];
                    bounds.tighten_ub(v, q);
                    if bounds.ub[v] != old {
                        trail.ub_step[v] = Some(step);
                    }
                })
            } else {
                num::checked_div_ceil(c.rhs, a).map(|q| {
                    let old = bounds.lb[v];
                    bounds.tighten_lb(v, q);
                    if bounds.lb[v] != old {
                        trail.lb_step[v] = Some(step);
                    }
                })
            };
            // On quotient overflow the constraint stays in the residual;
            // elimination or a later test handles it exactly.
            if absorbed.is_some() {
                residual.swap_remove(i);
                trail.row_step.swap_remove(i);
                continue;
            }
        }
        i += 1;
    }
    if let Some(v) = first_empty_var(bounds) {
        match (trail.ub_step[v], trail.lb_step[v]) {
            // `v ≤ u` plus `−v ≤ −l` sums to `0 ≤ u − l < 0`.
            (Some(ub), Some(lb)) => {
                trail.seal = Some(trail.push(Rule::Comb {
                    a: ub,
                    ca: 1,
                    b: lb,
                    cb: 1,
                }));
            }
            _ => trail.ok = false,
        }
        return false;
    }
    true
}

/// Runs the Acyclic test.
///
/// `bounds` and `residual` come from the SVPC pass ([`crate::svpc::svpc`]).
///
/// # Examples
///
/// The paper's Section 3.3 example: `t1 + t2 − t3 ≤ 0`, `−t1 − t2 + t3 ≤ 0`
/// (an equality in disguise would cycle, so take the acyclic variant):
/// `t2` is only lower-bounded scalar-wise and only upper-bounds others, so
/// elimination succeeds.
///
/// ```
/// use dda_core::system::{Constraint, VarBounds};
/// use dda_core::acyclic::{acyclic, AcyclicOutcome};
///
/// // t1 - t2 ≤ 0 and t2 - t3 ≤ -1, with 1 ≤ t1 ≤ 10, 0 ≤ t3 ≤ 4.
/// let mut bounds = VarBounds::unbounded(3);
/// bounds.tighten_lb(0, 1);
/// bounds.tighten_ub(0, 10);
/// bounds.tighten_lb(2, 0);
/// bounds.tighten_ub(2, 4);
/// let residual = vec![
///     Constraint::new(vec![1, -1, 0], 0),
///     Constraint::new(vec![0, 1, -1], -1),
/// ];
/// let AcyclicOutcome::Complete { sample } = acyclic(&bounds, &residual) else {
///     panic!("expected complete");
/// };
/// assert!(sample[0] <= sample[1] && sample[1] <= sample[2] - 1);
/// ```
#[must_use]
pub fn acyclic(bounds: &VarBounds, residual: &[Constraint]) -> AcyclicOutcome {
    let mut trail = Trail::for_rows(bounds.len(), residual);
    acyclic_into(bounds, residual, &mut trail)
}

/// The trail-threaded form of [`acyclic`]: `trail.row_step` must mirror
/// `residual` on entry (and the bound steps any bounds already absorbed);
/// on `Infeasible` the trail is sealed when accountable.
pub(crate) fn acyclic_into(
    bounds: &VarBounds,
    residual: &[Constraint],
    trail: &mut Trail,
) -> AcyclicOutcome {
    let n = bounds.len();
    let mut bounds = bounds.clone();
    let mut residual = residual.to_vec();
    let mut trace = Trace::default();
    let mut eliminated = vec![false; n];

    loop {
        if !absorb_simple(&mut bounds, &mut residual, trail) {
            return AcyclicOutcome::Infeasible;
        }
        if residual.is_empty() {
            // All multi-variable constraints resolved: assign remaining
            // variables inside their (consistent) scalar ranges and let
            // the trace rebuild the eliminated ones.
            let mut sample: Vec<i64> = (0..n)
                .map(|v| if eliminated[v] { 0 } else { bounds.pick(v) })
                .collect();
            match trace.complete(&mut sample) {
                Some(()) => return AcyclicOutcome::Complete { sample },
                None => {
                    return AcyclicOutcome::Stuck {
                        bounds,
                        residual,
                        trace,
                    }
                }
            }
        }

        // Find a variable constrained in only one direction.
        let mut progressed = false;
        #[allow(clippy::needless_range_loop)] // v indexes bounds and eliminated
        for v in 0..n {
            if eliminated[v] {
                continue;
            }
            let (pos, neg) = occurrence_signs(&residual, v);
            if pos == neg {
                continue; // absent (false, false) or cyclic (true, true)
            }
            eliminated[v] = true;
            progressed = true;
            if pos {
                // Only upper-bounded by the residual: push v down.
                match bounds.lb[v] {
                    Some(l) => {
                        let affected: Vec<(usize, i64)> = residual
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| c.coeffs[v] != 0)
                            .map(|(i, c)| (i, c.coeffs[v]))
                            .collect();
                        if !substitute(&mut residual, v, l) {
                            trail.ok = false;
                            return AcyclicOutcome::Stuck {
                                bounds,
                                residual,
                                trace,
                            };
                        }
                        // Each substituted row is row + a·(−v ≤ −l): the v
                        // term cancels and the rhs becomes c − a·l.
                        for (i, a) in affected {
                            match trail.lb_step[v] {
                                Some(lb) => {
                                    trail.row_step[i] = trail.push(Rule::Comb {
                                        a: trail.row_step[i],
                                        ca: 1,
                                        b: lb,
                                        cb: a,
                                    });
                                }
                                None => trail.ok = false,
                            }
                        }
                        trace.events.push(Event::Fixed { var: v, value: l });
                    }
                    None => {
                        let (with_v, rest): (Vec<Constraint>, Vec<Constraint>) =
                            residual.iter().cloned().partition(|c| c.coeffs[v] != 0);
                        // Dropping rows only weakens the system; drop the
                        // corresponding steps with them.
                        trail.row_step = residual
                            .iter()
                            .zip(&trail.row_step)
                            .filter(|(c, _)| c.coeffs[v] == 0)
                            .map(|(_, &s)| s)
                            .collect();
                        residual = rest;
                        trace.events.push(Event::DeferredLow {
                            var: v,
                            constraints: with_v,
                            ub: bounds.ub[v],
                        });
                    }
                }
            } else {
                // Only lower-bounded by the residual: push v up.
                match bounds.ub[v] {
                    Some(u) => {
                        let affected: Vec<(usize, i64)> = residual
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| c.coeffs[v] != 0)
                            .map(|(i, c)| (i, c.coeffs[v]))
                            .collect();
                        if !substitute(&mut residual, v, u) {
                            trail.ok = false;
                            return AcyclicOutcome::Stuck {
                                bounds,
                                residual,
                                trace,
                            };
                        }
                        // Here a < 0: row + (−a)·(v ≤ u) cancels the v term
                        // and the rhs becomes c − a·u.
                        for (i, a) in affected {
                            match (trail.ub_step[v], a.checked_neg()) {
                                (Some(ub), Some(na)) => {
                                    trail.row_step[i] = trail.push(Rule::Comb {
                                        a: trail.row_step[i],
                                        ca: 1,
                                        b: ub,
                                        cb: na,
                                    });
                                }
                                _ => trail.ok = false,
                            }
                        }
                        trace.events.push(Event::Fixed { var: v, value: u });
                    }
                    None => {
                        let (with_v, rest): (Vec<Constraint>, Vec<Constraint>) =
                            residual.iter().cloned().partition(|c| c.coeffs[v] != 0);
                        trail.row_step = residual
                            .iter()
                            .zip(&trail.row_step)
                            .filter(|(c, _)| c.coeffs[v] == 0)
                            .map(|(_, &s)| s)
                            .collect();
                        residual = rest;
                        trace.events.push(Event::DeferredHigh {
                            var: v,
                            constraints: with_v,
                            lb: bounds.lb[v],
                        });
                    }
                }
            }
            break;
        }
        if !progressed {
            return AcyclicOutcome::Stuck {
                bounds,
                residual,
                trace,
            };
        }
    }
}

/// Substitutes `t_v = value` into every constraint; returns `false` on
/// overflow (caller falls back to "stuck").
fn substitute(residual: &mut [Constraint], v: usize, value: i64) -> bool {
    for c in residual.iter_mut() {
        let a = c.coeffs[v];
        if a == 0 {
            continue;
        }
        let Some(delta) = a.checked_mul(value) else {
            return false;
        };
        let Some(rhs) = c.rhs.checked_sub(delta) else {
            return false;
        };
        c.rhs = rhs;
        c.coeffs[v] = 0;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svpc::{svpc, SvpcOutcome};
    use crate::system::System;

    fn run(rows: &[(&[i64], i64)]) -> AcyclicOutcome {
        let n = rows.first().map_or(0, |(c, _)| c.len());
        let mut s = System::new(n);
        for (coeffs, rhs) in rows {
            s.push(Constraint::new(coeffs.to_vec(), *rhs));
        }
        match svpc(&s) {
            SvpcOutcome::Infeasible => AcyclicOutcome::Infeasible,
            SvpcOutcome::Complete { sample } => AcyclicOutcome::Complete { sample },
            SvpcOutcome::Partial { bounds, residual } => acyclic(&bounds, &residual),
        }
    }

    fn assert_sample_satisfies(rows: &[(&[i64], i64)], outcome: &AcyclicOutcome) {
        let AcyclicOutcome::Complete { sample } = outcome else {
            panic!("expected complete, got {outcome:?}");
        };
        let n = rows.first().map_or(0, |(c, _)| c.len());
        let mut s = System::new(n);
        for (coeffs, rhs) in rows {
            s.push(Constraint::new(coeffs.to_vec(), *rhs));
        }
        assert!(
            s.is_satisfied_by(sample).unwrap(),
            "witness {sample:?} violates system"
        );
    }

    #[test]
    fn paper_section_3_3_example() {
        // The paper's worked example eliminates t2 at its lower bound 1,
        // then t1 at its lower bound, leaving 0 ≤ t3 ≤ 4: dependent.
        // System (a rendering of the example's shape):
        //   t1 + t2 - t3 ≤ 0, 1 ≤ t1 ≤ 10, 1 ≤ t2, 0 ≤ t3 ≤ 4? — the text
        // elides exact constants, so we check behaviour, not literals.
        let rows: &[(&[i64], i64)] = &[
            (&[1, 1, -1], 0),
            (&[-1, 0, 0], -1),
            (&[1, 0, 0], 10),
            (&[0, -1, 0], -1),
            (&[0, 0, 1], 4),
            (&[0, 0, -1], 0),
        ];
        let out = run(rows);
        assert_sample_satisfies(rows, &out);
    }

    #[test]
    fn infeasible_after_substitution() {
        // t1 + t2 ≤ 0 with t1 ≥ 5, t2 ≥ 5: setting both to their lower
        // bounds exposes 10 ≤ 0.
        let rows: &[(&[i64], i64)] = &[(&[1, 1], 0), (&[-1, 0], -5), (&[0, -1], -5)];
        assert_eq!(run(rows), AcyclicOutcome::Infeasible);
    }

    #[test]
    fn deferred_low_variable_without_lower_bound() {
        // t0 only upper-bounded (t0 ≤ t1) and no scalar lb: discard, then
        // t1 free in [1, 3].
        let rows: &[(&[i64], i64)] = &[(&[1, -1], 0), (&[0, -1], -1), (&[0, 1], 3)];
        let out = run(rows);
        assert_sample_satisfies(rows, &out);
    }

    #[test]
    fn deferred_high_variable_without_upper_bound() {
        // t0 ≥ t1 + 2 with t1 ∈ [0, 5]: t0 deferred high.
        let rows: &[(&[i64], i64)] = &[(&[-1, 1], -2), (&[0, -1], 0), (&[0, 1], 5)];
        let out = run(rows);
        assert_sample_satisfies(rows, &out);
    }

    #[test]
    fn equality_cycle_gets_stuck() {
        // t0 = t1 written as two inequalities: both vars occur with both
        // signs — exactly the cycle the paper says needs GCD preprocessing
        // or the Loop Residue test.
        let rows: &[(&[i64], i64)] = &[(&[1, -1], 0), (&[-1, 1], 0)];
        let out = run(rows);
        assert!(matches!(out, AcyclicOutcome::Stuck { .. }), "{out:?}");
    }

    #[test]
    fn stuck_still_simplifies_outside_cycle() {
        // A cycle between t0, t1 plus a chained t2 that can be eliminated:
        // t2 ≤ t0 (one direction only).
        let rows: &[(&[i64], i64)] = &[(&[1, -1, 0], 0), (&[-1, 1, 0], 0), (&[-1, 0, 1], 0)];
        let AcyclicOutcome::Stuck {
            residual, trace, ..
        } = run(rows)
        else {
            panic!("expected stuck");
        };
        assert_eq!(residual.len(), 2, "cycle constraints remain");
        assert_eq!(trace.eliminated_vars(), vec![2]);
    }

    #[test]
    fn chain_of_three_resolves() {
        // t0 ≤ t1 ≤ t2 with 1 ≤ t0, t2 ≤ 10.
        let rows: &[(&[i64], i64)] = &[
            (&[1, -1, 0], 0),
            (&[0, 1, -1], 0),
            (&[-1, 0, 0], -1),
            (&[0, 0, 1], 10),
        ];
        let out = run(rows);
        assert_sample_satisfies(rows, &out);
    }

    #[test]
    fn chain_of_three_infeasible() {
        // 11 ≤ t0 ≤ t1 ≤ t2 ≤ 10.
        let rows: &[(&[i64], i64)] = &[
            (&[1, -1, 0], 0),
            (&[0, 1, -1], 0),
            (&[-1, 0, 0], -11),
            (&[0, 0, 1], 10),
        ];
        assert_eq!(run(rows), AcyclicOutcome::Infeasible);
    }

    #[test]
    fn scaled_coefficients() {
        // 2t0 + 3t1 ≤ 12, t0 ≥ 1, t1 ≥ 2: fix t0=1, t1=2: 8 ≤ 12 ok.
        let rows: &[(&[i64], i64)] = &[(&[2, 3], 12), (&[-1, 0], -1), (&[0, -1], -2)];
        let out = run(rows);
        assert_sample_satisfies(rows, &out);
        // Tighten: t1 ≥ 4 makes 2+12 > 12: infeasible.
        let rows2: &[(&[i64], i64)] = &[(&[2, 3], 12), (&[-1, 0], -1), (&[0, -1], -4)];
        assert_eq!(run(rows2), AcyclicOutcome::Infeasible);
    }

    #[test]
    fn trace_completion_respects_discarded_constraints() {
        // t0 ≤ t1 and t0 ≤ -t1 + 3 (t0 positive in both), no lb on t0.
        // t1 bounded [2, 2]. After deferring t0 and fixing t1 = 2, the
        // witness must satisfy t0 ≤ 2 and t0 ≤ 1 → t0 = 1.
        let rows: &[(&[i64], i64)] = &[(&[1, -1], 0), (&[1, 1], 3), (&[0, -1], -2), (&[0, 1], 2)];
        let out = run(rows);
        let AcyclicOutcome::Complete { sample } = &out else {
            panic!("expected complete: {out:?}");
        };
        assert_eq!(sample[1], 2);
        assert_eq!(sample[0], 1);
    }
}
