//! The whole-program dependence analyzer.
//!
//! Ties every piece together the way the paper's SUIF implementation does:
//! enumerate reference pairs, short-circuit constant subscripts, memoize,
//! run extended-GCD preprocessing, cascade the exact tests, refine
//! direction vectors with pruning, and keep the statistics behind
//! Tables 1–5 and 7.

use std::collections::BTreeSet;

use dda_ir::{extract_accesses, reference_pairs, Access, Program};

use crate::cascade::{run_cascade_with, CascadeOutcome};
use crate::direction::{analyze_directions, DirectionAnalysis, DirectionConfig};
use crate::fourier_motzkin::FmLimits;
use crate::gcd::{
    expand_lattice, reduce_with_lattice, solve_equalities, solve_equalities_restricted,
    EqOutcome, Lattice,
};
use crate::memo::{bounds_key, nobounds_key, CanonicalKey, MemoTable};
use crate::problem::{build_problem, constant_compare, DependenceProblem};
use crate::result::{
    Answer, DependenceResult, Direction, DirectionVector, DistanceVector, ResolvedBy,
};
use crate::stats::{AnalysisStats, TestCounts};
use crate::symmetry;

/// Memoization flavour (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoMode {
    /// No memoization (Table 1 semantics).
    Off,
    /// Exact-input matching.
    Simple,
    /// Unused loop variables eliminated before matching.
    #[default]
    Improved,
}

/// Analyzer configuration; the default enables everything the paper's
/// final system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzerConfig {
    /// Memoization flavour.
    pub memo: MemoMode,
    /// Whether to compute direction vectors for dependent pairs.
    pub compute_directions: bool,
    /// Direction pruning: free `*` for unused loop indices.
    pub prune_unused: bool,
    /// Direction pruning: constant distances fix the direction.
    pub prune_distance: bool,
    /// Symbolic-term support (Section 8). When off, pairs involving
    /// loop-invariant unknowns are assumed dependent without testing.
    pub symbolic: bool,
    /// Also test read–read (input dependence) pairs.
    pub include_input_deps: bool,
    /// Symmetric-pair canonicalization (the Section 5 "further
    /// optimization"): a pair and its mirror (`a[i+1] = a[i]` vs
    /// `a[i] = a[i+1]`) share one memo entry; cached directions and
    /// distances are flipped on the way out.
    pub memo_symmetry: bool,
    /// Burke–Cytron dimension-by-dimension direction computation for
    /// separable systems (Section 6's "nice cases"): 3·L tests instead of
    /// 3^L when the refinable levels do not interact.
    pub separable_directions: bool,
    /// Fourier–Motzkin effort limits.
    pub fm_limits: FmLimits,
}

impl Default for AnalyzerConfig {
    fn default() -> AnalyzerConfig {
        AnalyzerConfig {
            memo: MemoMode::Improved,
            compute_directions: true,
            prune_unused: true,
            prune_distance: true,
            symbolic: true,
            include_input_deps: false,
            memo_symmetry: false,
            separable_directions: false,
            fm_limits: FmLimits::default(),
        }
    }
}

/// The analysis of one reference pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairReport {
    /// Name of the shared array.
    pub array: String,
    /// Access id of the first reference (program order).
    pub a_access: usize,
    /// Access id of the second reference.
    pub b_access: usize,
    /// Ids of the common enclosing loops, outermost first.
    pub common_loop_ids: Vec<usize>,
    /// The verdict and what produced it.
    pub result: DependenceResult,
    /// A witness assignment over the problem variables, when dependent.
    pub witness: Option<Vec<i64>>,
    /// All direction vectors under which the pair is dependent.
    pub direction_vectors: Vec<DirectionVector>,
    /// Constant per-level distances where known.
    pub distance: DistanceVector,
    /// Whether the result came from the memo table.
    pub from_cache: bool,
}

/// The analysis of a whole program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramReport {
    pairs: Vec<PairReport>,
    /// Statistics for this program alone.
    pub stats: AnalysisStats,
}

impl ProgramReport {
    /// The per-pair reports, in enumeration order.
    #[must_use]
    pub fn pairs(&self) -> &[PairReport] {
        &self.pairs
    }

    /// Pairs proven independent.
    #[must_use]
    pub fn independent_count(&self) -> usize {
        self.pairs.iter().filter(|p| p.result.is_independent()).count()
    }

    /// Loop ids that (conservatively) carry a dependence: a loop cannot
    /// be run in parallel if some dependent pair has a direction vector
    /// carried at that loop's level.
    #[must_use]
    pub fn carried_dependence_loops(&self) -> BTreeSet<usize> {
        let mut carried = BTreeSet::new();
        for pair in &self.pairs {
            if pair.result.is_independent() {
                continue;
            }
            if pair.direction_vectors.is_empty() {
                // Dependent but unrefined: every common loop may carry it.
                carried.extend(pair.common_loop_ids.iter().copied());
                continue;
            }
            for v in &pair.direction_vectors {
                for (level, &id) in pair.common_loop_ids.iter().enumerate() {
                    let outer_could_be_eq = v.0[..level]
                        .iter()
                        .all(|d| matches!(d, Direction::Eq | Direction::Any));
                    let this_could_cross = matches!(
                        v.0.get(level),
                        Some(Direction::Lt | Direction::Gt | Direction::Any)
                    );
                    if outer_could_be_eq && this_could_cross {
                        carried.insert(id);
                    }
                }
            }
        }
        carried
    }
}

/// What the full-result memo table stores. Direction vectors and
/// distances live in *canonical* space (kept levels only), so a cached
/// entry can be rehydrated for any pair that canonicalizes to the same
/// key — e.g. the same reference pattern under a different number of
/// irrelevant enclosing loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CachedOutcome {
    pub(crate) result: DependenceResult,
    pub(crate) witness: Option<Vec<i64>>,
    pub(crate) direction_vectors: Vec<DirectionVector>,
    pub(crate) distance: DistanceVector,
}

/// Restricts full-length vectors to the kept levels, deduplicating.
fn restrict_vectors(
    vectors: &[DirectionVector],
    kept_levels: &[usize],
) -> Vec<DirectionVector> {
    let mut out: Vec<DirectionVector> = Vec::new();
    for v in vectors {
        let restricted =
            DirectionVector(kept_levels.iter().map(|&k| v.0[k]).collect());
        if !out.contains(&restricted) {
            out.push(restricted);
        }
    }
    out
}

/// Expands canonical vectors back to `common` levels, filling dropped
/// (unused) levels with `*`.
fn expand_vectors(
    vectors: &[DirectionVector],
    kept_levels: &[usize],
    common: usize,
) -> Vec<DirectionVector> {
    vectors
        .iter()
        .map(|v| {
            let mut full = vec![Direction::Any; common];
            for (ci, &k) in kept_levels.iter().enumerate() {
                full[k] = v.0[ci];
            }
            DirectionVector(full)
        })
        .collect()
}

fn restrict_distance(d: &DistanceVector, kept_levels: &[usize]) -> DistanceVector {
    DistanceVector(kept_levels.iter().map(|&k| d.0[k]).collect())
}

fn expand_distance(d: &DistanceVector, kept_levels: &[usize], common: usize) -> DistanceVector {
    let mut full = vec![None; common];
    for (ci, &k) in kept_levels.iter().enumerate() {
        full[k] = d.0[ci];
    }
    DistanceVector(full)
}

/// The paper's dependence analyzer.
///
/// The analyzer owns its memo tables, so reusing one instance across
/// programs models the paper's "store the hash table across compilations"
/// extension.
///
/// # Examples
///
/// ```
/// use dda_ir::parse_program;
/// use dda_core::{DependenceAnalyzer, Direction, DirectionVector};
///
/// let program = parse_program("for i = 1 to 10 { a[i + 1] = a[i] + 7; }")?;
/// let mut analyzer = DependenceAnalyzer::new();
/// let report = analyzer.analyze_program(&program);
/// let pair = &report.pairs()[0];
/// assert!(pair.result.answer.is_dependent());
/// assert_eq!(
///     pair.direction_vectors,
///     vec![DirectionVector(vec![Direction::Lt])]
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct DependenceAnalyzer {
    config: AnalyzerConfig,
    pub(crate) full_memo: MemoTable<CachedOutcome>,
    pub(crate) gcd_memo: MemoTable<EqOutcome>,
    stats: AnalysisStats,
}

impl DependenceAnalyzer {
    /// Creates an analyzer with the default configuration.
    #[must_use]
    pub fn new() -> DependenceAnalyzer {
        DependenceAnalyzer::default()
    }

    /// Creates an analyzer with an explicit configuration.
    #[must_use]
    pub fn with_config(config: AnalyzerConfig) -> DependenceAnalyzer {
        DependenceAnalyzer {
            config,
            ..DependenceAnalyzer::default()
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Cumulative statistics since construction (or the last
    /// [`reset`](Self::reset)).
    #[must_use]
    pub fn stats(&self) -> &AnalysisStats {
        &self.stats
    }

    /// Number of distinct entries in the full-result memo table.
    #[must_use]
    pub fn memo_entries(&self) -> usize {
        self.full_memo.unique_entries()
    }

    /// Number of distinct entries in the no-bounds (GCD) memo table.
    #[must_use]
    pub fn gcd_memo_entries(&self) -> usize {
        self.gcd_memo.unique_entries()
    }

    /// Clears memo tables and statistics.
    pub fn reset(&mut self) {
        self.full_memo.clear();
        self.gcd_memo.clear();
        self.stats = AnalysisStats::default();
    }

    /// Analyzes every reference pair of `program` (which should already be
    /// normalized; see `dda_ir::passes::normalize`).
    pub fn analyze_program(&mut self, program: &Program) -> ProgramReport {
        let before = self.stats;
        let set = extract_accesses(program);
        let pairs = reference_pairs(&set, self.config.include_input_deps);
        let mut reports = Vec::with_capacity(pairs.len());
        for pair in pairs {
            reports.push(self.analyze_pair(pair.a, pair.b, pair.common));
        }
        ProgramReport {
            pairs: reports,
            stats: self.stats.since(&before),
        }
    }

    /// Analyzes a single pair of accesses sharing `common` loops.
    pub fn analyze_pair(&mut self, a: &Access, b: &Access, common: usize) -> PairReport {
        self.stats.pairs += 1;
        let common_loop_ids: Vec<usize> =
            a.loops.iter().take(common).map(|l| l.id).collect();
        let template = PairReport {
            array: a.array.clone(),
            a_access: a.id,
            b_access: b.id,
            common_loop_ids,
            result: DependenceResult {
                answer: Answer::Unknown,
                resolved_by: ResolvedBy::Assumed,
            },
            witness: None,
            direction_vectors: Vec::new(),
            distance: DistanceVector(vec![None; common]),
            from_cache: false,
        };

        // Constant subscripts: no dependence testing at all.
        if let Some(dependent) = constant_compare(a, b) {
            self.stats.constant += 1;
            let mut report = template;
            report.result = DependenceResult {
                answer: if dependent {
                    Answer::Dependent(None)
                } else {
                    Answer::Independent
                },
                resolved_by: ResolvedBy::Constant,
            };
            if dependent && self.config.compute_directions {
                report.direction_vectors = vec![DirectionVector::any(common)];
            }
            self.note_outcome(&report);
            return report;
        }

        // Build the integer system.
        let problem = match build_problem(a, b, common, self.config.symbolic) {
            Ok(p) => p,
            Err(_) => {
                self.stats.assumed += 1;
                let mut report = template;
                if self.config.compute_directions {
                    report.direction_vectors = vec![DirectionVector::any(common)];
                }
                self.note_outcome(&report);
                return report;
            }
        };

        // Extended GCD through the no-bounds memo — consulted for every
        // non-constant pair, bounds or not, exactly like the paper's
        // Table 2 "without bounds" column.
        let eq_outcome = self.gcd_phase(&problem);
        let lattice = match eq_outcome {
            None => {
                self.stats.assumed += 1;
                self.note_outcome(&template);
                return template; // overflow: assume dependent
            }
            Some(EqOutcome::Independent) => {
                self.stats.gcd_independent += 1;
                let mut report = template;
                report.result = DependenceResult {
                    answer: Answer::Independent,
                    resolved_by: ResolvedBy::Gcd,
                };
                self.note_outcome(&report);
                return report;
            }
            Some(EqOutcome::Lattice(l)) => l,
        };

        // Full-result memo. With symmetric canonicalization enabled, a
        // pair and its mirror share the lexicographically smaller key;
        // `flipped` records whether *this* problem is the mirror of what
        // the table stores.
        let full_key: Option<(CanonicalKey, bool)> = if self.config.memo == MemoMode::Off
        {
            None
        } else {
            let improved = self.config.memo == MemoMode::Improved;
            let own = bounds_key(&problem, improved);
            if self.config.memo_symmetry && symmetry::swappable(&problem) {
                let mirror = bounds_key(&symmetry::swap_problem(&problem), improved);
                if mirror.key < own.key {
                    Some((mirror, true))
                } else {
                    Some((own, false))
                }
            } else {
                Some((own, false))
            }
        };
        if let Some((ck, flipped)) = &full_key {
            self.stats.memo_queries += 1;
            if let Some(cached) = self.full_memo.get(&ck.key) {
                self.stats.memo_hits += 1;
                let cached = cached.clone();
                let mut report = template;
                report.result = cached.result;
                // Witnesses only transfer when the problems are literally
                // identical; under the improved scheme (or a mirror hit)
                // they may not be, so drop them.
                report.witness = if self.config.memo == MemoMode::Improved || *flipped {
                    None
                } else {
                    cached.witness
                };
                let (vectors, distance) = if *flipped {
                    (
                        symmetry::flip_vectors(&cached.direction_vectors),
                        symmetry::flip_distance(&cached.distance),
                    )
                } else {
                    (cached.direction_vectors, cached.distance)
                };
                report.direction_vectors =
                    expand_vectors(&vectors, &ck.kept_levels, common);
                report.distance = expand_distance(&distance, &ck.kept_levels, common);
                report.from_cache = true;
                self.note_outcome(&report);
                return report;
            }
        }

        let report = self.analyze_reduced(&problem, &lattice, template);
        if let Some((ck, flipped)) = full_key {
            let (vectors, distance) = if flipped {
                (
                    symmetry::flip_vectors(&report.direction_vectors),
                    symmetry::flip_distance(&report.distance),
                )
            } else {
                (report.direction_vectors.clone(), report.distance.clone())
            };
            self.full_memo.insert(
                ck.key,
                CachedOutcome {
                    result: report.result.clone(),
                    witness: if flipped { None } else { report.witness.clone() },
                    direction_vectors: restrict_vectors(&vectors, &ck.kept_levels),
                    distance: restrict_distance(&distance, &ck.kept_levels),
                },
            );
        }
        self.note_outcome(&report);
        report
    }

    /// Runs the extended GCD test through the no-bounds memo table,
    /// returning a lattice over all problem variables.
    fn gcd_phase(&mut self, problem: &DependenceProblem) -> Option<EqOutcome> {
        if self.config.memo == MemoMode::Off {
            return solve_equalities(problem);
        }
        let improved = self.config.memo == MemoMode::Improved;
        let nk = nobounds_key(problem, improved);
        self.stats.gcd_memo_queries += 1;
        let canonical = if let Some(hit) = self.gcd_memo.get(&nk.key) {
            self.stats.gcd_memo_hits += 1;
            Some(hit.clone())
        } else {
            let computed = solve_equalities_restricted(
                &problem.eq_coeffs,
                &problem.eq_rhs,
                &nk.kept_vars,
            );
            if let Some(v) = &computed {
                self.gcd_memo.insert(nk.key.clone(), v.clone());
            }
            computed
        };
        canonical.map(|eq| match eq {
            EqOutcome::Independent => EqOutcome::Independent,
            EqOutcome::Lattice(l) => EqOutcome::Lattice(expand_lattice(
                &l,
                &nk.kept_vars,
                problem.num_vars(),
            )),
        })
    }

    fn analyze_reduced(
        &mut self,
        problem: &DependenceProblem,
        lattice: &Lattice,
        mut report: PairReport,
    ) -> PairReport {
        let Some(reduced) = reduce_with_lattice(problem, lattice) else {
            self.stats.assumed += 1;
            return report;
        };

        // Base (star-vector) cascade.
        let base: CascadeOutcome = run_cascade_with(&reduced.system, self.config.fm_limits);
        self.stats
            .base_tests
            .record(base.used, base.answer.is_independent());
        report.result = DependenceResult {
            answer: match &base.answer {
                Answer::Dependent(_) => Answer::Dependent(None),
                other => other.clone(),
            },
            resolved_by: ResolvedBy::Test(base.used),
        };
        if let Answer::Dependent(Some(t)) = &base.answer {
            report.witness = reduced.x_at(t);
            debug_assert!(
                report
                    .witness
                    .as_ref()
                    .is_none_or(|w| problem.is_witness(w)),
                "cascade witness must satisfy the original problem"
            );
        }
        if base.answer.is_independent() {
            return report;
        }

        // Direction vectors.
        if self.config.compute_directions {
            let mut counts = TestCounts::default();
            let DirectionAnalysis {
                vectors,
                distance,
                exact,
            } = analyze_directions(
                problem,
                &reduced,
                DirectionConfig {
                    prune_unused: self.config.prune_unused,
                    prune_distance: self.config.prune_distance,
                    separable: self.config.separable_directions,
                    fm_limits: self.config.fm_limits,
                },
                &mut counts,
            );
            self.stats.direction_tests.add(&counts);
            report.distance = distance;
            if vectors.is_empty() && exact {
                // The paper's implicit branch and bound: every direction
                // proved independent even though the `*` query could not.
                report.result.answer = Answer::Independent;
            } else {
                report.direction_vectors = vectors;
            }
        }
        report
    }

    fn note_outcome(&mut self, report: &PairReport) {
        if report.result.is_independent() {
            self.stats.independent_pairs += 1;
        } else {
            self.stats.dependent_pairs += 1;
        }
        self.stats.direction_vectors_found += report.direction_vectors.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::TestKind;
    use dda_ir::parse_program;

    fn analyze(src: &str) -> ProgramReport {
        let program = parse_program(src).unwrap();
        DependenceAnalyzer::new().analyze_program(&program)
    }

    #[test]
    fn paper_opening_examples() {
        let r1 = analyze("for i = 1 to 10 { a[i] = a[i + 10] + 3; }");
        assert!(r1.pairs()[0].result.is_independent());
        let r2 = analyze("for i = 1 to 10 { a[i + 1] = a[i] + 3; }");
        assert!(r2.pairs()[0].result.answer.is_dependent());
        assert_eq!(r2.pairs()[0].distance.0, vec![Some(1)]);
    }

    #[test]
    fn constant_subscripts_short_circuit() {
        let r = analyze("for i = 1 to 10 { a[3] = a[4] + a[3]; }");
        assert_eq!(r.stats.constant, 2); // (w3,r4) and (w3,r3)
        assert_eq!(r.stats.base_tests.total(), 0);
        let dep = r
            .pairs()
            .iter()
            .find(|p| p.result.answer.is_dependent())
            .unwrap();
        assert_eq!(dep.result.resolved_by, ResolvedBy::Constant);
    }

    #[test]
    fn coupled_subscripts_resolved_by_svpc() {
        // The paper's Section 3.2 showpiece.
        let r = analyze(
            "for i1 = 1 to 10 { for i2 = 1 to 10 {
                a[i1][i2] = a[i2 + 10][i1 + 9] + 1;
            } }",
        );
        assert!(r.pairs()[0].result.is_independent());
        assert_eq!(
            r.pairs()[0].result.resolved_by,
            ResolvedBy::Test(TestKind::Svpc)
        );
    }

    #[test]
    fn gcd_independent_counted() {
        let r = analyze("for i = 1 to 10 { a[2 * i] = a[2 * i + 1] + 1; }");
        assert!(r.pairs()[0].result.is_independent());
        assert_eq!(r.pairs()[0].result.resolved_by, ResolvedBy::Gcd);
        assert_eq!(r.stats.gcd_independent, 1);
        assert_eq!(r.stats.base_tests.total(), 0);
    }

    #[test]
    fn memoization_hits_repeated_patterns() {
        let src = "
            for i = 1 to 100 { a[i + 10] = a[i] + 1; }
            for i = 1 to 100 { b[i + 10] = b[i] + 2; }
            for i = 1 to 100 { c[i + 10] = c[i] + 3; }
        ";
        let r = analyze(src);
        assert_eq!(r.stats.memo_queries, 3);
        assert_eq!(r.stats.memo_hits, 2);
        assert_eq!(r.stats.base_tests.total(), 1);
        assert!(r.pairs()[1].from_cache);
        assert_eq!(r.pairs()[0].result, r.pairs()[2].result);
    }

    #[test]
    fn improved_memo_collapses_unused_loops() {
        let src = "
            for i = 1 to 10 { for j = 1 to 10 { a[i + 10] = a[i] + 3; } }
            for i = 1 to 10 { for j = 1 to 10 { b[j + 10] = b[j] + 3; } }
        ";
        let improved = {
            let program = parse_program(src).unwrap();
            let mut an = DependenceAnalyzer::new();
            an.analyze_program(&program).stats
        };
        assert_eq!(improved.memo_hits, 1);
        let simple = {
            let program = parse_program(src).unwrap();
            let mut an = DependenceAnalyzer::with_config(AnalyzerConfig {
                memo: MemoMode::Simple,
                ..AnalyzerConfig::default()
            });
            an.analyze_program(&program).stats
        };
        assert_eq!(simple.memo_hits, 0);
    }

    #[test]
    fn symbolic_support_toggles(){
        let src = "read(n); for i = 1 to 10 { a[i + n] = a[i + 2 * n + 1] + 3; }";
        let program = parse_program(src).unwrap();
        let mut with = DependenceAnalyzer::new();
        let r = with.analyze_program(&program);
        // i + n = i' + 2n + 1 ⇒ i - i' = n + 1: for the pair to overlap
        // some n makes it dependent (e.g. n = 0 gives distance 1).
        assert!(r.pairs()[0].result.answer.is_dependent());
        assert!(r.stats.base_tests.total() > 0);

        let mut without = DependenceAnalyzer::with_config(AnalyzerConfig {
            symbolic: false,
            ..AnalyzerConfig::default()
        });
        let r2 = without.analyze_program(&program);
        assert_eq!(r2.stats.assumed, 1);
        assert_eq!(r2.stats.base_tests.total(), 0);
        assert!(!r2.pairs()[0].result.answer.is_exact());
    }

    #[test]
    fn carried_dependence_loops_drive_parallelization() {
        // Outer loop carries nothing (distance 0 on i); inner carries the
        // j-distance-1 dependence.
        let src = "for i = 1 to 10 { for j = 1 to 10 {
            a[i][j + 1] = a[i][j] + 1;
        } }";
        let program = parse_program(src).unwrap();
        let mut an = DependenceAnalyzer::new();
        let r = an.analyze_program(&program);
        let carried = r.carried_dependence_loops();
        assert_eq!(carried.len(), 1, "only the inner loop carries");
    }

    #[test]
    fn analyzer_persists_memo_across_programs() {
        let mut an = DependenceAnalyzer::new();
        let p1 = parse_program("for i = 1 to 10 { a[i + 10] = a[i]; }").unwrap();
        let p2 = parse_program("for i = 1 to 10 { z[i + 10] = z[i]; }").unwrap();
        let r1 = an.analyze_program(&p1);
        assert_eq!(r1.stats.memo_hits, 0);
        let r2 = an.analyze_program(&p2);
        assert_eq!(r2.stats.memo_hits, 1, "cross-program reuse");
        an.reset();
        let r3 = an.analyze_program(&p2);
        assert_eq!(r3.stats.memo_hits, 0);
    }

    #[test]
    fn symmetric_memoization_flips_directions() {
        let src = "
            for i = 1 to 10 { a[i + 1] = a[i]; }
            for i = 1 to 10 { z[i] = z[i + 1]; }
        ";
        let program = parse_program(src).unwrap();
        let mut plain = DependenceAnalyzer::new();
        let fresh = plain.analyze_program(&program);
        assert_eq!(fresh.stats.memo_hits, 0, "mirrors differ without symmetry");

        let mut sym = DependenceAnalyzer::with_config(AnalyzerConfig {
            memo_symmetry: true,
            ..AnalyzerConfig::default()
        });
        let cached = sym.analyze_program(&program);
        assert_eq!(cached.stats.memo_hits, 1, "mirror pair shares the entry");
        for (c, f) in cached.pairs().iter().zip(fresh.pairs()) {
            assert_eq!(c.result, f.result);
            assert_eq!(c.direction_vectors, f.direction_vectors, "{}", c.array);
            assert_eq!(c.distance, f.distance);
        }
        // Orientations really are opposite.
        assert_eq!(cached.pairs()[0].direction_vectors[0].to_string(), "(<)");
        assert_eq!(cached.pairs()[1].direction_vectors[0].to_string(), "(>)");
        assert_eq!(cached.pairs()[0].distance.0, vec![Some(1)]);
        assert_eq!(cached.pairs()[1].distance.0, vec![Some(-1)]);
    }

    #[test]
    fn nonaffine_assumed_dependent() {
        let r = analyze("for i = 1 to 10 { a[i * i] = a[i] + 1; }");
        assert_eq!(r.stats.assumed, 1);
        assert!(!r.pairs()[0].result.answer.is_exact());
        assert_eq!(r.pairs()[0].result.resolved_by, ResolvedBy::Assumed);
    }

    #[test]
    fn stats_deltas_per_program() {
        let mut an = DependenceAnalyzer::new();
        let p = parse_program("for i = 1 to 10 { a[i + 1] = a[i]; }").unwrap();
        let r1 = an.analyze_program(&p);
        let r2 = an.analyze_program(&p);
        assert_eq!(r1.stats.pairs, 1);
        assert_eq!(r2.stats.pairs, 1, "per-program delta, not cumulative");
        assert_eq!(an.stats().pairs, 2);
    }
}
