//! The whole-program dependence analyzer.
//!
//! Ties every piece together the way the paper's SUIF implementation does:
//! enumerate reference pairs, short-circuit constant subscripts, memoize,
//! run extended-GCD preprocessing, cascade the exact tests, refine
//! direction vectors with pruning, and keep the statistics behind
//! Tables 1–5 and 7.

use std::collections::BTreeSet;
use std::time::Instant;

use dda_ir::{extract_accesses, reference_pairs, Access, Program};

use crate::certificate::Certificate;
use crate::fourier_motzkin::FmLimits;
use crate::gcd::{
    expand_lattice, refute_equalities, solve_equalities, solve_equalities_restricted,
    witness_for_problem, EqOutcome,
};
use crate::memo::{nobounds_key, CanonicalKey, MemoTable};
use crate::pipeline::{ClassifiedKind, GcdVerdict, NullProbe, PipelineConfig, Probe, TraceEvent};
use crate::problem::DependenceProblem;
use crate::result::{DependenceResult, Direction, DirectionVector, DistanceVector};
use crate::stats::AnalysisStats;
use crate::steps::{self, Classified, ReduceEffects};

/// Memoization flavour (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoMode {
    /// No memoization (Table 1 semantics).
    Off,
    /// Exact-input matching.
    Simple,
    /// Unused loop variables eliminated before matching.
    #[default]
    Improved,
}

/// Analyzer configuration; the default enables everything the paper's
/// final system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzerConfig {
    /// Memoization flavour.
    pub memo: MemoMode,
    /// Whether to compute direction vectors for dependent pairs.
    pub compute_directions: bool,
    /// Direction pruning: free `*` for unused loop indices.
    pub prune_unused: bool,
    /// Direction pruning: constant distances fix the direction.
    pub prune_distance: bool,
    /// Symbolic-term support (Section 8). When off, pairs involving
    /// loop-invariant unknowns are assumed dependent without testing.
    pub symbolic: bool,
    /// Also test read–read (input dependence) pairs.
    pub include_input_deps: bool,
    /// Symmetric-pair canonicalization (the Section 5 "further
    /// optimization"): a pair and its mirror (`a[i+1] = a[i]` vs
    /// `a[i] = a[i+1]`) share one memo entry; cached directions and
    /// distances are flipped on the way out.
    pub memo_symmetry: bool,
    /// Burke–Cytron dimension-by-dimension direction computation for
    /// separable systems (Section 6's "nice cases"): 3·L tests instead of
    /// 3^L when the refinable levels do not interact.
    pub separable_directions: bool,
    /// Fourier–Motzkin effort limits.
    pub fm_limits: FmLimits,
    /// Which exact tests the solve pipeline runs, in order. The default
    /// full cascade is exact; partial configurations (ablations) may
    /// assume dependence where a disabled test would have decided.
    pub pipeline: PipelineConfig,
}

impl Default for AnalyzerConfig {
    fn default() -> AnalyzerConfig {
        AnalyzerConfig {
            memo: MemoMode::Improved,
            compute_directions: true,
            prune_unused: true,
            prune_distance: true,
            symbolic: true,
            include_input_deps: false,
            memo_symmetry: false,
            separable_directions: false,
            fm_limits: FmLimits::default(),
            pipeline: PipelineConfig::full(),
        }
    }
}

/// The analysis of one reference pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairReport {
    /// Name of the shared array.
    pub array: String,
    /// Access id of the first reference (program order).
    pub a_access: usize,
    /// Access id of the second reference.
    pub b_access: usize,
    /// Ids of the common enclosing loops, outermost first.
    pub common_loop_ids: Vec<usize>,
    /// The verdict and what produced it.
    pub result: DependenceResult,
    /// A witness assignment over the problem variables, when dependent.
    pub witness: Option<Vec<i64>>,
    /// All direction vectors under which the pair is dependent.
    pub direction_vectors: Vec<DirectionVector>,
    /// Constant per-level distances where known.
    pub distance: DistanceVector,
    /// Whether the result came from the memo table.
    pub from_cache: bool,
    /// Evidence for the verdict, checkable by `dda-check` without
    /// trusting any solver code.
    pub certificate: Certificate,
}

/// The analysis of a whole program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramReport {
    pairs: Vec<PairReport>,
    /// Statistics for this program alone.
    pub stats: AnalysisStats,
}

impl ProgramReport {
    /// Assembles a report from per-pair reports (in enumeration order)
    /// and the program's statistics delta. Used by the batch engine,
    /// which reconstructs both outside the serial analyzer.
    #[must_use]
    pub fn from_parts(pairs: Vec<PairReport>, stats: AnalysisStats) -> ProgramReport {
        ProgramReport { pairs, stats }
    }

    /// The per-pair reports, in enumeration order.
    #[must_use]
    pub fn pairs(&self) -> &[PairReport] {
        &self.pairs
    }

    /// Pairs proven independent.
    #[must_use]
    pub fn independent_count(&self) -> usize {
        self.pairs
            .iter()
            .filter(|p| p.result.is_independent())
            .count()
    }

    /// Loop ids that (conservatively) carry a dependence: a loop cannot
    /// be run in parallel if some dependent pair has a direction vector
    /// carried at that loop's level.
    #[must_use]
    pub fn carried_dependence_loops(&self) -> BTreeSet<usize> {
        let mut carried = BTreeSet::new();
        for pair in &self.pairs {
            if pair.result.is_independent() {
                continue;
            }
            if pair.direction_vectors.is_empty() {
                // Dependent but unrefined: every common loop may carry it.
                carried.extend(pair.common_loop_ids.iter().copied());
                continue;
            }
            for v in &pair.direction_vectors {
                for (level, &id) in pair.common_loop_ids.iter().enumerate() {
                    let outer_could_be_eq = v.0[..level]
                        .iter()
                        .all(|d| matches!(d, Direction::Eq | Direction::Any));
                    let this_could_cross = matches!(
                        v.0.get(level),
                        Some(Direction::Lt | Direction::Gt | Direction::Any)
                    );
                    if outer_could_be_eq && this_could_cross {
                        carried.insert(id);
                    }
                }
            }
        }
        carried
    }
}

/// What the full-result memo table stores. Direction vectors and
/// distances live in *canonical* space (kept levels only), so a cached
/// entry can be rehydrated for any pair that canonicalizes to the same
/// key — e.g. the same reference pattern under a different number of
/// irrelevant enclosing loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedOutcome {
    /// The verdict and what produced it.
    pub result: DependenceResult,
    /// A witness assignment, when one transfers (identical problems only).
    pub witness: Option<Vec<i64>>,
    /// Direction vectors in canonical (kept-levels) space.
    pub direction_vectors: Vec<DirectionVector>,
    /// Distances in canonical space.
    pub distance: DistanceVector,
    /// The certificate computed for the stored verdict. Transfers
    /// verbatim only to literally identical problems (Simple mode,
    /// unflipped); otherwise hits degrade to
    /// [`Certificate::Unverified`]/[`Certificate::Conservative`].
    pub certificate: Certificate,
}

/// The paper's dependence analyzer.
///
/// The analyzer owns its memo tables, so reusing one instance across
/// programs models the paper's "store the hash table across compilations"
/// extension.
///
/// # Examples
///
/// ```
/// use dda_ir::parse_program;
/// use dda_core::{DependenceAnalyzer, Direction, DirectionVector};
///
/// let program = parse_program("for i = 1 to 10 { a[i + 1] = a[i] + 7; }")?;
/// let mut analyzer = DependenceAnalyzer::new();
/// let report = analyzer.analyze_program(&program);
/// let pair = &report.pairs()[0];
/// assert!(pair.result.answer.is_dependent());
/// assert_eq!(
///     pair.direction_vectors,
///     vec![DirectionVector(vec![Direction::Lt])]
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct DependenceAnalyzer {
    config: AnalyzerConfig,
    pub(crate) full_memo: MemoTable<CachedOutcome>,
    pub(crate) gcd_memo: MemoTable<EqOutcome>,
    stats: AnalysisStats,
}

impl DependenceAnalyzer {
    /// Creates an analyzer with the default configuration.
    #[must_use]
    pub fn new() -> DependenceAnalyzer {
        DependenceAnalyzer::default()
    }

    /// Creates an analyzer with an explicit configuration.
    #[must_use]
    pub fn with_config(config: AnalyzerConfig) -> DependenceAnalyzer {
        DependenceAnalyzer {
            config,
            ..DependenceAnalyzer::default()
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Cumulative statistics since construction (or the last
    /// [`reset`](Self::reset)).
    #[must_use]
    pub fn stats(&self) -> &AnalysisStats {
        &self.stats
    }

    /// Number of distinct entries in the full-result memo table.
    #[must_use]
    pub fn memo_entries(&self) -> usize {
        self.full_memo.unique_entries()
    }

    /// Number of distinct entries in the no-bounds (GCD) memo table.
    #[must_use]
    pub fn gcd_memo_entries(&self) -> usize {
        self.gcd_memo.unique_entries()
    }

    /// Traffic counters of the full-result memo table.
    #[must_use]
    pub fn full_memo_counters(&self) -> crate::memo::MemoCounters {
        self.full_memo.counters()
    }

    /// Traffic counters of the no-bounds (GCD) memo table.
    #[must_use]
    pub fn gcd_memo_counters(&self) -> crate::memo::MemoCounters {
        self.gcd_memo.counters()
    }

    /// Clears memo tables and statistics.
    pub fn reset(&mut self) {
        self.full_memo.clear();
        self.gcd_memo.clear();
        self.stats = AnalysisStats::default();
    }

    /// Analyzes every reference pair of `program` (which should already be
    /// normalized; see `dda_ir::passes::normalize`).
    pub fn analyze_program(&mut self, program: &Program) -> ProgramReport {
        self.analyze_program_probed(program, &mut NullProbe)
    }

    /// Analyzes every reference pair of `program`, reporting every step to
    /// `probe`. With [`NullProbe`] this is exactly
    /// [`analyze_program`](Self::analyze_program); events never influence
    /// answers.
    pub fn analyze_program_probed<P: Probe>(
        &mut self,
        program: &Program,
        probe: &mut P,
    ) -> ProgramReport {
        let before = self.stats;
        let set = extract_accesses(program);
        let pairs = reference_pairs(&set, self.config.include_input_deps);
        let mut reports = Vec::with_capacity(pairs.len());
        for pair in pairs {
            reports.push(self.analyze_pair_probed(pair.a, pair.b, pair.common, probe));
        }
        ProgramReport {
            pairs: reports,
            stats: self.stats.since(&before),
        }
    }

    /// Analyzes a single pair of accesses sharing `common` loops.
    pub fn analyze_pair(&mut self, a: &Access, b: &Access, common: usize) -> PairReport {
        self.analyze_pair_probed(a, b, common, &mut NullProbe)
    }

    /// Analyzes a single pair, reporting every step to `probe`.
    pub fn analyze_pair_probed<P: Probe>(
        &mut self,
        a: &Access,
        b: &Access,
        common: usize,
        probe: &mut P,
    ) -> PairReport {
        let report = self.pair_inner(a, b, common, probe);
        if P::ACTIVE {
            probe.record(TraceEvent::PairFinished {
                result: report.result.clone(),
                from_cache: report.from_cache,
            });
        }
        report
    }

    fn pair_inner<P: Probe>(
        &mut self,
        a: &Access,
        b: &Access,
        common: usize,
        probe: &mut P,
    ) -> PairReport {
        self.stats.pairs += 1;
        let template = steps::pair_template(a, b, common);
        if P::ACTIVE {
            probe.record(TraceEvent::PairStarted {
                array: template.array.clone(),
                a_access: template.a_access,
                b_access: template.b_access,
                common,
            });
        }

        let problem = match steps::classify_pair(a, b, common, self.config.symbolic) {
            // Constant subscripts: no dependence testing at all.
            Classified::Constant { dependent } => {
                self.stats.constant += 1;
                if P::ACTIVE {
                    probe.record(TraceEvent::Classified {
                        kind: ClassifiedKind::Constant { dependent },
                    });
                }
                let report =
                    steps::constant_report(template, dependent, self.config.compute_directions);
                self.note_outcome(&report);
                return report;
            }
            Classified::Unbuildable => {
                self.stats.assumed += 1;
                if P::ACTIVE {
                    probe.record(TraceEvent::Classified {
                        kind: ClassifiedKind::Unbuildable,
                    });
                }
                let report = steps::assumed_report(template, self.config.compute_directions);
                self.note_outcome(&report);
                return report;
            }
            Classified::Problem(p) => p,
        };
        if P::ACTIVE {
            probe.record(TraceEvent::Classified {
                kind: ClassifiedKind::Problem {
                    vars: problem.num_vars(),
                    equations: problem.eq_coeffs.len(),
                    bounds: problem.bounds.len(),
                },
            });
        }

        // Extended GCD through the no-bounds memo — consulted for every
        // non-constant pair, bounds or not, exactly like the paper's
        // Table 2 "without bounds" column.
        let gcd_start = if P::ACTIVE {
            Some(Instant::now())
        } else {
            None
        };
        let (eq_outcome, gcd_cached) = self.gcd_phase(&problem);
        if P::ACTIVE {
            let nanos = gcd_start.map_or(0, |s| {
                u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            let verdict = match &eq_outcome {
                None => GcdVerdict::Overflow,
                Some(EqOutcome::Independent { .. }) => GcdVerdict::Independent,
                Some(EqOutcome::Lattice(_)) => GcdVerdict::Lattice,
            };
            probe.record(TraceEvent::Gcd {
                verdict,
                cached: gcd_cached,
                nanos,
            });
        }
        let lattice = match eq_outcome {
            None => {
                self.stats.assumed += 1;
                self.note_outcome(&template);
                return template; // overflow: assume dependent
            }
            Some(EqOutcome::Independent { refutation }) => {
                self.stats.gcd_independent += 1;
                // The witness rode along with the (possibly cached)
                // outcome; refactorize only when none transferred.
                let refutation = refutation.or_else(|| refute_equalities(&problem));
                let report = steps::gcd_independent_report(template, refutation);
                self.note_outcome(&report);
                return report;
            }
            Some(EqOutcome::Lattice(l)) => l,
        };

        // Full-result memo (see `steps::full_key` for the symmetric
        // canonicalization contract).
        let full_key: Option<(CanonicalKey, bool)> = steps::full_key(&self.config, &problem);
        if let Some((ck, flipped)) = &full_key {
            self.stats.memo_queries += 1;
            if let Some(cached) = self.full_memo.get(&ck.key) {
                self.stats.memo_hits += 1;
                if P::ACTIVE {
                    probe.record(TraceEvent::CacheHit);
                }
                let cached = cached.clone();
                let report = steps::rehydrate_hit(self.config.memo, cached, ck, *flipped, template);
                self.note_outcome(&report);
                return report;
            }
        }

        let mut fx = ReduceEffects::default();
        let report = steps::analyze_reduced_probed(
            &self.config,
            &problem,
            &lattice,
            template,
            &mut fx,
            probe,
        );
        fx.apply_to(&mut self.stats);
        if let Some((ck, flipped)) = full_key {
            self.full_memo.insert(
                ck.key.clone(),
                steps::canonical_outcome(&report, &ck, flipped),
            );
        }
        self.note_outcome(&report);
        report
    }

    /// Runs the extended GCD test through the no-bounds memo table,
    /// returning a lattice over all problem variables plus whether the
    /// memo table supplied it.
    fn gcd_phase(&mut self, problem: &DependenceProblem) -> (Option<EqOutcome>, bool) {
        if self.config.memo == MemoMode::Off {
            return (solve_equalities(problem), false);
        }
        let improved = self.config.memo == MemoMode::Improved;
        let nk = nobounds_key(problem, improved);
        self.stats.gcd_memo_queries += 1;
        let mut cached = false;
        let canonical = if let Some(hit) = self.gcd_memo.get(&nk.key) {
            self.stats.gcd_memo_hits += 1;
            cached = true;
            Some(hit.clone())
        } else {
            let computed =
                solve_equalities_restricted(&problem.eq_coeffs, &problem.eq_rhs, &nk.kept_vars);
            if let Some(v) = &computed {
                self.gcd_memo.insert(nk.key.clone(), v.clone());
            }
            computed
        };
        let expanded = canonical.map(|eq| match eq {
            // The cached witness is in canonical row order; reorder it
            // onto this problem's rows (arity mismatches degrade to
            // `None`, and the caller refactorizes).
            EqOutcome::Independent { refutation } => EqOutcome::Independent {
                refutation: refutation
                    .and_then(|w| witness_for_problem(problem, &nk.kept_vars, &w)),
            },
            EqOutcome::Lattice(l) => {
                EqOutcome::Lattice(expand_lattice(&l, &nk.kept_vars, problem.num_vars()))
            }
        });
        (expanded, cached)
    }

    fn note_outcome(&mut self, report: &PairReport) {
        steps::note_outcome(&mut self.stats, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{ResolvedBy, TestKind};
    use dda_ir::parse_program;

    fn analyze(src: &str) -> ProgramReport {
        let program = parse_program(src).unwrap();
        DependenceAnalyzer::new().analyze_program(&program)
    }

    #[test]
    fn paper_opening_examples() {
        let r1 = analyze("for i = 1 to 10 { a[i] = a[i + 10] + 3; }");
        assert!(r1.pairs()[0].result.is_independent());
        let r2 = analyze("for i = 1 to 10 { a[i + 1] = a[i] + 3; }");
        assert!(r2.pairs()[0].result.answer.is_dependent());
        assert_eq!(r2.pairs()[0].distance.0, vec![Some(1)]);
    }

    #[test]
    fn constant_subscripts_short_circuit() {
        let r = analyze("for i = 1 to 10 { a[3] = a[4] + a[3]; }");
        assert_eq!(r.stats.constant, 2); // (w3,r4) and (w3,r3)
        assert_eq!(r.stats.base_tests.total(), 0);
        let dep = r
            .pairs()
            .iter()
            .find(|p| p.result.answer.is_dependent())
            .unwrap();
        assert_eq!(dep.result.resolved_by, ResolvedBy::Constant);
    }

    #[test]
    fn coupled_subscripts_resolved_by_svpc() {
        // The paper's Section 3.2 showpiece.
        let r = analyze(
            "for i1 = 1 to 10 { for i2 = 1 to 10 {
                a[i1][i2] = a[i2 + 10][i1 + 9] + 1;
            } }",
        );
        assert!(r.pairs()[0].result.is_independent());
        assert_eq!(
            r.pairs()[0].result.resolved_by,
            ResolvedBy::Test(TestKind::Svpc)
        );
    }

    #[test]
    fn gcd_independent_counted() {
        let r = analyze("for i = 1 to 10 { a[2 * i] = a[2 * i + 1] + 1; }");
        assert!(r.pairs()[0].result.is_independent());
        assert_eq!(r.pairs()[0].result.resolved_by, ResolvedBy::Gcd);
        assert_eq!(r.stats.gcd_independent, 1);
        assert_eq!(r.stats.base_tests.total(), 0);
    }

    #[test]
    fn memoization_hits_repeated_patterns() {
        let src = "
            for i = 1 to 100 { a[i + 10] = a[i] + 1; }
            for i = 1 to 100 { b[i + 10] = b[i] + 2; }
            for i = 1 to 100 { c[i + 10] = c[i] + 3; }
        ";
        let r = analyze(src);
        assert_eq!(r.stats.memo_queries, 3);
        assert_eq!(r.stats.memo_hits, 2);
        assert_eq!(r.stats.base_tests.total(), 1);
        assert!(r.pairs()[1].from_cache);
        assert_eq!(r.pairs()[0].result, r.pairs()[2].result);
    }

    #[test]
    fn improved_memo_collapses_unused_loops() {
        let src = "
            for i = 1 to 10 { for j = 1 to 10 { a[i + 10] = a[i] + 3; } }
            for i = 1 to 10 { for j = 1 to 10 { b[j + 10] = b[j] + 3; } }
        ";
        let improved = {
            let program = parse_program(src).unwrap();
            let mut an = DependenceAnalyzer::new();
            an.analyze_program(&program).stats
        };
        assert_eq!(improved.memo_hits, 1);
        let simple = {
            let program = parse_program(src).unwrap();
            let mut an = DependenceAnalyzer::with_config(AnalyzerConfig {
                memo: MemoMode::Simple,
                ..AnalyzerConfig::default()
            });
            an.analyze_program(&program).stats
        };
        assert_eq!(simple.memo_hits, 0);
    }

    #[test]
    fn symbolic_support_toggles() {
        let src = "read(n); for i = 1 to 10 { a[i + n] = a[i + 2 * n + 1] + 3; }";
        let program = parse_program(src).unwrap();
        let mut with = DependenceAnalyzer::new();
        let r = with.analyze_program(&program);
        // i + n = i' + 2n + 1 ⇒ i - i' = n + 1: for the pair to overlap
        // some n makes it dependent (e.g. n = 0 gives distance 1).
        assert!(r.pairs()[0].result.answer.is_dependent());
        assert!(r.stats.base_tests.total() > 0);

        let mut without = DependenceAnalyzer::with_config(AnalyzerConfig {
            symbolic: false,
            ..AnalyzerConfig::default()
        });
        let r2 = without.analyze_program(&program);
        assert_eq!(r2.stats.assumed, 1);
        assert_eq!(r2.stats.base_tests.total(), 0);
        assert!(!r2.pairs()[0].result.answer.is_exact());
    }

    #[test]
    fn carried_dependence_loops_drive_parallelization() {
        // Outer loop carries nothing (distance 0 on i); inner carries the
        // j-distance-1 dependence.
        let src = "for i = 1 to 10 { for j = 1 to 10 {
            a[i][j + 1] = a[i][j] + 1;
        } }";
        let program = parse_program(src).unwrap();
        let mut an = DependenceAnalyzer::new();
        let r = an.analyze_program(&program);
        let carried = r.carried_dependence_loops();
        assert_eq!(carried.len(), 1, "only the inner loop carries");
    }

    #[test]
    fn analyzer_persists_memo_across_programs() {
        let mut an = DependenceAnalyzer::new();
        let p1 = parse_program("for i = 1 to 10 { a[i + 10] = a[i]; }").unwrap();
        let p2 = parse_program("for i = 1 to 10 { z[i + 10] = z[i]; }").unwrap();
        let r1 = an.analyze_program(&p1);
        assert_eq!(r1.stats.memo_hits, 0);
        let r2 = an.analyze_program(&p2);
        assert_eq!(r2.stats.memo_hits, 1, "cross-program reuse");
        an.reset();
        let r3 = an.analyze_program(&p2);
        assert_eq!(r3.stats.memo_hits, 0);
    }

    #[test]
    fn symmetric_memoization_flips_directions() {
        let src = "
            for i = 1 to 10 { a[i + 1] = a[i]; }
            for i = 1 to 10 { z[i] = z[i + 1]; }
        ";
        let program = parse_program(src).unwrap();
        let mut plain = DependenceAnalyzer::new();
        let fresh = plain.analyze_program(&program);
        assert_eq!(fresh.stats.memo_hits, 0, "mirrors differ without symmetry");

        let mut sym = DependenceAnalyzer::with_config(AnalyzerConfig {
            memo_symmetry: true,
            ..AnalyzerConfig::default()
        });
        let cached = sym.analyze_program(&program);
        assert_eq!(cached.stats.memo_hits, 1, "mirror pair shares the entry");
        for (c, f) in cached.pairs().iter().zip(fresh.pairs()) {
            assert_eq!(c.result, f.result);
            assert_eq!(c.direction_vectors, f.direction_vectors, "{}", c.array);
            assert_eq!(c.distance, f.distance);
        }
        // Orientations really are opposite.
        assert_eq!(cached.pairs()[0].direction_vectors[0].to_string(), "(<)");
        assert_eq!(cached.pairs()[1].direction_vectors[0].to_string(), "(>)");
        assert_eq!(cached.pairs()[0].distance.0, vec![Some(1)]);
        assert_eq!(cached.pairs()[1].distance.0, vec![Some(-1)]);
    }

    #[test]
    fn nonaffine_assumed_dependent() {
        let r = analyze("for i = 1 to 10 { a[i * i] = a[i] + 1; }");
        assert_eq!(r.stats.assumed, 1);
        assert!(!r.pairs()[0].result.answer.is_exact());
        assert_eq!(r.pairs()[0].result.resolved_by, ResolvedBy::Assumed);
    }

    #[test]
    fn stats_deltas_per_program() {
        let mut an = DependenceAnalyzer::new();
        let p = parse_program("for i = 1 to 10 { a[i + 1] = a[i]; }").unwrap();
        let r1 = an.analyze_program(&p);
        let r2 = an.analyze_program(&p);
        assert_eq!(r1.stats.pairs, 1);
        assert_eq!(r2.stats.pairs, 1, "per-program delta, not cumulative");
        assert_eq!(an.stats().pairs, 2);
    }
}
