//! The cascade driver: SVPC → Acyclic → Loop Residue → Fourier–Motzkin.
//!
//! "Our approach is to use a series of special case exact tests. If the
//! input is not of the appropriate form for an algorithm, then we try the
//! next one." The cascade is ordered by measured cost (Section 7), and a
//! later test always runs on the system as *simplified* by the earlier
//! ones: SVPC absorbs single-variable constraints into scalar bounds, and
//! the Acyclic test eliminates every variable outside the constraint
//! cycle.

use crate::acyclic::Trace;
use crate::fourier_motzkin::FmLimits;
use crate::pipeline::{run_pipeline, NullProbe, PipelineConfig};
use crate::result::{Answer, TestKind};
use crate::system::{Constraint, System, VarBounds};

/// Result of running the cascade on a `t`-space system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeOutcome {
    /// The verdict, with a `t`-space witness for dependent answers.
    pub answer: Answer,
    /// Which test produced the verdict.
    pub used: TestKind,
}

/// Runs the cascade with default Fourier–Motzkin limits.
///
/// # Examples
///
/// ```
/// use dda_core::system::{Constraint, System};
/// use dda_core::cascade::run_cascade;
/// use dda_core::result::TestKind;
///
/// let mut s = System::new(1);
/// s.push(Constraint::new(vec![-1], -1)); // t ≥ 1
/// s.push(Constraint::new(vec![1], 0));   // t ≤ 0
/// let out = run_cascade(&s);
/// assert!(out.answer.is_independent());
/// assert_eq!(out.used, TestKind::Svpc);
/// ```
#[must_use]
pub fn run_cascade(system: &System) -> CascadeOutcome {
    run_cascade_with(system, FmLimits::default())
}

/// Runs the cascade with explicit Fourier–Motzkin limits.
///
/// A thin wrapper over [`run_pipeline`] with the full default test order
/// and the zero-cost [`NullProbe`].
#[must_use]
pub fn run_cascade_with(system: &System, limits: FmLimits) -> CascadeOutcome {
    run_pipeline(system, &PipelineConfig::full(), limits, &mut NullProbe)
}

/// Re-exported for tests: completes a witness through an elimination
/// trace. (Public consumers use [`run_cascade`].)
#[doc(hidden)]
#[must_use]
pub fn complete_with_trace(trace: &Trace, sample: &mut [i64]) -> Option<()> {
    trace.complete(sample)
}

/// Helper: bounds → explicit single-variable constraints (used by
/// benchmarks and ablations).
#[must_use]
pub fn bounds_to_constraints(bounds: &VarBounds) -> Vec<Constraint> {
    let n = bounds.len();
    let mut out = Vec::new();
    for v in 0..n {
        if let Some(u) = bounds.ub[v] {
            let mut row = vec![0i64; n];
            row[v] = 1;
            out.push(Constraint::new(row, u));
        }
        if let Some(l) = bounds.lb[v] {
            let mut row = vec![0i64; n];
            row[v] = -1;
            out.push(Constraint::new(row, l.saturating_neg()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(rows: &[(&[i64], i64)]) -> System {
        let n = rows.first().map_or(0, |(c, _)| c.len());
        let mut s = System::new(n);
        for (coeffs, rhs) in rows {
            s.push(Constraint::new(coeffs.to_vec(), *rhs));
        }
        s
    }

    fn check_dependent(s: &System, out: &CascadeOutcome) {
        let Answer::Dependent(Some(sample)) = &out.answer else {
            panic!("expected dependent with witness, got {out:?}");
        };
        assert_eq!(
            s.is_satisfied_by(sample),
            Some(true),
            "witness {sample:?} invalid for\n{s}"
        );
    }

    #[test]
    fn svpc_resolves_single_variable_systems() {
        let s = sys(&[(&[-1, 0], -1), (&[1, 0], 10), (&[0, 1], 10), (&[0, -1], -1)]);
        let out = run_cascade(&s);
        assert_eq!(out.used, TestKind::Svpc);
        check_dependent(&s, &out);
    }

    #[test]
    fn acyclic_resolves_one_directional_chains() {
        let s = sys(&[
            (&[1, 1, -1], 0),
            (&[-1, 0, 0], -1),
            (&[1, 0, 0], 10),
            (&[0, -1, 0], -1),
            (&[0, 0, 1], 4),
        ]);
        let out = run_cascade(&s);
        assert_eq!(out.used, TestKind::Acyclic);
        check_dependent(&s, &out);
    }

    #[test]
    fn loop_residue_resolves_difference_cycles() {
        // t0 = t1 (two-constraint cycle) with compatible bounds.
        let s = sys(&[
            (&[1, -1], 0),
            (&[-1, 1], 0),
            (&[-1, 0], -1),
            (&[1, 0], 10),
            (&[0, 1], 10),
            (&[0, -1], -1),
        ]);
        let out = run_cascade(&s);
        assert_eq!(out.used, TestKind::LoopResidue);
        check_dependent(&s, &out);
    }

    #[test]
    fn loop_residue_detects_negative_cycle() {
        // t0 ≤ t1 - 1 and t1 ≤ t0 - 1: cycle of value -2.
        let s = sys(&[(&[1, -1], -1), (&[-1, 1], -1)]);
        let out = run_cascade(&s);
        assert_eq!(out.used, TestKind::LoopResidue);
        assert!(out.answer.is_independent());
    }

    #[test]
    fn fourier_motzkin_handles_general_cycles() {
        // 2t0 - t1 ≤ 0 and t1 - 2t0 ≤ -1: unequal magnitudes, FM territory;
        // adds to 0 ≤ -1: infeasible.
        let s = sys(&[(&[2, -1], 0), (&[-2, 1], -1)]);
        let out = run_cascade(&s);
        assert_eq!(out.used, TestKind::FourierMotzkin);
        assert!(out.answer.is_independent());
    }

    #[test]
    fn fourier_motzkin_feasible_general_cycle() {
        // 2t0 - t1 ≤ 0, t1 - 2t0 ≤ 3, 0 ≤ t0 ≤ 5, 0 ≤ t1 ≤ 5.
        let s = sys(&[
            (&[2, -1], 0),
            (&[-2, 1], 3),
            (&[-1, 0], 0),
            (&[1, 0], 5),
            (&[0, -1], 0),
            (&[0, 1], 5),
        ]);
        let out = run_cascade(&s);
        assert_eq!(out.used, TestKind::FourierMotzkin);
        check_dependent(&s, &out);
    }

    #[test]
    fn acyclic_simplification_reaches_loop_residue() {
        // A difference cycle between t0, t1 plus a pendant t2 ≤ t0 that
        // the Acyclic phase strips off; witness must cover t2 too.
        let s = sys(&[
            (&[1, -1, 0], 0),
            (&[-1, 1, 0], 0),
            (&[0, 0, 1], 0),  // keep t2's bound single-var: t2 ≤ 0
            (&[1, 0, -1], 5), // hmm t0 - t2 ≤ 5: two-var, t2 appears once
            (&[-1, 0, 0], -1),
            (&[1, 0, 0], 10),
            (&[0, -1, 0], -1),
            (&[0, 1, 0], 10),
        ]);
        let out = run_cascade(&s);
        check_dependent(&s, &out);
    }

    #[test]
    fn empty_system_dependent() {
        let out = run_cascade(&System::new(0));
        assert!(matches!(out.answer, Answer::Dependent(_)));
        assert_eq!(out.used, TestKind::Svpc);
    }
}
