//! Typed certificates: evidence shipped with every verdict.
//!
//! The paper's claim is *exactness* — each cascaded test is exact on its
//! input class — but a verdict alone cannot demonstrate it. This module
//! defines the certificate grammar the solver emits and the independent
//! `dda-check` kernel replays. The two sides share only these data types
//! (plus [`DependenceProblem`](crate::problem::DependenceProblem) and
//! [`Matrix`]): the kernel re-derives everything else
//! by direct substitution in exact 128-bit arithmetic.
//!
//! # The proof system
//!
//! All refutations are nonnegative-combination proofs over rows of the
//! reduced `t`-space system `a·t ≤ c` (the paper's constraints after the
//! extended-GCD substitution `x = x₀ + B·t`):
//!
//! - [`Rule::Premise`] introduces a row by *value*; the kernel accepts it
//!   only if the row is a member of the system it recomputed itself (or a
//!   hypothesis row of the surrounding branch/direction split).
//! - [`Rule::Comb`] adds two earlier rows with nonnegative multipliers —
//!   sound for `≤` constraints.
//! - [`Rule::Div`] divides a row whose coefficients are all divisible by
//!   `d ≥ 1`, flooring the right-hand side — sound over the integers.
//!
//! A derivation *seals* when some derived row has all-zero coefficients
//! and a negative right-hand side: `0 ≤ c < 0`, contradiction. Splits
//! ([`FmTree::Split`], [`DirTree::Split`]) cover the integers — the
//! kernel checks `ge ≤ le + 1` for branch splits, and direction splits
//! are the trichotomy `D ≥ 1 ∨ D = 0 ∨ D ≤ −1` — so a refutation in
//! every region refutes the whole system.

use dda_linalg::Matrix;

/// One step of a linear-arithmetic derivation over `≤`-rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rule {
    /// Introduce the row `coeffs · t ≤ rhs` by value. Valid only when the
    /// row belongs to the checker's recomputed premise pool.
    Premise {
        /// Row coefficients over the `t` variables.
        coeffs: Vec<i64>,
        /// Right-hand side.
        rhs: i64,
    },
    /// `ca · row[a] + cb · row[b]` with `ca, cb ≥ 0` and `a, b` earlier
    /// steps.
    Comb {
        /// Index of the first earlier step.
        a: usize,
        /// Nonnegative multiplier for step `a`.
        ca: i64,
        /// Index of the second earlier step.
        b: usize,
        /// Nonnegative multiplier for step `b`.
        cb: i64,
    },
    /// Divide step `of` by `d ≥ 1`: every coefficient must be exactly
    /// divisible; the right-hand side floors.
    Div {
        /// Index of the earlier step being divided.
        of: usize,
        /// The divisor (`≥ 1`, divides every coefficient).
        d: i64,
    },
}

/// A straight-line derivation ending in a contradiction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Derivation {
    /// The steps, each referring only to earlier steps.
    pub rules: Vec<Rule>,
    /// Index of the sealing step: all-zero coefficients, negative rhs.
    pub seal: usize,
}

/// A Fourier–Motzkin refutation: either a sealed derivation, or an
/// integer branch `t_var ≤ le ∨ t_var ≥ ge` (with `ge ≤ le + 1`, so the
/// two sides cover ℤ) refuted on both sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FmTree {
    /// A contradiction derived without further splitting.
    Sealed(Derivation),
    /// Branch on an integer variable; both subtrees refute.
    Split {
        /// The `t` variable split on.
        var: usize,
        /// Left hypothesis: `t_var ≤ le`.
        le: i64,
        /// Right hypothesis: `t_var ≥ ge`. Coverage needs `ge ≤ le + 1`.
        ge: i64,
        /// Refutation under `t_var ≤ le`.
        left: Box<FmTree>,
        /// Refutation under `t_var ≥ ge`.
        right: Box<FmTree>,
    },
}

/// How a whole constraint system is refuted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefProof {
    /// The shared arena itself seals at step `seal` (SVPC interval
    /// emptiness, acyclic substitution, negative residue cycle).
    Arena {
        /// Index into [`SystemRefutation::arena`] of the sealing step.
        seal: usize,
    },
    /// A Fourier–Motzkin elimination / branch-and-bound tree whose leaf
    /// premises draw from the arena rows plus branch hypotheses.
    Fm {
        /// The branch tree.
        tree: FmTree,
    },
}

/// A refutation of one `t`-space constraint system: a derivation arena
/// (premises are checked against the recomputed system by value) plus the
/// proof shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemRefutation {
    /// Shared derivation steps; every step must verify.
    pub arena: Vec<Rule>,
    /// The proof built on top of the arena.
    pub proof: RefProof,
}

/// Exhaustion of direction-vector refinement: a trichotomy tree over
/// common-loop levels whose every leaf refutes its region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirTree {
    /// This region's system (base rows + path direction rows) is refuted.
    Refuted(SystemRefutation),
    /// Split level `level` into `<` (`D ≥ 1`), `=` (`D = 0`), `>`
    /// (`D ≤ −1`), where `D` is the level's reconstructed distance
    /// expression; together the three children cover every integer point.
    Split {
        /// The common-loop level split on.
        level: usize,
        /// Refutation under `D ≥ 1` (direction `<`).
        lt: Box<DirTree>,
        /// Refutation under `D = 0` (direction `=`).
        eq: Box<DirTree>,
        /// Refutation under `D ≤ −1` (direction `>`).
        gt: Box<DirTree>,
    },
}

/// The evidence attached to one pair's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// The verdict makes no exact claim (assumed dependence, unknown, or
    /// dependence reported without a witness); there is nothing to check.
    Conservative,
    /// An exact claim whose evidence did not transfer (v1 warm starts,
    /// improved-mode or mirrored memo hits). `--check` resolves these by
    /// re-analysis.
    Unverified,
    /// Dependent: a concrete integer point satisfying every equation and
    /// bound of the problem, checked by substitution.
    Witness {
        /// The point, over the problem's `x` variables in order.
        x: Vec<i64>,
    },
    /// Dependent with constant, equal subscripts (no system was built).
    ConstantsEqual,
    /// Independent with constant subscripts differing in some dimension.
    ConstantsDiffer,
    /// Independent by the extended GCD test: a rational row multiplier
    /// `y = numer / denom` with `yᵀA` integral but `yᵀb` fractional (or
    /// `yᵀA = 0`, `yᵀb ≠ 0`), so `A·x = b` has no integer solution.
    GcdRefutation {
        /// Numerators of `y`, one per equality row.
        numer: Vec<i64>,
        /// Common positive denominator.
        denom: i64,
    },
    /// Independent: the reduced `t`-space system is refuted outright.
    /// The kernel re-derives the `t` rows from the problem's bounds and
    /// the recorded lattice (whose soundness — `A·x₀ = b`, `A·B = 0` — it
    /// also checks).
    Refuted {
        /// Particular solution `x₀` of the equality system.
        particular: Vec<i64>,
        /// Basis `B` of the solution lattice (`x = x₀ + B·t`).
        basis: Matrix,
        /// Refutation of the translated bound system.
        refutation: SystemRefutation,
    },
    /// Independent by exhaustive direction refinement: every region of
    /// the direction trichotomy tree is refuted.
    DirectionsExhausted {
        /// Particular solution `x₀` of the equality system.
        particular: Vec<i64>,
        /// Basis `B` of the solution lattice.
        basis: Matrix,
        /// The refuted trichotomy tree.
        tree: DirTree,
    },
}

impl Certificate {
    /// Whether this certificate carries a checkable payload (as opposed
    /// to the [`Conservative`](Certificate::Conservative) /
    /// [`Unverified`](Certificate::Unverified) markers).
    #[must_use]
    pub fn is_checkable(&self) -> bool {
        !matches!(self, Certificate::Conservative | Certificate::Unverified)
    }
}

// --- provenance tracking (solver side) ------------------------------------

use dda_linalg::SmallVec;

use crate::system::Constraint;

/// A derived (non-premise) rule, `Copy` so the trail can log derivations
/// without touching the heap. Mirrors [`Rule::Comb`] / [`Rule::Div`].
#[derive(Debug, Clone, Copy)]
enum DerivedRule {
    /// `ca · step[a] + cb · step[b]`.
    Comb {
        a: usize,
        ca: i64,
        b: usize,
        cb: i64,
    },
    /// Step `of` divided by `d`.
    Div { of: usize, d: i64 },
}

impl Default for DerivedRule {
    fn default() -> DerivedRule {
        DerivedRule::Div { of: 0, d: 1 }
    }
}

/// Provenance state threaded through the solve pipeline. Arena steps
/// `0..n_premises` are the base system's rows, held *implicitly* — they
/// are cloned into [`Rule::Premise`] values only when a certificate is
/// actually emitted, so the dependent/undecided fast paths never pay for
/// them. `derived` logs the `Comb`/`Div` steps appended after the
/// premises (inline up to 8, covering every single-stage refutation);
/// `row_step` maps each live residual row to its arena step;
/// `lb_step`/`ub_step` map each variable's current bound to the arena
/// step whose row is exactly `−v ≤ −lb` / `v ≤ ub`.
///
/// `ok` poisons the trail: when a stage cannot account for a derivation
/// (a bound with no recorded step, an unextractable negative cycle), it
/// clears `ok` and continues computing the *identical* answer — the
/// certificate is simply withheld.
#[derive(Debug, Clone)]
pub(crate) struct Trail {
    n_premises: usize,
    derived: SmallVec<DerivedRule, 8>,
    pub row_step: SmallVec<usize, 12>,
    pub lb_step: SmallVec<Option<usize>, 6>,
    pub ub_step: SmallVec<Option<usize>, 6>,
    /// Arena step holding a sealed contradiction, set by the stage that
    /// proved infeasibility.
    pub seal: Option<usize>,
    pub ok: bool,
}

impl Trail {
    /// Seeds a trail from a constraint list: one implicit premise per row.
    pub fn for_rows(num_vars: usize, rows: &[Constraint]) -> Trail {
        Trail {
            n_premises: rows.len(),
            derived: SmallVec::new(),
            row_step: (0..rows.len()).collect(),
            lb_step: SmallVec::from_elem(None, num_vars),
            ub_step: SmallVec::from_elem(None, num_vars),
            seal: None,
            ok: true,
        }
    }

    /// Appends a derived rule, returning its arena index.
    ///
    /// # Panics
    ///
    /// Panics on [`Rule::Premise`]: premises are implicit (the base rows,
    /// in order) and must not be re-introduced mid-derivation.
    pub fn push(&mut self, rule: Rule) -> usize {
        let d = match rule {
            Rule::Comb { a, ca, b, cb } => DerivedRule::Comb { a, ca, b, cb },
            Rule::Div { of, d } => DerivedRule::Div { of, d },
            Rule::Premise { .. } => panic!("trail premises are implicit"),
        };
        self.derived.push(d);
        self.n_premises + self.derived.len() - 1
    }

    /// Materializes the arena: one [`Rule::Premise`] per `base` row (which
    /// must be the row list the trail was seeded from), then the logged
    /// derivations. Step numbering is identical to the eager construction
    /// this replaced, so certificates come out byte-for-byte the same.
    pub fn materialize(&self, base: &[Constraint]) -> Vec<Rule> {
        debug_assert_eq!(base.len(), self.n_premises);
        let mut rules = Vec::with_capacity(self.n_premises + self.derived.len());
        rules.extend(base.iter().map(|c| Rule::Premise {
            coeffs: c.coeffs.to_vec(),
            rhs: c.rhs,
        }));
        rules.extend(self.derived.iter().map(|d| match *d {
            DerivedRule::Comb { a, ca, b, cb } => Rule::Comb { a, ca, b, cb },
            DerivedRule::Div { of, d } => Rule::Div { of, d },
        }));
        rules
    }

    /// Converts the trail into a refutation sealed in the arena itself,
    /// if the trail stayed accountable.
    pub fn into_arena_refutation(self, base: &[Constraint]) -> Option<SystemRefutation> {
        if !self.ok {
            return None;
        }
        let seal = self.seal?;
        Some(SystemRefutation {
            arena: self.materialize(base),
            proof: RefProof::Arena { seal },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkable_partition() {
        assert!(!Certificate::Conservative.is_checkable());
        assert!(!Certificate::Unverified.is_checkable());
        assert!(Certificate::Witness { x: vec![1] }.is_checkable());
        assert!(Certificate::ConstantsEqual.is_checkable());
        assert!(Certificate::ConstantsDiffer.is_checkable());
    }

    #[test]
    fn trail_seals_only_when_ok() {
        let rows = vec![Constraint::new(vec![1], 0)];
        let mut t = Trail::for_rows(1, &rows);
        assert!(
            t.clone().into_arena_refutation(&rows).is_none(),
            "no seal yet"
        );
        t.seal = Some(0);
        assert!(t.clone().into_arena_refutation(&rows).is_some());
        t.ok = false;
        assert!(t.into_arena_refutation(&rows).is_none(), "poisoned");
    }

    #[test]
    fn trail_materializes_premises_then_derivations() {
        let rows = vec![Constraint::new(vec![2], 5), Constraint::new(vec![-1], -3)];
        let mut t = Trail::for_rows(1, &rows);
        let div = t.push(Rule::Div { of: 0, d: 2 });
        assert_eq!(div, 2, "first derived step follows the premises");
        let comb = t.push(Rule::Comb {
            a: div,
            ca: 1,
            b: 1,
            cb: 1,
        });
        assert_eq!(comb, 3);
        let arena = t.materialize(&rows);
        assert_eq!(
            arena,
            vec![
                Rule::Premise {
                    coeffs: vec![2],
                    rhs: 5
                },
                Rule::Premise {
                    coeffs: vec![-1],
                    rhs: -3
                },
                Rule::Div { of: 0, d: 2 },
                Rule::Comb {
                    a: 2,
                    ca: 1,
                    b: 1,
                    cb: 1
                },
            ]
        );
    }
}
