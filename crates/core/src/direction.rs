//! Direction and distance vectors (Section 6).
//!
//! Direction vectors summarize, per common loop, the relation between the
//! iteration `i` executing the first reference and the iteration `i′`
//! executing the second when they touch the same location. This module
//! implements the standard Burke–Cytron hierarchy — test `(*, …, *)`, and
//! on dependence expand one `*` at a time into `<`, `=`, `>` — plus the
//! paper's two pruning optimizations:
//!
//! - **unused variables**: a loop index appearing in no subscript and no
//!   other loop's bound contributes a free `*` without any testing;
//! - **distance pruning**: when the GCD solution fixes `i′ − i` to a
//!   constant, the direction at that level is known and the other two
//!   need not be tried.
//!
//! Distance vectors fall out of the same computation: `i′ − i` expressed
//! over the free variables is a constant exactly when the basis rows
//! cancel.

use crate::certificate::DirTree;
use crate::fourier_motzkin::FmLimits;
use crate::gcd::Reduced;
use crate::pipeline::{run_pipeline_collect, PipelineConfig, Probe};
use crate::problem::{DependenceProblem, XVar};
use crate::result::{Answer, Direction, DirectionVector, DistanceVector};
use crate::stats::TestCounts;
use crate::system::{Constraint, System};

/// Pruning switches (both on by default; Table 4 turns both off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectionConfig {
    /// Skip levels whose indices are unused (free `*`).
    pub prune_unused: bool,
    /// Skip levels whose distance is a known constant.
    pub prune_distance: bool,
    /// Burke–Cytron's "nice cases" optimization, suggested in Section 6:
    /// when the refinable levels live in disjoint connected components of
    /// the constraint system, test each level's three directions
    /// independently (3·L tests) and take the cross product, instead of
    /// walking the 3^L hierarchy. Exact whenever it applies; levels that
    /// share components fall back to hierarchical refinement.
    pub separable: bool,
    /// Fourier–Motzkin limits for the refinement cascades.
    pub fm_limits: FmLimits,
    /// Which tests the refinement cascades run, in order.
    pub pipeline: PipelineConfig,
}

impl Default for DirectionConfig {
    fn default() -> DirectionConfig {
        DirectionConfig {
            prune_unused: true,
            prune_distance: true,
            separable: false,
            fm_limits: FmLimits::default(),
            pipeline: PipelineConfig::full(),
        }
    }
}

/// The outcome of direction-vector refinement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectionAnalysis {
    /// Every direction vector under which the references are dependent
    /// (empty means the refinement proved independence — the paper's
    /// "implicit branch and bound").
    pub vectors: Vec<DirectionVector>,
    /// Constant per-level distances `i′ − i` where known.
    pub distance: DistanceVector,
    /// Whether every reported vector rests on exact test answers.
    pub exact: bool,
    /// When refinement proved independence (`vectors` is empty), the
    /// direction-split tree whose leaves refute every region — `None` if
    /// any branch's refutation could not be assembled.
    pub tree: Option<DirTree>,
}

/// How one level will be handled during refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LevelPlan {
    /// Test `<`, `=`, `>` hierarchically.
    Refine,
    /// Emit a fixed direction without testing.
    Fixed(Direction),
}

/// `i′ − i` at `level`, as an affine function of `t`: `(coeffs, constant)`.
fn distance_expr(
    problem: &DependenceProblem,
    reduced: &Reduced,
    level: usize,
) -> Option<(Vec<i64>, i64)> {
    let ia = problem.var_index(&XVar::CommonA(level))?;
    let ib = problem.var_index(&XVar::CommonB(level))?;
    let (ca, ka) = reduced.x_as_t(ia);
    let (cb, kb) = reduced.x_as_t(ib);
    let coeffs: Option<Vec<i64>> = cb.iter().zip(&ca).map(|(b, a)| b.checked_sub(*a)).collect();
    Some((coeffs?, kb.checked_sub(ka)?))
}

/// Whether common level `level` is *unused*: its index variables appear in
/// no subscript equation and in no bound constraint that also involves
/// another variable.
fn level_unused(problem: &DependenceProblem, level: usize) -> bool {
    let Some(ia) = problem.var_index(&XVar::CommonA(level)) else {
        return false;
    };
    let Some(ib) = problem.var_index(&XVar::CommonB(level)) else {
        return false;
    };
    for row in &problem.eq_coeffs {
        if row[ia] != 0 || row[ib] != 0 {
            return false;
        }
    }
    for c in &problem.bounds {
        let involves = c.coeffs[ia] != 0 || c.coeffs[ib] != 0;
        if involves && c.num_nonzero() > 1 {
            return false; // coupled to another variable's bound
        }
    }
    true
}

/// Builds the `t`-space constraints asserting direction `dir` at a level
/// whose distance expression is `(coeffs, constant)`.
///
/// With `D(t) = i′ − i`: `<` means `D ≥ 1`, `=` means `D = 0`, `>` means
/// `D ≤ −1`.
fn direction_constraints(coeffs: &[i64], constant: i64, dir: Direction) -> Option<Vec<Constraint>> {
    let neg: Option<Vec<i64>> = coeffs.iter().map(|c| c.checked_neg()).collect();
    let neg = neg?;
    match dir {
        Direction::Lt => {
            // −D_coeffs · t ≤ D_const − 1
            Some(vec![Constraint::new(neg, constant.checked_sub(1)?)])
        }
        Direction::Eq => Some(vec![
            Constraint::new(coeffs.to_vec(), constant.checked_neg()?),
            Constraint::new(neg, constant),
        ]),
        Direction::Gt => Some(vec![Constraint::new(
            coeffs.to_vec(),
            constant.checked_neg()?.checked_sub(1)?,
        )]),
        Direction::Any => Some(vec![]),
    }
}

/// Runs hierarchical direction-vector refinement for a pair whose base
/// (`*`-vector) query did not prove independence. Every additional
/// cascade invocation is recorded in `counts` and reported to `probe`.
#[must_use]
pub fn analyze_directions<P: Probe>(
    problem: &DependenceProblem,
    reduced: &Reduced,
    config: DirectionConfig,
    counts: &mut TestCounts,
    probe: &mut P,
) -> DirectionAnalysis {
    let levels = problem.num_common;
    let mut distance = DistanceVector(vec![None; levels]);
    let mut plans = Vec::with_capacity(levels);
    let mut exprs = Vec::with_capacity(levels);

    for k in 0..levels {
        let expr = distance_expr(problem, reduced, k);
        match &expr {
            Some((coeffs, c)) if coeffs.iter().all(|&v| v == 0) => {
                distance.0[k] = Some(*c);
                let dir = match c.cmp(&0) {
                    std::cmp::Ordering::Greater => Direction::Lt,
                    std::cmp::Ordering::Equal => Direction::Eq,
                    std::cmp::Ordering::Less => Direction::Gt,
                };
                if config.prune_distance {
                    plans.push(LevelPlan::Fixed(dir));
                } else {
                    plans.push(LevelPlan::Refine);
                }
            }
            _ => {
                if config.prune_unused && level_unused(problem, k) {
                    plans.push(LevelPlan::Fixed(Direction::Any));
                } else {
                    plans.push(LevelPlan::Refine);
                }
            }
        }
        exprs.push(expr);
    }

    if config.separable {
        if let Some(analysis) = try_separable(
            &reduced.system,
            &plans,
            &exprs,
            &distance,
            config,
            counts,
            probe,
        ) {
            return analysis;
        }
    }

    // `exact` tracks the refinement only: even when the base (`*`) query
    // answered Unknown, the refined tests cover every direction
    // combination, so an all-independent refinement proves independence —
    // the paper's "implicit branch and bound" (Section 6, four cases).
    let mut state = Refiner {
        base_system: &reduced.system,
        plans: &plans,
        exprs: &exprs,
        config,
        counts,
        probe,
        vectors: Vec::new(),
        exact: true,
        current: vec![Direction::Any; levels],
    };
    let tree = state.refine(0, Vec::new());

    DirectionAnalysis {
        vectors: state.vectors,
        distance,
        exact: state.exact,
        tree,
    }
}

/// Union-find over `t`-variables, with variables that co-occur in a
/// constraint merged into one component.
fn components(system: &System) -> Vec<usize> {
    let n = system.num_vars;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for c in &system.constraints {
        let mut first = None;
        for (v, &a) in c.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            match first {
                None => first = Some(v),
                Some(f) => {
                    let (rf, rv) = (find(&mut parent, f), find(&mut parent, v));
                    parent[rf] = rv;
                }
            }
        }
    }
    (0..n).map(|v| find(&mut parent, v)).collect()
}

/// Attempts the dimension-by-dimension computation. Returns `None` when
/// the refinable levels are coupled (shared components) and the caller
/// must fall back to hierarchical refinement.
#[allow(clippy::too_many_arguments)]
fn try_separable<P: Probe>(
    system: &System,
    plans: &[LevelPlan],
    exprs: &[Option<(Vec<i64>, i64)>],
    distance: &DistanceVector,
    config: DirectionConfig,
    counts: &mut TestCounts,
    probe: &mut P,
) -> Option<DirectionAnalysis> {
    let comp = components(system);
    let refine_levels: Vec<usize> = plans
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, LevelPlan::Refine))
        .map(|(k, _)| k)
        .collect();

    // Component footprint of each refinable level; overlap disqualifies.
    let mut seen = std::collections::BTreeSet::new();
    let mut footprints = Vec::with_capacity(refine_levels.len());
    for &k in &refine_levels {
        let (coeffs, _) = exprs[k].as_ref()?;
        let mut fp = std::collections::BTreeSet::new();
        for (v, &a) in coeffs.iter().enumerate() {
            if a != 0 {
                fp.insert(comp[v]);
            }
        }
        for c in &fp {
            if !seen.insert(*c) {
                return None; // two levels share a component
            }
        }
        footprints.push(fp);
    }

    // Per-level feasible direction sets (3 tests per level).
    let mut per_level: Vec<Vec<Direction>> = Vec::with_capacity(refine_levels.len());
    let mut exact = true;
    for &k in &refine_levels {
        let (coeffs, c0) = exprs[k].as_ref().expect("checked above");
        let mut feasible = Vec::new();
        let mut branches: Vec<Option<DirTree>> = Vec::with_capacity(3);
        for dir in Direction::REFINED {
            let Some(new_cs) = direction_constraints(coeffs, *c0, dir) else {
                exact = false;
                feasible.push(dir); // conservative: keep untestable dirs
                branches.push(None);
                continue;
            };
            let mut sys = system.clone();
            for cst in new_cs {
                sys.push(cst);
            }
            let (out, refutation) =
                run_pipeline_collect(&sys, &config.pipeline, config.fm_limits, probe);
            counts.record(out.used, out.answer.is_independent());
            match out.answer {
                Answer::Independent => branches.push(refutation.map(DirTree::Refuted)),
                Answer::Dependent(_) => {
                    feasible.push(dir);
                    branches.push(None);
                }
                Answer::Unknown => {
                    exact = false;
                    feasible.push(dir);
                    branches.push(None);
                }
            }
        }
        if feasible.is_empty() {
            // All three directions at this level refuted: one split node
            // certifies independence of the whole system.
            let tree = match (branches.pop(), branches.pop(), branches.pop()) {
                (Some(Some(gt)), Some(Some(eq)), Some(Some(lt))) => Some(DirTree::Split {
                    level: k,
                    lt: Box::new(lt),
                    eq: Box::new(eq),
                    gt: Box::new(gt),
                }),
                _ => None,
            };
            return Some(DirectionAnalysis {
                vectors: Vec::new(),
                distance: distance.clone(),
                exact,
                tree,
            });
        }
        per_level.push(feasible);
    }

    // Cross product, with fixed levels interleaved.
    let mut vectors = vec![DirectionVector(vec![Direction::Any; plans.len()])];
    for (k, plan) in plans.iter().enumerate() {
        let choices: Vec<Direction> = match plan {
            LevelPlan::Fixed(d) => vec![*d],
            LevelPlan::Refine => {
                let idx = refine_levels.iter().position(|&r| r == k).expect("refine");
                per_level[idx].clone()
            }
        };
        let mut next = Vec::with_capacity(vectors.len() * choices.len());
        for v in &vectors {
            for &d in &choices {
                let mut nv = v.clone();
                nv.0[k] = d;
                next.push(nv);
            }
        }
        vectors = next;
    }

    Some(DirectionAnalysis {
        vectors,
        distance: distance.clone(),
        exact,
        tree: None,
    })
}

struct Refiner<'a, P: Probe> {
    base_system: &'a System,
    plans: &'a [LevelPlan],
    exprs: &'a [Option<(Vec<i64>, i64)>],
    config: DirectionConfig,
    counts: &'a mut TestCounts,
    probe: &'a mut P,
    vectors: Vec<DirectionVector>,
    exact: bool,
    current: Vec<Direction>,
}

impl<P: Probe> Refiner<'_, P> {
    /// Refines from `level` down. Returns the refutation tree for this
    /// subtree when every direction branch below it was proven infeasible
    /// with checkable evidence — impossible once any vector is emitted —
    /// and `None` otherwise. Deeper splits may refute a branch whose own
    /// cascade answered `Dependent`/`Unknown`: the trichotomy at the
    /// deeper level still covers that branch's region.
    fn refine(&mut self, level: usize, extra: Vec<Constraint>) -> Option<DirTree> {
        if level == self.plans.len() {
            self.vectors.push(DirectionVector(self.current.clone()));
            return None;
        }
        match self.plans[level] {
            LevelPlan::Fixed(dir) => {
                self.current[level] = dir;
                self.refine(level + 1, extra)
            }
            LevelPlan::Refine => {
                let mut branches: Vec<Option<DirTree>> = Vec::with_capacity(3);
                for dir in Direction::REFINED {
                    let Some((coeffs, c)) = &self.exprs[level] else {
                        // No distance expression (overflow): keep `*` and
                        // accept inexactness.
                        self.exact = false;
                        self.current[level] = Direction::Any;
                        self.refine(level + 1, extra.clone());
                        return None;
                    };
                    let Some(new_cs) = direction_constraints(coeffs, *c, dir) else {
                        self.exact = false;
                        branches.push(None);
                        continue;
                    };
                    let mut extended = extra.clone();
                    extended.extend(new_cs);
                    let mut sys = self.base_system.clone();
                    for cst in &extended {
                        sys.push(cst.clone());
                    }
                    let (out, refutation) = run_pipeline_collect(
                        &sys,
                        &self.config.pipeline,
                        self.config.fm_limits,
                        self.probe,
                    );
                    self.counts.record(out.used, out.answer.is_independent());
                    match out.answer {
                        Answer::Independent => {
                            branches.push(refutation.map(DirTree::Refuted));
                        }
                        Answer::Dependent(_) => {
                            self.current[level] = dir;
                            branches.push(self.refine(level + 1, extended));
                        }
                        Answer::Unknown => {
                            self.exact = false;
                            self.current[level] = dir;
                            branches.push(self.refine(level + 1, extended));
                        }
                    }
                }
                match (branches.pop(), branches.pop(), branches.pop()) {
                    (Some(Some(gt)), Some(Some(eq)), Some(Some(lt))) => Some(DirTree::Split {
                        level,
                        lt: Box::new(lt),
                        eq: Box::new(eq),
                        gt: Box::new(gt),
                    }),
                    _ => None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::run_cascade;
    use crate::gcd::{gcd_preprocess, GcdOutcome};
    use crate::pipeline::NullProbe;
    use crate::problem::build_problem;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    fn directions(src: &str, config: DirectionConfig) -> (DirectionAnalysis, TestCounts) {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        assert_eq!(pairs.len(), 1);
        let problem = build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap();
        let GcdOutcome::Reduced(reduced) = gcd_preprocess(&problem).unwrap() else {
            panic!("GCD-independent: no directions to analyze");
        };
        let base = run_cascade(&reduced.system);
        assert!(!base.answer.is_independent(), "base must be dependent");
        let mut counts = TestCounts::default();
        let out = analyze_directions(&problem, &reduced, config, &mut counts, &mut NullProbe);
        (out, counts)
    }

    fn vecs(a: &DirectionAnalysis) -> Vec<String> {
        let mut v: Vec<String> = a.vectors.iter().map(ToString::to_string).collect();
        v.sort();
        v
    }

    #[test]
    fn forward_flow_dependence() {
        // a[i+1] = a[i]: i + 1 = i′ ⇒ distance 1, direction (<).
        let (out, counts) = directions(
            "for i = 1 to 10 { a[i + 1] = a[i] + 7; }",
            DirectionConfig::default(),
        );
        assert_eq!(vecs(&out), vec!["(<)"]);
        assert_eq!(out.distance.0, vec![Some(1)]);
        // Distance pruning: no tests at all.
        assert_eq!(counts.total(), 0);
        assert!(out.exact);
    }

    #[test]
    fn same_iteration_dependence() {
        let (out, _) = directions(
            "for i = 1 to 10 { a[i] = a[i] + 7; }",
            DirectionConfig::default(),
        );
        assert_eq!(vecs(&out), vec!["(=)"]);
        assert_eq!(out.distance.0, vec![Some(0)]);
    }

    #[test]
    fn paper_section6_two_vector_example() {
        // for i, j: a[i][j] = a[2i][j]: the write at iteration i meets the
        // read at iteration i′ = i/2, so the raw relation is i ≥ i′. The
        // paper reports the same dependences normalized source→sink as
        // (<, =) and (=, *); we keep the raw (first-ref, second-ref)
        // orientation: (=, =) and (>, =).
        let cfg = DirectionConfig {
            prune_distance: false,
            prune_unused: false,
            ..DirectionConfig::default()
        };
        let (out, counts) = directions(
            "for i = 0 to 10 { for j = 0 to 10 { a[i][j] = a[2 * i][j] + 7; } }",
            cfg,
        );
        assert_eq!(vecs(&out), vec!["(=, =)", "(>, =)"]);
        assert!(counts.total() > 0);
    }

    #[test]
    fn distance_pruning_cuts_tests() {
        let no_prune = DirectionConfig {
            prune_distance: false,
            prune_unused: false,
            ..DirectionConfig::default()
        };
        let src = "for i = 1 to 10 { a[i + 3] = a[i] + 7; }";
        let (out1, c1) = directions(src, no_prune);
        let (out2, c2) = directions(src, DirectionConfig::default());
        assert_eq!(vecs(&out1), vecs(&out2));
        assert_eq!(vecs(&out2), vec!["(<)"]);
        assert!(c1.total() > c2.total());
        assert_eq!(c2.total(), 0);
    }

    #[test]
    fn unused_variable_pruning() {
        // The paper's Section 6 example shape: the outer index i appears
        // in no subscript and no bound, so its direction is `*` for free.
        let src = "for i = 1 to 10 { for j = 1 to 10 { a[j + 5] = a[j] + 3; } }";
        let pruned = DirectionConfig::default();
        let (out, counts) = directions(src, pruned);
        assert_eq!(vecs(&out), vec!["(*, <)"]);
        assert_eq!(counts.total(), 0); // unused i + distance-pruned j
        let unpruned = DirectionConfig {
            prune_unused: false,
            prune_distance: false,
            ..DirectionConfig::default()
        };
        let (out2, counts2) = directions(src, unpruned);
        // Without pruning, i expands into all three directions.
        assert_eq!(vecs(&out2), vec!["(<, <)", "(=, <)", "(>, <)"]);
        assert!(counts2.total() >= 6);
    }

    #[test]
    fn coupled_two_dimensional() {
        // a[i][j] = a[j][i]: dependence requires i = j′, j = i′.
        let (out, _) = directions(
            "for i = 1 to 4 { for j = 1 to 4 { a[i][j] = a[j][i] + 1; } }",
            DirectionConfig::default(),
        );
        // Vectors: (<, >) when i < j, (=, =) on the diagonal, (>, <).
        assert_eq!(vecs(&out), vec!["(<, >)", "(=, =)", "(>, <)"]);
        assert!(out.exact);
    }

    /// Separable mode must produce exactly the hierarchical vectors on
    /// separable systems, with fewer tests, and fall back cleanly on
    /// coupled ones.
    #[test]
    fn separable_equals_hierarchical() {
        let separable_srcs = [
            // i and j never interact: 3 + 3 tests instead of 3 + 3·k.
            "for i = 1 to 8 { for j = 1 to 8 { a[2 * i][2 * j] = a[i][j] + 1; } }",
            "for i = 1 to 8 { for j = 1 to 8 { a[i][j] = a[2 * i][j + 1] + 1; } }",
        ];
        for src in separable_srcs {
            let cfg_h = DirectionConfig {
                prune_distance: false,
                prune_unused: false,
                ..DirectionConfig::default()
            };
            let cfg_s = DirectionConfig {
                separable: true,
                ..cfg_h
            };
            let (out_h, counts_h) = directions(src, cfg_h);
            let (out_s, counts_s) = directions(src, cfg_s);
            assert_eq!(vecs(&out_h), vecs(&out_s), "{src}");
            assert_eq!(out_h.distance, out_s.distance);
            assert!(out_s.exact);
            assert!(
                counts_s.total() <= counts_h.total(),
                "{src}: separable {} vs hierarchical {}",
                counts_s.total(),
                counts_h.total()
            );
        }
        // Coupled case: the transpose — falls back, still identical.
        let src = "for i = 1 to 4 { for j = 1 to 4 { a[i][j] = a[j][i] + 1; } }";
        let cfg_s = DirectionConfig {
            separable: true,
            ..DirectionConfig::default()
        };
        let (out_h, _) = directions(src, DirectionConfig::default());
        let (out_s, _) = directions(src, cfg_s);
        assert_eq!(vecs(&out_h), vecs(&out_s));
    }

    #[test]
    fn implicit_branch_and_bound_upgrade() {
        // The Section 6 mechanism: even if the base (`*`) query could not
        // decide, refinement covers every direction combination, so an
        // all-independent, all-exact refinement proves independence. Feed
        // a problem that is genuinely infeasible and check the refinement
        // comes back empty and exact — the analyzer upgrades exactly when
        // it does.
        let p = parse_program("for i = 1 to 10 { a[i] = a[i + 20] + 1; }").unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        let problem = build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap();
        let GcdOutcome::Reduced(reduced) = gcd_preprocess(&problem).unwrap() else {
            panic!("reaches the cascade");
        };
        // (Pretend the base query returned Unknown; refinement does not
        // consult it.)
        let mut counts = TestCounts::default();
        let cfg = DirectionConfig {
            prune_distance: false, // force actual testing
            prune_unused: false,
            ..DirectionConfig::default()
        };
        let out = analyze_directions(&problem, &reduced, cfg, &mut counts, &mut NullProbe);
        assert!(out.vectors.is_empty());
        assert!(out.exact);
        assert!(counts.total() >= 1, "directions were actually tested");
    }

    #[test]
    fn refinement_can_prove_independence_of_every_vector() {
        // a[2i] vs a[2i + 2] with distance 1 in t: direction (<) only.
        let (out, _) = directions(
            "for i = 1 to 10 { a[2 * i + 2] = a[2 * i] + 1; }",
            DirectionConfig::default(),
        );
        assert_eq!(vecs(&out), vec!["(<)"]);
        assert_eq!(out.distance.0, vec![Some(1)]);
    }
}
