//! Human-readable explanations of a pair's analysis — the paper's worked
//! examples, generated for arbitrary input.
//!
//! Compiler engineers debugging a surprising serialization need to see
//! *why*: which equality system was built, what the extended GCD did to
//! it, which test of the cascade decided, and what the direction
//! refinement concluded. [`explain_pair_with`] runs the *same* probed
//! pipeline the analyzer runs — honoring the caller's
//! [`AnalyzerConfig`] (Fourier–Motzkin limits, test order) — records the
//! [`TraceEvent`] stream, and renders it. Nothing here mutates analyzer
//! state or memo tables.

use std::fmt::Write as _;

use dda_ir::Access;

use crate::analyzer::AnalyzerConfig;
use crate::gcd::{solve_equalities, EqOutcome};
use crate::pipeline::{RecordingProbe, StageVerdict, TraceEvent};
use crate::problem::{build_problem, constant_compare, DependenceProblem};
use crate::steps::{self, ReduceEffects};

/// Formats one linear row over the problem's variables.
fn linear(problem: &DependenceProblem, coeffs: &[i64]) -> String {
    let mut s = String::new();
    for (v, &c) in coeffs.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let name = problem.vars[v].to_string();
        if s.is_empty() {
            match c {
                1 => write!(s, "{name}"),
                -1 => write!(s, "-{name}"),
                _ => write!(s, "{c}*{name}"),
            }
            .expect("string write");
        } else if c > 0 {
            if c == 1 {
                write!(s, " + {name}").expect("string write");
            } else {
                write!(s, " + {c}*{name}").expect("string write");
            }
        } else if c == -1 {
            write!(s, " - {name}").expect("string write");
        } else {
            write!(s, " - {}*{name}", -c).expect("string write");
        }
    }
    if s.is_empty() {
        s.push('0');
    }
    s
}

/// Produces a step-by-step narration of the analysis of one pair, with
/// the default configuration (plus the given symbolic-support flag).
///
/// # Examples
///
/// ```
/// use dda_core::explain::explain_pair;
/// use dda_ir::{extract_accesses, parse_program, reference_pairs};
///
/// let p = parse_program("for i = 1 to 10 { a[i] = a[i + 10]; }")?;
/// let set = extract_accesses(&p);
/// let pairs = reference_pairs(&set, false);
/// let text = explain_pair(pairs[0].a, pairs[0].b, pairs[0].common, true);
/// assert!(text.contains("extended GCD"));
/// assert!(text.contains("INDEPENDENT"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn explain_pair(a: &Access, b: &Access, common: usize, symbolic: bool) -> String {
    let config = AnalyzerConfig {
        symbolic,
        ..AnalyzerConfig::default()
    };
    explain_pair_with(&config, a, b, common)
}

/// Produces a step-by-step narration of the analysis of one pair under an
/// explicit configuration.
///
/// The narration and the analyzer agree by construction: both run
/// [`steps::analyze_reduced_probed`] with the same configuration, so an
/// analyzer that gives up at its Fourier–Motzkin limits is *explained* as
/// giving up — it does not silently re-run with different limits.
#[must_use]
pub fn explain_pair_with(config: &AnalyzerConfig, a: &Access, b: &Access, common: usize) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "pair: {a}  vs  {b}  ({common} common loop(s))");

    if let Some(dependent) = constant_compare(a, b) {
        let _ = writeln!(
            w,
            "constant subscripts: compared directly -> {}",
            if dependent {
                "DEPENDENT (same element every time)"
            } else {
                "INDEPENDENT (different elements)"
            }
        );
        return out;
    }

    let problem = match build_problem(a, b, common, config.symbolic) {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(w, "cannot build an affine system ({e}): ASSUMED dependent");
            return out;
        }
    };

    let _ = writeln!(
        w,
        "variables: {}",
        problem
            .vars
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(w, "subscript equations:");
    for (row, rhs) in problem.eq_coeffs.iter().zip(&problem.eq_rhs) {
        let _ = writeln!(w, "    {} = {rhs}", linear(&problem, row));
    }
    let _ = writeln!(w, "loop-bound constraints:");
    for c in &problem.bounds {
        let _ = writeln!(w, "    {} <= {}", linear(&problem, &c.coeffs), c.rhs);
    }

    let lattice = match solve_equalities(&problem) {
        None => {
            let _ = writeln!(w, "extended GCD: arithmetic overflow -> ASSUMED dependent");
            return out;
        }
        Some(EqOutcome::Independent { .. }) => {
            let _ = writeln!(
                w,
                "extended GCD: the equality system has no integer solution \
                 -> INDEPENDENT (bounds not needed)"
            );
            return out;
        }
        Some(EqOutcome::Lattice(l)) => l,
    };

    // Run the analyzer's own compute path with a recording probe, then
    // narrate the event stream.
    let mut probe = RecordingProbe::default();
    let mut fx = ReduceEffects::default();
    let template = steps::pair_template(a, b, common);
    let _report =
        steps::analyze_reduced_probed(config, &problem, &lattice, template, &mut fx, &mut probe);

    let mut in_refinement = false;
    let mut base_decided = false;
    let mut saw_reduced = false;
    for event in &probe.events {
        match event {
            TraceEvent::ReduceOverflow => {
                let _ = writeln!(w, "extended GCD: arithmetic overflow -> ASSUMED dependent");
                return out;
            }
            TraceEvent::Reduced { free_vars, system } => {
                saw_reduced = true;
                let _ = writeln!(
                    w,
                    "extended GCD: solutions form a lattice over {free_vars} free variable(s); \
                     bounds become:"
                );
                for c in &system.constraints {
                    let _ = writeln!(w, "    {c}");
                }
            }
            TraceEvent::Stage { test, verdict, .. } if !in_refinement => match verdict {
                StageVerdict::Independent => {
                    base_decided = true;
                    let _ = writeln!(w, "cascade: {test} proves INDEPENDENT");
                }
                StageVerdict::Dependent => {
                    base_decided = true;
                    let _ = writeln!(w, "cascade: {test} proves DEPENDENT");
                }
                StageVerdict::Unknown => {
                    base_decided = true;
                    let _ = writeln!(
                        w,
                        "cascade: {test} hit its effort limits -> ASSUMED dependent"
                    );
                }
                StageVerdict::Pass => {}
            },
            TraceEvent::Witness { x } => {
                let pairs: Vec<String> = problem
                    .vars
                    .iter()
                    .zip(x)
                    .map(|(v, val)| format!("{v} = {val}"))
                    .collect();
                let _ = writeln!(w, "    witness: {}", pairs.join(", "));
            }
            TraceEvent::RefinementStarted => {
                if !base_decided {
                    // Every configured test passed without deciding (or
                    // none was configured): the base query is assumed.
                    let _ = writeln!(w, "cascade: no test decided -> ASSUMED dependent");
                    base_decided = true;
                }
                in_refinement = true;
            }
            TraceEvent::Directions {
                vectors,
                distance,
                tests,
                ..
            } => {
                let _ = writeln!(w, "distance vector: {distance}");
                if vectors.is_empty() {
                    let _ = writeln!(
                        w,
                        "direction refinement: every direction independent -> INDEPENDENT \
                         (implicit branch and bound)"
                    );
                } else {
                    let vecs: Vec<String> = vectors.iter().map(ToString::to_string).collect();
                    let _ = writeln!(
                        w,
                        "direction vectors: {}   ({tests} refinement test(s))",
                        vecs.join(" ")
                    );
                }
            }
            _ => {}
        }
    }
    if saw_reduced && !base_decided {
        let _ = writeln!(w, "cascade: no test decided -> ASSUMED dependent");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::DependenceAnalyzer;
    use crate::fourier_motzkin::FmLimits;
    use crate::result::Answer;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    fn explain(src: &str) -> String {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        explain_pair(pairs[0].a, pairs[0].b, pairs[0].common, true)
    }

    #[test]
    fn narrates_gcd_independence() {
        let text = explain("for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }");
        assert!(text.contains("no integer solution"), "{text}");
        assert!(text.contains("INDEPENDENT"), "{text}");
    }

    #[test]
    fn narrates_cascade_and_directions() {
        let text = explain("for i = 1 to 10 { a[i + 1] = a[i]; }");
        assert!(text.contains("SVPC proves DEPENDENT"), "{text}");
        assert!(text.contains("witness:"), "{text}");
        assert!(text.contains("direction vectors: (<)"), "{text}");
        assert!(text.contains("distance vector: (1)"), "{text}");
    }

    #[test]
    fn narrates_constant_pairs() {
        let text = explain("for i = 1 to 10 { a[3] = a[4]; }");
        assert!(text.contains("compared directly"), "{text}");
    }

    #[test]
    fn narrates_nonaffine() {
        let text = explain("for i = 1 to 10 { a[i * i] = a[i]; }");
        assert!(text.contains("ASSUMED dependent"), "{text}");
    }

    #[test]
    fn shows_equations_with_variable_names() {
        let text =
            explain("for i1 = 1 to 10 { for i2 = 1 to 10 { a[i1][i2] = a[i2 + 10][i1 + 9]; } }");
        assert!(text.contains("i0 - i1' = 10"), "{text}");
        assert!(text.contains("i1 - i0' = 9"), "{text}");
    }

    /// The regression the refactor fixes: `explain` used to re-run the
    /// cascade with *default* FM limits, so a pair the analyzer assumed
    /// (limits hit) was narrated as exactly decided. Now both run the
    /// same configured pipeline and must agree.
    #[test]
    fn explain_agrees_with_analyzer_at_fm_limits() {
        // Needs FM: coupled unequal-magnitude coefficients survive the
        // cheap tests; a depth-0 branch limit then forces FM to give up.
        let src = "for i = 1 to 6 { for j = 1 to 6 {
            a[2 * i + j] = a[i + 2 * j + 1] + 1;
        } }";
        let program = parse_program(src).unwrap();
        let set = extract_accesses(&program);
        let pairs = reference_pairs(&set, false);
        let tight = AnalyzerConfig {
            fm_limits: FmLimits {
                max_constraints: 1,
                max_branch_depth: 0,
            },
            ..AnalyzerConfig::default()
        };

        let mut analyzer = DependenceAnalyzer::with_config(tight);
        let report = analyzer.analyze_pair(pairs[0].a, pairs[0].b, pairs[0].common);
        assert_eq!(report.result.answer, Answer::Unknown, "{:?}", report.result);

        let text = explain_pair_with(&tight, pairs[0].a, pairs[0].b, pairs[0].common);
        assert!(text.contains("hit its effort limits"), "{text}");

        // With default limits both decide exactly — and say so.
        let default_text = explain_pair(pairs[0].a, pairs[0].b, pairs[0].common, true);
        assert!(
            !default_text.contains("hit its effort limits"),
            "{default_text}"
        );
    }
}
