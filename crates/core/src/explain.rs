//! Human-readable explanations of a pair's analysis — the paper's worked
//! examples, generated for arbitrary input.
//!
//! Compiler engineers debugging a surprising serialization need to see
//! *why*: which equality system was built, what the extended GCD did to
//! it, which test of the cascade decided, and what the direction
//! refinement concluded. [`explain_pair`] replays the pipeline and
//! narrates each step (re-running the cheap tests; nothing here mutates
//! analyzer state or memo tables).

use std::fmt::Write as _;

use dda_ir::Access;

use crate::cascade::run_cascade;
use crate::direction::{analyze_directions, DirectionConfig};
use crate::gcd::{gcd_preprocess, GcdOutcome};
use crate::problem::{build_problem, constant_compare, DependenceProblem};
use crate::result::Answer;
use crate::stats::TestCounts;

/// Formats one linear row over the problem's variables.
fn linear(problem: &DependenceProblem, coeffs: &[i64]) -> String {
    let mut s = String::new();
    for (v, &c) in coeffs.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let name = problem.vars[v].to_string();
        if s.is_empty() {
            match c {
                1 => write!(s, "{name}"),
                -1 => write!(s, "-{name}"),
                _ => write!(s, "{c}*{name}"),
            }
            .expect("string write");
        } else if c > 0 {
            if c == 1 {
                write!(s, " + {name}").expect("string write");
            } else {
                write!(s, " + {c}*{name}").expect("string write");
            }
        } else if c == -1 {
            write!(s, " - {name}").expect("string write");
        } else {
            write!(s, " - {}*{name}", -c).expect("string write");
        }
    }
    if s.is_empty() {
        s.push('0');
    }
    s
}

/// Produces a step-by-step narration of the analysis of one pair.
///
/// # Examples
///
/// ```
/// use dda_core::explain::explain_pair;
/// use dda_ir::{extract_accesses, parse_program, reference_pairs};
///
/// let p = parse_program("for i = 1 to 10 { a[i] = a[i + 10]; }")?;
/// let set = extract_accesses(&p);
/// let pairs = reference_pairs(&set, false);
/// let text = explain_pair(pairs[0].a, pairs[0].b, pairs[0].common, true);
/// assert!(text.contains("extended GCD"));
/// assert!(text.contains("INDEPENDENT"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn explain_pair(a: &Access, b: &Access, common: usize, symbolic: bool) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "pair: {a}  vs  {b}  ({common} common loop(s))");

    if let Some(dependent) = constant_compare(a, b) {
        let _ = writeln!(
            w,
            "constant subscripts: compared directly -> {}",
            if dependent {
                "DEPENDENT (same element every time)"
            } else {
                "INDEPENDENT (different elements)"
            }
        );
        return out;
    }

    let problem = match build_problem(a, b, common, symbolic) {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(w, "cannot build an affine system ({e}): ASSUMED dependent");
            return out;
        }
    };

    let _ = writeln!(
        w,
        "variables: {}",
        problem
            .vars
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(w, "subscript equations:");
    for (row, rhs) in problem.eq_coeffs.iter().zip(&problem.eq_rhs) {
        let _ = writeln!(w, "    {} = {rhs}", linear(&problem, row));
    }
    let _ = writeln!(w, "loop-bound constraints:");
    for c in &problem.bounds {
        let _ = writeln!(w, "    {} <= {}", linear(&problem, &c.coeffs), c.rhs);
    }

    let reduced = match gcd_preprocess(&problem) {
        None => {
            let _ = writeln!(w, "extended GCD: arithmetic overflow -> ASSUMED dependent");
            return out;
        }
        Some(GcdOutcome::Independent) => {
            let _ = writeln!(
                w,
                "extended GCD: the equality system has no integer solution \
                 -> INDEPENDENT (bounds not needed)"
            );
            return out;
        }
        Some(GcdOutcome::Reduced(r)) => {
            let _ = writeln!(
                w,
                "extended GCD: solutions form a lattice over {} free variable(s); \
                 bounds become:",
                r.num_t()
            );
            for c in &r.system.constraints {
                let _ = writeln!(w, "    {c}");
            }
            r
        }
    };

    let outcome = run_cascade(&reduced.system);
    match &outcome.answer {
        Answer::Independent => {
            let _ = writeln!(w, "cascade: {} proves INDEPENDENT", outcome.used);
            return out;
        }
        Answer::Dependent(sample) => {
            let _ = writeln!(w, "cascade: {} proves DEPENDENT", outcome.used);
            if let Some(t) = sample {
                if let Some(x) = reduced.x_at(t) {
                    let pairs: Vec<String> = problem
                        .vars
                        .iter()
                        .zip(&x)
                        .map(|(v, val)| format!("{v} = {val}"))
                        .collect();
                    let _ = writeln!(w, "    witness: {}", pairs.join(", "));
                }
            }
        }
        Answer::Unknown => {
            let _ = writeln!(
                w,
                "cascade: {} hit its effort limits -> ASSUMED dependent",
                outcome.used
            );
        }
    }

    let mut counts = TestCounts::default();
    let analysis = analyze_directions(&problem, &reduced, DirectionConfig::default(), &mut counts);
    let _ = writeln!(w, "distance vector: {}", analysis.distance);
    if analysis.vectors.is_empty() {
        let _ = writeln!(
            w,
            "direction refinement: every direction independent -> INDEPENDENT \
             (implicit branch and bound)"
        );
    } else {
        let vecs: Vec<String> = analysis.vectors.iter().map(ToString::to_string).collect();
        let _ = writeln!(
            w,
            "direction vectors: {}   ({} refinement test(s))",
            vecs.join(" "),
            counts.total()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    fn explain(src: &str) -> String {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        explain_pair(pairs[0].a, pairs[0].b, pairs[0].common, true)
    }

    #[test]
    fn narrates_gcd_independence() {
        let text = explain("for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }");
        assert!(text.contains("no integer solution"), "{text}");
        assert!(text.contains("INDEPENDENT"), "{text}");
    }

    #[test]
    fn narrates_cascade_and_directions() {
        let text = explain("for i = 1 to 10 { a[i + 1] = a[i]; }");
        assert!(text.contains("SVPC proves DEPENDENT"), "{text}");
        assert!(text.contains("witness:"), "{text}");
        assert!(text.contains("direction vectors: (<)"), "{text}");
        assert!(text.contains("distance vector: (1)"), "{text}");
    }

    #[test]
    fn narrates_constant_pairs() {
        let text = explain("for i = 1 to 10 { a[3] = a[4]; }");
        assert!(text.contains("compared directly"), "{text}");
    }

    #[test]
    fn narrates_nonaffine() {
        let text = explain("for i = 1 to 10 { a[i * i] = a[i]; }");
        assert!(text.contains("ASSUMED dependent"), "{text}");
    }

    #[test]
    fn shows_equations_with_variable_names() {
        let text =
            explain("for i1 = 1 to 10 { for i2 = 1 to 10 { a[i1][i2] = a[i2 + 10][i1 + 9]; } }");
        assert!(text.contains("i0 - i1' = 10"), "{text}");
        assert!(text.contains("i1 - i0' = 9"), "{text}");
    }
}
