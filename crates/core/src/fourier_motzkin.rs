//! The Fourier–Motzkin backup test (Section 3.5).
//!
//! Exact real-valued elimination: project variables away one at a time by
//! combining every lower bound with every upper bound. If the projected
//! system is infeasible over the reals, the integer system is certainly
//! infeasible (independent, exact). If it is feasible, back-substitution
//! walks the variables in reverse, picking "the integer at the middle of
//! the allowed range" (the paper's heuristic):
//!
//! - if an integral sample comes out, the system is dependent (exact);
//! - if the *first* back-substituted variable's range contains no integer,
//!   the system is independent (exact) — the paper's special case, since
//!   no other choice constrains that range;
//! - otherwise branch and bound splits on the empty range and recurses,
//!   giving up (`Unknown`) after a bounded number of steps.
//!
//! Engineering details that keep the arithmetic small and the test sharp:
//! every derived row is gcd-normalized with a floored right-hand side
//! (preserving exactly the integer solutions), and the elimination order
//! greedily minimizes the number of generated rows (`p·q`). The hot loop
//! is storage- and certificate-frugal: rows live in inline
//! [`CoeffVec`] storage (cloning one is a `memcpy`), each elimination
//! step moves its bound rows into a bump arena and records *ranges*
//! instead of per-step vectors, back-substitution compares bounds in the
//! tiered [`Coeff`] arithmetic (`i64`-component fast path, no gcd), and
//! derivation steps are logged as `Copy` values that materialize into
//! [`Rule`]s only when a refutation is actually returned.

#![warn(clippy::arithmetic_side_effects)]

use std::mem;
use std::ops::Range;

use dda_linalg::{num, Coeff, CoeffVec};

use crate::certificate::{Derivation, FmTree, Rule};
use crate::system::Constraint;

/// Outcome of the Fourier–Motzkin test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FmOutcome {
    /// No real (hence no integer) solution: independent, exact.
    Infeasible,
    /// An integral witness was found: dependent, exact.
    Sample(Vec<i64>),
    /// Real-feasible but no integral witness within the branch-and-bound
    /// budget: dependence must be assumed (inexact).
    Unknown,
}

/// Hard caps that bound the (worst-case exponential) work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmLimits {
    /// Maximum number of rows the elimination may generate.
    pub max_constraints: usize,
    /// Maximum branch-and-bound recursion depth.
    pub max_branch_depth: usize,
}

impl Default for FmLimits {
    fn default() -> FmLimits {
        FmLimits {
            max_constraints: 20_000,
            max_branch_depth: 12,
        }
    }
}

/// A derived elimination step, logged as a `Copy` value. Premises are
/// implicit — the input rows, in order — so the derivation arena is built
/// ([`materialize`]) only when a refutation is actually emitted; the
/// dependent and `Unknown` paths never construct a single [`Rule`].
#[derive(Debug, Clone, Copy)]
enum DStep {
    /// `ca · step[a] + cb · step[b]`.
    Comb {
        a: usize,
        ca: i64,
        b: usize,
        cb: i64,
    },
    /// Step `of` divided by `d`.
    Div { of: usize, d: i64 },
}

/// Builds the local derivation arena: one [`Rule::Premise`] per input
/// row, then the logged derivations. Step numbering matches the indices
/// recorded during elimination (`inputs.len() + log position`), so the
/// output is byte-for-byte what the eager construction used to produce.
fn materialize(inputs: &[Constraint], derived: &[DStep]) -> Vec<Rule> {
    let mut rules = Vec::with_capacity(inputs.len().saturating_add(derived.len()));
    rules.extend(inputs.iter().map(|c| Rule::Premise {
        coeffs: c.coeffs.to_vec(),
        rhs: c.rhs,
    }));
    rules.extend(derived.iter().map(|d| match *d {
        DStep::Comb { a, ca, b, cb } => Rule::Comb { a, ca, b, cb },
        DStep::Div { of, d } => Rule::Div { of, d },
    }));
    rules
}

/// One elimination step, recorded for back-substitution: the eliminated
/// variable plus the ranges of its lower/upper bound rows in the bound
/// arena (where partitioning moved them).
#[derive(Debug, Clone)]
struct Step {
    var: usize,
    lo: Range<usize>,
    up: Range<usize>,
}

/// Runs Fourier–Motzkin with default limits.
///
/// # Examples
///
/// ```
/// use dda_core::system::Constraint;
/// use dda_core::fourier_motzkin::{fourier_motzkin, FmOutcome};
///
/// // t0 + t1 ≤ 3, t0 ≥ 1, t1 ≥ 1: dependent with e.g. (1, 1).
/// let cs = vec![
///     Constraint::new(vec![1, 1], 3),
///     Constraint::new(vec![-1, 0], -1),
///     Constraint::new(vec![0, -1], -1),
/// ];
/// let FmOutcome::Sample(t) = fourier_motzkin(2, &cs) else { panic!() };
/// assert!(t[0] + t[1] <= 3 && t[0] >= 1 && t[1] >= 1);
/// ```
#[must_use]
pub fn fourier_motzkin(num_vars: usize, constraints: &[Constraint]) -> FmOutcome {
    fourier_motzkin_with(num_vars, constraints, FmLimits::default())
}

/// Runs Fourier–Motzkin with explicit limits.
#[must_use]
pub fn fourier_motzkin_with(
    num_vars: usize,
    constraints: &[Constraint],
    limits: FmLimits,
) -> FmOutcome {
    solve(num_vars, constraints, limits, 0).0
}

/// Runs Fourier–Motzkin and, on `Infeasible`, also returns a refutation
/// tree whose leaf premises are drawn (by value) from `constraints`.
///
/// Public for the differential test oracle; not a stable API.
#[doc(hidden)]
#[must_use]
pub fn fourier_motzkin_cert(
    num_vars: usize,
    constraints: &[Constraint],
    limits: FmLimits,
) -> (FmOutcome, Option<FmTree>) {
    solve(num_vars, constraints, limits, 0)
}

/// The elimination core. Alongside the outcome it keeps a `Copy` log of
/// derived steps (premises are the input rows, implicitly) and, when the
/// answer is `Infeasible`, materializes a tree whose sealed derivations
/// refute `constraints`; branch hypotheses become the premises of the
/// recursive subtrees.
// Unchecked ops here are structurally safe: arena step numbering bounded
// by `max_constraints`, a `Comb` multiplier whose negation `combine`
// already proved representable, and i128 midpoint arithmetic guarded by
// checked addition.
#[allow(clippy::arithmetic_side_effects)]
fn solve(
    num_vars: usize,
    constraints: &[Constraint],
    limits: FmLimits,
    depth: usize,
) -> (FmOutcome, Option<FmTree>) {
    let n_inputs = constraints.len();
    let mut derived: Vec<DStep> = Vec::new();
    // The live working set: (row, local derivation step).
    let mut rows: Vec<(Constraint, usize)> = Vec::with_capacity(n_inputs);
    for (i, c) in constraints.iter().enumerate() {
        let mut step = i;
        let mut c = c.clone();
        let g = num::gcd_slice(&c.coeffs);
        c.normalize();
        if g > 1 {
            derived.push(DStep::Div { of: step, d: g });
            step = n_inputs + derived.len() - 1;
        }
        if c.is_trivial() {
            if !c.trivially_satisfied() {
                let tree = FmTree::Sealed(Derivation {
                    rules: materialize(constraints, &derived),
                    seal: step,
                });
                return (FmOutcome::Infeasible, Some(tree));
            }
            continue;
        }
        rows.push((c, step));
    }

    let mut remaining: Vec<usize> = (0..num_vars)
        .filter(|&v| rows.iter().any(|(c, _)| c.coeffs[v] != 0))
        .collect();
    // Bump arena of bound rows: each elimination step moves its lower and
    // upper rows here (contiguously) and records ranges, so the per-step
    // row sets cost no per-step allocations and survive untouched for
    // back-substitution.
    let mut arena: Vec<(Constraint, usize)> = Vec::new();
    let mut steps: Vec<Step> = Vec::new();

    while let Some(pick_idx) = pick_variable(&rows, &remaining) {
        let v = remaining.swap_remove(pick_idx);
        // Partition: move `v`'s lower rows into the arena, then its upper
        // rows, then compact the untouched rest in place. Taken slots are
        // recognizable by their empty coefficient vectors.
        let lo_start = arena.len();
        for (c, s) in &mut rows {
            if c.coeffs.get(v).is_some_and(|&a| a < 0) {
                arena.push((mem::take(c), *s));
            }
        }
        let lo_end = arena.len();
        for (c, s) in &mut rows {
            if c.coeffs.get(v).is_some_and(|&a| a > 0) {
                arena.push((mem::take(c), *s));
            }
        }
        let up_end = arena.len();
        rows.retain(|(c, _)| !c.coeffs.is_empty());

        for li in lo_start..lo_end {
            for ui in lo_end..up_end {
                let (lo, lo_s) = &arena[li];
                let (up, up_s) = &arena[ui];
                let Some(mut combined) = combine(lo, up, v) else {
                    return (FmOutcome::Unknown, None); // overflow
                };
                // combine succeeding proves `−a_lo` did not overflow.
                derived.push(DStep::Comb {
                    a: *lo_s,
                    ca: up.coeffs[v],
                    b: *up_s,
                    cb: -lo.coeffs[v],
                });
                let mut cstep = n_inputs + derived.len() - 1;
                let g = num::gcd_slice(&combined.coeffs);
                combined.normalize();
                if g > 1 {
                    derived.push(DStep::Div { of: cstep, d: g });
                    cstep = n_inputs + derived.len() - 1;
                }
                if combined.is_trivial() {
                    if !combined.trivially_satisfied() {
                        let tree = FmTree::Sealed(Derivation {
                            rules: materialize(constraints, &derived),
                            seal: cstep,
                        });
                        return (FmOutcome::Infeasible, Some(tree));
                    }
                } else {
                    rows.push((combined, cstep));
                }
                if rows.len() > limits.max_constraints {
                    return (FmOutcome::Unknown, None);
                }
            }
        }
        steps.push(Step {
            var: v,
            lo: lo_start..lo_end,
            up: lo_end..up_end,
        });
    }
    debug_assert!(rows.iter().all(|(c, _)| c.is_trivial()));

    // Real-feasible. Back-substitute in reverse elimination order.
    let mut sample = vec![0i64; num_vars];
    let mut assigned = vec![false; num_vars];
    for (k, step) in steps.iter().rev().enumerate() {
        let lowers = &arena[step.lo.clone()];
        let uppers = &arena[step.up.clone()];
        let lo = tightest(lowers, step.var, &sample, &assigned, true);
        let up = tightest(uppers, step.var, &sample, &assigned, false);
        let (lo, up) = match (lo, up) {
            (Err(()), _) | (_, Err(())) => return (FmOutcome::Unknown, None), // overflow
            (Ok(l), Ok(u)) => (l, u),
        };
        let lo_int = lo.as_ref().map(Coeff::ceil);
        let up_int = up.as_ref().map(Coeff::floor);
        let value = match (lo_int, up_int) {
            (Some(l), Some(u)) if l > u => {
                // Empty integer range.
                if k == 0 {
                    // No other choices constrain the first back-substituted
                    // variable: its real range is the exact projection, so
                    // an empty integer range proves independence.
                    let tree = seal_last_var(constraints, derived, lowers, uppers, step.var);
                    return (FmOutcome::Infeasible, tree);
                }
                if depth >= limits.max_branch_depth {
                    return (FmOutcome::Unknown, None);
                }
                // Branch: t_v ≤ ⌊lo⌋  ∨  t_v ≥ ⌈up⌉ covers every integer.
                return branch(
                    num_vars,
                    constraints,
                    limits,
                    depth,
                    step.var,
                    lo.expect("two-sided").floor(),
                    up.expect("two-sided").ceil(),
                );
            }
            (Some(l), Some(u)) => {
                // The integer nearest the middle of the allowed range:
                // ⌊(l + u + 1) / 2⌋, computed with checked addition so
                // extreme bounds fall back to `l` instead of wrapping.
                let mid = l
                    .checked_add(u)
                    .and_then(|s| s.checked_add(1))
                    .map_or(l, |s| s.div_euclid(2));
                mid.clamp(l, u)
            }
            (Some(l), None) => l,
            (None, Some(u)) => u,
            (None, None) => 0,
        };
        let Ok(value) = i64::try_from(value) else {
            return (FmOutcome::Unknown, None);
        };
        sample[step.var] = value;
        assigned[step.var] = true;
    }
    (FmOutcome::Sample(sample), None)
}

/// Seals the empty integer range of the first back-substituted variable:
/// its rows are single-variable (±1 after normalization — every other
/// variable was eliminated before it, zeroing its coefficient), so the
/// tightest lower row `−v ≤ −l` plus the tightest upper row `v ≤ u` sums
/// to `0 ≤ u − l < 0`. Returns `None` if the rows violate that shape.
// i128-widened row constants and in-bounds step numbering cannot overflow.
#[allow(clippy::arithmetic_side_effects)]
fn seal_last_var(
    inputs: &[Constraint],
    mut derived: Vec<DStep>,
    lowers: &[(Constraint, usize)],
    uppers: &[(Constraint, usize)],
    v: usize,
) -> Option<FmTree> {
    let mut best_lo: Option<(i128, usize)> = None; // (l, arena step)
    for (c, s) in lowers {
        if c.single_var() != Some(v) || c.coeffs[v] != -1 {
            return None;
        }
        let l = -i128::from(c.rhs);
        if best_lo.is_none_or(|(b, _)| l > b) {
            best_lo = Some((l, *s));
        }
    }
    let mut best_up: Option<(i128, usize)> = None; // (u, arena step)
    for (c, s) in uppers {
        if c.single_var() != Some(v) || c.coeffs[v] != 1 {
            return None;
        }
        let u = i128::from(c.rhs);
        if best_up.is_none_or(|(b, _)| u < b) {
            best_up = Some((u, *s));
        }
    }
    let ((l, lo_s), (u, up_s)) = (best_lo?, best_up?);
    debug_assert!(l > u, "range was reported empty");
    derived.push(DStep::Comb {
        a: up_s,
        ca: 1,
        b: lo_s,
        cb: 1,
    });
    let seal = inputs.len() + derived.len() - 1;
    Some(FmTree::Sealed(Derivation {
        rules: materialize(inputs, &derived),
        seal,
    }))
}

/// Picks the remaining variable minimizing the number of generated rows
/// (`p·q − p − q`, Fourier–Motzkin's growth measure); returns its index in
/// `remaining`.
// `p`, `q` are row counts capped by `FmLimits::max_constraints`, so the
// i64 growth measure `p*q - p - q` stays far from overflow.
#[allow(clippy::arithmetic_side_effects)]
fn pick_variable(rows: &[(Constraint, usize)], remaining: &[usize]) -> Option<usize> {
    remaining
        .iter()
        .enumerate()
        .map(|(idx, &v)| {
            let p = rows.iter().filter(|(c, _)| c.coeffs[v] > 0).count() as i64;
            let q = rows.iter().filter(|(c, _)| c.coeffs[v] < 0).count() as i64;
            (idx, p * q - p - q)
        })
        .min_by_key(|&(_, growth)| growth)
        .map(|(idx, _)| idx)
}

/// Combines a lower bound (`a_v < 0`) with an upper bound (`a_v > 0`) so
/// the coefficient of `v` cancels. Returns `None` on overflow.
fn combine(lo: &Constraint, up: &Constraint, v: usize) -> Option<Constraint> {
    let a_lo = lo.coeffs[v]; // < 0
    let a_up = up.coeffs[v]; // > 0
    let m_lo = a_up; // multiply lower row by the upper coefficient
    let m_up = a_lo.checked_neg()?; // and the upper row by |lower coefficient|
    let mut coeffs = CoeffVec::new();
    for (l, u) in lo.coeffs.iter().zip(&up.coeffs) {
        let term = l.checked_mul(m_lo)?.checked_add(u.checked_mul(m_up)?)?;
        coeffs.push(term);
    }
    debug_assert_eq!(coeffs[v], 0);
    let rhs = lo
        .rhs
        .checked_mul(m_lo)?
        .checked_add(up.rhs.checked_mul(m_up)?)?;
    Some(Constraint::new(coeffs, rhs))
}

/// The tightest bound on `var` over `rows`, given the already-assigned
/// sample values. `is_lower` selects max-of-lowers vs min-of-uppers.
/// `Ok(None)` means unbounded; `Err(())` signals overflow.
///
/// Bounds are built as [`Coeff`]s: the dominant small-coefficient rows
/// stay on the `i64`-component fast path (two multiplies per comparison,
/// no gcd), promoting only when components actually outgrow it.
#[allow(clippy::result_unit_err)]
fn tightest(
    rows: &[(Constraint, usize)],
    var: usize,
    sample: &[i64],
    assigned: &[bool],
    is_lower: bool,
) -> Result<Option<Coeff>, ()> {
    let mut best: Option<Coeff> = None;
    for (c, _) in rows {
        let a = c.coeffs[var];
        debug_assert_ne!(a, 0);
        let mut rest = i128::from(c.rhs);
        for (j, &aj) in c.coeffs.iter().enumerate() {
            if j != var && aj != 0 {
                // Unassigned variables here were eliminated earlier (and
                // will be back-substituted later); their coefficients in
                // this row are necessarily zero. Assigned ones contribute.
                debug_assert!(assigned[j] || sample[j] == 0);
                rest = rest
                    .checked_sub(
                        i128::from(aj)
                            .checked_mul(i128::from(sample[j]))
                            .ok_or(())?,
                    )
                    .ok_or(())?;
            }
        }
        let bound = Coeff::ratio128(rest, i128::from(a)).map_err(|_| ())?;
        best = Some(match best {
            None => bound,
            Some(b) if is_lower => b.max(bound),
            Some(b) => b.min(bound),
        });
    }
    Ok(best)
}

// `depth + 1` is bounded by `FmLimits::max_branch_depth`.
#[allow(clippy::arithmetic_side_effects)]
fn branch(
    num_vars: usize,
    constraints: &[Constraint],
    limits: FmLimits,
    depth: usize,
    var: usize,
    le_val: i128,
    ge_val: i128,
) -> (FmOutcome, Option<FmTree>) {
    let (Ok(le_val), Ok(ge_val)) = (i64::try_from(le_val), i64::try_from(ge_val)) else {
        return (FmOutcome::Unknown, None);
    };
    let mut left = Vec::with_capacity(constraints.len() + 1);
    left.extend_from_slice(constraints);
    let mut coeffs = CoeffVec::from_elem(0, num_vars);
    coeffs[var] = 1;
    left.push(Constraint::new(coeffs.clone(), le_val));
    let mut right = Vec::with_capacity(constraints.len() + 1);
    right.extend_from_slice(constraints);
    coeffs[var] = -1;
    let Some(neg) = ge_val.checked_neg() else {
        return (FmOutcome::Unknown, None);
    };
    right.push(Constraint::new(coeffs, neg));

    let (left_out, left_tree) = solve(num_vars, &left, limits, depth + 1);
    match left_out {
        FmOutcome::Sample(s) => return (FmOutcome::Sample(s), None),
        FmOutcome::Infeasible => {}
        FmOutcome::Unknown => {
            // Even if the right branch proves infeasible, the left side
            // stays unresolved.
            return match solve(num_vars, &right, limits, depth + 1).0 {
                FmOutcome::Sample(s) => (FmOutcome::Sample(s), None),
                _ => (FmOutcome::Unknown, None),
            };
        }
    }
    let (right_out, right_tree) = solve(num_vars, &right, limits, depth + 1);
    match right_out {
        FmOutcome::Infeasible => {
            // Both sides refuted: `t_var ≤ le ∨ t_var ≥ ge` covers ℤ.
            let tree = match (left_tree, right_tree) {
                (Some(l), Some(r)) => Some(FmTree::Split {
                    var,
                    le: le_val,
                    ge: ge_val,
                    left: Box::new(l),
                    right: Box::new(r),
                }),
                _ => None,
            };
            (FmOutcome::Infeasible, tree)
        }
        other => (other, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;

    fn sys(rows: &[(&[i64], i64)]) -> (usize, Vec<Constraint>) {
        let n = rows.first().map_or(0, |(c, _)| c.len());
        (
            n,
            rows.iter()
                .map(|(c, r)| Constraint::new(c.to_vec(), *r))
                .collect(),
        )
    }

    fn assert_sample(rows: &[(&[i64], i64)]) -> Vec<i64> {
        let (n, cs) = sys(rows);
        let FmOutcome::Sample(t) = fourier_motzkin(n, &cs) else {
            panic!("expected sample for {rows:?}");
        };
        let mut s = System::new(n);
        for c in &cs {
            s.push(c.clone());
        }
        assert!(s.is_satisfied_by(&t).unwrap(), "witness {t:?} invalid");
        t
    }

    #[test]
    fn simple_feasible() {
        assert_sample(&[(&[1, 1], 3), (&[-1, 0], -1), (&[0, -1], -1)]);
    }

    #[test]
    fn real_infeasible() {
        // t ≥ 2 and t ≤ 1.
        let (n, cs) = sys(&[(&[-1], -2), (&[1], 1)]);
        assert_eq!(fourier_motzkin(n, &cs), FmOutcome::Infeasible);
    }

    #[test]
    fn integer_gap_detected_exactly() {
        // 2t = 1: real solution 0.5, no integer. The single remaining
        // variable's empty integer range proves independence.
        let (n, cs) = sys(&[(&[2], 1), (&[-2], -1)]);
        assert_eq!(fourier_motzkin(n, &cs), FmOutcome::Infeasible);
    }

    #[test]
    fn coupled_integer_gap_via_branch_and_bound() {
        // 2t0 + 2t1 = 1 over integers: infeasible, but real-feasible.
        // (GCD normalization already tightens 2t0+2t1 ≤ 1 to t0+t1 ≤ 0 and
        // ≥ 1: directly infeasible.)
        let (n, cs) = sys(&[(&[2, 2], 1), (&[-2, -2], -1)]);
        assert_eq!(fourier_motzkin(n, &cs), FmOutcome::Infeasible);
    }

    #[test]
    fn branch_and_bound_finds_lattice_point() {
        // 3t0 + 5t1 = 7 with 0 ≤ t0,t1 ≤ 10: t0=4,t1=-1 out of range;
        // feasible at t0 = 4? 3*4=12 no. Try: 3*4+5*(-1)=7 (t1<0). In
        // range: t0=4,t1=-1 invalid; 3* -1 +5*2 = 7 (t0<0). Actually
        // t0=4, t1=-1 and t0=-1,t1=2 are the only small ones... with
        // 0 ≤ t ≤ 10 there is NO solution: 3t0+5t1=7, t1=(7-3t0)/5
        // integral needs 3t0 ≡ 7 (mod 5) → t0 ≡ 4 (mod 5): t0=4 → t1=-1;
        // t0=9 → t1=-4. So infeasible over the box.
        let (n, cs) = sys(&[
            (&[3, 5], 7),
            (&[-3, -5], -7),
            (&[-1, 0], 0),
            (&[0, -1], 0),
            (&[1, 0], 10),
            (&[0, 1], 10),
        ]);
        assert_eq!(fourier_motzkin(n, &cs), FmOutcome::Infeasible);
    }

    #[test]
    fn branch_and_bound_positive_case() {
        // 3t0 + 5t1 = 22, 0 ≤ t0,t1 ≤ 10: t0=4, t1=2 works.
        assert_sample(&[
            (&[3, 5], 22),
            (&[-3, -5], -22),
            (&[-1, 0], 0),
            (&[0, -1], 0),
            (&[1, 0], 10),
            (&[0, 1], 10),
        ]);
    }

    #[test]
    fn unconstrained_variables_default_zero() {
        let (_, cs) = sys(&[(&[1, 0], 5)]);
        let FmOutcome::Sample(t) = fourier_motzkin(2, &cs) else {
            panic!()
        };
        assert_eq!(t[1], 0);
        assert!(t[0] <= 5);
    }

    #[test]
    fn empty_system_feasible() {
        assert_eq!(fourier_motzkin(0, &[]), FmOutcome::Sample(vec![]));
        assert_eq!(fourier_motzkin(3, &[]), FmOutcome::Sample(vec![0, 0, 0]));
    }

    #[test]
    fn trivial_contradiction() {
        let (n, cs) = sys(&[(&[0, 0], -3)]);
        assert_eq!(fourier_motzkin(n, &cs), FmOutcome::Infeasible);
    }

    #[test]
    fn three_variable_system() {
        // t0 + t1 + t2 = 10, each in [0, 4]: e.g. (2, 4, 4).
        assert_sample(&[
            (&[1, 1, 1], 10),
            (&[-1, -1, -1], -10),
            (&[-1, 0, 0], 0),
            (&[0, -1, 0], 0),
            (&[0, 0, -1], 0),
            (&[1, 0, 0], 4),
            (&[0, 1, 0], 4),
            (&[0, 0, 1], 4),
        ]);
    }

    #[test]
    fn middle_of_range_heuristic_used() {
        // 0 ≤ t ≤ 10: middle is 5.
        let (n, cs) = sys(&[(&[-1], 0), (&[1], 10)]);
        let FmOutcome::Sample(t) = fourier_motzkin(n, &cs) else {
            panic!()
        };
        assert_eq!(t, vec![5]);
    }

    #[test]
    fn midpoint_survives_extreme_bounds() {
        // The widest range the elimination itself survives: the midpoint
        // arithmetic must not wrap (the old `Rational::new(l + u, 2)` used
        // an unchecked i128 addition). Here l + u = -1: midpoint 0.
        let half = i64::MAX / 2;
        let (n, cs) = sys(&[(&[-1], half), (&[1], half - 1)]);
        let FmOutcome::Sample(t) = fourier_motzkin(n, &cs) else {
            panic!()
        };
        assert_eq!(t, vec![0], "midpoint of [-MAX/2, MAX/2 - 1]");
    }

    #[test]
    fn tight_limits_yield_unknown() {
        let limits = FmLimits {
            max_constraints: 1,
            max_branch_depth: 0,
        };
        // A system that must generate a few rows.
        let (n, cs) = sys(&[(&[1, 1], 3), (&[1, -1], 0), (&[-1, 1], 0), (&[-1, -1], -1)]);
        let out = fourier_motzkin_with(n, &cs, limits);
        assert!(matches!(out, FmOutcome::Unknown | FmOutcome::Sample(_)));
    }
}
