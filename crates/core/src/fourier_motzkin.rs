//! The Fourier–Motzkin backup test (Section 3.5).
//!
//! Exact real-valued elimination: project variables away one at a time by
//! combining every lower bound with every upper bound. If the projected
//! system is infeasible over the reals, the integer system is certainly
//! infeasible (independent, exact). If it is feasible, back-substitution
//! walks the variables in reverse, picking "the integer at the middle of
//! the allowed range" (the paper's heuristic):
//!
//! - if an integral sample comes out, the system is dependent (exact);
//! - if the *first* back-substituted variable's range contains no integer,
//!   the system is independent (exact) — the paper's special case, since
//!   no other choice constrains that range;
//! - otherwise branch and bound splits on the empty range and recurses,
//!   giving up (`Unknown`) after a bounded number of steps.
//!
//! Two engineering details keep the arithmetic small and the test sharp:
//! every derived row is gcd-normalized with a floored right-hand side
//! (preserving exactly the integer solutions), and the elimination order
//! greedily minimizes the number of generated rows (`p·q`).

use dda_linalg::Rational;

use crate::system::Constraint;

/// Outcome of the Fourier–Motzkin test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FmOutcome {
    /// No real (hence no integer) solution: independent, exact.
    Infeasible,
    /// An integral witness was found: dependent, exact.
    Sample(Vec<i64>),
    /// Real-feasible but no integral witness within the branch-and-bound
    /// budget: dependence must be assumed (inexact).
    Unknown,
}

/// Hard caps that bound the (worst-case exponential) work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmLimits {
    /// Maximum number of rows the elimination may generate.
    pub max_constraints: usize,
    /// Maximum branch-and-bound recursion depth.
    pub max_branch_depth: usize,
}

impl Default for FmLimits {
    fn default() -> FmLimits {
        FmLimits {
            max_constraints: 20_000,
            max_branch_depth: 12,
        }
    }
}

/// One elimination step, recorded for back-substitution.
#[derive(Debug, Clone)]
struct Step {
    var: usize,
    lowers: Vec<Constraint>,
    uppers: Vec<Constraint>,
}

/// Runs Fourier–Motzkin with default limits.
///
/// # Examples
///
/// ```
/// use dda_core::system::Constraint;
/// use dda_core::fourier_motzkin::{fourier_motzkin, FmOutcome};
///
/// // t0 + t1 ≤ 3, t0 ≥ 1, t1 ≥ 1: dependent with e.g. (1, 1).
/// let cs = vec![
///     Constraint::new(vec![1, 1], 3),
///     Constraint::new(vec![-1, 0], -1),
///     Constraint::new(vec![0, -1], -1),
/// ];
/// let FmOutcome::Sample(t) = fourier_motzkin(2, &cs) else { panic!() };
/// assert!(t[0] + t[1] <= 3 && t[0] >= 1 && t[1] >= 1);
/// ```
#[must_use]
pub fn fourier_motzkin(num_vars: usize, constraints: &[Constraint]) -> FmOutcome {
    fourier_motzkin_with(num_vars, constraints, FmLimits::default())
}

/// Runs Fourier–Motzkin with explicit limits.
#[must_use]
pub fn fourier_motzkin_with(
    num_vars: usize,
    constraints: &[Constraint],
    limits: FmLimits,
) -> FmOutcome {
    solve(num_vars, constraints, limits, 0)
}

fn solve(num_vars: usize, constraints: &[Constraint], limits: FmLimits, depth: usize) -> FmOutcome {
    let mut rows: Vec<Constraint> = Vec::with_capacity(constraints.len());
    for c in constraints {
        let mut c = c.clone();
        c.normalize();
        if c.is_trivial() {
            if !c.trivially_satisfied() {
                return FmOutcome::Infeasible;
            }
            continue;
        }
        rows.push(c);
    }

    let mut remaining: Vec<usize> = (0..num_vars)
        .filter(|&v| rows.iter().any(|c| c.coeffs[v] != 0))
        .collect();
    let mut steps: Vec<Step> = Vec::new();

    while let Some(pick_idx) = pick_variable(&rows, &remaining) {
        let v = remaining.swap_remove(pick_idx);
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        let mut rest = Vec::new();
        for c in rows {
            match c.coeffs[v].cmp(&0) {
                std::cmp::Ordering::Less => lowers.push(c),
                std::cmp::Ordering::Greater => uppers.push(c),
                std::cmp::Ordering::Equal => rest.push(c),
            }
        }
        for lo in &lowers {
            for up in &uppers {
                let Some(mut combined) = combine(lo, up, v) else {
                    return FmOutcome::Unknown; // overflow
                };
                combined.normalize();
                if combined.is_trivial() {
                    if !combined.trivially_satisfied() {
                        return FmOutcome::Infeasible;
                    }
                } else {
                    rest.push(combined);
                }
                if rest.len() > limits.max_constraints {
                    return FmOutcome::Unknown;
                }
            }
        }
        steps.push(Step {
            var: v,
            lowers,
            uppers,
        });
        rows = rest;
    }
    debug_assert!(rows.is_empty() || rows.iter().all(Constraint::is_trivial));

    // Real-feasible. Back-substitute in reverse elimination order.
    let mut sample = vec![0i64; num_vars];
    let mut assigned = vec![false; num_vars];
    for (k, step) in steps.iter().rev().enumerate() {
        let lo = tightest(&step.lowers, step.var, &sample, &assigned, true);
        let up = tightest(&step.uppers, step.var, &sample, &assigned, false);
        let (lo, up) = match (lo, up) {
            (Err(()), _) | (_, Err(())) => return FmOutcome::Unknown, // overflow
            (Ok(l), Ok(u)) => (l, u),
        };
        let lo_int = lo.as_ref().map(Rational::ceil);
        let up_int = up.as_ref().map(Rational::floor);
        let value = match (lo_int, up_int) {
            (Some(l), Some(u)) if l > u => {
                // Empty integer range.
                if k == 0 {
                    // No other choices constrain the first back-substituted
                    // variable: its real range is the exact projection, so
                    // an empty integer range proves independence.
                    return FmOutcome::Infeasible;
                }
                if depth >= limits.max_branch_depth {
                    return FmOutcome::Unknown;
                }
                // Branch: t_v ≤ ⌊lo⌋  ∨  t_v ≥ ⌈up⌉ covers every integer.
                return branch(
                    num_vars,
                    constraints,
                    limits,
                    depth,
                    step.var,
                    lo.expect("two-sided").floor(),
                    up.expect("two-sided").ceil(),
                );
            }
            (Some(l), Some(u)) => {
                // The integer nearest the middle of the allowed range.
                let mid = Rational::new(l + u, 2).map_or(l, |m| m.round_nearest());
                mid.clamp(l, u)
            }
            (Some(l), None) => l,
            (None, Some(u)) => u,
            (None, None) => 0,
        };
        let Ok(value) = i64::try_from(value) else {
            return FmOutcome::Unknown;
        };
        sample[step.var] = value;
        assigned[step.var] = true;
    }
    FmOutcome::Sample(sample)
}

/// Picks the remaining variable minimizing the number of generated rows
/// (`p·q − p − q`, Fourier–Motzkin's growth measure); returns its index in
/// `remaining`.
fn pick_variable(rows: &[Constraint], remaining: &[usize]) -> Option<usize> {
    remaining
        .iter()
        .enumerate()
        .map(|(idx, &v)| {
            let p = rows.iter().filter(|c| c.coeffs[v] > 0).count() as i64;
            let q = rows.iter().filter(|c| c.coeffs[v] < 0).count() as i64;
            (idx, p * q - p - q)
        })
        .min_by_key(|&(_, growth)| growth)
        .map(|(idx, _)| idx)
}

/// Combines a lower bound (`a_v < 0`) with an upper bound (`a_v > 0`) so
/// the coefficient of `v` cancels. Returns `None` on overflow.
fn combine(lo: &Constraint, up: &Constraint, v: usize) -> Option<Constraint> {
    let a_lo = lo.coeffs[v]; // < 0
    let a_up = up.coeffs[v]; // > 0
    let m_lo = a_up; // multiply lower row by the upper coefficient
    let m_up = -a_lo; // and the upper row by |lower coefficient|
    let mut coeffs = Vec::with_capacity(lo.coeffs.len());
    for (l, u) in lo.coeffs.iter().zip(&up.coeffs) {
        let term = l.checked_mul(m_lo)?.checked_add(u.checked_mul(m_up)?)?;
        coeffs.push(term);
    }
    debug_assert_eq!(coeffs[v], 0);
    let rhs = lo
        .rhs
        .checked_mul(m_lo)?
        .checked_add(up.rhs.checked_mul(m_up)?)?;
    Some(Constraint::new(coeffs, rhs))
}

/// The tightest bound on `var` over `rows`, given the already-assigned
/// sample values. `is_lower` selects max-of-lowers vs min-of-uppers.
/// `Ok(None)` means unbounded; `Err(())` signals overflow.
#[allow(clippy::result_unit_err)]
fn tightest(
    rows: &[Constraint],
    var: usize,
    sample: &[i64],
    assigned: &[bool],
    is_lower: bool,
) -> Result<Option<Rational>, ()> {
    let mut best: Option<Rational> = None;
    for c in rows {
        let a = c.coeffs[var];
        debug_assert_ne!(a, 0);
        let mut rest = i128::from(c.rhs);
        for (j, &aj) in c.coeffs.iter().enumerate() {
            if j != var && aj != 0 {
                // Unassigned variables here were eliminated earlier (and
                // will be back-substituted later); their coefficients in
                // this row are necessarily zero. Assigned ones contribute.
                debug_assert!(assigned[j] || sample[j] == 0);
                rest = rest
                    .checked_sub(
                        i128::from(aj)
                            .checked_mul(i128::from(sample[j]))
                            .ok_or(())?,
                    )
                    .ok_or(())?;
            }
        }
        let bound = Rational::new(rest, i128::from(a)).map_err(|_| ())?;
        best = Some(match best {
            None => bound,
            Some(b) if is_lower => b.max(bound),
            Some(b) => b.min(bound),
        });
    }
    Ok(best)
}

fn branch(
    num_vars: usize,
    constraints: &[Constraint],
    limits: FmLimits,
    depth: usize,
    var: usize,
    le_val: i128,
    ge_val: i128,
) -> FmOutcome {
    let (Ok(le_val), Ok(ge_val)) = (i64::try_from(le_val), i64::try_from(ge_val)) else {
        return FmOutcome::Unknown;
    };
    let mut left = constraints.to_vec();
    let mut coeffs = vec![0i64; num_vars];
    coeffs[var] = 1;
    left.push(Constraint::new(coeffs.clone(), le_val));
    let mut right = constraints.to_vec();
    coeffs[var] = -1;
    let Some(neg) = ge_val.checked_neg() else {
        return FmOutcome::Unknown;
    };
    right.push(Constraint::new(coeffs, neg));

    match solve(num_vars, &left, limits, depth + 1) {
        FmOutcome::Sample(s) => return FmOutcome::Sample(s),
        FmOutcome::Infeasible => {}
        FmOutcome::Unknown => {
            // Even if the right branch proves infeasible, the left side
            // stays unresolved.
            return match solve(num_vars, &right, limits, depth + 1) {
                FmOutcome::Sample(s) => FmOutcome::Sample(s),
                _ => FmOutcome::Unknown,
            };
        }
    }
    solve(num_vars, &right, limits, depth + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;

    fn sys(rows: &[(&[i64], i64)]) -> (usize, Vec<Constraint>) {
        let n = rows.first().map_or(0, |(c, _)| c.len());
        (
            n,
            rows.iter()
                .map(|(c, r)| Constraint::new(c.to_vec(), *r))
                .collect(),
        )
    }

    fn assert_sample(rows: &[(&[i64], i64)]) -> Vec<i64> {
        let (n, cs) = sys(rows);
        let FmOutcome::Sample(t) = fourier_motzkin(n, &cs) else {
            panic!("expected sample for {rows:?}");
        };
        let mut s = System::new(n);
        for c in &cs {
            s.push(c.clone());
        }
        assert!(s.is_satisfied_by(&t).unwrap(), "witness {t:?} invalid");
        t
    }

    #[test]
    fn simple_feasible() {
        assert_sample(&[(&[1, 1], 3), (&[-1, 0], -1), (&[0, -1], -1)]);
    }

    #[test]
    fn real_infeasible() {
        // t ≥ 2 and t ≤ 1.
        let (n, cs) = sys(&[(&[-1], -2), (&[1], 1)]);
        assert_eq!(fourier_motzkin(n, &cs), FmOutcome::Infeasible);
    }

    #[test]
    fn integer_gap_detected_exactly() {
        // 2t = 1: real solution 0.5, no integer. The single remaining
        // variable's empty integer range proves independence.
        let (n, cs) = sys(&[(&[2], 1), (&[-2], -1)]);
        assert_eq!(fourier_motzkin(n, &cs), FmOutcome::Infeasible);
    }

    #[test]
    fn coupled_integer_gap_via_branch_and_bound() {
        // 2t0 + 2t1 = 1 over integers: infeasible, but real-feasible.
        // (GCD normalization already tightens 2t0+2t1 ≤ 1 to t0+t1 ≤ 0 and
        // ≥ 1: directly infeasible.)
        let (n, cs) = sys(&[(&[2, 2], 1), (&[-2, -2], -1)]);
        assert_eq!(fourier_motzkin(n, &cs), FmOutcome::Infeasible);
    }

    #[test]
    fn branch_and_bound_finds_lattice_point() {
        // 3t0 + 5t1 = 7 with 0 ≤ t0,t1 ≤ 10: t0=4,t1=-1 out of range;
        // feasible at t0 = 4? 3*4=12 no. Try: 3*4+5*(-1)=7 (t1<0). In
        // range: t0=4,t1=-1 invalid; 3* -1 +5*2 = 7 (t0<0). Actually
        // t0=4, t1=-1 and t0=-1,t1=2 are the only small ones... with
        // 0 ≤ t ≤ 10 there is NO solution: 3t0+5t1=7, t1=(7-3t0)/5
        // integral needs 3t0 ≡ 7 (mod 5) → t0 ≡ 4 (mod 5): t0=4 → t1=-1;
        // t0=9 → t1=-4. So infeasible over the box.
        let (n, cs) = sys(&[
            (&[3, 5], 7),
            (&[-3, -5], -7),
            (&[-1, 0], 0),
            (&[0, -1], 0),
            (&[1, 0], 10),
            (&[0, 1], 10),
        ]);
        assert_eq!(fourier_motzkin(n, &cs), FmOutcome::Infeasible);
    }

    #[test]
    fn branch_and_bound_positive_case() {
        // 3t0 + 5t1 = 22, 0 ≤ t0,t1 ≤ 10: t0=4, t1=2 works.
        assert_sample(&[
            (&[3, 5], 22),
            (&[-3, -5], -22),
            (&[-1, 0], 0),
            (&[0, -1], 0),
            (&[1, 0], 10),
            (&[0, 1], 10),
        ]);
    }

    #[test]
    fn unconstrained_variables_default_zero() {
        let (_, cs) = sys(&[(&[1, 0], 5)]);
        let FmOutcome::Sample(t) = fourier_motzkin(2, &cs) else {
            panic!()
        };
        assert_eq!(t[1], 0);
        assert!(t[0] <= 5);
    }

    #[test]
    fn empty_system_feasible() {
        assert_eq!(fourier_motzkin(0, &[]), FmOutcome::Sample(vec![]));
        assert_eq!(fourier_motzkin(3, &[]), FmOutcome::Sample(vec![0, 0, 0]));
    }

    #[test]
    fn trivial_contradiction() {
        let (n, cs) = sys(&[(&[0, 0], -3)]);
        assert_eq!(fourier_motzkin(n, &cs), FmOutcome::Infeasible);
    }

    #[test]
    fn three_variable_system() {
        // t0 + t1 + t2 = 10, each in [0, 4]: e.g. (2, 4, 4).
        assert_sample(&[
            (&[1, 1, 1], 10),
            (&[-1, -1, -1], -10),
            (&[-1, 0, 0], 0),
            (&[0, -1, 0], 0),
            (&[0, 0, -1], 0),
            (&[1, 0, 0], 4),
            (&[0, 1, 0], 4),
            (&[0, 0, 1], 4),
        ]);
    }

    #[test]
    fn middle_of_range_heuristic_used() {
        // 0 ≤ t ≤ 10: middle is 5.
        let (n, cs) = sys(&[(&[-1], 0), (&[1], 10)]);
        let FmOutcome::Sample(t) = fourier_motzkin(n, &cs) else {
            panic!()
        };
        assert_eq!(t, vec![5]);
    }

    #[test]
    fn tight_limits_yield_unknown() {
        let limits = FmLimits {
            max_constraints: 1,
            max_branch_depth: 0,
        };
        // A system that must generate a few rows.
        let (n, cs) = sys(&[(&[1, 1], 3), (&[1, -1], 0), (&[-1, 1], 0), (&[-1, -1], -1)]);
        let out = fourier_motzkin_with(n, &cs, limits);
        assert!(matches!(out, FmOutcome::Unknown | FmOutcome::Sample(_)));
    }
}
