//! Extended GCD preprocessing (Section 3.1).
//!
//! Solves the subscript equality system `A x = b` over the integers via
//! the unimodular/echelon factorization. Either no integer solution exists
//! — the references are independent regardless of bounds (the classic GCD
//! divisibility test, extended to multi-dimensional arrays) — or the
//! solution set is `x = x₀ + B·t` for free integer vectors `t`, and every
//! loop-bound inequality is re-expressed over `t`.
//!
//! The paper stresses why this transform pays off: each independent
//! equation eliminates one variable, all equality constraints disappear
//! (a precondition for the Acyclic test), and the rewritten constraints
//! are typically *simpler* — often single-variable, which is exactly what
//! the SVPC test wants.

#![warn(clippy::arithmetic_side_effects)]

use dda_linalg::{diophantine, num, Matrix};

use crate::problem::DependenceProblem;
use crate::system::{Constraint, System};

/// The reduced problem over the free variables `t`.
#[derive(Debug, Clone)]
pub struct Reduced {
    /// Bound constraints rewritten over `t`.
    pub system: System,
    /// Particular solution `x₀` of the equality system.
    x_particular: Vec<i64>,
    /// Lattice basis `B` (`num_x × num_t`).
    x_basis: Matrix,
}

impl Reduced {
    /// Number of free variables.
    #[must_use]
    pub fn num_t(&self) -> usize {
        self.x_basis.cols()
    }

    /// Number of original variables.
    #[must_use]
    pub fn num_x(&self) -> usize {
        self.x_particular.len()
    }

    /// Maps a free-variable assignment back to the original space:
    /// `x = x₀ + B t`.
    ///
    /// Returns `None` on overflow or arity mismatch.
    #[must_use]
    pub fn x_at(&self, t: &[i64]) -> Option<Vec<i64>> {
        let offset = self.x_basis.mul_vec(t).ok()?;
        self.x_particular
            .iter()
            .zip(&offset)
            .map(|(&p, &o)| p.checked_add(o))
            .collect()
    }

    /// Expresses original variable `xi` as an affine function of `t`:
    /// returns `(coeffs, constant)` with `x_i = coeffs · t + constant`.
    #[must_use]
    pub fn x_as_t(&self, xi: usize) -> (Vec<i64>, i64) {
        let coeffs = (0..self.x_basis.cols())
            .map(|j| self.x_basis[(xi, j)])
            .collect();
        (coeffs, self.x_particular[xi])
    }

    /// Rewrites an x-space constraint `coeffs · x ≤ rhs` over `t`.
    ///
    /// Returns `None` on overflow.
    #[must_use]
    pub fn x_constraint_to_t(&self, c: &Constraint) -> Option<Constraint> {
        let mut t_coeffs = vec![0i64; self.num_t()];
        for (xi, &a) in c.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, tc) in t_coeffs.iter_mut().enumerate() {
                *tc = tc.checked_add(a.checked_mul(self.x_basis[(xi, j)])?)?;
            }
        }
        let shift = num::dot(&c.coeffs, &self.x_particular).ok()?;
        Some(Constraint::new(t_coeffs, c.rhs.checked_sub(shift)?))
    }
}

/// Outcome of the preprocessing step.
// `Reduced` holds an inline-storage `System`; boxing it would trade one
// stack copy for a heap allocation on every GCD-stage exit.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum GcdOutcome {
    /// The equality system has no integer solution: independent, exact,
    /// no bounds needed (the paper's "GCD" column).
    Independent,
    /// Integer solutions exist; the bounds now constrain the free
    /// variables.
    Reduced(Reduced),
}

/// The bounds-independent part of the GCD result — exactly what the
/// paper's no-bounds memo table may reuse across pairs whose subscripts
/// match but whose loop bounds differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lattice {
    /// Particular solution `x₀`.
    pub particular: Vec<i64>,
    /// Lattice basis `B`.
    pub basis: Matrix,
}

/// Outcome of solving the equality system alone.
// Same trade-off as `GcdOutcome`: the lattice payload uses inline storage
// deliberately, and the enum is transient within a single analysis.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EqOutcome {
    /// No integer solution (GCD-independent).
    Independent {
        /// The divisibility refutation witness `(numer, denom)` behind
        /// the verdict, computed once at solve time so memo hits reuse
        /// it instead of refactorizing. From
        /// [`solve_equalities_restricted`] the multiplier entries are in
        /// *canonical* (key-sorted) row order — the only order that
        /// transfers between problems sharing a memo key; rehydrate with
        /// [`witness_for_problem`]. From [`solve_equalities`] they are in
        /// the problem's own row order. `None` when the witness
        /// overflowed `i64` (or the entry was warm-loaded from a v1
        /// table that never stored one).
        refutation: Option<(Vec<i64>, i64)>,
    },
    /// The solution lattice.
    Lattice(Lattice),
}

/// Solves the subscript equality system only (no bounds involved). An
/// independent outcome carries its refutation witness in the problem's
/// own row order.
///
/// Returns `None` on arithmetic overflow.
#[must_use]
pub fn solve_equalities(problem: &DependenceProblem) -> Option<EqOutcome> {
    let a = if problem.eq_coeffs.is_empty() {
        Matrix::zeros(0, problem.num_vars())
    } else {
        Matrix::try_from_rows(&problem.eq_coeffs).ok()?
    };
    match diophantine::solve(&a, &problem.eq_rhs) {
        Ok(Some(s)) => Some(EqOutcome::Lattice(Lattice {
            particular: s.particular().to_vec(),
            basis: s.basis().clone(),
        })),
        Ok(None) => Some(EqOutcome::Independent {
            refutation: diophantine::refute(&a, &problem.eq_rhs),
        }),
        Err(_) => None,
    }
}

/// The permutation sorting equality rows into the canonical order used
/// by [`nobounds_key`](crate::memo::nobounds_key): `order[j]` is the
/// index of the row providing canonical row `j` (ascending by restricted
/// coefficients then right-hand side; duplicate rows are interchangeable).
#[must_use]
pub fn canonical_row_order(rows: &[Vec<i64>], rhs: &[i64], kept: &[usize]) -> Vec<usize> {
    let segments: Vec<Vec<i64>> = rows
        .iter()
        .zip(rhs)
        .map(|(row, r)| {
            let mut seg: Vec<i64> = kept.iter().map(|&k| row[k]).collect();
            seg.push(*r);
            seg
        })
        .collect();
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| segments[a].cmp(&segments[b]));
    order
}

/// Reorders a canonical-row-order refutation witness onto a concrete
/// problem's rows. Problems sharing a no-bounds key list the same row
/// multiset (restricted to `kept`, whose complement is all-zero), so the
/// reordered multiplier refutes this problem's full system too. `None`
/// when the arities disagree — a corrupt warm entry; callers fall back
/// to [`refute_equalities`].
#[must_use]
pub fn witness_for_problem(
    problem: &DependenceProblem,
    kept: &[usize],
    canonical: &(Vec<i64>, i64),
) -> Option<(Vec<i64>, i64)> {
    let order = canonical_row_order(&problem.eq_coeffs, &problem.eq_rhs, kept);
    if canonical.0.len() != order.len() {
        return None;
    }
    let mut numer = vec![0i64; order.len()];
    for (j, &i) in order.iter().enumerate() {
        numer[i] = canonical.0[j];
    }
    Some((numer, canonical.1))
}

/// Rehydrates a lattice cached over a subset of variables (`kept`) into
/// one over all `n` variables: dropped variables take particular value 0
/// and get their own fresh basis column (they are unconstrained by the
/// equality system).
#[must_use]
// Column indices `m + j` are bounded by the constructed matrix width.
#[allow(clippy::arithmetic_side_effects)]
pub fn expand_lattice(lattice: &Lattice, kept: &[usize], n: usize) -> Lattice {
    if kept.len() == n {
        return lattice.clone();
    }
    let m = lattice.basis.cols();
    let dropped: Vec<usize> = (0..n).filter(|v| !kept.contains(v)).collect();
    let mut particular = vec![0i64; n];
    for (i, &v) in kept.iter().enumerate() {
        particular[v] = lattice.particular[i];
    }
    let mut basis = Matrix::zeros(n, m + dropped.len());
    for (i, &v) in kept.iter().enumerate() {
        for j in 0..m {
            basis[(v, j)] = lattice.basis[(i, j)];
        }
    }
    for (j, &v) in dropped.iter().enumerate() {
        basis[(v, m + j)] = 1;
    }
    Lattice { particular, basis }
}

/// Solves an explicit equality system `rows · x = rhs` over `n` variables
/// restricted to the `kept` columns — the canonical form stored in the
/// no-bounds memo table. An independent outcome carries its refutation
/// witness with multipliers in canonical (key-sorted) row order, so the
/// cached value is reusable by every problem sharing the key.
///
/// Returns `None` on arithmetic overflow.
#[must_use]
pub fn solve_equalities_restricted(
    rows: &[Vec<i64>],
    rhs: &[i64],
    kept: &[usize],
) -> Option<EqOutcome> {
    let restricted: Vec<Vec<i64>> = rows
        .iter()
        .map(|row| kept.iter().map(|&k| row[k]).collect())
        .collect();
    let a = if restricted.is_empty() {
        Matrix::zeros(0, kept.len())
    } else {
        Matrix::try_from_rows(&restricted).ok()?
    };
    match diophantine::solve(&a, rhs) {
        Ok(Some(s)) => Some(EqOutcome::Lattice(Lattice {
            particular: s.particular().to_vec(),
            basis: s.basis().clone(),
        })),
        Ok(None) => {
            // A multiplier for the restricted system refutes the full
            // one verbatim: the dropped columns are all-zero.
            let refutation = diophantine::refute(&a, rhs).map(|(numer, denom)| {
                let order = canonical_row_order(rows, rhs, kept);
                (order.iter().map(|&i| numer[i]).collect(), denom)
            });
            Some(EqOutcome::Independent { refutation })
        }
        Err(_) => None,
    }
}

/// Reconstructs a divisibility refutation of the subscript equality
/// system: the rational row combination behind an
/// [`EqOutcome::Independent`] verdict, checkable without re-running the
/// solver. The solve paths carry this witness inside the outcome (and
/// through the memo table), so this standalone recomputation is only the
/// fallback for outcomes that arrived without one — v1 warm-started
/// entries, or witnesses that overflowed `i64` at solve time. It is
/// evidence, never the verdict itself.
#[must_use]
pub fn refute_equalities(problem: &DependenceProblem) -> Option<(Vec<i64>, i64)> {
    let a = if problem.eq_coeffs.is_empty() {
        Matrix::zeros(0, problem.num_vars())
    } else {
        Matrix::try_from_rows(&problem.eq_coeffs).ok()?
    };
    diophantine::refute(&a, &problem.eq_rhs)
}

/// Rewrites the problem's bound constraints over the lattice's free
/// variables.
///
/// Returns `None` on arithmetic overflow.
#[must_use]
pub fn reduce_with_lattice(problem: &DependenceProblem, lattice: &Lattice) -> Option<Reduced> {
    let shell = Reduced {
        system: System::new(lattice.basis.cols()),
        x_particular: lattice.particular.clone(),
        x_basis: lattice.basis.clone(),
    };
    let mut system = System::new(lattice.basis.cols());
    for c in &problem.bounds {
        system.push(shell.x_constraint_to_t(c)?);
    }
    system.normalize();
    Some(Reduced { system, ..shell })
}

/// Runs the extended GCD test and, on success, the change of variables.
///
/// Returns `None` when intermediate arithmetic overflows (the caller
/// assumes dependence).
///
/// # Examples
///
/// ```
/// use dda_ir::{parse_program, extract_accesses, reference_pairs};
/// use dda_core::problem::build_problem;
/// use dda_core::gcd::{gcd_preprocess, GcdOutcome};
///
/// // a[2i] vs a[2i+1]: even ≠ odd, gcd(2,2) ∤ 1.
/// let p = parse_program("for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }")?;
/// let set = extract_accesses(&p);
/// let pairs = reference_pairs(&set, false);
/// let problem = build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true)?;
/// assert!(matches!(
///     gcd_preprocess(&problem),
///     Some(GcdOutcome::Independent)
/// ));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn gcd_preprocess(problem: &DependenceProblem) -> Option<GcdOutcome> {
    match solve_equalities(problem)? {
        EqOutcome::Independent { .. } => Some(GcdOutcome::Independent),
        EqOutcome::Lattice(lattice) => {
            Some(GcdOutcome::Reduced(reduce_with_lattice(problem, &lattice)?))
        }
    }
}

#[cfg(test)]
// Test fixtures use plain literal arithmetic; overflow aborts the test.
#[allow(clippy::arithmetic_side_effects)]
mod tests {
    use super::*;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    use crate::problem::build_problem;

    fn reduce(src: &str) -> GcdOutcome {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        assert_eq!(pairs.len(), 1);
        let problem = build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap();
        gcd_preprocess(&problem).unwrap()
    }

    #[test]
    fn parity_mismatch_is_gcd_independent() {
        assert!(matches!(
            reduce("for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }"),
            GcdOutcome::Independent
        ));
    }

    #[test]
    fn divisible_case_reduces() {
        let GcdOutcome::Reduced(r) = reduce("for i = 1 to 10 { a[2 * i] = a[2 * i + 4]; }") else {
            panic!("expected reduced");
        };
        // One equation over two variables: one free variable.
        assert_eq!(r.num_t(), 1);
        assert_eq!(r.system.num_vars, 1);
        // Every t maps back to x satisfying 2x0 = 2x1 + 4.
        for t in -3..3 {
            let x = r.x_at(&[t]).unwrap();
            assert_eq!(2 * x[0], 2 * x[1] + 4);
        }
    }

    #[test]
    fn paper_example_constraints_become_single_variable() {
        // for i = 1 to 10: a[i+10] = a[i]; the paper notes all transformed
        // constraints contain one variable.
        let GcdOutcome::Reduced(r) = reduce("for i = 1 to 10 { a[i + 10] = a[i]; }") else {
            panic!();
        };
        assert_eq!(r.num_t(), 1);
        for c in &r.system.constraints {
            assert!(c.num_nonzero() <= 1, "constraint {c} not single-var");
        }
    }

    #[test]
    fn x_as_t_matches_x_at() {
        let GcdOutcome::Reduced(r) =
            reduce("for i = 1 to 10 { for j = 1 to 10 { a[i + j] = a[i + j + 3]; } }")
        else {
            panic!();
        };
        for xi in 0..r.num_x() {
            let (coeffs, c0) = r.x_as_t(xi);
            let t: Vec<i64> = (0..r.num_t()).map(|k| (k as i64) * 2 - 1).collect();
            let x = r.x_at(&t).unwrap();
            let via_expr = num::dot(&coeffs, &t).unwrap() + c0;
            assert_eq!(x[xi], via_expr);
        }
    }

    #[test]
    fn x_constraint_round_trip() {
        let GcdOutcome::Reduced(r) = reduce("for i = 1 to 10 { a[i] = a[i + 1]; }") else {
            panic!();
        };
        // x0 - x1 ≤ -1 in x-space.
        let c = Constraint::new(vec![1, -1], -1);
        let tc = r.x_constraint_to_t(&c).unwrap();
        for t in -5..5 {
            let x = r.x_at(&[t]).unwrap();
            assert_eq!(
                c.is_satisfied_by(&x).unwrap(),
                tc.is_satisfied_by(&[t]).unwrap(),
                "t = {t}"
            );
        }
    }

    #[test]
    fn no_equations_everything_free() {
        // Different constant dimensions never reach GCD in the analyzer,
        // but the preprocessing must still behave: build a problem by hand.
        use crate::problem::DependenceProblem;
        use crate::problem::XVar;
        let p = DependenceProblem {
            vars: vec![XVar::CommonA(0), XVar::CommonB(0)],
            eq_coeffs: vec![],
            eq_rhs: vec![],
            bounds: vec![Constraint::new(vec![1, 0], 10)],
            num_common: 1,
        };
        let GcdOutcome::Reduced(r) = gcd_preprocess(&p).unwrap() else {
            panic!();
        };
        assert_eq!(r.num_t(), 2);
    }
}
