//! The statement-level dependence graph: the artifact a parallelizing
//! compiler actually consumes.
//!
//! Every direction vector reported for a pair of references becomes one
//! or two *oriented* edges (source executes before sink). Orientation
//! follows the vector's leading non-`=` component: `<` keeps the pair
//! order, `>` reverses it (and mirrors the vector), `*` is conservatively
//! both. All-`=` vectors are loop-independent edges ordered by execution
//! position within the iteration (reads of a statement execute before its
//! write).

use dda_ir::AccessSet;

use crate::analyzer::ProgramReport;
use crate::result::{DependenceKind, Direction, DirectionVector, DistanceVector};
use crate::symmetry::{flip_distance, flip_vectors};

/// One oriented dependence edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependenceEdge {
    /// Index of the [`PairReport`](crate::PairReport) this edge was
    /// lowered from (into [`ProgramReport::pairs`]) — the handle that
    /// lets a consumer fetch the certificate backing the edge.
    pub pair: usize,
    /// Access id of the source (executes first).
    pub source: usize,
    /// Access id of the sink.
    pub sink: usize,
    /// Flow / anti / output / input.
    pub kind: DependenceKind,
    /// Direction vector oriented source → sink.
    pub vector: DirectionVector,
    /// Distance vector oriented source → sink (per-level `None` where
    /// the distance is not constant).
    pub distance: DistanceVector,
    /// The loop level carrying the dependence (outermost first), or
    /// `None` for a loop-independent edge.
    pub carrying_level: Option<usize>,
}

impl DependenceEdge {
    /// Whether the edge crosses iterations of some common loop.
    #[must_use]
    pub fn is_loop_carried(&self) -> bool {
        self.carrying_level.is_some()
    }
}

/// The leading non-`=` component, if any. `Err(())` signals a leading `*`
/// (ambiguous orientation).
fn leading(v: &DirectionVector) -> Result<Option<Direction>, ()> {
    for d in &v.0 {
        match d {
            Direction::Eq => continue,
            Direction::Any => return Err(()),
            other => return Ok(Some(*other)),
        }
    }
    Ok(None)
}

/// The outermost level whose component is `<` with an all-`=` prefix
/// (the carrying level of a source→sink-oriented vector).
fn carrying_level(v: &DirectionVector) -> Option<usize> {
    for (k, d) in v.0.iter().enumerate() {
        match d {
            Direction::Eq => continue,
            _ => return Some(k),
        }
    }
    None
}

/// Execution position of an access within one iteration: statements run
/// in order, and a statement's reads run before its write.
fn execution_pos(set: &AccessSet, access: usize) -> (usize, usize) {
    let a = &set.accesses[access];
    (a.stmt_index, usize::from(a.is_write))
}

/// Builds the oriented dependence graph from an analysis report.
///
/// `set` must be the access set of the same program the report was
/// produced from (it supplies read/write kinds and statement positions).
///
/// # Examples
///
/// ```
/// use dda_core::{DependenceAnalyzer, graph::dependence_graph};
/// use dda_core::result::DependenceKind;
/// use dda_ir::{extract_accesses, parse_program};
///
/// let p = parse_program("for i = 1 to 10 { a[i + 1] = a[i]; }")?;
/// let set = extract_accesses(&p);
/// let report = DependenceAnalyzer::new().analyze_program(&p);
/// let edges = dependence_graph(&report, &set);
/// assert_eq!(edges.len(), 1);
/// assert_eq!(edges[0].kind, DependenceKind::Flow); // write feeds later read
/// assert!(edges[0].is_loop_carried());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn dependence_graph(report: &ProgramReport, set: &AccessSet) -> Vec<DependenceEdge> {
    let mut edges = Vec::new();
    for (pair_index, pair) in report.pairs().iter().enumerate() {
        if pair.result.is_independent() {
            continue;
        }
        let vectors: &[DirectionVector] = &pair.direction_vectors;
        let a = pair.a_access;
        let b = pair.b_access;
        let distance = &pair.distance;
        let push = |edges: &mut Vec<DependenceEdge>,
                    src: usize,
                    dst: usize,
                    v: DirectionVector,
                    flipped: bool| {
            let kind =
                DependenceKind::classify(set.accesses[src].is_write, set.accesses[dst].is_write);
            let carrying_level = carrying_level(&v);
            edges.push(DependenceEdge {
                pair: pair_index,
                source: src,
                sink: dst,
                kind,
                vector: v,
                distance: if flipped {
                    flip_distance(distance)
                } else {
                    distance.clone()
                },
                carrying_level,
            });
        };
        if vectors.is_empty() {
            // Unrefined (assumed) dependence: conservative both ways.
            let n = pair.common_loop_ids.len();
            push(&mut edges, a, b, DirectionVector::any(n), false);
            push(&mut edges, b, a, DirectionVector::any(n), true);
            continue;
        }
        for v in vectors {
            match leading(v) {
                Ok(Some(Direction::Lt)) | Ok(Some(Direction::Any)) => {
                    push(&mut edges, a, b, v.clone(), false);
                }
                Ok(Some(Direction::Gt)) => {
                    let flipped = flip_vectors(std::slice::from_ref(v));
                    push(
                        &mut edges,
                        b,
                        a,
                        flipped.into_iter().next().expect("one"),
                        true,
                    );
                }
                Ok(Some(Direction::Eq)) | Ok(None) => {
                    // Loop-independent: order by execution position.
                    if execution_pos(set, a) <= execution_pos(set, b) {
                        push(&mut edges, a, b, v.clone(), false);
                    } else {
                        let flipped = flip_vectors(std::slice::from_ref(v));
                        push(
                            &mut edges,
                            b,
                            a,
                            flipped.into_iter().next().expect("one"),
                            true,
                        );
                    }
                }
                Err(()) => {
                    // Leading `*`: could run either way.
                    push(&mut edges, a, b, v.clone(), false);
                    let flipped = flip_vectors(std::slice::from_ref(v));
                    push(
                        &mut edges,
                        b,
                        a,
                        flipped.into_iter().next().expect("one"),
                        true,
                    );
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DependenceAnalyzer;
    use dda_ir::{extract_accesses, parse_program};

    fn graph(src: &str) -> (Vec<DependenceEdge>, dda_ir::AccessSet) {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let report = DependenceAnalyzer::new().analyze_program(&p);
        (dependence_graph(&report, &set), set)
    }

    #[test]
    fn flow_dependence_oriented_forward() {
        let (edges, _) = graph("for i = 1 to 10 { a[i + 1] = a[i]; }");
        assert_eq!(edges.len(), 1);
        let e = &edges[0];
        assert_eq!(e.kind, DependenceKind::Flow);
        assert_eq!(e.source, 0); // the write
        assert_eq!(e.sink, 1);
        assert_eq!(e.vector.to_string(), "(<)");
        assert_eq!(e.carrying_level, Some(0));
        assert_eq!(e.pair, 0);
        assert_eq!(e.distance.0, vec![Some(1)]);
    }

    #[test]
    fn anti_dependence_from_reversed_vector() {
        // Write a[i] meets read a[i+1] at i = i′ + 1: raw vector (>),
        // oriented edge read → write with (<): an anti dependence.
        let (edges, _) = graph("for i = 1 to 10 { a[i] = a[i + 1]; }");
        assert_eq!(edges.len(), 1);
        let e = &edges[0];
        assert_eq!(e.kind, DependenceKind::Anti);
        assert_eq!(e.source, 1); // the read executes (one iteration) first
        assert_eq!(e.sink, 0);
        assert_eq!(e.vector.to_string(), "(<)");
        // The stored pair distance is mirrored along with the vector.
        assert_eq!(e.distance.0, vec![Some(1)]);
    }

    #[test]
    fn loop_independent_same_statement() {
        // a[i] = a[i] + 1: same-iteration read before write: anti,
        // not carried.
        let (edges, _) = graph("for i = 1 to 10 { a[i] = a[i] + 1; }");
        assert_eq!(edges.len(), 1);
        let e = &edges[0];
        assert_eq!(e.kind, DependenceKind::Anti);
        assert_eq!(e.source, 1);
        assert_eq!(e.sink, 0);
        assert!(!e.is_loop_carried());
    }

    #[test]
    fn output_dependence_between_statements() {
        let (edges, _) = graph("for i = 1 to 10 { a[i + 1] = 1; a[i] = 2; }");
        // Write a[i+1] at i meets write a[i'] at i′ = i + 1: carried WAW
        // (source: first statement) — vector (<) from access 0 to 1.
        assert_eq!(edges.len(), 1);
        let e = &edges[0];
        assert_eq!(e.kind, DependenceKind::Output);
        assert_eq!((e.source, e.sink), (0, 1));
        assert_eq!(e.carrying_level, Some(0));
    }

    #[test]
    fn star_leading_vector_goes_both_ways() {
        // Unused outer loop: vector (*, <) is ambiguous at level 0.
        let (edges, _) = graph("for i = 1 to 10 { for j = 1 to 10 { a[j + 2] = a[j]; } }");
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].source, 0);
        assert_eq!(edges[1].source, 1);
        assert_eq!(edges[1].vector.to_string(), "(*, >)");
    }

    #[test]
    fn assumed_pairs_become_bidirectional_any_edges() {
        let (edges, _) = graph("for i = 1 to 10 { a[i * i] = a[i]; }");
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().all(|e| e.vector.to_string() == "(*)"));
    }

    #[test]
    fn independent_pairs_produce_no_edges() {
        let (edges, _) = graph("for i = 1 to 10 { a[i] = a[i + 10]; }");
        assert!(edges.is_empty());
    }
}
