//! Efficient and exact data dependence analysis.
//!
//! A faithful reproduction of Maydan, Hennessy and Lam, *Efficient and
//! Exact Data Dependence Analysis* (PLDI 1991): a cascade of special-case
//! exact tests that, in practice, decides every dependence question a
//! parallelizing compiler asks — cheaply.
//!
//! # Architecture
//!
//! 1. [`problem`] builds the integer system for a pair of array references
//!    (one variable per loop-index instance plus shared symbolics; one
//!    equality per dimension; two inequalities per loop bound).
//! 2. [`gcd`] runs Banerjee's extended GCD test as preprocessing: either
//!    proves independence outright or re-expresses the bounds over the
//!    free variables of the equality system's solution lattice.
//! 3. [`pipeline`] runs the exact tests in cost order — [`svpc`] (single
//!    variable per constraint), [`acyclic`], [`loop_residue`] — falling
//!    back to [`fourier_motzkin`] with integral sampling and branch &
//!    bound. The test list is runtime-configurable
//!    ([`pipeline::PipelineConfig`]) and every stage reports to a
//!    [`pipeline::Probe`]; [`cascade`] keeps the classic entry points as
//!    thin wrappers.
//! 4. [`direction`] layers Burke–Cytron hierarchical direction-vector
//!    refinement on top, with the paper's two prunings (unused variables,
//!    known distances), and computes distance vectors from the GCD
//!    solution.
//! 5. [`memo`] memoizes whole queries with the paper's hash function, in
//!    both the "simple" and the "improved" (unused-variable-eliminating)
//!    flavours.
//! 6. [`analyzer`] drives everything over a whole program and collects
//!    the statistics behind the paper's Tables 1–5 and 7.
//!
//! # Quickstart
//!
//! ```
//! use dda_ir::parse_program;
//! use dda_core::DependenceAnalyzer;
//!
//! // The paper's opening example: these references never overlap.
//! let program = parse_program("for i = 1 to 10 { a[i] = a[i + 10] + 3; }")?;
//! let mut analyzer = DependenceAnalyzer::new();
//! let report = analyzer.analyze_program(&program);
//! assert!(report.pairs()[0].result.is_independent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod acyclic;
pub mod analyzer;
pub mod cascade;
pub mod certificate;
pub mod direction;
pub mod explain;
pub mod fourier_motzkin;
pub mod gcd;
pub mod graph;
pub mod loop_residue;
pub mod memo;
pub mod persist;
pub mod persist_v3;
pub mod pipeline;
pub mod problem;
pub mod result;
pub mod stats;
pub mod steps;
pub mod svpc;
pub mod symmetry;
pub mod system;
pub mod transform;

pub use analyzer::{
    AnalyzerConfig, CachedOutcome, DependenceAnalyzer, MemoMode, PairReport, ProgramReport,
};
pub use certificate::Certificate;
pub use memo::{MemoCounters, MemoLoadStats, MemoWeight, ShardedMemoTable, SharedMemo};
pub use persist::MemoFormat;
pub use persist_v3::{MemoArchive, PersistV3Error, ShardInfo, ShardSection};
pub use pipeline::{
    run_pipeline, NullProbe, PipelineConfig, Probe, RecordingProbe, StatsProbe, TraceEvent,
};
pub use result::{
    Answer, DependenceKind, DependenceResult, Direction, DirectionVector, DistanceVector,
    ResolvedBy, TestKind,
};
pub use stats::StageTimings;
