//! The Simple Loop Residue test (Section 3.4).
//!
//! Pratt observed that systems whose constraints all have the form
//! `tᵢ ≤ tⱼ + c` can be decided by building a graph (one node per variable
//! plus a zero node `n₀` for absolute bounds) and checking for a negative
//! cycle. The paper keeps the algorithm exact by restricting the
//! admissible inputs to `a·tᵢ − a·tⱼ ≤ c`, which integer-tightens to
//! `tᵢ − tⱼ ≤ ⌊c/a⌋` (Shostak's more general extensions would make the
//! test inexact and are deliberately not used).
//!
//! When no negative cycle exists, shortest-path potentials from a virtual
//! source deliver an *integral* witness, so the "dependent" answer is
//! exact too.

#![warn(clippy::arithmetic_side_effects)]

use dda_linalg::num;

use crate::certificate::{Rule, Trail};
use crate::system::{Constraint, VarBounds};

/// Outcome of the Loop Residue test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopResidueOutcome {
    /// Some residual constraint is not of the form `a·tᵢ − a·tⱼ ≤ c`; the
    /// test cannot run without losing exactness.
    NotApplicable,
    /// A negative cycle exists: independent (exact).
    Infeasible,
    /// No negative cycle: dependent (exact), with an integral witness for
    /// every variable.
    Feasible(Vec<i64>),
}

/// An edge `t_from ≤ t_to + weight` in the residue graph, carrying the
/// arena step whose row it is (`None` when the provenance is unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    from: usize,
    to: usize,
    weight: i64,
    step: Option<usize>,
}

/// Runs the Loop Residue test on scalar bounds plus two-variable
/// difference constraints.
///
/// `bounds` carries the per-variable ranges accumulated by the SVPC pass;
/// `residual` the remaining multi-variable constraints.
///
/// # Examples
///
/// The paper's Figure 1 system: `t1 ≥ 1`, `t3 ≤ 4`, `t3 ≥ t1 + 4` (written
/// `t1 − t3 ≤ −4`) has the cycle `t1 → t3 → n0 → t1` with value
/// `−4 + 4 − 1 = −1`, so it is independent:
///
/// ```
/// use dda_core::system::{Constraint, VarBounds};
/// use dda_core::loop_residue::{loop_residue, LoopResidueOutcome};
///
/// let mut bounds = VarBounds::unbounded(3); // t1 is var 0, t3 is var 2
/// bounds.tighten_lb(0, 1);
/// bounds.tighten_ub(2, 4);
/// let residual = vec![Constraint::new(vec![1, 0, -1], -4)];
/// assert_eq!(loop_residue(&bounds, &residual), LoopResidueOutcome::Infeasible);
/// ```
#[must_use]
pub fn loop_residue(bounds: &VarBounds, residual: &[Constraint]) -> LoopResidueOutcome {
    let mut trail = Trail::for_rows(bounds.len(), residual);
    loop_residue_into(bounds, residual, &mut trail)
}

/// The trail-threaded form of [`loop_residue`]: `trail.row_step` must
/// mirror `residual` on entry; on `Infeasible` the trail is sealed with a
/// negative-cycle combination when one can be extracted.
// Bellman-Ford distances are i128 sums of at most `n + 1` i64 weights and
// the node/round counters are bounded by the edge list; none can overflow.
#[allow(clippy::arithmetic_side_effects)]
pub(crate) fn loop_residue_into(
    bounds: &VarBounds,
    residual: &[Constraint],
    trail: &mut Trail,
) -> LoopResidueOutcome {
    let n = bounds.len();
    let zero_node = n; // the paper's n₀
    let mut edges = Vec::new();

    for (row, c) in residual.iter().enumerate() {
        // Exactly two non-zero coefficients of equal magnitude and
        // opposite sign.
        let nz: Vec<(usize, i64)> = c
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, &a)| a != 0)
            .map(|(i, &a)| (i, a))
            .collect();
        let [(i, ai), (j, aj)] = nz.as_slice() else {
            return LoopResidueOutcome::NotApplicable;
        };
        // checked_neg: an i64::MIN coefficient bails out conservatively.
        if aj.checked_neg() != Some(*ai) {
            return LoopResidueOutcome::NotApplicable;
        }
        // Orient as a(t_pos - t_neg) ≤ rhs with a > 0.
        let (pos, neg, a) = if *ai > 0 {
            (*i, *j, *ai)
        } else {
            (*j, *i, *aj)
        };
        let Some(weight) = num::checked_div_floor(c.rhs, a) else {
            return LoopResidueOutcome::NotApplicable;
        };
        // The edge row `t_pos − t_neg ≤ ⌊c/a⌋` is the constraint row
        // divided by `a`.
        let step = if a > 1 {
            Some(trail.push(Rule::Div {
                of: trail.row_step[row],
                d: a,
            }))
        } else {
            Some(trail.row_step[row])
        };
        edges.push(Edge {
            from: pos,
            to: neg,
            weight,
            step,
        });
    }

    // Scalar bounds become edges through the zero node.
    for v in 0..n {
        if let Some(u) = bounds.ub[v] {
            edges.push(Edge {
                from: v,
                to: zero_node,
                weight: u,
                step: trail.ub_step[v],
            });
        }
        if let Some(l) = bounds.lb[v] {
            // -l overflows for l == i64::MIN; bow out rather than build a
            // wrong edge.
            let Some(weight) = l.checked_neg() else {
                return LoopResidueOutcome::NotApplicable;
            };
            edges.push(Edge {
                from: zero_node,
                to: v,
                weight,
                step: trail.lb_step[v],
            });
        }
    }

    // Bellman-Ford from a virtual source connected to every node with
    // weight 0 (realized by starting all distances at 0). An edge
    // `from ≤ to + w` relaxes as d(from) ← min(d(from), d(to) + w).
    let mut dist = vec![0i128; n + 1];
    let mut pred = vec![None::<usize>; n + 1];
    let mut last_relaxed: Vec<usize> = Vec::new();
    for _ in 0..=n {
        let mut changed = false;
        last_relaxed.clear();
        for (idx, e) in edges.iter().enumerate() {
            let cand = dist[e.to] + i128::from(e.weight);
            if cand < dist[e.from] {
                dist[e.from] = cand;
                pred[e.from] = Some(idx);
                last_relaxed.push(e.from);
                changed = true;
            }
        }
        if !changed {
            // Early exit: already stable, certainly no negative cycle.
            let shift = dist[zero_node];
            let sample: Option<Vec<i64>> = (0..n)
                .map(|v| i64::try_from(dist[v] - shift).ok())
                .collect();
            return match sample {
                Some(s) => LoopResidueOutcome::Feasible(s),
                None => LoopResidueOutcome::NotApplicable, // out of i64 range
            };
        }
    }
    // Still changing after n+1 rounds: negative cycle.
    seal_negative_cycle(&edges, &pred, &last_relaxed, n, trail);
    LoopResidueOutcome::Infeasible
}

/// Extracts a negative cycle from the Bellman–Ford predecessor graph and
/// seals the trail with the sum of its edge rows: the variable terms
/// telescope away around the cycle, leaving `0 ≤ Σw < 0`.
///
/// Poisons the trail instead when no candidate yields a verified negative
/// cycle with fully known edge provenance.
fn seal_negative_cycle(
    edges: &[Edge],
    pred: &[Option<usize>],
    candidates: &[usize],
    n: usize,
    trail: &mut Trail,
) {
    'candidate: for &start in candidates {
        // Walk n+1 predecessor steps to guarantee landing on a cycle.
        let mut x = start;
        for _ in 0..=n {
            match pred[x] {
                Some(e) => x = edges[e].to,
                None => continue 'candidate,
            }
        }
        // Collect the cycle through x.
        let mut cycle = Vec::new();
        let mut cur = x;
        loop {
            let Some(e) = pred[cur] else {
                continue 'candidate;
            };
            cycle.push(e);
            cur = edges[e].to;
            if cur == x {
                break;
            }
            if cycle.len() > n.saturating_add(1) {
                continue 'candidate;
            }
        }
        // The certificate only helps if the cycle really is negative and
        // every edge row has a recorded derivation step.
        let sum: i128 = cycle.iter().map(|&e| i128::from(edges[e].weight)).sum();
        if sum >= 0 {
            continue;
        }
        let Some(steps) = cycle
            .iter()
            .map(|&e| edges[e].step)
            .collect::<Option<Vec<usize>>>()
        else {
            continue;
        };
        let mut acc = steps[0];
        for &s in &steps[1..] {
            acc = trail.push(Rule::Comb {
                a: acc,
                ca: 1,
                b: s,
                cb: 1,
            });
        }
        trail.seal = Some(acc);
        return;
    }
    trail.ok = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;

    fn check_feasible(bounds: &VarBounds, residual: &[Constraint], sample: &[i64]) {
        let n = bounds.len();
        let mut s = System::new(n);
        for c in residual {
            s.push(c.clone());
        }
        assert!(s.is_satisfied_by(sample).unwrap(), "residual violated");
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            if let Some(l) = bounds.lb[v] {
                assert!(sample[v] >= l, "lb violated for t{v}");
            }
            if let Some(u) = bounds.ub[v] {
                assert!(sample[v] <= u, "ub violated for t{v}");
            }
        }
    }

    #[test]
    fn figure1_negative_cycle() {
        // t1 ≥ 1, t3 ≤ 4, t1 - t3 ≤ -4... cycle value 4 - 4 ... -1 < 0.
        let mut bounds = VarBounds::unbounded(3);
        bounds.tighten_lb(0, 1);
        bounds.tighten_ub(2, 4);
        let residual = vec![Constraint::new(vec![1, 0, -1], -4)];
        assert_eq!(
            loop_residue(&bounds, &residual),
            LoopResidueOutcome::Infeasible
        );
    }

    #[test]
    fn feasible_difference_chain() {
        // t0 ≤ t1 - 1 ≤ t2 - 2, 0 ≤ t0, t2 ≤ 10.
        let mut bounds = VarBounds::unbounded(3);
        bounds.tighten_lb(0, 0);
        bounds.tighten_ub(2, 10);
        let residual = vec![
            Constraint::new(vec![1, -1, 0], -1),
            Constraint::new(vec![0, 1, -1], -1),
        ];
        let LoopResidueOutcome::Feasible(sample) = loop_residue(&bounds, &residual) else {
            panic!("expected feasible");
        };
        check_feasible(&bounds, &residual, &sample);
    }

    #[test]
    fn scaled_coefficients_tighten() {
        // 3t0 - 3t1 ≤ 2  ⇒  t0 - t1 ≤ 0; with t0 ≥ 5 and t1 ≤ 4 the cycle
        // 5 ≤ t0 ≤ t1 ≤ 4 is negative: independent.
        let mut bounds = VarBounds::unbounded(2);
        bounds.tighten_lb(0, 5);
        bounds.tighten_ub(1, 4);
        let residual = vec![Constraint::new(vec![3, -3], 2)];
        assert_eq!(
            loop_residue(&bounds, &residual),
            LoopResidueOutcome::Infeasible
        );
        // Relax the bound: t1 ≤ 5 makes it feasible.
        let mut bounds2 = VarBounds::unbounded(2);
        bounds2.tighten_lb(0, 5);
        bounds2.tighten_ub(1, 5);
        let LoopResidueOutcome::Feasible(sample) = loop_residue(&bounds2, &residual) else {
            panic!("expected feasible");
        };
        check_feasible(&bounds2, &residual, &sample);
    }

    #[test]
    fn extreme_lower_bound_not_applicable() {
        // lb == i64::MIN cannot become a zero-node edge without overflow;
        // the test must decline instead of deciding on a wrong weight.
        let mut bounds = VarBounds::unbounded(2);
        bounds.tighten_lb(0, i64::MIN);
        let residual = vec![
            Constraint::new(vec![1, -1], 0),
            Constraint::new(vec![-1, 1], 0),
        ];
        assert_eq!(
            loop_residue(&bounds, &residual),
            LoopResidueOutcome::NotApplicable
        );
    }

    #[test]
    fn unequal_magnitudes_not_applicable() {
        let bounds = VarBounds::unbounded(2);
        let residual = vec![Constraint::new(vec![2, -1], 0)];
        assert_eq!(
            loop_residue(&bounds, &residual),
            LoopResidueOutcome::NotApplicable
        );
    }

    #[test]
    fn three_variable_constraint_not_applicable() {
        let bounds = VarBounds::unbounded(3);
        let residual = vec![Constraint::new(vec![1, 1, -1], 0)];
        assert_eq!(
            loop_residue(&bounds, &residual),
            LoopResidueOutcome::NotApplicable
        );
    }

    #[test]
    fn same_sign_pair_not_applicable() {
        let bounds = VarBounds::unbounded(2);
        let residual = vec![Constraint::new(vec![1, 1], 0)];
        assert_eq!(
            loop_residue(&bounds, &residual),
            LoopResidueOutcome::NotApplicable
        );
    }

    #[test]
    fn pure_cycle_zero_weight_is_feasible() {
        // t0 ≤ t1, t1 ≤ t0: feasible (equal values).
        let bounds = VarBounds::unbounded(2);
        let residual = vec![
            Constraint::new(vec![1, -1], 0),
            Constraint::new(vec![-1, 1], 0),
        ];
        let LoopResidueOutcome::Feasible(sample) = loop_residue(&bounds, &residual) else {
            panic!();
        };
        assert_eq!(sample[0], sample[1]);
    }

    #[test]
    fn unconstrained_system_feasible() {
        let bounds = VarBounds::unbounded(2);
        let out = loop_residue(&bounds, &[]);
        assert!(matches!(out, LoopResidueOutcome::Feasible(_)));
    }

    #[test]
    fn bounds_anchor_through_zero_node() {
        // 1 ≤ t0 ≤ 3, t1 = t0 (two inequalities), t1 ≤ 2.
        let mut bounds = VarBounds::unbounded(2);
        bounds.tighten_lb(0, 1);
        bounds.tighten_ub(0, 3);
        bounds.tighten_ub(1, 2);
        let residual = vec![
            Constraint::new(vec![1, -1], 0),
            Constraint::new(vec![-1, 1], 0),
        ];
        let LoopResidueOutcome::Feasible(sample) = loop_residue(&bounds, &residual) else {
            panic!();
        };
        check_feasible(&bounds, &residual, &sample);
    }
}
