//! Memoization of dependence queries (Section 5).
//!
//! "There is little variation in array reference patterns found in real
//! programs … one can save much computation by using memoization." Two
//! tables are kept, mirroring the paper:
//!
//! - a **no-bounds** table keyed on the subscript equality system alone —
//!   the extended GCD test ignores bounds, so its (expensive)
//!   factorization can be reused even when the loop bounds differ;
//! - a **with-bounds** table keyed on the whole problem, storing the full
//!   analysis result.
//!
//! The *simple* scheme keys on the problem exactly as built; the
//! *improved* scheme first eliminates unused loop variables, so that
//! `a[i+10] = a[i]` nested under one loop or under two collapses to the
//! same key (the paper's Section 5 example).
//!
//! Keys hash with the paper's function `h(x) = size(x) + Σ 2ⁱ·xᵢ`,
//! "chosen so that symmetrical or partially symmetrical references would
//! not collide"; equality on the full key vector resolves the rest.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};

use crate::problem::DependenceProblem;

/// The paper's hash function over a stream of integers.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperHasher {
    state: u64,
    index: u32,
}

impl Hasher for PaperHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (used for lengths etc.): fold bytes in.
        for &b in bytes {
            self.state = self
                .state
                .wrapping_add(u64::from(b).wrapping_shl(self.index % 61));
            self.index = self.index.wrapping_add(1);
        }
    }

    fn write_i64(&mut self, v: i64) {
        // h += 2^i * x_i, with the shift wrapping around the word.
        self.state = self
            .state
            .wrapping_add((v as u64).wrapping_shl(self.index % 61));
        self.index = self.index.wrapping_add(1);
    }

    fn write_usize(&mut self, v: usize) {
        // size(x) contributes directly.
        self.state = self.state.wrapping_add(v as u64);
    }
}

/// `BuildHasher` for [`PaperHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperHashBuilder;

impl BuildHasher for PaperHashBuilder {
    type Hasher = PaperHasher;
    fn build_hasher(&self) -> PaperHasher {
        PaperHasher::default()
    }
}

/// A canonical encoding of a dependence problem. Ordered so symmetric
/// canonicalization can pick the smaller of a key and its mirror.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MemoKey(Vec<i64>);

impl Hash for MemoKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash element-wise so the paper's 2^i weighting applies (the
        // derived impl would hash the slice as one byte blob).
        state.write_usize(self.0.len());
        for &v in &self.0 {
            state.write_i64(v);
        }
    }
}

impl MemoKey {
    /// The raw encoded vector (exposed for the benchmark harness).
    #[must_use]
    pub fn as_slice(&self) -> &[i64] {
        &self.0
    }

    /// Rebuilds a key from its raw encoding (used when loading a
    /// persisted table).
    #[must_use]
    pub fn from_vec(raw: Vec<i64>) -> MemoKey {
        MemoKey(raw)
    }
}

/// Computes the set of *used* variables: those in a subscript equation,
/// closed under co-occurrence in bound constraints.
fn used_mask(problem: &DependenceProblem) -> Vec<bool> {
    let n = problem.num_vars();
    let mut used = vec![false; n];
    for row in &problem.eq_coeffs {
        for (v, &c) in row.iter().enumerate() {
            if c != 0 {
                used[v] = true;
            }
        }
    }
    loop {
        let mut changed = false;
        for c in &problem.bounds {
            let touches_used = c
                .coeffs
                .iter()
                .enumerate()
                .any(|(v, &a)| a != 0 && used[v]);
            if touches_used {
                for (v, &a) in c.coeffs.iter().enumerate() {
                    if a != 0 && !used[v] {
                        used[v] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    used
}

const SECTION_MARKER: i64 = i64::MIN + 7;

/// A canonicalized no-bounds key: the equality system, optionally with
/// equation-unused variables dropped, plus the variable mapping needed to
/// rehydrate a cached solution lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoBoundsKey {
    /// The hashable encoding.
    pub key: MemoKey,
    /// Variables that survived elimination (all of them under the simple
    /// scheme). Cached lattices are expressed over exactly these.
    pub kept_vars: Vec<usize>,
}

/// Encodes the equality system only (the GCD table key). With `improved`,
/// variables absent from every equation are dropped first — they are pure
/// lattice freedom, so patterns under different numbers of irrelevant
/// loops share the factorization.
#[must_use]
pub fn nobounds_key(problem: &DependenceProblem, improved: bool) -> NoBoundsKey {
    let kept_vars: Vec<usize> = if improved {
        (0..problem.num_vars())
            .filter(|&v| problem.eq_coeffs.iter().any(|row| row[v] != 0))
            .collect()
    } else {
        (0..problem.num_vars()).collect()
    };
    let mut v = Vec::new();
    v.push(kept_vars.len() as i64);
    v.push(problem.eq_coeffs.len() as i64);
    // Equations are a *set*: sort their encodings so semantically equal
    // systems (e.g. dimensions listed in another order, or a mirrored
    // pair) produce identical keys.
    let mut segments: Vec<Vec<i64>> = problem
        .eq_coeffs
        .iter()
        .zip(&problem.eq_rhs)
        .map(|(row, rhs)| {
            let mut seg: Vec<i64> = kept_vars.iter().map(|&k| row[k]).collect();
            seg.push(*rhs);
            seg
        })
        .collect();
    segments.sort();
    for seg in segments {
        v.extend(seg);
    }
    NoBoundsKey {
        key: MemoKey(v),
        kept_vars,
    }
}

/// A canonicalized with-bounds key, plus the mapping needed to translate
/// cached results (which live in canonical space) back to a concrete
/// problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalKey {
    /// The hashable encoding.
    pub key: MemoKey,
    /// Common loop levels that survived unused-variable elimination, in
    /// order. Direction-vector components for other levels are a free `*`.
    pub kept_levels: Vec<usize>,
}

/// Encodes the whole problem. With `improved`, unused variables (and
/// bound constraints touching only them) are eliminated first, so
/// patterns differing only in irrelevant enclosing loops collapse.
#[must_use]
pub fn bounds_key(problem: &DependenceProblem, improved: bool) -> CanonicalKey {
    let (keep, kept_levels): (Vec<usize>, Vec<usize>) = if improved {
        let used = used_mask(problem);
        let keep = (0..problem.num_vars()).filter(|&v| used[v]).collect();
        let kept_levels = (0..problem.num_common)
            .filter(|&k| {
                let ia = problem
                    .var_index(&crate::problem::XVar::CommonA(k))
                    .expect("common var present");
                let ib = problem
                    .var_index(&crate::problem::XVar::CommonB(k))
                    .expect("common var present");
                used[ia] || used[ib]
            })
            .collect();
        (keep, kept_levels)
    } else {
        (
            (0..problem.num_vars()).collect(),
            (0..problem.num_common).collect(),
        )
    };

    let mut v = Vec::new();
    v.push(keep.len() as i64);
    v.push(kept_levels.len() as i64);
    v.push(problem.eq_coeffs.len() as i64);
    // Both sections are constraint *sets*: sort their encodings so
    // semantically equal systems (reordered dimensions or bounds, e.g.
    // from a mirrored pair) produce identical keys.
    let mut eq_segments: Vec<Vec<i64>> = problem
        .eq_coeffs
        .iter()
        .zip(&problem.eq_rhs)
        .map(|(row, rhs)| {
            let mut seg: Vec<i64> = keep.iter().map(|&k| row[k]).collect();
            seg.push(*rhs);
            seg
        })
        .collect();
    eq_segments.sort();
    for seg in eq_segments {
        v.extend(seg);
    }
    v.push(SECTION_MARKER);
    let mut bound_segments: Vec<Vec<i64>> = problem
        .bounds
        .iter()
        .filter(|c| keep.iter().any(|&k| c.coeffs[k] != 0))
        .map(|c| {
            let mut seg: Vec<i64> = keep.iter().map(|&k| c.coeffs[k]).collect();
            seg.push(c.rhs);
            seg
        })
        .collect();
    bound_segments.sort();
    for seg in bound_segments {
        v.extend(seg);
    }
    CanonicalKey {
        key: MemoKey(v),
        kept_levels,
    }
}

/// A memo table with hit/miss accounting.
#[derive(Debug, Clone)]
pub struct MemoTable<V> {
    map: HashMap<MemoKey, V, PaperHashBuilder>,
    queries: u64,
    hits: u64,
}

impl<V> Default for MemoTable<V> {
    fn default() -> MemoTable<V> {
        MemoTable::new()
    }
}

impl<V> MemoTable<V> {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> MemoTable<V> {
        MemoTable {
            map: HashMap::with_hasher(PaperHashBuilder),
            queries: 0,
            hits: 0,
        }
    }

    /// Looks up a key, counting the query.
    pub fn get(&mut self, key: &MemoKey) -> Option<&V> {
        self.queries += 1;
        let hit = self.map.get(key);
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Inserts a computed result.
    pub fn insert(&mut self, key: MemoKey, value: V) {
        self.map.insert(key, value);
    }

    /// Number of lookups performed.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Number of lookups that hit.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of distinct entries stored.
    #[must_use]
    pub fn unique_entries(&self) -> usize {
        self.map.len()
    }

    /// Iterates over stored entries (unspecified order).
    pub fn entries(&self) -> impl Iterator<Item = (&MemoKey, &V)> {
        self.map.iter()
    }

    /// Clears contents and counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.queries = 0;
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::build_problem;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    fn problem(src: &str) -> DependenceProblem {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        assert_eq!(pairs.len(), 1);
        build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap()
    }

    #[test]
    fn paper_hash_matches_formula() {
        let key = MemoKey(vec![3, -1, 4]);
        let mut h = PaperHasher::default();
        key.hash(&mut h);
        // Vec<i64> hashing writes the length then each element; our
        // write_usize adds the size, each write_i64 adds 2^i * x_i.
        let expect = 3u64
            .wrapping_add(3u64.wrapping_shl(0))
            .wrapping_add((-1i64 as u64).wrapping_shl(1))
            .wrapping_add(4u64.wrapping_shl(2));
        assert_eq!(h.finish(), expect);
    }

    #[test]
    fn symmetry_does_not_collide() {
        // The stated design goal of the 2^i weighting.
        let k1 = MemoKey(vec![1, 2]);
        let k2 = MemoKey(vec![2, 1]);
        let hash = |k: &MemoKey| {
            let mut h = PaperHasher::default();
            k.hash(&mut h);
            h.finish()
        };
        assert_ne!(hash(&k1), hash(&k2));
    }

    #[test]
    fn identical_pairs_share_keys() {
        let p1 = problem("for i = 1 to 10 { a[i + 10] = a[i] + 3; }");
        let p2 = problem("for i = 1 to 10 { b[i + 10] = b[i] + 7; }");
        assert_eq!(bounds_key(&p1, false).key, bounds_key(&p2, false).key);
        assert_eq!(nobounds_key(&p1, false).key, nobounds_key(&p2, false).key);
        assert_eq!(nobounds_key(&p1, true).key, nobounds_key(&p2, true).key);
    }

    #[test]
    fn different_bounds_differ_with_bounds_only() {
        let p1 = problem("for i = 1 to 10 { a[i + 10] = a[i]; }");
        let p2 = problem("for i = 1 to 20 { a[i + 10] = a[i]; }");
        assert_eq!(nobounds_key(&p1, false).key, nobounds_key(&p2, false).key);
        assert_eq!(nobounds_key(&p1, true).key, nobounds_key(&p2, true).key);
        assert_ne!(bounds_key(&p1, false).key, bounds_key(&p2, false).key);
    }

    #[test]
    fn improved_scheme_collapses_unused_loops() {
        // The paper's Section 5 example: both two-loop programs collapse
        // to the single-loop one under the improved scheme.
        let two_a = problem(
            "for i = 1 to 10 { for j = 1 to 10 { a[i + 10] = a[i] + 3; } }",
        );
        let two_b = problem(
            "for i = 1 to 10 { for j = 1 to 10 { a[j + 10] = a[j] + 3; } }",
        );
        let one = problem("for i = 1 to 10 { a[i + 10] = a[i] + 3; }");
        assert_ne!(bounds_key(&two_a, false).key, bounds_key(&one, false).key);
        // two_a uses i (outer), two_b uses j (inner): simple keys differ.
        assert_ne!(bounds_key(&two_a, false).key, bounds_key(&two_b, false).key);
        // Improved keys all coincide.
        assert_eq!(bounds_key(&two_a, true).key, bounds_key(&one, true).key);
        assert_eq!(bounds_key(&two_b, true).key, bounds_key(&one, true).key);
    }

    #[test]
    fn triangular_coupling_keeps_variables() {
        // j's bound references i, and j is used, so i must stay even
        // though it appears in no subscript.
        let p = problem(
            "for i = 1 to 10 { for j = i to 10 { a[j + 5] = a[j]; } }",
        );
        let flat = problem("for j = 1 to 10 { a[j + 5] = a[j]; }");
        assert_ne!(bounds_key(&p, true).key, bounds_key(&flat, true).key);
    }

    #[test]
    fn table_counts_hits_and_misses() {
        let mut t: MemoTable<u32> = MemoTable::new();
        let k = MemoKey(vec![1, 2, 3]);
        assert!(t.get(&k).is_none());
        t.insert(k.clone(), 42);
        assert_eq!(t.get(&k), Some(&42));
        assert_eq!(t.queries(), 2);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.unique_entries(), 1);
        t.clear();
        assert_eq!(t.queries(), 0);
        assert_eq!(t.unique_entries(), 0);
    }
}
