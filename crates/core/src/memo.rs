//! Memoization of dependence queries (Section 5).
//!
//! "There is little variation in array reference patterns found in real
//! programs … one can save much computation by using memoization." Two
//! tables are kept, mirroring the paper:
//!
//! - a **no-bounds** table keyed on the subscript equality system alone —
//!   the extended GCD test ignores bounds, so its (expensive)
//!   factorization can be reused even when the loop bounds differ;
//! - a **with-bounds** table keyed on the whole problem, storing the full
//!   analysis result.
//!
//! The *simple* scheme keys on the problem exactly as built; the
//! *improved* scheme first eliminates unused loop variables, so that
//! `a[i+10] = a[i]` nested under one loop or under two collapses to the
//! same key (the paper's Section 5 example).
//!
//! Keys hash with the paper's function `h(x) = size(x) + Σ 2ⁱ·xᵢ`,
//! "chosen so that symmetrical or partially symmetrical references would
//! not collide"; equality on the full key vector resolves the rest.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::problem::DependenceProblem;

/// The paper's hash function over a stream of integers.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperHasher {
    state: u64,
    index: u32,
}

impl Hasher for PaperHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (used for lengths etc.): fold bytes in.
        for &b in bytes {
            self.state = self
                .state
                .wrapping_add(u64::from(b).wrapping_shl(self.index % 61));
            self.index = self.index.wrapping_add(1);
        }
    }

    fn write_i64(&mut self, v: i64) {
        // h += 2^i * x_i, with the shift wrapping around the word.
        self.state = self
            .state
            .wrapping_add((v as u64).wrapping_shl(self.index % 61));
        self.index = self.index.wrapping_add(1);
    }

    fn write_usize(&mut self, v: usize) {
        // size(x) contributes directly.
        self.state = self.state.wrapping_add(v as u64);
    }

    // The remaining integer methods default to `write(&v.to_ne_bytes())`,
    // which folds bytes in *native* order — the same value would hash
    // differently on little- and big-endian targets. Shard selection and
    // persisted-key identity must be platform-stable, so every integer
    // width is routed through the endian-independent `write_i64` fold.

    fn write_u8(&mut self, v: u8) {
        self.write_i64(i64::from(v));
    }

    fn write_u16(&mut self, v: u16) {
        self.write_i64(i64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.write_i64(i64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.write_i64(v as i64);
    }

    fn write_u128(&mut self, v: u128) {
        self.write_i64(v as i64);
        self.write_i64((v >> 64) as i64);
    }

    fn write_i8(&mut self, v: i8) {
        self.write_i64(i64::from(v));
    }

    fn write_i16(&mut self, v: i16) {
        self.write_i64(i64::from(v));
    }

    fn write_i32(&mut self, v: i32) {
        self.write_i64(i64::from(v));
    }

    fn write_i128(&mut self, v: i128) {
        self.write_u128(v as u128);
    }

    fn write_isize(&mut self, v: isize) {
        self.write_i64(v as i64);
    }
}

/// `BuildHasher` for [`PaperHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperHashBuilder;

impl BuildHasher for PaperHashBuilder {
    type Hasher = PaperHasher;
    fn build_hasher(&self) -> PaperHasher {
        PaperHasher::default()
    }
}

/// A canonical encoding of a dependence problem. Ordered so symmetric
/// canonicalization can pick the smaller of a key and its mirror.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MemoKey(Vec<i64>);

impl Hash for MemoKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash element-wise so the paper's 2^i weighting applies (the
        // derived impl would hash the slice as one byte blob).
        state.write_usize(self.0.len());
        for &v in &self.0 {
            state.write_i64(v);
        }
    }
}

impl MemoKey {
    /// The raw encoded vector (exposed for the benchmark harness).
    #[must_use]
    pub fn as_slice(&self) -> &[i64] {
        &self.0
    }

    /// Rebuilds a key from its raw encoding (used when loading a
    /// persisted table).
    #[must_use]
    pub fn from_vec(raw: Vec<i64>) -> MemoKey {
        MemoKey(raw)
    }
}

/// Routing hash for a key: the paper hash, finalized through an
/// avalanche mix so the low bits used by a shard modulo are influenced
/// by every element (the raw `h(x) = size + Σ 2ⁱ·xᵢ` concentrates
/// low-index elements in the low bits). Shared by [`ShardedMemoTable`]
/// and the v3 archive writer so both partition keys identically.
pub(crate) fn route_hash(key: &MemoKey) -> u64 {
    let mut h = PaperHashBuilder.hash_one(key);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// Computes the set of *used* variables: those in a subscript equation,
/// closed under co-occurrence in bound constraints.
fn used_mask(problem: &DependenceProblem) -> Vec<bool> {
    let n = problem.num_vars();
    let mut used = vec![false; n];
    for row in &problem.eq_coeffs {
        for (v, &c) in row.iter().enumerate() {
            if c != 0 {
                used[v] = true;
            }
        }
    }
    loop {
        let mut changed = false;
        for c in &problem.bounds {
            let touches_used = c.coeffs.iter().enumerate().any(|(v, &a)| a != 0 && used[v]);
            if touches_used {
                for (v, &a) in c.coeffs.iter().enumerate() {
                    if a != 0 && !used[v] {
                        used[v] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    used
}

const SECTION_MARKER: i64 = i64::MIN + 7;

/// A canonicalized no-bounds key: the equality system, optionally with
/// equation-unused variables dropped, plus the variable mapping needed to
/// rehydrate a cached solution lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoBoundsKey {
    /// The hashable encoding.
    pub key: MemoKey,
    /// Variables that survived elimination (all of them under the simple
    /// scheme). Cached lattices are expressed over exactly these.
    pub kept_vars: Vec<usize>,
}

/// Encodes the equality system only (the GCD table key). With `improved`,
/// variables absent from every equation are dropped first — they are pure
/// lattice freedom, so patterns under different numbers of irrelevant
/// loops share the factorization.
#[must_use]
pub fn nobounds_key(problem: &DependenceProblem, improved: bool) -> NoBoundsKey {
    let kept_vars: Vec<usize> = if improved {
        (0..problem.num_vars())
            .filter(|&v| problem.eq_coeffs.iter().any(|row| row[v] != 0))
            .collect()
    } else {
        (0..problem.num_vars()).collect()
    };
    let mut v = Vec::new();
    v.push(kept_vars.len() as i64);
    v.push(problem.eq_coeffs.len() as i64);
    // Equations are a *set*: sort their encodings so semantically equal
    // systems (e.g. dimensions listed in another order, or a mirrored
    // pair) produce identical keys.
    let mut segments: Vec<Vec<i64>> = problem
        .eq_coeffs
        .iter()
        .zip(&problem.eq_rhs)
        .map(|(row, rhs)| {
            let mut seg: Vec<i64> = kept_vars.iter().map(|&k| row[k]).collect();
            seg.push(*rhs);
            seg
        })
        .collect();
    segments.sort();
    for seg in segments {
        v.extend(seg);
    }
    NoBoundsKey {
        key: MemoKey(v),
        kept_vars,
    }
}

/// A canonicalized with-bounds key, plus the mapping needed to translate
/// cached results (which live in canonical space) back to a concrete
/// problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalKey {
    /// The hashable encoding.
    pub key: MemoKey,
    /// Common loop levels that survived unused-variable elimination, in
    /// order. Direction-vector components for other levels are a free `*`.
    pub kept_levels: Vec<usize>,
}

/// Encodes the whole problem. With `improved`, unused variables (and
/// bound constraints touching only them) are eliminated first, so
/// patterns differing only in irrelevant enclosing loops collapse.
#[must_use]
pub fn bounds_key(problem: &DependenceProblem, improved: bool) -> CanonicalKey {
    let (keep, kept_levels): (Vec<usize>, Vec<usize>) = if improved {
        let used = used_mask(problem);
        let keep = (0..problem.num_vars()).filter(|&v| used[v]).collect();
        let kept_levels = (0..problem.num_common)
            .filter(|&k| {
                let ia = problem
                    .var_index(&crate::problem::XVar::CommonA(k))
                    .expect("common var present");
                let ib = problem
                    .var_index(&crate::problem::XVar::CommonB(k))
                    .expect("common var present");
                used[ia] || used[ib]
            })
            .collect();
        (keep, kept_levels)
    } else {
        (
            (0..problem.num_vars()).collect(),
            (0..problem.num_common).collect(),
        )
    };

    let mut v = Vec::new();
    v.push(keep.len() as i64);
    v.push(kept_levels.len() as i64);
    v.push(problem.eq_coeffs.len() as i64);
    // Both sections are constraint *sets*: sort their encodings so
    // semantically equal systems (reordered dimensions or bounds, e.g.
    // from a mirrored pair) produce identical keys.
    let mut eq_segments: Vec<Vec<i64>> = problem
        .eq_coeffs
        .iter()
        .zip(&problem.eq_rhs)
        .map(|(row, rhs)| {
            let mut seg: Vec<i64> = keep.iter().map(|&k| row[k]).collect();
            seg.push(*rhs);
            seg
        })
        .collect();
    eq_segments.sort();
    for seg in eq_segments {
        v.extend(seg);
    }
    v.push(SECTION_MARKER);
    let mut bound_segments: Vec<Vec<i64>> = problem
        .bounds
        .iter()
        .filter(|c| keep.iter().any(|&k| c.coeffs[k] != 0))
        .map(|c| {
            let mut seg: Vec<i64> = keep.iter().map(|&k| c.coeffs[k]).collect();
            seg.push(c.rhs);
            seg
        })
        .collect();
    bound_segments.sort();
    for seg in bound_segments {
        v.extend(seg);
    }
    CanonicalKey {
        key: MemoKey(v),
        kept_levels,
    }
}

/// Estimated resident size of a memo value, used by the byte-capped
/// eviction policy of [`ShardedMemoTable`] and the byte accounting of
/// [`MemoTable`].
///
/// Weights are *estimates* of heap plus inline size, not allocator
/// truth: the point is a stable, deterministic measure so a byte cap
/// evicts roughly the right number of entries on every platform. All
/// memoized value types (and the primitives used in tests) implement
/// this.
pub trait MemoWeight {
    /// Approximate size of this value in bytes.
    fn weight_bytes(&self) -> u64;
}

macro_rules! primitive_weight {
    ($($t:ty),* $(,)?) => {
        $(impl MemoWeight for $t {
            fn weight_bytes(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        })*
    };
}

primitive_weight!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Estimated bytes of a `Vec<i64>`: header plus elements.
#[must_use]
pub fn vec_i64_bytes(v: &[i64]) -> u64 {
    VEC_HEADER_BYTES + 8 * v.len() as u64
}

/// Size of a `Vec` header (pointer, length, capacity).
pub(crate) const VEC_HEADER_BYTES: u64 = 24;

/// Fixed per-entry bookkeeping charge: hash-map slot, eviction-queue
/// slot, and entry metadata. An estimate, like [`MemoWeight`] itself.
const ENTRY_OVERHEAD_BYTES: u64 = 64;

/// Estimated bytes held by a stored key. The key vector is kept twice
/// under eviction (map slot and ring slot); the overhead constant
/// absorbs the second header.
fn key_bytes(key: &MemoKey) -> u64 {
    2 * vec_i64_bytes(&key.0)
}

/// A point-in-time read of one memo table's traffic counters, shared by
/// [`MemoTable`] and [`ShardedMemoTable`] so observability code can
/// treat serial and sharded tables uniformly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoCounters {
    /// Lookups performed.
    pub queries: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Entries loaded from a persisted memo file (warm starts).
    pub warm_loads: u64,
    /// Distinct entries currently stored.
    pub entries: u64,
    /// Estimated bytes held by stored entries (see [`MemoWeight`]).
    pub bytes: u64,
    /// Entries evicted to stay under the byte capacity.
    pub evictions: u64,
    /// Byte capacity (0 = unbounded).
    pub capacity_bytes: u64,
}

impl MemoCounters {
    /// Lookups that missed (`queries - hits`).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.queries.saturating_sub(self.hits)
    }
}

/// A memo table with hit/miss and byte accounting.
#[derive(Debug, Clone)]
pub struct MemoTable<V> {
    map: HashMap<MemoKey, V, PaperHashBuilder>,
    queries: u64,
    hits: u64,
    warm_loads: u64,
    bytes: u64,
}

impl<V> Default for MemoTable<V> {
    fn default() -> MemoTable<V> {
        MemoTable::new()
    }
}

impl<V> MemoTable<V> {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> MemoTable<V> {
        MemoTable {
            map: HashMap::with_hasher(PaperHashBuilder),
            queries: 0,
            hits: 0,
            warm_loads: 0,
            bytes: 0,
        }
    }

    /// Looks up a key, counting the query.
    pub fn get(&mut self, key: &MemoKey) -> Option<&V> {
        self.queries += 1;
        let hit = self.map.get(key);
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Inserts a computed result.
    pub fn insert(&mut self, key: MemoKey, value: V)
    where
        V: MemoWeight,
    {
        let kb = key_bytes(&key);
        self.bytes += kb + value.weight_bytes() + ENTRY_OVERHEAD_BYTES;
        if let Some(old) = self.map.insert(key, value) {
            self.bytes -= kb + old.weight_bytes() + ENTRY_OVERHEAD_BYTES;
        }
    }

    /// Inserts an entry loaded from a persisted memo file, counting it
    /// as a warm-start load. Semantically identical to [`insert`];
    /// the extra counter only feeds telemetry.
    ///
    /// [`insert`]: MemoTable::insert
    pub fn insert_warm(&mut self, key: MemoKey, value: V)
    where
        V: MemoWeight,
    {
        self.warm_loads += 1;
        self.insert(key, value);
    }

    /// Number of lookups performed.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Number of lookups that hit.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries loaded via [`insert_warm`](MemoTable::insert_warm).
    #[must_use]
    pub fn warm_loads(&self) -> u64 {
        self.warm_loads
    }

    /// Number of distinct entries stored.
    #[must_use]
    pub fn unique_entries(&self) -> usize {
        self.map.len()
    }

    /// Estimated bytes held by stored entries.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// All traffic counters in one read. The serial table is unbounded
    /// (no eviction), so `evictions` and `capacity_bytes` are zero.
    #[must_use]
    pub fn counters(&self) -> MemoCounters {
        MemoCounters {
            queries: self.queries,
            hits: self.hits,
            warm_loads: self.warm_loads,
            entries: self.map.len() as u64,
            bytes: self.bytes,
            evictions: 0,
            capacity_bytes: 0,
        }
    }

    /// Iterates over stored entries (unspecified order).
    pub fn entries(&self) -> impl Iterator<Item = (&MemoKey, &V)> {
        self.map.iter()
    }

    /// Clears contents and counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.queries = 0;
        self.hits = 0;
        self.warm_loads = 0;
        self.bytes = 0;
    }
}

/// One mutex-guarded shard: the entry map plus the second-chance ring
/// and byte accounting that back the eviction policy.
#[derive(Debug)]
struct Shard<V> {
    map: HashMap<MemoKey, Entry<V>, PaperHashBuilder>,
    /// Second-chance (CLOCK) ring: keys in insertion order. The "hand"
    /// is the front; [`Entry::referenced`] is the chance bit.
    ring: VecDeque<MemoKey>,
    /// Estimated bytes held by this shard's entries.
    bytes: u64,
}

impl<V> Shard<V> {
    fn new() -> Shard<V> {
        Shard {
            map: HashMap::with_hasher(PaperHashBuilder),
            ring: VecDeque::new(),
            bytes: 0,
        }
    }
}

/// A stored value plus the bookkeeping eviction needs.
#[derive(Debug)]
struct Entry<V> {
    value: V,
    /// Estimated bytes (key, value, and fixed overhead), frozen at
    /// insert so removal subtracts exactly what insertion added.
    weight: u64,
    /// Second-chance bit: set by [`ShardedMemoTable::get`], cleared
    /// when the eviction hand passes over the entry.
    referenced: bool,
}

/// A concurrent memo table: `N` mutex-guarded shards, with the shard
/// chosen by the paper's own hash of the key.
///
/// This is the substrate behind `dda-engine`'s batch parallelism: worker
/// threads insert leader results and read cached outcomes through `&self`,
/// so the table can be shared across a `std::thread::scope` without a
/// global lock. Query/hit counters are atomic and count *table traffic*
/// (one consult per distinct key per batch in the engine), which is a
/// different notion from the serial-equivalent per-pair accounting in
/// [`AnalysisStats`](crate::stats::AnalysisStats).
///
/// # Bounded capacity
///
/// [`with_capacity`](ShardedMemoTable::with_capacity) caps the table's
/// estimated byte footprint. The budget is split evenly across shards
/// and each shard enforces its slice with a second-chance (CLOCK)
/// policy: entries sit in an insertion-ordered ring with a referenced
/// bit set on every hit; when an insert pushes the shard over budget,
/// the hand sweeps from the oldest entry, giving referenced entries one
/// more lap and evicting unreferenced ones until the shard fits.
/// Eviction only ever discards cached work — an evicted problem is
/// simply recomputed on its next appearance, so verdicts are unchanged.
#[derive(Debug)]
pub struct ShardedMemoTable<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Per-shard byte budget (0 = unbounded).
    shard_budget: u64,
    /// Whole-table byte capacity as requested (0 = unbounded).
    capacity_bytes: u64,
    queries: AtomicU64,
    hits: AtomicU64,
    inserts: AtomicU64,
    warm_loads: AtomicU64,
    evictions: AtomicU64,
    /// Per-shard operation counts (gets + inserts that touched the
    /// shard's lock) — the contention signal for telemetry. Bumped only
    /// on the hot paths, never by snapshots or entry counts.
    shard_ops: Vec<AtomicU64>,
}

impl<V> ShardedMemoTable<V> {
    /// Creates an unbounded table with `shards` shards (clamped to at
    /// least 1).
    #[must_use]
    pub fn new(shards: usize) -> ShardedMemoTable<V> {
        ShardedMemoTable::with_capacity(shards, 0)
    }

    /// Creates a table capped at roughly `max_bytes` estimated bytes
    /// (0 = unbounded). The cap is split evenly across shards, so a
    /// pathologically skewed key distribution can under-fill the table,
    /// but the paper hash plus avalanche mix spreads keys well in
    /// practice.
    #[must_use]
    pub fn with_capacity(shards: usize, max_bytes: u64) -> ShardedMemoTable<V> {
        let n = shards.max(1);
        ShardedMemoTable {
            shards: (0..n).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: if max_bytes == 0 {
                0
            } else {
                max_bytes.div_ceil(n as u64)
            },
            capacity_bytes: max_bytes,
            queries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            warm_loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            shard_ops: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured byte capacity (0 = unbounded).
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Shard index for a key (see [`route_hash`]).
    fn shard_of(&self, key: &MemoKey) -> usize {
        (route_hash(key) % self.shards.len() as u64) as usize
    }

    /// Locks the shard for `key`, counting the operation against it.
    fn shard(&self, key: &MemoKey) -> std::sync::MutexGuard<'_, Shard<V>> {
        let idx = self.shard_of(key);
        self.shard_ops[idx].fetch_add(1, Ordering::Relaxed);
        self.shards[idx].lock().expect("memo shard poisoned")
    }

    /// Looks up a key, counting the query (and the hit) atomically. A
    /// hit sets the entry's second-chance bit, shielding it from the
    /// next eviction sweep.
    pub fn get(&self, key: &MemoKey) -> Option<V>
    where
        V: Clone,
    {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let hit = {
            let mut shard = self.shard(key);
            shard.map.get_mut(key).map(|e| {
                e.referenced = true;
                e.value.clone()
            })
        };
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Inserts a computed result (last writer wins on collision; values
    /// for equal keys are identical by construction, so order is moot),
    /// then evicts via second chance until the shard fits its budget.
    pub fn insert(&self, key: MemoKey, value: V)
    where
        V: MemoWeight,
    {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let weight = key_bytes(&key) + value.weight_bytes() + ENTRY_OVERHEAD_BYTES;
        let entry = Entry {
            value,
            weight,
            referenced: false,
        };
        let mut shard = self.shard(&key);
        match shard.map.insert(key.clone(), entry) {
            Some(old) => shard.bytes = shard.bytes - old.weight + weight,
            None => {
                shard.bytes += weight;
                shard.ring.push_back(key);
            }
        }
        if self.shard_budget > 0 {
            let mut evicted = 0u64;
            while shard.bytes > self.shard_budget {
                let Some(hand) = shard.ring.pop_front() else {
                    break;
                };
                match shard.map.get_mut(&hand) {
                    Some(e) if e.referenced => {
                        // Second chance: clear the bit, move the entry
                        // behind the hand. The sweep still terminates —
                        // each pass clears bits, and an empty map means
                        // bytes == 0 <= budget.
                        e.referenced = false;
                        shard.ring.push_back(hand);
                    }
                    Some(_) => {
                        let e = shard.map.remove(&hand).expect("entry present");
                        shard.bytes -= e.weight;
                        evicted += 1;
                    }
                    // Ring slots always have a live entry today; guard
                    // so a future removal path cannot wedge the sweep.
                    None => {}
                }
            }
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Inserts an entry loaded from a persisted memo file, counting it
    /// as a warm-start load on top of the regular insert accounting.
    pub fn insert_warm(&self, key: MemoKey, value: V)
    where
        V: MemoWeight,
    {
        self.warm_loads.fetch_add(1, Ordering::Relaxed);
        self.insert(key, value);
    }

    /// Number of distinct entries across all shards.
    #[must_use]
    pub fn unique_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").map.len())
            .sum()
    }

    /// Estimated bytes held across all shards.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").bytes)
            .sum()
    }

    /// Whether the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.unique_entries() == 0
    }

    /// Lookups performed (table traffic, not per-pair accounting).
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Lookups that hit.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Inserts performed (including warm loads).
    #[must_use]
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Entries loaded via [`insert_warm`](ShardedMemoTable::insert_warm).
    #[must_use]
    pub fn warm_loads(&self) -> u64 {
        self.warm_loads.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay under the byte capacity.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Per-shard operation counts (gets + inserts), indexed by shard.
    /// Their sum always equals `queries() + inserts()`.
    #[must_use]
    pub fn shard_ops(&self) -> Vec<u64> {
        self.shard_ops
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// All traffic counters in one read.
    #[must_use]
    pub fn counters(&self) -> MemoCounters {
        MemoCounters {
            queries: self.queries(),
            hits: self.hits(),
            warm_loads: self.warm_loads(),
            entries: self.unique_entries() as u64,
            bytes: self.bytes(),
            evictions: self.evictions(),
            capacity_bytes: self.capacity_bytes,
        }
    }

    /// Clears contents and counters (the configured capacity stays).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock().expect("memo shard poisoned");
            shard.map.clear();
            shard.ring.clear();
            shard.bytes = 0;
        }
        self.queries.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.warm_loads.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        for c in &self.shard_ops {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// A sorted snapshot of every entry — the deterministic basis for
    /// persistence (see `persist`).
    #[must_use]
    pub fn snapshot(&self) -> Vec<(MemoKey, V)>
    where
        V: Clone,
    {
        let mut out: Vec<(MemoKey, V)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("memo shard poisoned")
                    .map
                    .iter()
                    .map(|(k, e)| (k.clone(), e.value.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out
    }
}

/// Both sharded tables of the batch engine: the no-bounds (GCD) table and
/// the with-bounds full-result table — the concurrent counterpart of the
/// pair of [`MemoTable`]s inside
/// [`DependenceAnalyzer`](crate::analyzer::DependenceAnalyzer). Persists
/// in the same `dda-memo v1` format (see `persist`), so serial and batch
/// runs can warm-start each other.
#[derive(Debug)]
pub struct SharedMemo {
    /// With-bounds full-result table.
    pub full: ShardedMemoTable<crate::analyzer::CachedOutcome>,
    /// No-bounds (extended GCD) table.
    pub gcd: ShardedMemoTable<crate::gcd::EqOutcome>,
    /// Cold tier: a lazily-faulted v3 archive attached by a binary warm
    /// start. Records fault into the tables above on first use (and can
    /// be evicted back out — the archive keeps them).
    archive: std::sync::OnceLock<crate::persist_v3::MemoArchive>,
    load_files: AtomicU64,
    load_records: AtomicU64,
    load_bytes: AtomicU64,
    load_nanos: AtomicU64,
    archive_faults: AtomicU64,
}

/// Telemetry for memo warm starts: one row per [`SharedMemo`], covering
/// both text (eager) and binary (lazy) loads plus archive faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoLoadStats {
    /// Memo files loaded into this table.
    pub files: u64,
    /// Records made available by those loads (parsed for text, indexed
    /// for binary).
    pub records: u64,
    /// Bytes read or mapped.
    pub bytes: u64,
    /// Wall-clock nanoseconds spent loading.
    pub nanos: u64,
    /// Lookups answered by faulting a record out of the cold archive
    /// tier into the resident tables.
    pub archive_faults: u64,
}

impl SharedMemo {
    /// Creates empty unbounded tables with `shards` shards each.
    #[must_use]
    pub fn new(shards: usize) -> SharedMemo {
        SharedMemo::with_capacity(shards, 0)
    }

    /// Creates empty tables capped at roughly `max_bytes` estimated
    /// bytes combined (0 = unbounded). The budget is split evenly
    /// between the full-result and GCD tables.
    #[must_use]
    pub fn with_capacity(shards: usize, max_bytes: u64) -> SharedMemo {
        let half = max_bytes / 2;
        SharedMemo {
            full: ShardedMemoTable::with_capacity(shards, half),
            gcd: ShardedMemoTable::with_capacity(shards, max_bytes - half),
            archive: std::sync::OnceLock::new(),
            load_files: AtomicU64::new(0),
            load_records: AtomicU64::new(0),
            load_bytes: AtomicU64::new(0),
            load_nanos: AtomicU64::new(0),
            archive_faults: AtomicU64::new(0),
        }
    }

    /// Looks up a full-result entry through both residency tiers: the
    /// resident table first, then the attached v3 archive (if any),
    /// faulting an archive hit into the table so repeat lookups are
    /// resident — and so the byte-capped CLOCK eviction governs how much
    /// of the archive stays hot.
    #[must_use]
    pub fn lookup_full(&self, key: &MemoKey) -> Option<crate::analyzer::CachedOutcome> {
        if let Some(v) = self.full.get(key) {
            return Some(v);
        }
        let v = self.archive.get()?.get_full(key)?;
        self.archive_faults.fetch_add(1, Ordering::Relaxed);
        self.full.insert_warm(key.clone(), v.clone());
        Some(v)
    }

    /// Looks up a gcd entry through both residency tiers (see
    /// [`SharedMemo::lookup_full`]).
    #[must_use]
    pub fn lookup_gcd(&self, key: &MemoKey) -> Option<crate::gcd::EqOutcome> {
        if let Some(v) = self.gcd.get(key) {
            return Some(v);
        }
        let v = self.archive.get()?.get_gcd(key)?;
        self.archive_faults.fetch_add(1, Ordering::Relaxed);
        self.gcd.insert_warm(key.clone(), v.clone());
        Some(v)
    }

    /// Warm-start telemetry for this table.
    #[must_use]
    pub fn memo_load_stats(&self) -> MemoLoadStats {
        MemoLoadStats {
            files: self.load_files.load(Ordering::Relaxed),
            records: self.load_records.load(Ordering::Relaxed),
            bytes: self.load_bytes.load(Ordering::Relaxed),
            nanos: self.load_nanos.load(Ordering::Relaxed),
            archive_faults: self.archive_faults.load(Ordering::Relaxed),
        }
    }

    /// Attaches a cold archive tier; fails (returning the archive) if
    /// one is already attached.
    pub(crate) fn attach_archive(
        &self,
        archive: crate::persist_v3::MemoArchive,
    ) -> Result<(), crate::persist_v3::MemoArchive> {
        self.archive.set(archive)
    }

    /// The attached cold tier, if any.
    pub(crate) fn archive_ref(&self) -> Option<&crate::persist_v3::MemoArchive> {
        self.archive.get()
    }

    /// Records one completed memo load.
    pub(crate) fn note_load(&self, records: u64, bytes: u64, nanos: u64) {
        self.load_files.fetch_add(1, Ordering::Relaxed);
        self.load_records.fetch_add(records, Ordering::Relaxed);
        self.load_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.load_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Combined byte capacity of both tables (0 = unbounded).
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.full.capacity_bytes() + self.gcd.capacity_bytes()
    }

    /// Combined estimated bytes held by both tables.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.full.bytes() + self.gcd.bytes()
    }

    /// Combined evictions across both tables.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.full.evictions() + self.gcd.evictions()
    }

    /// Clears both resident tables. An attached archive tier stays
    /// attached: evicting the hot tier never loses cold records. Callers
    /// that need a fully cold table should build a fresh [`SharedMemo`].
    pub fn clear(&self) {
        self.full.clear();
        self.gcd.clear();
    }
}

// ---------------------------------------------------------------------
// Weights of the values the engine actually memoizes. All estimates
// (see [`MemoWeight`]): fixed charges for enum discriminants and small
// scalars, header + elements for vectors, recursion for proof trees.

fn matrix_bytes(m: &dda_linalg::Matrix) -> u64 {
    16 + VEC_HEADER_BYTES + 8 * (m.rows() * m.cols()) as u64
}

fn rule_bytes(r: &crate::certificate::Rule) -> u64 {
    match r {
        crate::certificate::Rule::Premise { coeffs, .. } => 40 + vec_i64_bytes(coeffs),
        crate::certificate::Rule::Comb { .. } | crate::certificate::Rule::Div { .. } => 40,
    }
}

fn derivation_bytes(d: &crate::certificate::Derivation) -> u64 {
    VEC_HEADER_BYTES + 8 + d.rules.iter().map(rule_bytes).sum::<u64>()
}

fn fm_tree_bytes(t: &crate::certificate::FmTree) -> u64 {
    match t {
        crate::certificate::FmTree::Sealed(d) => 8 + derivation_bytes(d),
        crate::certificate::FmTree::Split { left, right, .. } => {
            40 + fm_tree_bytes(left) + fm_tree_bytes(right)
        }
    }
}

fn refutation_bytes(r: &crate::certificate::SystemRefutation) -> u64 {
    let arena = VEC_HEADER_BYTES + r.arena.iter().map(rule_bytes).sum::<u64>();
    let proof = match &r.proof {
        crate::certificate::RefProof::Arena { .. } => 16,
        crate::certificate::RefProof::Fm { tree } => 8 + fm_tree_bytes(tree),
    };
    arena + proof
}

fn dir_tree_bytes(t: &crate::certificate::DirTree) -> u64 {
    match t {
        crate::certificate::DirTree::Refuted(r) => 8 + refutation_bytes(r),
        crate::certificate::DirTree::Split { lt, eq, gt, .. } => {
            40 + dir_tree_bytes(lt) + dir_tree_bytes(eq) + dir_tree_bytes(gt)
        }
    }
}

impl MemoWeight for crate::certificate::Certificate {
    fn weight_bytes(&self) -> u64 {
        use crate::certificate::Certificate as C;
        match self {
            C::Conservative | C::Unverified | C::ConstantsEqual | C::ConstantsDiffer => 8,
            C::Witness { x } => 8 + vec_i64_bytes(x),
            C::GcdRefutation { numer, .. } => 16 + vec_i64_bytes(numer),
            C::Refuted {
                particular,
                basis,
                refutation,
            } => 8 + vec_i64_bytes(particular) + matrix_bytes(basis) + refutation_bytes(refutation),
            C::DirectionsExhausted {
                particular,
                basis,
                tree,
            } => 8 + vec_i64_bytes(particular) + matrix_bytes(basis) + dir_tree_bytes(tree),
        }
    }
}

impl MemoWeight for crate::gcd::EqOutcome {
    fn weight_bytes(&self) -> u64 {
        match self {
            crate::gcd::EqOutcome::Independent { refutation } => {
                8 + refutation
                    .as_ref()
                    .map_or(0, |(numer, _)| 8 + vec_i64_bytes(numer))
            }
            crate::gcd::EqOutcome::Lattice(l) => {
                8 + vec_i64_bytes(&l.particular) + matrix_bytes(&l.basis)
            }
        }
    }
}

impl MemoWeight for crate::analyzer::CachedOutcome {
    fn weight_bytes(&self) -> u64 {
        let result = 16
            + match &self.result.answer {
                crate::result::Answer::Dependent(Some(w)) => vec_i64_bytes(w),
                _ => 0,
            };
        let witness = self.witness.as_ref().map_or(0, |w| vec_i64_bytes(w));
        // One byte per direction component, 16 per optional distance.
        let directions = VEC_HEADER_BYTES
            + self
                .direction_vectors
                .iter()
                .map(|d| VEC_HEADER_BYTES + d.0.len() as u64)
                .sum::<u64>();
        let distance = VEC_HEADER_BYTES + 16 * self.distance.0.len() as u64;
        result + witness + directions + distance + self.certificate.weight_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::build_problem;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    fn problem(src: &str) -> DependenceProblem {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        assert_eq!(pairs.len(), 1);
        build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap()
    }

    #[test]
    fn paper_hash_matches_formula() {
        let key = MemoKey(vec![3, -1, 4]);
        let mut h = PaperHasher::default();
        key.hash(&mut h);
        // Vec<i64> hashing writes the length then each element; our
        // write_usize adds the size, each write_i64 adds 2^i * x_i.
        let expect = 3u64
            .wrapping_add(3u64.wrapping_shl(0))
            .wrapping_add((-1i64 as u64).wrapping_shl(1))
            .wrapping_add(4u64.wrapping_shl(2));
        assert_eq!(h.finish(), expect);
    }

    #[test]
    fn shift_wraps_at_sixty_one() {
        // Why `% 61` and not `% 64`: `wrapping_shl` masks its argument
        // mod 64, so a shift of exactly 64 would silently become 0 and
        // the behavior would hinge on that masking. Reducing mod 61 keeps
        // every shift strictly below the word size (explicit, not an
        // artifact of masking) and cycles the 2^i weights with period 61 —
        // a prime, so rotated keys fall out of phase with the weights
        // instead of systematically colliding.
        let hash = |k: &MemoKey| {
            let mut h = PaperHasher::default();
            k.hash(&mut h);
            h.finish()
        };
        let spike = |at: usize| {
            let mut v = vec![0i64; 65];
            v[at] = 1;
            MemoKey(v)
        };
        // Weights repeat with period 61: index 0 and index 61 share 2^0.
        assert_eq!(hash(&spike(0)), hash(&spike(61)));
        // Index 64 gets weight 2^(64 % 61) = 8, not the 2^0 that a
        // masked 64-bit shift would produce.
        assert_eq!(
            hash(&spike(64)).wrapping_sub(hash(&MemoKey(vec![0i64; 65]))),
            1u64 << 3
        );
    }

    #[test]
    fn integer_writes_are_endian_independent() {
        // The default `Hasher` integer methods forward to
        // `write(&v.to_ne_bytes())`, which differs between little- and
        // big-endian targets. Every width must instead go through the
        // endian-independent weighted fold: one value, one weight.
        fn state_after(f: impl FnOnce(&mut PaperHasher)) -> u64 {
            let mut h = PaperHasher::default();
            f(&mut h);
            h.finish()
        }
        // A single write of 5 at index 0 contributes 5 · 2^0 = 5 for
        // every width. (Under the byte-fold fallback, big-endian u32
        // would have produced 5 · 2^3 = 40.)
        assert_eq!(state_after(|h| h.write_u8(5)), 5);
        assert_eq!(state_after(|h| h.write_u16(5)), 5);
        assert_eq!(state_after(|h| h.write_u32(5)), 5);
        assert_eq!(state_after(|h| h.write_u64(5)), 5);
        assert_eq!(state_after(|h| h.write_i8(5)), 5);
        assert_eq!(state_after(|h| h.write_i16(5)), 5);
        assert_eq!(state_after(|h| h.write_i32(5)), 5);
        assert_eq!(state_after(|h| h.write_isize(5)), 5);
        // 128-bit values fold as two 64-bit limbs (low first).
        assert_eq!(
            state_after(|h| h.write_u128((7u128 << 64) | 5)),
            5u64.wrapping_add(7u64 << 1)
        );
        // Consecutive writes advance the weight exactly once per value.
        assert_eq!(
            state_after(|h| {
                h.write_u32(1);
                h.write_u32(1);
                h.write_u32(1);
            }),
            1 + 2 + 4
        );
    }

    #[test]
    fn sharded_table_basic_ops() {
        let t: ShardedMemoTable<u32> = ShardedMemoTable::new(4);
        assert_eq!(t.shard_count(), 4);
        let keys: Vec<MemoKey> = (0..64).map(|i| MemoKey(vec![i, i * 3 - 7, 2])).collect();
        for (i, k) in keys.iter().enumerate() {
            assert!(t.get(k).is_none());
            t.insert(k.clone(), i as u32);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u32));
        }
        assert_eq!(t.unique_entries(), 64);
        assert_eq!(t.queries(), 128);
        assert_eq!(t.hits(), 64);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 64);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "snapshot sorted");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.queries(), 0);
    }

    #[test]
    fn sharded_table_zero_shards_clamped() {
        let t: ShardedMemoTable<u8> = ShardedMemoTable::new(0);
        assert_eq!(t.shard_count(), 1);
        t.insert(MemoKey(vec![1]), 9);
        assert_eq!(t.get(&MemoKey(vec![1])), Some(9));
    }

    #[test]
    fn sharded_table_concurrent_inserts_and_reads() {
        let t: ShardedMemoTable<i64> = ShardedMemoTable::new(8);
        std::thread::scope(|s| {
            for w in 0..4i64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..200 {
                        let key = MemoKey(vec![i % 50, (i * 7) % 31]);
                        // Values for equal keys agree by construction, as
                        // in the engine's leader-election protocol.
                        t.insert(key.clone(), (i % 50) * 1000 + (i * 7) % 31);
                        let _ = t.get(&key);
                        let _ = w;
                    }
                });
            }
        });
        assert!(t.unique_entries() <= 200);
        for i in 0..200i64 {
            let key = MemoKey(vec![i % 50, (i * 7) % 31]);
            assert_eq!(t.get(&key), Some((i % 50) * 1000 + (i * 7) % 31));
        }
    }

    #[test]
    fn symmetry_does_not_collide() {
        // The stated design goal of the 2^i weighting.
        let k1 = MemoKey(vec![1, 2]);
        let k2 = MemoKey(vec![2, 1]);
        let hash = |k: &MemoKey| {
            let mut h = PaperHasher::default();
            k.hash(&mut h);
            h.finish()
        };
        assert_ne!(hash(&k1), hash(&k2));
    }

    #[test]
    fn identical_pairs_share_keys() {
        let p1 = problem("for i = 1 to 10 { a[i + 10] = a[i] + 3; }");
        let p2 = problem("for i = 1 to 10 { b[i + 10] = b[i] + 7; }");
        assert_eq!(bounds_key(&p1, false).key, bounds_key(&p2, false).key);
        assert_eq!(nobounds_key(&p1, false).key, nobounds_key(&p2, false).key);
        assert_eq!(nobounds_key(&p1, true).key, nobounds_key(&p2, true).key);
    }

    #[test]
    fn different_bounds_differ_with_bounds_only() {
        let p1 = problem("for i = 1 to 10 { a[i + 10] = a[i]; }");
        let p2 = problem("for i = 1 to 20 { a[i + 10] = a[i]; }");
        assert_eq!(nobounds_key(&p1, false).key, nobounds_key(&p2, false).key);
        assert_eq!(nobounds_key(&p1, true).key, nobounds_key(&p2, true).key);
        assert_ne!(bounds_key(&p1, false).key, bounds_key(&p2, false).key);
    }

    #[test]
    fn improved_scheme_collapses_unused_loops() {
        // The paper's Section 5 example: both two-loop programs collapse
        // to the single-loop one under the improved scheme.
        let two_a = problem("for i = 1 to 10 { for j = 1 to 10 { a[i + 10] = a[i] + 3; } }");
        let two_b = problem("for i = 1 to 10 { for j = 1 to 10 { a[j + 10] = a[j] + 3; } }");
        let one = problem("for i = 1 to 10 { a[i + 10] = a[i] + 3; }");
        assert_ne!(bounds_key(&two_a, false).key, bounds_key(&one, false).key);
        // two_a uses i (outer), two_b uses j (inner): simple keys differ.
        assert_ne!(bounds_key(&two_a, false).key, bounds_key(&two_b, false).key);
        // Improved keys all coincide.
        assert_eq!(bounds_key(&two_a, true).key, bounds_key(&one, true).key);
        assert_eq!(bounds_key(&two_b, true).key, bounds_key(&one, true).key);
    }

    #[test]
    fn triangular_coupling_keeps_variables() {
        // j's bound references i, and j is used, so i must stay even
        // though it appears in no subscript.
        let p = problem("for i = 1 to 10 { for j = i to 10 { a[j + 5] = a[j]; } }");
        let flat = problem("for j = 1 to 10 { a[j + 5] = a[j]; }");
        assert_ne!(bounds_key(&p, true).key, bounds_key(&flat, true).key);
    }

    #[test]
    fn table_counts_hits_and_misses() {
        let mut t: MemoTable<u32> = MemoTable::new();
        let k = MemoKey(vec![1, 2, 3]);
        assert!(t.get(&k).is_none());
        t.insert(k.clone(), 42);
        assert_eq!(t.get(&k), Some(&42));
        assert_eq!(t.queries(), 2);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.unique_entries(), 1);
        t.clear();
        assert_eq!(t.queries(), 0);
        assert_eq!(t.unique_entries(), 0);
    }

    #[test]
    fn table_counters_exact_on_scripted_sequence() {
        // Scripted: 1 warm load, then miss / warm-hit / miss / insert /
        // hit. Every counter must match the script exactly.
        let mut t: MemoTable<u32> = MemoTable::new();
        let warm = MemoKey(vec![9, 9]);
        let cold = MemoKey(vec![1, 2]);
        t.insert_warm(warm.clone(), 7);
        assert!(t.get(&cold).is_none()); // miss
        assert_eq!(t.get(&warm), Some(&7)); // hit (warm entry)
        assert!(t.get(&cold).is_none()); // miss
        t.insert(cold.clone(), 3);
        assert_eq!(t.get(&cold), Some(&3)); // hit
        let c = t.counters();
        assert_eq!(
            c,
            MemoCounters {
                queries: 4,
                hits: 2,
                warm_loads: 1,
                entries: 2,
                bytes: t.bytes(),
                evictions: 0,
                capacity_bytes: 0,
            }
        );
        assert!(c.bytes > 0, "stored entries must be accounted");
        assert_eq!(c.misses(), 2);
        t.clear();
        assert_eq!(t.counters(), MemoCounters::default());
    }

    #[test]
    fn sharded_counters_exact_on_scripted_sequence() {
        let t: ShardedMemoTable<u32> = ShardedMemoTable::new(3);
        let warm = MemoKey(vec![9, 9]);
        let cold = MemoKey(vec![1, 2]);
        t.insert_warm(warm.clone(), 7);
        assert!(t.get(&cold).is_none()); // miss
        assert_eq!(t.get(&warm), Some(7)); // hit (warm entry)
        t.insert(cold.clone(), 3);
        assert_eq!(t.get(&cold), Some(3)); // hit
        let c = t.counters();
        assert_eq!(
            c,
            MemoCounters {
                queries: 3,
                hits: 2,
                warm_loads: 1,
                entries: 2,
                bytes: t.bytes(),
                evictions: 0,
                capacity_bytes: 0,
            }
        );
        assert!(c.bytes > 0, "stored entries must be accounted");
        assert_eq!(t.inserts(), 2);
        // Shard ops count exactly the gets + inserts, per shard.
        let ops = t.shard_ops();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops.iter().sum::<u64>(), t.queries() + t.inserts());
        t.clear();
        assert_eq!(t.counters(), MemoCounters::default());
        assert_eq!(t.shard_ops(), vec![0, 0, 0]);
    }

    #[test]
    fn byte_accounting_tracks_inserts_and_replacements() {
        let mut t: MemoTable<u32> = MemoTable::new();
        assert_eq!(t.bytes(), 0);
        t.insert(MemoKey(vec![1, 2]), 5);
        let one = t.bytes();
        assert!(one > 0);
        // Replacing the same key must not grow the accounting.
        t.insert(MemoKey(vec![1, 2]), 9);
        assert_eq!(t.bytes(), one);
        t.insert(MemoKey(vec![3]), 1);
        assert!(t.bytes() > one);
        t.clear();
        assert_eq!(t.bytes(), 0);
    }

    #[test]
    fn capped_table_evicts_to_budget() {
        // One shard so the budget math is exact. Each u32 entry with a
        // one-element key weighs the same; cap the table to roughly
        // three entries and insert ten.
        let probe: ShardedMemoTable<u32> = ShardedMemoTable::new(1);
        probe.insert(MemoKey(vec![0]), 0);
        let per_entry = probe.bytes();
        let t: ShardedMemoTable<u32> = ShardedMemoTable::with_capacity(1, 3 * per_entry);
        for i in 0..10 {
            t.insert(MemoKey(vec![i]), i as u32);
        }
        assert!(t.bytes() <= 3 * per_entry, "byte cap enforced");
        assert_eq!(t.unique_entries(), 3);
        assert_eq!(t.evictions(), 7);
        assert_eq!(t.counters().capacity_bytes, 3 * per_entry);
        // The survivors are the most recent inserts (nothing was read,
        // so no second chances were granted).
        for i in 7..10 {
            assert_eq!(t.get(&MemoKey(vec![i])), Some(i as u32));
        }
    }

    #[test]
    fn second_chance_shields_referenced_entries() {
        let probe: ShardedMemoTable<u32> = ShardedMemoTable::new(1);
        probe.insert(MemoKey(vec![0]), 0);
        let per_entry = probe.bytes();
        let t: ShardedMemoTable<u32> = ShardedMemoTable::with_capacity(1, 3 * per_entry);
        t.insert(MemoKey(vec![1]), 1);
        t.insert(MemoKey(vec![2]), 2);
        t.insert(MemoKey(vec![3]), 3);
        // Touch the oldest entry: the hit sets its chance bit.
        assert_eq!(t.get(&MemoKey(vec![1])), Some(1));
        // The next insert overflows the budget. Without second chance
        // key [1] (the oldest) would go; with it, [2] goes instead.
        t.insert(MemoKey(vec![4]), 4);
        assert_eq!(t.get(&MemoKey(vec![1])), Some(1), "referenced entry kept");
        assert!(
            t.get(&MemoKey(vec![2])).is_none(),
            "unreferenced oldest evicted"
        );
        assert_eq!(t.unique_entries(), 3);
    }

    #[test]
    fn oversized_entry_does_not_wedge_the_sweep() {
        // A single entry larger than the whole budget is evicted right
        // after insertion; the sweep terminates and the table stays
        // usable.
        let t: ShardedMemoTable<u32> = ShardedMemoTable::with_capacity(1, 8);
        t.insert(MemoKey(vec![1, 2, 3, 4, 5, 6, 7, 8]), 1);
        assert_eq!(t.unique_entries(), 0);
        assert!(t.evictions() >= 1);
        t.insert(MemoKey(vec![9]), 2);
        assert_eq!(t.unique_entries(), 0, "still over budget, still evicts");
    }

    #[test]
    fn eviction_forces_recompute_not_wrong_answers() {
        // The memo contract under eviction: a missing entry means the
        // caller recomputes, and recomputation yields the same value
        // (values are pure functions of keys). Model that here: evict,
        // re-insert the recomputed value, and observe the same reads.
        let probe: ShardedMemoTable<u32> = ShardedMemoTable::new(1);
        probe.insert(MemoKey(vec![0]), 0);
        let per_entry = probe.bytes();
        let value_of = |k: i64| (k * k) as u32;
        let t: ShardedMemoTable<u32> = ShardedMemoTable::with_capacity(1, 2 * per_entry);
        for round in 0..3 {
            for k in 0..6i64 {
                let key = MemoKey(vec![k]);
                let got = match t.get(&key) {
                    Some(v) => v,
                    None => {
                        let v = value_of(k);
                        t.insert(key, v);
                        v
                    }
                };
                assert_eq!(got, value_of(k), "round {round} key {k}");
            }
        }
        assert!(t.evictions() > 0, "the cap must actually have bitten");
    }

    #[test]
    fn shared_memo_capacity_splits_between_tables() {
        let m = SharedMemo::with_capacity(2, 1001);
        assert_eq!(m.capacity_bytes(), 1001);
        assert_eq!(m.full.capacity_bytes(), 500);
        assert_eq!(m.gcd.capacity_bytes(), 501);
        let unbounded = SharedMemo::new(2);
        assert_eq!(unbounded.capacity_bytes(), 0);
    }

    #[test]
    fn shard_ops_not_polluted_by_snapshots_or_entry_counts() {
        let t: ShardedMemoTable<u32> = ShardedMemoTable::new(2);
        for i in 0..10 {
            t.insert(MemoKey(vec![i]), i as u32);
        }
        let before: u64 = t.shard_ops().iter().sum();
        let _ = t.unique_entries();
        let _ = t.is_empty();
        let _ = t.snapshot();
        let after: u64 = t.shard_ops().iter().sum();
        assert_eq!(before, after, "read-only scans must not count as ops");
        assert_eq!(after, t.inserts());
    }
}
