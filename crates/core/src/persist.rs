//! Persisting memo tables across compilations.
//!
//! Section 5: "One other possible improvement is to store the hash table
//! across compilations. This will eliminate the dependence cost of
//! incremental compilation. In addition, if there is similarity across
//! programs, one could use a set of benchmarks to set up a standard table
//! which would be used by all programs."
//!
//! The format is a line-oriented, versioned text encoding (plain `i64`
//! streams — no external serialization dependency). Loading is strict:
//! any malformed line aborts with a located error rather than silently
//! importing half a table.
//!
//! Version 2 appends each full record's [`Certificate`] so warm starts
//! keep their evidence, and each independent gcd record's refutation
//! witness so warm hits skip the re-derivation. Version 1 tables still
//! load, with every full entry's certificate degraded to
//! [`Certificate::Unverified`] and every gcd witness absent — the
//! verdicts are reused, but `--check` re-derives their evidence.

use std::fmt;
use std::fs;
use std::path::Path;

/// Streams bytes to `path` crash-safely: `write` receives a buffered
/// writer over a temporary file in the same directory (same
/// filesystem, so the final step is a true rename), and the temp file
/// is atomically renamed over the target only after the stream is
/// flushed. A process killed mid-write leaves either the old file or a
/// stray `.tmp` — never a truncated memo. The streaming shape lets
/// large payloads (the v3 binary shards) go to disk without being
/// buffered as one giant in-memory string first.
pub(crate) fn write_atomic_with(
    path: &Path,
    write: impl FnOnce(&mut dyn std::io::Write) -> std::io::Result<()>,
) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut out = std::io::BufWriter::new(fs::File::create(&tmp)?);
        write(&mut out)?;
        out.flush()?;
        drop(out);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Leave no half-written temp file behind on failure.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`write_atomic_with`] for callers that already hold the whole
/// payload as one string (the v2 text format).
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    write_atomic_with(path, |out| out.write_all(contents.as_bytes()))
}

use dda_linalg::Matrix;

use crate::analyzer::{CachedOutcome, DependenceAnalyzer};
use crate::certificate::{
    Certificate, Derivation, DirTree, FmTree, RefProof, Rule, SystemRefutation,
};
use crate::gcd::{EqOutcome, Lattice};
use crate::memo::{MemoKey, SharedMemo};
use crate::result::{
    Answer, DependenceResult, Direction, DirectionVector, DistanceVector, ResolvedBy, TestKind,
};

/// Magic header of the persisted format.
const HEADER: &str = "dda-memo v2";
/// Previous version, still accepted on load (certificates absent).
const HEADER_V1: &str = "dda-memo v1";

/// Errors raised while loading a persisted table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// 1-based line where the problem was found.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memo file, line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PersistError {}

/// Which on-disk memo format a load found, as sniffed from the file's
/// first bytes (`DDAMEMO3` magic → binary, anything else → text).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoFormat {
    /// Line-oriented `dda-memo v2` text (v1 still accepted).
    V2Text,
    /// Binary sharded `dda-memo v3` archive (see [`crate::persist_v3`]).
    V3Binary,
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError {
        line,
        message: message.into(),
    })
}

// --- encoding helpers ---------------------------------------------------

fn push_ints(out: &mut String, ints: &[i64]) {
    for (i, v) in ints.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&v.to_string());
    }
}

fn encode_dir(d: Direction) -> char {
    match d {
        Direction::Lt => '<',
        Direction::Eq => '=',
        Direction::Gt => '>',
        Direction::Any => '*',
    }
}

fn decode_dir(c: char, line: usize) -> Result<Direction, PersistError> {
    match c {
        '<' => Ok(Direction::Lt),
        '=' => Ok(Direction::Eq),
        '>' => Ok(Direction::Gt),
        '*' => Ok(Direction::Any),
        other => err(line, format!("bad direction `{other}`")),
    }
}

fn encode_resolved(r: ResolvedBy) -> &'static str {
    match r {
        ResolvedBy::Constant => "C",
        ResolvedBy::Gcd => "G",
        ResolvedBy::Test(TestKind::Svpc) => "T0",
        ResolvedBy::Test(TestKind::Acyclic) => "T1",
        ResolvedBy::Test(TestKind::LoopResidue) => "T2",
        ResolvedBy::Test(TestKind::FourierMotzkin) => "T3",
        ResolvedBy::Assumed => "A",
    }
}

fn decode_resolved(s: &str, line: usize) -> Result<ResolvedBy, PersistError> {
    Ok(match s {
        "C" => ResolvedBy::Constant,
        "G" => ResolvedBy::Gcd,
        "T0" => ResolvedBy::Test(TestKind::Svpc),
        "T1" => ResolvedBy::Test(TestKind::Acyclic),
        "T2" => ResolvedBy::Test(TestKind::LoopResidue),
        "T3" => ResolvedBy::Test(TestKind::FourierMotzkin),
        "A" => ResolvedBy::Assumed,
        other => return err(line, format!("bad resolver `{other}`")),
    })
}

/// A small cursor over whitespace-separated fields.
struct Fields<'a> {
    parts: std::str::SplitWhitespace<'a>,
    line: usize,
}

impl<'a> Fields<'a> {
    fn new(s: &'a str, line: usize) -> Fields<'a> {
        Fields {
            parts: s.split_whitespace(),
            line,
        }
    }

    fn next_str(&mut self) -> Result<&'a str, PersistError> {
        match self.parts.next() {
            Some(p) => Ok(p),
            None => err(self.line, "unexpected end of line"),
        }
    }

    fn next_i64(&mut self) -> Result<i64, PersistError> {
        let s = self.next_str()?;
        s.parse().map_err(|_| PersistError {
            line: self.line,
            message: format!("bad integer `{s}`"),
        })
    }

    fn next_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.next_i64()?;
        usize::try_from(v).map_err(|_| PersistError {
            line: self.line,
            message: format!("bad count `{v}`"),
        })
    }

    fn next_ints(&mut self, n: usize) -> Result<Vec<i64>, PersistError> {
        (0..n).map(|_| self.next_i64()).collect()
    }

    /// Number of whitespace-separated fields left on the line.
    fn remaining(&self) -> usize {
        self.parts.clone().count()
    }

    /// Reads a count of items still to be decoded from this line. Every
    /// item occupies at least one field, so any honest count is bounded
    /// by what remains — rejecting a corrupt or crafted count *before*
    /// the caller sizes an allocation from it.
    fn next_count(&mut self) -> Result<usize, PersistError> {
        let n = self.next_usize()?;
        let left = self.remaining();
        if n > left {
            return err(
                self.line,
                format!("count {n} exceeds the {left} remaining fields"),
            );
        }
        Ok(n)
    }

    fn finish(mut self) -> Result<(), PersistError> {
        match self.parts.next() {
            None => Ok(()),
            Some(extra) => err(self.line, format!("trailing `{extra}`")),
        }
    }
}

// --- certificate encode/decode ------------------------------------------

fn encode_rule(r: &Rule, out: &mut String) {
    match r {
        Rule::Premise { coeffs, rhs } => {
            out.push_str(&format!(" P {} ", coeffs.len()));
            push_ints(out, coeffs);
            out.push_str(&format!(" {rhs}"));
        }
        Rule::Comb { a, ca, b, cb } => out.push_str(&format!(" C {a} {ca} {b} {cb}")),
        Rule::Div { of, d } => out.push_str(&format!(" D {of} {d}")),
    }
}

fn decode_rule(f: &mut Fields<'_>) -> Result<Rule, PersistError> {
    Ok(match f.next_str()? {
        "P" => {
            let n = f.next_count()?;
            let coeffs = f.next_ints(n)?;
            let rhs = f.next_i64()?;
            Rule::Premise { coeffs, rhs }
        }
        "C" => Rule::Comb {
            a: f.next_usize()?,
            ca: f.next_i64()?,
            b: f.next_usize()?,
            cb: f.next_i64()?,
        },
        "D" => Rule::Div {
            of: f.next_usize()?,
            d: f.next_i64()?,
        },
        other => return err(f.line, format!("bad rule tag `{other}`")),
    })
}

fn encode_fmtree(t: &FmTree, out: &mut String) {
    match t {
        FmTree::Sealed(d) => {
            out.push_str(&format!(" S {}", d.rules.len()));
            for r in &d.rules {
                encode_rule(r, out);
            }
            out.push_str(&format!(" {}", d.seal));
        }
        FmTree::Split {
            var,
            le,
            ge,
            left,
            right,
        } => {
            out.push_str(&format!(" B {var} {le} {ge}"));
            encode_fmtree(left, out);
            encode_fmtree(right, out);
        }
    }
}

fn decode_fmtree(f: &mut Fields<'_>) -> Result<FmTree, PersistError> {
    Ok(match f.next_str()? {
        "S" => {
            let n = f.next_count()?;
            let rules = (0..n)
                .map(|_| decode_rule(f))
                .collect::<Result<Vec<_>, _>>()?;
            let seal = f.next_usize()?;
            FmTree::Sealed(Derivation { rules, seal })
        }
        "B" => FmTree::Split {
            var: f.next_usize()?,
            le: f.next_i64()?,
            ge: f.next_i64()?,
            left: Box::new(decode_fmtree(f)?),
            right: Box::new(decode_fmtree(f)?),
        },
        other => return err(f.line, format!("bad fm tag `{other}`")),
    })
}

fn encode_sysref(s: &SystemRefutation, out: &mut String) {
    out.push_str(&format!(" {}", s.arena.len()));
    for r in &s.arena {
        encode_rule(r, out);
    }
    match &s.proof {
        RefProof::Arena { seal } => out.push_str(&format!(" A {seal}")),
        RefProof::Fm { tree } => {
            out.push_str(" F");
            encode_fmtree(tree, out);
        }
    }
}

fn decode_sysref(f: &mut Fields<'_>) -> Result<SystemRefutation, PersistError> {
    let n = f.next_count()?;
    let arena = (0..n)
        .map(|_| decode_rule(f))
        .collect::<Result<Vec<_>, _>>()?;
    let proof = match f.next_str()? {
        "A" => RefProof::Arena {
            seal: f.next_usize()?,
        },
        "F" => RefProof::Fm {
            tree: decode_fmtree(f)?,
        },
        other => return err(f.line, format!("bad proof tag `{other}`")),
    };
    Ok(SystemRefutation { arena, proof })
}

fn encode_dirtree(t: &DirTree, out: &mut String) {
    match t {
        DirTree::Refuted(s) => {
            out.push_str(" R");
            encode_sysref(s, out);
        }
        DirTree::Split { level, lt, eq, gt } => {
            out.push_str(&format!(" T {level}"));
            encode_dirtree(lt, out);
            encode_dirtree(eq, out);
            encode_dirtree(gt, out);
        }
    }
}

fn decode_dirtree(f: &mut Fields<'_>) -> Result<DirTree, PersistError> {
    Ok(match f.next_str()? {
        "R" => DirTree::Refuted(decode_sysref(f)?),
        "T" => DirTree::Split {
            level: f.next_usize()?,
            lt: Box::new(decode_dirtree(f)?),
            eq: Box::new(decode_dirtree(f)?),
            gt: Box::new(decode_dirtree(f)?),
        },
        other => return err(f.line, format!("bad dir tag `{other}`")),
    })
}

fn encode_lattice_part(particular: &[i64], basis: &Matrix, out: &mut String) {
    out.push_str(&format!(
        " {} {} {} ",
        particular.len(),
        basis.rows(),
        basis.cols()
    ));
    push_ints(out, particular);
    for r in 0..basis.rows() {
        out.push(' ');
        push_ints(out, basis.row(r));
    }
}

fn decode_lattice_part(f: &mut Fields<'_>) -> Result<(Vec<i64>, Matrix), PersistError> {
    let np = f.next_count()?;
    let rows = f.next_count()?;
    let cols = f.next_count()?;
    if np != rows {
        return err(f.line, "particular length must equal basis rows");
    }
    let particular = f.next_ints(np)?;
    decode_matrix(f, rows, cols).map(|basis| (particular, basis))
}

/// Decodes a `rows × cols` matrix, validating the (file-supplied) sizes
/// against the fields actually left on the line before allocating —
/// a crafted `100000 100000` header is a located parse error, not a
/// multi-gigabyte allocation.
fn decode_matrix(f: &mut Fields<'_>, rows: usize, cols: usize) -> Result<Matrix, PersistError> {
    let cells = rows.checked_mul(cols);
    if cells.is_none_or(|c| c > f.remaining()) {
        return err(f.line, format!("line too short for a {rows}x{cols} basis"));
    }
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            m[(r, c)] = f.next_i64()?;
        }
    }
    Ok(m)
}

fn encode_cert(c: &Certificate, out: &mut String) {
    match c {
        Certificate::Conservative => out.push_str(" c -"),
        Certificate::Unverified => out.push_str(" c u"),
        Certificate::Witness { x } => {
            out.push_str(&format!(" c W {} ", x.len()));
            push_ints(out, x);
        }
        Certificate::ConstantsEqual => out.push_str(" c E"),
        Certificate::ConstantsDiffer => out.push_str(" c N"),
        Certificate::GcdRefutation { numer, denom } => {
            out.push_str(&format!(" c G {} ", numer.len()));
            push_ints(out, numer);
            out.push_str(&format!(" {denom}"));
        }
        Certificate::Refuted {
            particular,
            basis,
            refutation,
        } => {
            out.push_str(" c R");
            encode_lattice_part(particular, basis, out);
            encode_sysref(refutation, out);
        }
        Certificate::DirectionsExhausted {
            particular,
            basis,
            tree,
        } => {
            out.push_str(" c X");
            encode_lattice_part(particular, basis, out);
            encode_dirtree(tree, out);
        }
    }
}

fn decode_cert(f: &mut Fields<'_>) -> Result<Certificate, PersistError> {
    match f.next_str()? {
        "c" => {}
        other => return err(f.line, format!("expected `c`, found `{other}`")),
    }
    Ok(match f.next_str()? {
        "-" => Certificate::Conservative,
        "u" => Certificate::Unverified,
        "W" => {
            let n = f.next_count()?;
            Certificate::Witness { x: f.next_ints(n)? }
        }
        "E" => Certificate::ConstantsEqual,
        "N" => Certificate::ConstantsDiffer,
        "G" => {
            let n = f.next_count()?;
            let numer = f.next_ints(n)?;
            Certificate::GcdRefutation {
                numer,
                denom: f.next_i64()?,
            }
        }
        "R" => {
            let (particular, basis) = decode_lattice_part(f)?;
            Certificate::Refuted {
                particular,
                basis,
                refutation: decode_sysref(f)?,
            }
        }
        "X" => {
            let (particular, basis) = decode_lattice_part(f)?;
            Certificate::DirectionsExhausted {
                particular,
                basis,
                tree: decode_dirtree(f)?,
            }
        }
        other => return err(f.line, format!("bad certificate tag `{other}`")),
    })
}

// --- per-record encode/decode -------------------------------------------

fn encode_gcd(key: &MemoKey, value: &EqOutcome, out: &mut String) {
    out.push_str("gcd ");
    out.push_str(&key.as_slice().len().to_string());
    out.push(' ');
    push_ints(out, key.as_slice());
    match value {
        EqOutcome::Independent { refutation } => {
            out.push_str(" I");
            match refutation {
                Some((numer, denom)) => {
                    out.push_str(&format!(" w {} ", numer.len()));
                    push_ints(out, numer);
                    out.push_str(&format!(" {denom}"));
                }
                None => out.push_str(" -"),
            }
        }
        EqOutcome::Lattice(l) => {
            out.push_str(" L ");
            out.push_str(&format!(
                "{} {} {} ",
                l.particular.len(),
                l.basis.rows(),
                l.basis.cols()
            ));
            push_ints(out, &l.particular);
            for r in 0..l.basis.rows() {
                out.push(' ');
                push_ints(out, l.basis.row(r));
            }
        }
    }
    out.push('\n');
}

fn decode_gcd(f: &mut Fields<'_>, v2: bool) -> Result<(MemoKey, EqOutcome), PersistError> {
    let klen = f.next_count()?;
    let key = MemoKey::from_vec(f.next_ints(klen)?);
    let tag = f.next_str()?;
    let value = match tag {
        "I" if !v2 => {
            // v1 records predate refutation witnesses.
            EqOutcome::Independent { refutation: None }
        }
        "I" => {
            let refutation = match f.next_str()? {
                "-" => None,
                "w" => {
                    let n = f.next_count()?;
                    let numer = f.next_ints(n)?;
                    Some((numer, f.next_i64()?))
                }
                other => return err(f.line, format!("bad refutation tag `{other}`")),
            };
            EqOutcome::Independent { refutation }
        }
        "L" => {
            let np = f.next_count()?;
            let rows = f.next_count()?;
            let cols = f.next_count()?;
            if np != rows {
                return err(f.line, "particular length must equal basis rows");
            }
            let particular = f.next_ints(np)?;
            let basis = decode_matrix(f, rows, cols)?;
            EqOutcome::Lattice(Lattice { particular, basis })
        }
        other => return err(f.line, format!("bad gcd tag `{other}`")),
    };
    Ok((key, value))
}

fn encode_full(key: &MemoKey, value: &CachedOutcome, out: &mut String) {
    out.push_str("full ");
    out.push_str(&key.as_slice().len().to_string());
    out.push(' ');
    push_ints(out, key.as_slice());
    let answer = match &value.result.answer {
        Answer::Independent => "I",
        Answer::Dependent(_) => "D",
        Answer::Unknown => "U",
    };
    out.push_str(&format!(
        " {answer} {} ",
        encode_resolved(value.result.resolved_by)
    ));
    match &value.witness {
        Some(w) => {
            out.push_str(&format!("w {} ", w.len()));
            push_ints(out, w);
        }
        None => out.push('-'),
    }
    out.push_str(&format!(" v {}", value.direction_vectors.len()));
    for dv in &value.direction_vectors {
        out.push(' ');
        if dv.0.is_empty() {
            out.push('.');
        } else {
            for d in &dv.0 {
                out.push(encode_dir(*d));
            }
        }
    }
    out.push_str(&format!(" d {}", value.distance.0.len()));
    for d in &value.distance.0 {
        match d {
            Some(v) => out.push_str(&format!(" {v}")),
            None => out.push_str(" ?"),
        }
    }
    encode_cert(&value.certificate, out);
    out.push('\n');
}

fn decode_full(f: &mut Fields<'_>, v2: bool) -> Result<(MemoKey, CachedOutcome), PersistError> {
    let line = f.line;
    let klen = f.next_count()?;
    let key = MemoKey::from_vec(f.next_ints(klen)?);
    let answer = match f.next_str()? {
        "I" => Answer::Independent,
        "D" => Answer::Dependent(None),
        "U" => Answer::Unknown,
        other => return err(line, format!("bad answer `{other}`")),
    };
    let resolved_by = decode_resolved(f.next_str()?, line)?;
    let witness = match f.next_str()? {
        "-" => None,
        "w" => {
            let n = f.next_count()?;
            Some(f.next_ints(n)?)
        }
        other => return err(line, format!("bad witness tag `{other}`")),
    };
    match f.next_str()? {
        "v" => {}
        other => return err(line, format!("expected `v`, found `{other}`")),
    }
    let nv = f.next_count()?;
    let mut direction_vectors = Vec::with_capacity(nv);
    for _ in 0..nv {
        let tok = f.next_str()?;
        if tok == "." {
            direction_vectors.push(DirectionVector(Vec::new()));
        } else {
            let dirs: Result<Vec<Direction>, PersistError> =
                tok.chars().map(|c| decode_dir(c, line)).collect();
            direction_vectors.push(DirectionVector(dirs?));
        }
    }
    match f.next_str()? {
        "d" => {}
        other => return err(line, format!("expected `d`, found `{other}`")),
    }
    let nd = f.next_count()?;
    let mut distance = Vec::with_capacity(nd);
    for _ in 0..nd {
        let tok = f.next_str()?;
        if tok == "?" {
            distance.push(None);
        } else {
            match tok.parse::<i64>() {
                Ok(v) => distance.push(Some(v)),
                Err(_) => return err(line, format!("bad distance `{tok}`")),
            }
        }
    }
    let certificate = if v2 {
        decode_cert(f)?
    } else {
        // v1 records predate certificates: the verdict is reusable but
        // its evidence is gone.
        Certificate::Unverified
    };
    Ok((
        key,
        CachedOutcome {
            result: DependenceResult {
                answer,
                resolved_by,
            },
            witness,
            direction_vectors,
            distance: DistanceVector(distance),
            certificate,
        },
    ))
}

// --- analyzer-level API ---------------------------------------------------

impl DependenceAnalyzer {
    /// Serializes both memo tables to the versioned text format.
    ///
    /// Entries are emitted in sorted key order, so exports are
    /// deterministic and diff-friendly.
    #[must_use]
    pub fn export_memo(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        let mut gcd: Vec<_> = self.gcd_memo.entries().collect();
        gcd.sort_by_key(|(k, _)| (*k).clone());
        for (k, v) in gcd {
            encode_gcd(k, v, &mut out);
        }
        let mut full: Vec<_> = self.full_memo.entries().collect();
        full.sort_by_key(|(k, _)| (*k).clone());
        for (k, v) in full {
            encode_full(k, v, &mut out);
        }
        out
    }

    /// Loads entries from a previously exported table into this
    /// analyzer's memo tables (existing entries are kept; imported keys
    /// overwrite colliding ones).
    ///
    /// # Errors
    ///
    /// Returns a located [`PersistError`] on any malformed content; the
    /// tables may then be partially updated.
    pub fn import_memo(&mut self, text: &str) -> Result<(), PersistError> {
        let mut lines = text.lines().enumerate();
        let v2 = match lines.next() {
            Some((_, h)) if h.trim() == HEADER => true,
            Some((_, h)) if h.trim() == HEADER_V1 => false,
            Some((_, h)) => return err(1, format!("bad header `{h}`")),
            None => return err(1, "empty file"),
        };
        for (idx, line) in lines {
            let line_no = idx + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut f = Fields::new(trimmed, line_no);
            match f.next_str()? {
                "gcd" => {
                    let (k, v) = decode_gcd(&mut f, v2)?;
                    f.finish()?;
                    self.gcd_memo.insert_warm(k, v);
                }
                "full" => {
                    let (k, v) = decode_full(&mut f, v2)?;
                    f.finish()?;
                    self.full_memo.insert_warm(k, v);
                }
                other => return err(line_no, format!("unknown record `{other}`")),
            }
        }
        Ok(())
    }

    /// Writes [`export_memo`](Self::export_memo) to a file atomically
    /// (temp file in the same directory plus rename), so an interrupted
    /// save never corrupts an existing memo.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_memo_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_atomic(path.as_ref(), &self.export_memo())
    }

    /// Reads a memo file — either text (see
    /// [`import_memo`](Self::import_memo)) or a binary v3 archive, which
    /// is decoded eagerly since the serial analyzer's tables are not
    /// shared — and reports which format it found.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; format errors are wrapped as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load_memo_file(&mut self, path: impl AsRef<Path>) -> std::io::Result<MemoFormat> {
        let path = path.as_ref();
        if crate::persist_v3::is_v3_file(path)? {
            let archive = crate::persist_v3::MemoArchive::open(path)?;
            archive
                .for_each_gcd(|k, v| self.gcd_memo.insert_warm(k, v))
                .and_then(|()| archive.for_each_full(|k, v| self.full_memo.insert_warm(k, v)))
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            return Ok(MemoFormat::V3Binary);
        }
        let text = fs::read_to_string(path)?;
        self.import_memo(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(MemoFormat::V2Text)
    }
}

impl SharedMemo {
    /// Serializes both sharded tables to the same `dda-memo v1` format as
    /// [`DependenceAnalyzer::export_memo`], in sorted key order — so a
    /// batch run can warm-start a serial analyzer and vice versa.
    #[must_use]
    pub fn export_memo(&self) -> String {
        let (gcd, full) = self.merged_entries();
        let mut out = String::from(HEADER);
        out.push('\n');
        for (k, v) in &gcd {
            encode_gcd(k, v, &mut out);
        }
        for (k, v) in &full {
            encode_full(k, v, &mut out);
        }
        out
    }

    /// Every entry visible through both residency tiers, sorted by key:
    /// the attached archive (if any) overlaid by the resident tables —
    /// so persisting a lazily-loaded memo never drops records that were
    /// simply never faulted in.
    #[allow(clippy::type_complexity)]
    fn merged_entries(&self) -> (Vec<(MemoKey, EqOutcome)>, Vec<(MemoKey, CachedOutcome)>) {
        use std::collections::BTreeMap;
        let mut gcd: BTreeMap<MemoKey, EqOutcome> = BTreeMap::new();
        let mut full: BTreeMap<MemoKey, CachedOutcome> = BTreeMap::new();
        if let Some(archive) = self.archive_ref() {
            // The archive's payload checksums were verified at open, so
            // a record that fails to decode here is a writer bug, not
            // file corruption — surface it loudly.
            archive
                .for_each_gcd(|k, v| {
                    gcd.insert(k, v);
                })
                .and_then(|()| {
                    archive.for_each_full(|k, v| {
                        full.insert(k, v);
                    })
                })
                .expect("checksummed archive records decode");
        }
        for (k, v) in self.gcd.snapshot() {
            gcd.insert(k, v);
        }
        for (k, v) in self.full.snapshot() {
            full.insert(k, v);
        }
        (gcd.into_iter().collect(), full.into_iter().collect())
    }

    /// Loads entries from a previously exported table (from either a
    /// serial analyzer or another shared table). Existing entries are
    /// kept; imported keys overwrite colliding ones.
    ///
    /// # Errors
    ///
    /// Returns a located [`PersistError`] on malformed content; the
    /// tables may then be partially updated.
    pub fn import_memo(&self, text: &str) -> Result<(), PersistError> {
        let mut lines = text.lines().enumerate();
        let v2 = match lines.next() {
            Some((_, h)) if h.trim() == HEADER => true,
            Some((_, h)) if h.trim() == HEADER_V1 => false,
            Some((_, h)) => return err(1, format!("bad header `{h}`")),
            None => return err(1, "empty file"),
        };
        for (idx, line) in lines {
            let line_no = idx + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut f = Fields::new(trimmed, line_no);
            match f.next_str()? {
                "gcd" => {
                    let (k, v) = decode_gcd(&mut f, v2)?;
                    f.finish()?;
                    self.gcd.insert_warm(k, v);
                }
                "full" => {
                    let (k, v) = decode_full(&mut f, v2)?;
                    f.finish()?;
                    self.full.insert_warm(k, v);
                }
                other => return err(line_no, format!("unknown record `{other}`")),
            }
        }
        Ok(())
    }

    /// Writes [`export_memo`](Self::export_memo) to a file atomically
    /// (temp file in the same directory plus rename), so a killed
    /// server or batch run never corrupts an existing memo.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_memo_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_atomic(path.as_ref(), &self.export_memo())
    }

    /// Writes both tiers as a binary v3 archive with `shard_count`
    /// payload shards per section, atomically (see
    /// [`crate::persist_v3`]). Like [`export_memo`](Self::export_memo),
    /// the output merges the resident tables over any attached archive.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_memo_file_v3(
        &self,
        path: impl AsRef<Path>,
        shard_count: usize,
    ) -> std::io::Result<()> {
        let (gcd, full) = self.merged_entries();
        crate::persist_v3::write_memo_v3(path.as_ref(), &gcd, &full, shard_count)
    }

    /// Reads a memo file into the sharded tables and reports which
    /// format it found. Text files (see
    /// [`import_memo`](Self::import_memo)) decode eagerly. A binary v3
    /// archive is validated, then *attached* as a cold tier: records
    /// fault into the resident tables on first lookup instead of being
    /// decoded up front. If an archive is already attached (a second v3
    /// load), the new file is decoded eagerly instead.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; format errors are wrapped as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load_memo_file(&self, path: impl AsRef<Path>) -> std::io::Result<MemoFormat> {
        let started = std::time::Instant::now();
        let path = path.as_ref();
        if crate::persist_v3::is_v3_file(path)? {
            let archive = crate::persist_v3::MemoArchive::open(path)?;
            let records = archive.total_records();
            let bytes = archive.file_len();
            if let Err(second) = self.attach_archive(archive) {
                second
                    .for_each_gcd(|k, v| self.gcd.insert_warm(k, v))
                    .and_then(|()| second.for_each_full(|k, v| self.full.insert_warm(k, v)))
                    .map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })?;
            }
            self.note_load(records, bytes, started.elapsed().as_nanos() as u64);
            return Ok(MemoFormat::V3Binary);
        }
        let text = fs::read_to_string(path)?;
        let before = self.gcd.warm_loads() + self.full.warm_loads();
        self.import_memo(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let records = self.gcd.warm_loads() + self.full.warm_loads() - before;
        self.note_load(
            records,
            text.len() as u64,
            started.elapsed().as_nanos() as u64,
        );
        Ok(MemoFormat::V2Text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_ir::parse_program;

    fn trained_analyzer() -> DependenceAnalyzer {
        let src = "
            for i = 1 to 10 { a[i + 1] = a[i]; }
            for i = 1 to 10 { b[2 * i] = b[2 * i + 1]; }
            for i = 1 to 10 { for j = i to 10 { c[j + 2] = c[j]; } }
            read(n); for i = 1 to 10 { d[i + n] = d[i + n + 3]; }
        ";
        let program = parse_program(src).unwrap();
        let mut an = DependenceAnalyzer::new();
        an.analyze_program(&program);
        an
    }

    #[test]
    fn export_import_round_trip() {
        let trained = trained_analyzer();
        let text = trained.export_memo();
        assert!(text.starts_with(HEADER));

        let mut fresh = DependenceAnalyzer::new();
        fresh.import_memo(&text).unwrap();
        assert_eq!(fresh.memo_entries(), trained.memo_entries());
        assert_eq!(fresh.gcd_memo_entries(), trained.gcd_memo_entries());

        // Round-trip stability.
        assert_eq!(fresh.export_memo(), text);
    }

    #[test]
    fn imported_table_eliminates_tests() {
        let trained = trained_analyzer();
        let text = trained.export_memo();

        let program = parse_program("for i = 1 to 10 { z[i + 1] = z[i]; }").unwrap();
        // Without the import: one test.
        let mut cold = DependenceAnalyzer::new();
        let r = cold.analyze_program(&program);
        assert_eq!(r.stats.base_tests.total(), 1);

        // With the import: the a[i+1]=a[i] entry answers it from cache.
        let mut warm = DependenceAnalyzer::new();
        warm.import_memo(&text).unwrap();
        let r = warm.analyze_program(&program);
        assert_eq!(r.stats.base_tests.total(), 0);
        assert_eq!(r.stats.memo_hits, 1);
        assert_eq!(
            r.pairs()[0].direction_vectors,
            cold.analyze_program(&program).pairs()[0].direction_vectors
        );
    }

    #[test]
    fn import_counts_warm_loads_exactly() {
        let trained = trained_analyzer();
        let text = trained.export_memo();

        // Serial analyzer: one warm load per imported record.
        let mut fresh = DependenceAnalyzer::new();
        fresh.import_memo(&text).unwrap();
        assert_eq!(
            fresh.full_memo_counters().warm_loads,
            trained.memo_entries() as u64
        );
        assert_eq!(
            fresh.gcd_memo_counters().warm_loads,
            trained.gcd_memo_entries() as u64
        );
        // Warm loads are telemetry, not traffic: no queries or hits yet.
        assert_eq!(fresh.full_memo_counters().queries, 0);
        assert_eq!(fresh.full_memo_counters().hits, 0);

        // Sharded tables: same exact accounting.
        let shared = SharedMemo::new(4);
        shared.import_memo(&text).unwrap();
        assert_eq!(
            shared.full.counters().warm_loads,
            trained.memo_entries() as u64
        );
        assert_eq!(
            shared.gcd.counters().warm_loads,
            trained.gcd_memo_entries() as u64
        );
        assert_eq!(shared.full.queries(), 0);
    }

    #[test]
    fn export_is_deterministic() {
        let a = trained_analyzer().export_memo();
        let b = trained_analyzer().export_memo();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_inputs_are_located() {
        let mut an = DependenceAnalyzer::new();
        let bad_header = an.import_memo("nope\n").unwrap_err();
        assert_eq!(bad_header.line, 1);

        let bad_record = an.import_memo("dda-memo v2\nbogus 1 2 3\n").unwrap_err();
        assert_eq!(bad_record.line, 2);
        assert!(bad_record.message.contains("bogus"));

        let truncated = an.import_memo("dda-memo v2\ngcd 3 1 2\n").unwrap_err();
        assert_eq!(truncated.line, 2);

        let trailing = an
            .import_memo("dda-memo v2\ngcd 1 7 I - extra\n")
            .unwrap_err();
        assert!(trailing.message.contains("trailing"));

        // An overclaimed count fails before any allocation is sized to it.
        let huge = an
            .import_memo("dda-memo v2\ngcd 1 7 L 100000 100000 100000 1\n")
            .unwrap_err();
        assert_eq!(huge.line, 2);
        assert!(huge.message.contains("exceeds"), "{}", huge.message);

        // Dimensions that individually pass the count check but whose
        // product overflows the line also fail before allocating.
        let wide = an
            .import_memo("dda-memo v2\ngcd 1 7 L 2 2 3 1 2 3 4 5\n")
            .unwrap_err();
        assert_eq!(wide.line, 2);
        assert!(wide.message.contains("too short"), "{}", wide.message);
    }

    #[test]
    fn comments_and_blank_lines_allowed() {
        let mut an = DependenceAnalyzer::new();
        an.import_memo("dda-memo v2\n\n# a comment\ngcd 1 7 I -\n")
            .unwrap();
        assert_eq!(an.gcd_memo_entries(), 1);
    }

    #[test]
    fn v1_tables_load_with_unverified_certificates() {
        // A v1 full record carries no certificate: the verdict loads, the
        // evidence is marked Unverified.
        let shared = SharedMemo::new(2);
        shared
            .import_memo("dda-memo v1\nfull 1 7 I T0 - v 0 d 0\n")
            .unwrap();
        let entries = shared.full.snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1.certificate, Certificate::Unverified);

        // A v1 gcd record is a bare `I`: it loads with no refutation
        // witness (re-derived on hit).
        shared.import_memo("dda-memo v1\ngcd 1 7 I\n").unwrap();
        let gcd = shared.gcd.snapshot();
        assert_eq!(gcd.len(), 1);
        assert_eq!(
            gcd[0].1,
            EqOutcome::Independent { refutation: None },
            "bare v1 `I` must load witness-free"
        );

        // The same record under a v2 header is malformed (missing cert).
        let mut an = DependenceAnalyzer::new();
        let e = an
            .import_memo("dda-memo v2\nfull 1 7 I T0 - v 0 d 0\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn truncated_v2_certificate_is_located() {
        let mut an = DependenceAnalyzer::new();
        // The certificate promises two GCD numerators; the line ends
        // after one, so the count guard refuses before reading them.
        let e = an
            .import_memo("dda-memo v2\nfull 1 7 I G - v 0 d 0 c G 2 1\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("exceeds"), "{}", e.message);
    }

    #[test]
    fn refutation_certificates_round_trip() {
        // An independent-by-cascade pair stores a Refuted certificate;
        // the full payload must survive export → import → export.
        let program = parse_program("for i = 1 to 10 { z[i] = z[i + 20]; }").unwrap();
        let mut an = DependenceAnalyzer::new();
        an.analyze_program(&program);
        let text = an.export_memo();
        assert!(
            text.contains(" c R"),
            "expected a Refuted certificate:\n{text}"
        );
        let mut fresh = DependenceAnalyzer::new();
        fresh.import_memo(&text).unwrap();
        assert_eq!(fresh.export_memo(), text);
    }

    #[test]
    fn shared_memo_round_trips_with_analyzer() {
        let trained = trained_analyzer();
        let text = trained.export_memo();

        // Analyzer export → shared import preserves every entry.
        let shared = SharedMemo::new(8);
        shared.import_memo(&text).unwrap();
        assert_eq!(shared.gcd.unique_entries(), trained.gcd_memo_entries());
        assert_eq!(shared.full.unique_entries(), trained.memo_entries());

        // Shared export is byte-identical (same sorted-key format), so
        // serial and batch runs can warm-start each other transparently.
        assert_eq!(shared.export_memo(), text);
        let mut fresh = DependenceAnalyzer::new();
        fresh.import_memo(&shared.export_memo()).unwrap();
        assert_eq!(fresh.export_memo(), text);
    }

    #[test]
    fn shared_memo_export_independent_of_shard_count() {
        let text = trained_analyzer().export_memo();
        let a = SharedMemo::new(1);
        a.import_memo(&text).unwrap();
        let b = SharedMemo::new(64);
        b.import_memo(&text).unwrap();
        assert_eq!(a.export_memo(), b.export_memo());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dda_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("memo.txt");
        let trained = trained_analyzer();
        trained.save_memo_file(&path).unwrap();
        let mut fresh = DependenceAnalyzer::new();
        fresh.load_memo_file(&path).unwrap();
        assert_eq!(fresh.export_memo(), trained.export_memo());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupted_save_leaves_old_file_intact() {
        // Simulate a crash mid-save: the temp file exists with a
        // truncated payload, but the target was never renamed over.
        // The old memo must load unchanged, and a subsequent complete
        // save must replace both.
        let dir = std::env::temp_dir().join("dda_persist_partial_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("memo.txt");
        let tmp = dir.join("memo.txt.tmp");

        let trained = trained_analyzer();
        trained.save_memo_file(&path).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();
        assert!(!tmp.exists(), "no temp file after save");

        // A partial write dies after a few bytes of the new payload.
        let partial = &good[..good.len() / 3];
        std::fs::write(&tmp, partial).unwrap();

        // The old file survives the crash byte-for-byte and still loads.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), good);
        let mut fresh = DependenceAnalyzer::new();
        fresh.load_memo_file(&path).unwrap();
        assert_eq!(fresh.export_memo(), trained.export_memo());

        // The next successful save replaces the target and consumes the
        // stale temp file.
        trained.save_memo_file(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), good);
        assert!(
            !tmp.exists(),
            "temp file renamed away by the completed save"
        );

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&tmp).ok();
    }

    #[test]
    fn sharded_save_is_atomic_too() {
        let dir = std::env::temp_dir().join("dda_persist_sharded_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("memo.txt");
        let memo = SharedMemo::new(2);
        memo.import_memo(&trained_analyzer().export_memo()).unwrap();
        memo.save_memo_file(&path).unwrap();
        assert!(
            !dir.join("memo.txt.tmp").exists(),
            "no temp file left behind"
        );
        let fresh = SharedMemo::new(2);
        fresh.load_memo_file(&path).unwrap();
        assert_eq!(fresh.export_memo(), memo.export_memo());
        std::fs::remove_file(&path).ok();
    }
}
