//! Persisting memo tables across compilations.
//!
//! Section 5: "One other possible improvement is to store the hash table
//! across compilations. This will eliminate the dependence cost of
//! incremental compilation. In addition, if there is similarity across
//! programs, one could use a set of benchmarks to set up a standard table
//! which would be used by all programs."
//!
//! The format is a line-oriented, versioned text encoding (plain `i64`
//! streams — no external serialization dependency). Loading is strict:
//! any malformed line aborts with a located error rather than silently
//! importing half a table.

use std::fmt;
use std::fs;
use std::path::Path;

use dda_linalg::Matrix;

use crate::analyzer::{CachedOutcome, DependenceAnalyzer};
use crate::gcd::{EqOutcome, Lattice};
use crate::memo::{MemoKey, SharedMemo};
use crate::result::{
    Answer, DependenceResult, Direction, DirectionVector, DistanceVector, ResolvedBy, TestKind,
};

/// Magic header of the persisted format.
const HEADER: &str = "dda-memo v1";

/// Errors raised while loading a persisted table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// 1-based line where the problem was found.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memo file, line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PersistError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError {
        line,
        message: message.into(),
    })
}

// --- encoding helpers ---------------------------------------------------

fn push_ints(out: &mut String, ints: &[i64]) {
    for (i, v) in ints.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&v.to_string());
    }
}

fn encode_dir(d: Direction) -> char {
    match d {
        Direction::Lt => '<',
        Direction::Eq => '=',
        Direction::Gt => '>',
        Direction::Any => '*',
    }
}

fn decode_dir(c: char, line: usize) -> Result<Direction, PersistError> {
    match c {
        '<' => Ok(Direction::Lt),
        '=' => Ok(Direction::Eq),
        '>' => Ok(Direction::Gt),
        '*' => Ok(Direction::Any),
        other => err(line, format!("bad direction `{other}`")),
    }
}

fn encode_resolved(r: ResolvedBy) -> &'static str {
    match r {
        ResolvedBy::Constant => "C",
        ResolvedBy::Gcd => "G",
        ResolvedBy::Test(TestKind::Svpc) => "T0",
        ResolvedBy::Test(TestKind::Acyclic) => "T1",
        ResolvedBy::Test(TestKind::LoopResidue) => "T2",
        ResolvedBy::Test(TestKind::FourierMotzkin) => "T3",
        ResolvedBy::Assumed => "A",
    }
}

fn decode_resolved(s: &str, line: usize) -> Result<ResolvedBy, PersistError> {
    Ok(match s {
        "C" => ResolvedBy::Constant,
        "G" => ResolvedBy::Gcd,
        "T0" => ResolvedBy::Test(TestKind::Svpc),
        "T1" => ResolvedBy::Test(TestKind::Acyclic),
        "T2" => ResolvedBy::Test(TestKind::LoopResidue),
        "T3" => ResolvedBy::Test(TestKind::FourierMotzkin),
        "A" => ResolvedBy::Assumed,
        other => return err(line, format!("bad resolver `{other}`")),
    })
}

/// A small cursor over whitespace-separated fields.
struct Fields<'a> {
    parts: std::str::SplitWhitespace<'a>,
    line: usize,
}

impl<'a> Fields<'a> {
    fn new(s: &'a str, line: usize) -> Fields<'a> {
        Fields {
            parts: s.split_whitespace(),
            line,
        }
    }

    fn next_str(&mut self) -> Result<&'a str, PersistError> {
        match self.parts.next() {
            Some(p) => Ok(p),
            None => err(self.line, "unexpected end of line"),
        }
    }

    fn next_i64(&mut self) -> Result<i64, PersistError> {
        let s = self.next_str()?;
        s.parse().map_err(|_| PersistError {
            line: self.line,
            message: format!("bad integer `{s}`"),
        })
    }

    fn next_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.next_i64()?;
        usize::try_from(v).map_err(|_| PersistError {
            line: self.line,
            message: format!("bad count `{v}`"),
        })
    }

    fn next_ints(&mut self, n: usize) -> Result<Vec<i64>, PersistError> {
        (0..n).map(|_| self.next_i64()).collect()
    }

    fn finish(mut self) -> Result<(), PersistError> {
        match self.parts.next() {
            None => Ok(()),
            Some(extra) => err(self.line, format!("trailing `{extra}`")),
        }
    }
}

// --- per-record encode/decode -------------------------------------------

fn encode_gcd(key: &MemoKey, value: &EqOutcome, out: &mut String) {
    out.push_str("gcd ");
    out.push_str(&key.as_slice().len().to_string());
    out.push(' ');
    push_ints(out, key.as_slice());
    match value {
        EqOutcome::Independent => out.push_str(" I"),
        EqOutcome::Lattice(l) => {
            out.push_str(" L ");
            out.push_str(&format!(
                "{} {} {} ",
                l.particular.len(),
                l.basis.rows(),
                l.basis.cols()
            ));
            push_ints(out, &l.particular);
            for r in 0..l.basis.rows() {
                out.push(' ');
                push_ints(out, l.basis.row(r));
            }
        }
    }
    out.push('\n');
}

fn decode_gcd(f: &mut Fields<'_>) -> Result<(MemoKey, EqOutcome), PersistError> {
    let klen = f.next_usize()?;
    let key = MemoKey::from_vec(f.next_ints(klen)?);
    let tag = f.next_str()?;
    let value = match tag {
        "I" => EqOutcome::Independent,
        "L" => {
            let np = f.next_usize()?;
            let rows = f.next_usize()?;
            let cols = f.next_usize()?;
            if np != rows {
                return err(f.line, "particular length must equal basis rows");
            }
            let particular = f.next_ints(np)?;
            let mut basis = Matrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    basis[(r, c)] = f.next_i64()?;
                }
            }
            EqOutcome::Lattice(Lattice { particular, basis })
        }
        other => return err(f.line, format!("bad gcd tag `{other}`")),
    };
    Ok((key, value))
}

fn encode_full(key: &MemoKey, value: &CachedOutcome, out: &mut String) {
    out.push_str("full ");
    out.push_str(&key.as_slice().len().to_string());
    out.push(' ');
    push_ints(out, key.as_slice());
    let answer = match &value.result.answer {
        Answer::Independent => "I",
        Answer::Dependent(_) => "D",
        Answer::Unknown => "U",
    };
    out.push_str(&format!(
        " {answer} {} ",
        encode_resolved(value.result.resolved_by)
    ));
    match &value.witness {
        Some(w) => {
            out.push_str(&format!("w {} ", w.len()));
            push_ints(out, w);
        }
        None => out.push('-'),
    }
    out.push_str(&format!(" v {}", value.direction_vectors.len()));
    for dv in &value.direction_vectors {
        out.push(' ');
        if dv.0.is_empty() {
            out.push('.');
        } else {
            for d in &dv.0 {
                out.push(encode_dir(*d));
            }
        }
    }
    out.push_str(&format!(" d {}", value.distance.0.len()));
    for d in &value.distance.0 {
        match d {
            Some(v) => out.push_str(&format!(" {v}")),
            None => out.push_str(" ?"),
        }
    }
    out.push('\n');
}

fn decode_full(f: &mut Fields<'_>) -> Result<(MemoKey, CachedOutcome), PersistError> {
    let line = f.line;
    let klen = f.next_usize()?;
    let key = MemoKey::from_vec(f.next_ints(klen)?);
    let answer = match f.next_str()? {
        "I" => Answer::Independent,
        "D" => Answer::Dependent(None),
        "U" => Answer::Unknown,
        other => return err(line, format!("bad answer `{other}`")),
    };
    let resolved_by = decode_resolved(f.next_str()?, line)?;
    let witness = match f.next_str()? {
        "-" => None,
        "w" => {
            let n = f.next_usize()?;
            Some(f.next_ints(n)?)
        }
        other => return err(line, format!("bad witness tag `{other}`")),
    };
    match f.next_str()? {
        "v" => {}
        other => return err(line, format!("expected `v`, found `{other}`")),
    }
    let nv = f.next_usize()?;
    let mut direction_vectors = Vec::with_capacity(nv);
    for _ in 0..nv {
        let tok = f.next_str()?;
        if tok == "." {
            direction_vectors.push(DirectionVector(Vec::new()));
        } else {
            let dirs: Result<Vec<Direction>, PersistError> =
                tok.chars().map(|c| decode_dir(c, line)).collect();
            direction_vectors.push(DirectionVector(dirs?));
        }
    }
    match f.next_str()? {
        "d" => {}
        other => return err(line, format!("expected `d`, found `{other}`")),
    }
    let nd = f.next_usize()?;
    let mut distance = Vec::with_capacity(nd);
    for _ in 0..nd {
        let tok = f.next_str()?;
        if tok == "?" {
            distance.push(None);
        } else {
            match tok.parse::<i64>() {
                Ok(v) => distance.push(Some(v)),
                Err(_) => return err(line, format!("bad distance `{tok}`")),
            }
        }
    }
    Ok((
        key,
        CachedOutcome {
            result: DependenceResult {
                answer,
                resolved_by,
            },
            witness,
            direction_vectors,
            distance: DistanceVector(distance),
        },
    ))
}

// --- analyzer-level API ---------------------------------------------------

impl DependenceAnalyzer {
    /// Serializes both memo tables to the versioned text format.
    ///
    /// Entries are emitted in sorted key order, so exports are
    /// deterministic and diff-friendly.
    #[must_use]
    pub fn export_memo(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        let mut gcd: Vec<_> = self.gcd_memo.entries().collect();
        gcd.sort_by_key(|(k, _)| (*k).clone());
        for (k, v) in gcd {
            encode_gcd(k, v, &mut out);
        }
        let mut full: Vec<_> = self.full_memo.entries().collect();
        full.sort_by_key(|(k, _)| (*k).clone());
        for (k, v) in full {
            encode_full(k, v, &mut out);
        }
        out
    }

    /// Loads entries from a previously exported table into this
    /// analyzer's memo tables (existing entries are kept; imported keys
    /// overwrite colliding ones).
    ///
    /// # Errors
    ///
    /// Returns a located [`PersistError`] on any malformed content; the
    /// tables may then be partially updated.
    pub fn import_memo(&mut self, text: &str) -> Result<(), PersistError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == HEADER => {}
            Some((_, h)) => return err(1, format!("bad header `{h}`")),
            None => return err(1, "empty file"),
        }
        for (idx, line) in lines {
            let line_no = idx + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut f = Fields::new(trimmed, line_no);
            match f.next_str()? {
                "gcd" => {
                    let (k, v) = decode_gcd(&mut f)?;
                    f.finish()?;
                    self.gcd_memo.insert(k, v);
                }
                "full" => {
                    let (k, v) = decode_full(&mut f)?;
                    f.finish()?;
                    self.full_memo.insert(k, v);
                }
                other => return err(line_no, format!("unknown record `{other}`")),
            }
        }
        Ok(())
    }

    /// Writes [`export_memo`](Self::export_memo) to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_memo_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        fs::write(path, self.export_memo())
    }

    /// Reads a file into the memo tables (see
    /// [`import_memo`](Self::import_memo)).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; format errors are wrapped as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load_memo_file(&mut self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let text = fs::read_to_string(path)?;
        self.import_memo(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

impl SharedMemo {
    /// Serializes both sharded tables to the same `dda-memo v1` format as
    /// [`DependenceAnalyzer::export_memo`], in sorted key order — so a
    /// batch run can warm-start a serial analyzer and vice versa.
    #[must_use]
    pub fn export_memo(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for (k, v) in self.gcd.snapshot() {
            encode_gcd(&k, &v, &mut out);
        }
        for (k, v) in self.full.snapshot() {
            encode_full(&k, &v, &mut out);
        }
        out
    }

    /// Loads entries from a previously exported table (from either a
    /// serial analyzer or another shared table). Existing entries are
    /// kept; imported keys overwrite colliding ones.
    ///
    /// # Errors
    ///
    /// Returns a located [`PersistError`] on malformed content; the
    /// tables may then be partially updated.
    pub fn import_memo(&self, text: &str) -> Result<(), PersistError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == HEADER => {}
            Some((_, h)) => return err(1, format!("bad header `{h}`")),
            None => return err(1, "empty file"),
        }
        for (idx, line) in lines {
            let line_no = idx + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut f = Fields::new(trimmed, line_no);
            match f.next_str()? {
                "gcd" => {
                    let (k, v) = decode_gcd(&mut f)?;
                    f.finish()?;
                    self.gcd.insert(k, v);
                }
                "full" => {
                    let (k, v) = decode_full(&mut f)?;
                    f.finish()?;
                    self.full.insert(k, v);
                }
                other => return err(line_no, format!("unknown record `{other}`")),
            }
        }
        Ok(())
    }

    /// Writes [`export_memo`](Self::export_memo) to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_memo_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        fs::write(path, self.export_memo())
    }

    /// Reads a file into the sharded tables (see
    /// [`import_memo`](Self::import_memo)).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; format errors are wrapped as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load_memo_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let text = fs::read_to_string(path)?;
        self.import_memo(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_ir::parse_program;

    fn trained_analyzer() -> DependenceAnalyzer {
        let src = "
            for i = 1 to 10 { a[i + 1] = a[i]; }
            for i = 1 to 10 { b[2 * i] = b[2 * i + 1]; }
            for i = 1 to 10 { for j = i to 10 { c[j + 2] = c[j]; } }
            read(n); for i = 1 to 10 { d[i + n] = d[i + n + 3]; }
        ";
        let program = parse_program(src).unwrap();
        let mut an = DependenceAnalyzer::new();
        an.analyze_program(&program);
        an
    }

    #[test]
    fn export_import_round_trip() {
        let trained = trained_analyzer();
        let text = trained.export_memo();
        assert!(text.starts_with(HEADER));

        let mut fresh = DependenceAnalyzer::new();
        fresh.import_memo(&text).unwrap();
        assert_eq!(fresh.memo_entries(), trained.memo_entries());
        assert_eq!(fresh.gcd_memo_entries(), trained.gcd_memo_entries());

        // Round-trip stability.
        assert_eq!(fresh.export_memo(), text);
    }

    #[test]
    fn imported_table_eliminates_tests() {
        let trained = trained_analyzer();
        let text = trained.export_memo();

        let program = parse_program("for i = 1 to 10 { z[i + 1] = z[i]; }").unwrap();
        // Without the import: one test.
        let mut cold = DependenceAnalyzer::new();
        let r = cold.analyze_program(&program);
        assert_eq!(r.stats.base_tests.total(), 1);

        // With the import: the a[i+1]=a[i] entry answers it from cache.
        let mut warm = DependenceAnalyzer::new();
        warm.import_memo(&text).unwrap();
        let r = warm.analyze_program(&program);
        assert_eq!(r.stats.base_tests.total(), 0);
        assert_eq!(r.stats.memo_hits, 1);
        assert_eq!(
            r.pairs()[0].direction_vectors,
            cold.analyze_program(&program).pairs()[0].direction_vectors
        );
    }

    #[test]
    fn export_is_deterministic() {
        let a = trained_analyzer().export_memo();
        let b = trained_analyzer().export_memo();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_inputs_are_located() {
        let mut an = DependenceAnalyzer::new();
        let bad_header = an.import_memo("nope\n").unwrap_err();
        assert_eq!(bad_header.line, 1);

        let bad_record = an.import_memo("dda-memo v1\nbogus 1 2 3\n").unwrap_err();
        assert_eq!(bad_record.line, 2);
        assert!(bad_record.message.contains("bogus"));

        let truncated = an.import_memo("dda-memo v1\ngcd 3 1 2\n").unwrap_err();
        assert_eq!(truncated.line, 2);

        let trailing = an
            .import_memo("dda-memo v1\ngcd 1 7 I extra\n")
            .unwrap_err();
        assert!(trailing.message.contains("trailing"));
    }

    #[test]
    fn comments_and_blank_lines_allowed() {
        let mut an = DependenceAnalyzer::new();
        an.import_memo("dda-memo v1\n\n# a comment\ngcd 1 7 I\n")
            .unwrap();
        assert_eq!(an.gcd_memo_entries(), 1);
    }

    #[test]
    fn shared_memo_round_trips_with_analyzer() {
        let trained = trained_analyzer();
        let text = trained.export_memo();

        // Analyzer export → shared import preserves every entry.
        let shared = SharedMemo::new(8);
        shared.import_memo(&text).unwrap();
        assert_eq!(shared.gcd.unique_entries(), trained.gcd_memo_entries());
        assert_eq!(shared.full.unique_entries(), trained.memo_entries());

        // Shared export is byte-identical (same sorted-key format), so
        // serial and batch runs can warm-start each other transparently.
        assert_eq!(shared.export_memo(), text);
        let mut fresh = DependenceAnalyzer::new();
        fresh.import_memo(&shared.export_memo()).unwrap();
        assert_eq!(fresh.export_memo(), text);
    }

    #[test]
    fn shared_memo_export_independent_of_shard_count() {
        let text = trained_analyzer().export_memo();
        let a = SharedMemo::new(1);
        a.import_memo(&text).unwrap();
        let b = SharedMemo::new(64);
        b.import_memo(&text).unwrap();
        assert_eq!(a.export_memo(), b.export_memo());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dda_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("memo.txt");
        let trained = trained_analyzer();
        trained.save_memo_file(&path).unwrap();
        let mut fresh = DependenceAnalyzer::new();
        fresh.load_memo_file(&path).unwrap();
        assert_eq!(fresh.export_memo(), trained.export_memo());
        std::fs::remove_file(&path).ok();
    }
}
