//! dda-memo v3: a binary, sharded, checksummed memo archive.
//!
//! The v2 text format ([`crate::persist`]) parses every record on load,
//! so warm starts at service scale are dominated by decode rather than
//! solving. Version 3 keeps the same logical records (gcd outcomes and
//! full cached outcomes, both keyed by [`MemoKey`]) but lays them out as
//! hash-partitioned binary shards behind a fixed-width header, so a
//! warm start is one `mmap` (or one aligned read) plus an O(shards)
//! validation pass — no per-record work until a record is actually
//! needed.
//!
//! ## Wire format (all integers little-endian)
//!
//! ```text
//! FileHeader (64 bytes)
//!   0  magic            b"DDAMEMO3"
//!   8  version          u32 = 3
//!  12  flags            u32 = 0 (readers reject nonzero)
//!  16  shard_count      u32 (1..=65536)
//!  20  section_count    u32 = 2 (section 0 = gcd, section 1 = full)
//!  24  total_records    u64
//!  32  file_len         u64 (must equal the actual byte length)
//!  40  reserved         u64 = 0
//!  48  reserved         u64 = 0
//!  56  header_checksum  u64 = xxh64(bytes 0..56, seed 0)
//!
//! Directory (section-major, 32 bytes per shard payload)
//!   offset   u64  absolute, 8-aligned, past the directory
//!   len      u64  payload byte length
//!   records  u64  record count (records * 16 <= len)
//!   checksum u64  xxh64(payload, seed 0)
//!
//! Shard payload
//!   index    records * 16 bytes: { key_hash u64, rec_off u32,
//!            rec_len u32 }, sorted ascending by key_hash;
//!            rec_off is payload-relative and >= the index length
//!   records  varint blobs (LEB128 counts, zigzag-LEB128 i64s)
//! ```
//!
//! Loading is strict in the same spirit as the text format: every
//! structural claim the file makes (lengths, counts, offsets,
//! checksums) is validated against what is actually present *before*
//! any allocation is sized from it, and failures carry the byte offset
//! of the lie. Per-record decoding is deferred: [`MemoArchive::get_gcd`]
//! and [`MemoArchive::get_full`] binary-search a shard index and decode
//! exactly one record.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use dda_linalg::Matrix;

use crate::analyzer::CachedOutcome;
use crate::certificate::{
    Certificate, Derivation, DirTree, FmTree, RefProof, Rule, SystemRefutation,
};
use crate::gcd::{EqOutcome, Lattice};
use crate::memo::{route_hash, MemoKey};
use crate::persist::write_atomic_with;
use crate::result::{
    Answer, DependenceResult, Direction, DirectionVector, DistanceVector, ResolvedBy, TestKind,
};

/// Magic bytes opening every v3 archive.
pub(crate) const MAGIC: [u8; 8] = *b"DDAMEMO3";
const VERSION: u32 = 3;
const HEADER_LEN: usize = 64;
const DIR_ENTRY_LEN: usize = 32;
const INDEX_ENTRY_LEN: usize = 16;
const MAX_SHARDS: usize = 65536;
/// Proof trees are recursive; a hostile record could nest splits deep
/// enough to overflow the decoder's stack, so depth is capped far above
/// anything the analyzer emits.
const MAX_DEPTH: usize = 200;

/// Errors raised while opening or decoding a v3 archive, located by the
/// byte offset of the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistV3Error {
    /// Absolute byte offset where the problem was found.
    pub offset: u64,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PersistV3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memo v3 file, offset {:#x}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for PersistV3Error {}

fn verr<T>(offset: u64, message: impl Into<String>) -> Result<T, PersistV3Error> {
    Err(PersistV3Error {
        offset,
        message: message.into(),
    })
}

// --- xxh64 ---------------------------------------------------------------

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

fn xx_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

fn xx_merge(acc: u64, val: u64) -> u64 {
    (acc ^ xx_round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

fn u64le(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

fn u32le(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

/// Standard XXH64 over `data` — hand-rolled so the archive carries
/// strong checksums without a new dependency (same zero-deps policy as
/// the serve crate).
pub(crate) fn xxh64(data: &[u8], seed: u64) -> u64 {
    let mut rest = data;
    let mut h = if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while rest.len() >= 32 {
            v1 = xx_round(v1, u64le(&rest[0..8]));
            v2 = xx_round(v2, u64le(&rest[8..16]));
            v3 = xx_round(v3, u64le(&rest[16..24]));
            v4 = xx_round(v4, u64le(&rest[24..32]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xx_merge(h, v1);
        h = xx_merge(h, v2);
        h = xx_merge(h, v3);
        xx_merge(h, v4)
    } else {
        seed.wrapping_add(P5)
    };
    h = h.wrapping_add(data.len() as u64);
    while rest.len() >= 8 {
        h ^= xx_round(0, u64le(rest));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= u64::from(u32le(rest)).wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= u64::from(b).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^ (h >> 32)
}

// --- varint encoding -----------------------------------------------------

fn put_u(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn put_i(out: &mut Vec<u8>, v: i64) {
    put_u(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// A bounds-checked cursor over one slice of the archive. `base` is the
/// slice's absolute file offset, so every error is located in the file,
/// not in the record.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8], base: u64) -> Cur<'a> {
        Cur { buf, pos: 0, base }
    }

    fn off(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn fail<T>(&self, message: impl Into<String>) -> Result<T, PersistV3Error> {
        verr(self.off(), message)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, PersistV3Error> {
        match self.buf.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.fail("unexpected end of record"),
        }
    }

    fn uvarint(&mut self) -> Result<u64, PersistV3Error> {
        let start = self.off();
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return verr(start, "varint overflows 64 bits");
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return verr(start, "varint overflows 64 bits");
            }
        }
    }

    fn ivarint(&mut self) -> Result<i64, PersistV3Error> {
        let u = self.uvarint()?;
        Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
    }

    /// Reads a count of items still to be decoded from this record.
    /// Every item occupies at least one byte, so any honest count is
    /// bounded by the bytes that remain — rejecting a corrupt or
    /// crafted count *before* the caller sizes an allocation from it
    /// (the binary twin of `Fields::next_count` in the text decoder).
    fn count(&mut self) -> Result<usize, PersistV3Error> {
        let start = self.off();
        let n = self.uvarint()?;
        let left = self.remaining() as u64;
        if n > left {
            return verr(
                start,
                format!("count {n} exceeds the {left} remaining bytes"),
            );
        }
        Ok(n as usize)
    }

    fn ivec(&mut self, n: usize) -> Result<Vec<i64>, PersistV3Error> {
        (0..n).map(|_| self.ivarint()).collect()
    }

    fn finish(&self) -> Result<(), PersistV3Error> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            self.fail(format!(
                "{} trailing bytes after record",
                self.buf.len() - self.pos
            ))
        }
    }
}

// --- record encoders -----------------------------------------------------

fn enc_key(out: &mut Vec<u8>, key: &MemoKey) {
    put_u(out, key.as_slice().len() as u64);
    for &v in key.as_slice() {
        put_i(out, v);
    }
}

fn enc_ivec(out: &mut Vec<u8>, vs: &[i64]) {
    put_u(out, vs.len() as u64);
    for &v in vs {
        put_i(out, v);
    }
}

fn enc_rule(out: &mut Vec<u8>, r: &Rule) {
    match r {
        Rule::Premise { coeffs, rhs } => {
            out.push(0);
            enc_ivec(out, coeffs);
            put_i(out, *rhs);
        }
        Rule::Comb { a, ca, b, cb } => {
            out.push(1);
            put_u(out, *a as u64);
            put_i(out, *ca);
            put_u(out, *b as u64);
            put_i(out, *cb);
        }
        Rule::Div { of, d } => {
            out.push(2);
            put_u(out, *of as u64);
            put_i(out, *d);
        }
    }
}

fn enc_fmtree(out: &mut Vec<u8>, t: &FmTree) {
    match t {
        FmTree::Sealed(d) => {
            out.push(0);
            put_u(out, d.rules.len() as u64);
            for r in &d.rules {
                enc_rule(out, r);
            }
            put_u(out, d.seal as u64);
        }
        FmTree::Split {
            var,
            le,
            ge,
            left,
            right,
        } => {
            out.push(1);
            put_u(out, *var as u64);
            put_i(out, *le);
            put_i(out, *ge);
            enc_fmtree(out, left);
            enc_fmtree(out, right);
        }
    }
}

fn enc_sysref(out: &mut Vec<u8>, s: &SystemRefutation) {
    put_u(out, s.arena.len() as u64);
    for r in &s.arena {
        enc_rule(out, r);
    }
    match &s.proof {
        RefProof::Arena { seal } => {
            out.push(0);
            put_u(out, *seal as u64);
        }
        RefProof::Fm { tree } => {
            out.push(1);
            enc_fmtree(out, tree);
        }
    }
}

fn enc_dirtree(out: &mut Vec<u8>, t: &DirTree) {
    match t {
        DirTree::Refuted(s) => {
            out.push(0);
            enc_sysref(out, s);
        }
        DirTree::Split { level, lt, eq, gt } => {
            out.push(1);
            put_u(out, *level as u64);
            enc_dirtree(out, lt);
            enc_dirtree(out, eq);
            enc_dirtree(out, gt);
        }
    }
}

fn enc_lattice_part(out: &mut Vec<u8>, particular: &[i64], basis: &Matrix) {
    put_u(out, particular.len() as u64);
    put_u(out, basis.rows() as u64);
    put_u(out, basis.cols() as u64);
    for &v in particular {
        put_i(out, v);
    }
    for r in 0..basis.rows() {
        for &v in basis.row(r) {
            put_i(out, v);
        }
    }
}

fn enc_cert(out: &mut Vec<u8>, c: &Certificate) {
    match c {
        Certificate::Conservative => out.push(0),
        Certificate::Unverified => out.push(1),
        Certificate::Witness { x } => {
            out.push(2);
            enc_ivec(out, x);
        }
        Certificate::ConstantsEqual => out.push(3),
        Certificate::ConstantsDiffer => out.push(4),
        Certificate::GcdRefutation { numer, denom } => {
            out.push(5);
            enc_ivec(out, numer);
            put_i(out, *denom);
        }
        Certificate::Refuted {
            particular,
            basis,
            refutation,
        } => {
            out.push(6);
            enc_lattice_part(out, particular, basis);
            enc_sysref(out, refutation);
        }
        Certificate::DirectionsExhausted {
            particular,
            basis,
            tree,
        } => {
            out.push(7);
            enc_lattice_part(out, particular, basis);
            enc_dirtree(out, tree);
        }
    }
}

fn enc_gcd_value(out: &mut Vec<u8>, v: &EqOutcome) {
    match v {
        EqOutcome::Independent { refutation: None } => out.push(0),
        EqOutcome::Independent {
            refutation: Some((numer, denom)),
        } => {
            out.push(1);
            enc_ivec(out, numer);
            put_i(out, *denom);
        }
        EqOutcome::Lattice(l) => {
            out.push(2);
            enc_lattice_part(out, &l.particular, &l.basis);
        }
    }
}

fn enc_resolved(r: ResolvedBy) -> u8 {
    match r {
        ResolvedBy::Constant => 0,
        ResolvedBy::Gcd => 1,
        ResolvedBy::Test(TestKind::Svpc) => 2,
        ResolvedBy::Test(TestKind::Acyclic) => 3,
        ResolvedBy::Test(TestKind::LoopResidue) => 4,
        ResolvedBy::Test(TestKind::FourierMotzkin) => 5,
        ResolvedBy::Assumed => 6,
    }
}

fn enc_full_value(out: &mut Vec<u8>, v: &CachedOutcome) {
    out.push(match v.result.answer {
        Answer::Independent => 0,
        Answer::Dependent(_) => 1,
        Answer::Unknown => 2,
    });
    out.push(enc_resolved(v.result.resolved_by));
    match &v.witness {
        None => out.push(0),
        Some(w) => {
            out.push(1);
            enc_ivec(out, w);
        }
    }
    put_u(out, v.direction_vectors.len() as u64);
    for dv in &v.direction_vectors {
        put_u(out, dv.0.len() as u64);
        for d in &dv.0 {
            out.push(match d {
                Direction::Lt => 0,
                Direction::Eq => 1,
                Direction::Gt => 2,
                Direction::Any => 3,
            });
        }
    }
    put_u(out, v.distance.0.len() as u64);
    for d in &v.distance.0 {
        match d {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                put_i(out, *v);
            }
        }
    }
    enc_cert(out, &v.certificate);
}

// --- record decoders -----------------------------------------------------

fn dec_key(c: &mut Cur<'_>) -> Result<MemoKey, PersistV3Error> {
    let n = c.count()?;
    Ok(MemoKey::from_vec(c.ivec(n)?))
}

fn dec_ivec(c: &mut Cur<'_>) -> Result<Vec<i64>, PersistV3Error> {
    let n = c.count()?;
    c.ivec(n)
}

fn dec_usize(c: &mut Cur<'_>) -> Result<usize, PersistV3Error> {
    let at = c.off();
    let v = c.uvarint()?;
    usize::try_from(v).map_err(|_| PersistV3Error {
        offset: at,
        message: format!("index {v} does not fit in usize"),
    })
}

fn dec_rule(c: &mut Cur<'_>) -> Result<Rule, PersistV3Error> {
    Ok(match c.u8()? {
        0 => {
            let coeffs = dec_ivec(c)?;
            Rule::Premise {
                coeffs,
                rhs: c.ivarint()?,
            }
        }
        1 => {
            let a = dec_usize(c)?;
            let ca = c.ivarint()?;
            let b = dec_usize(c)?;
            let cb = c.ivarint()?;
            Rule::Comb { a, ca, b, cb }
        }
        2 => {
            let of = dec_usize(c)?;
            Rule::Div {
                of,
                d: c.ivarint()?,
            }
        }
        t => return c.fail(format!("bad rule tag {t}")),
    })
}

fn dec_fmtree(c: &mut Cur<'_>, depth: usize) -> Result<FmTree, PersistV3Error> {
    if depth > MAX_DEPTH {
        return c.fail(format!("proof tree nesting exceeds depth {MAX_DEPTH}"));
    }
    Ok(match c.u8()? {
        0 => {
            let n = c.count()?;
            let rules = (0..n).map(|_| dec_rule(c)).collect::<Result<Vec<_>, _>>()?;
            let seal = dec_usize(c)?;
            FmTree::Sealed(Derivation { rules, seal })
        }
        1 => {
            let var = dec_usize(c)?;
            let le = c.ivarint()?;
            let ge = c.ivarint()?;
            FmTree::Split {
                var,
                le,
                ge,
                left: Box::new(dec_fmtree(c, depth + 1)?),
                right: Box::new(dec_fmtree(c, depth + 1)?),
            }
        }
        t => return c.fail(format!("bad fm tag {t}")),
    })
}

fn dec_sysref(c: &mut Cur<'_>) -> Result<SystemRefutation, PersistV3Error> {
    let n = c.count()?;
    let arena = (0..n).map(|_| dec_rule(c)).collect::<Result<Vec<_>, _>>()?;
    let proof = match c.u8()? {
        0 => RefProof::Arena {
            seal: dec_usize(c)?,
        },
        1 => RefProof::Fm {
            tree: dec_fmtree(c, 0)?,
        },
        t => return c.fail(format!("bad proof tag {t}")),
    };
    Ok(SystemRefutation { arena, proof })
}

fn dec_dirtree(c: &mut Cur<'_>, depth: usize) -> Result<DirTree, PersistV3Error> {
    if depth > MAX_DEPTH {
        return c.fail(format!("direction tree nesting exceeds depth {MAX_DEPTH}"));
    }
    Ok(match c.u8()? {
        0 => DirTree::Refuted(dec_sysref(c)?),
        1 => {
            let level = dec_usize(c)?;
            DirTree::Split {
                level,
                lt: Box::new(dec_dirtree(c, depth + 1)?),
                eq: Box::new(dec_dirtree(c, depth + 1)?),
                gt: Box::new(dec_dirtree(c, depth + 1)?),
            }
        }
        t => return c.fail(format!("bad dir tag {t}")),
    })
}

fn dec_lattice_part(c: &mut Cur<'_>) -> Result<(Vec<i64>, Matrix), PersistV3Error> {
    let at = c.off();
    let np = c.count()?;
    let rows = c.count()?;
    let cols = c.count()?;
    if np != rows {
        return verr(at, "particular length must equal basis rows");
    }
    let particular = c.ivec(np)?;
    // Every cell occupies at least one byte, so the product is bounded
    // by what remains — a crafted `rows x cols` header fails located
    // instead of sizing a multi-gigabyte matrix.
    let cells = rows.checked_mul(cols);
    if cells.is_none_or(|n| n > c.remaining()) {
        return verr(at, format!("record too short for a {rows}x{cols} basis"));
    }
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for col in 0..cols {
            m[(r, col)] = c.ivarint()?;
        }
    }
    Ok((particular, m))
}

fn dec_cert(c: &mut Cur<'_>) -> Result<Certificate, PersistV3Error> {
    Ok(match c.u8()? {
        0 => Certificate::Conservative,
        1 => Certificate::Unverified,
        2 => Certificate::Witness { x: dec_ivec(c)? },
        3 => Certificate::ConstantsEqual,
        4 => Certificate::ConstantsDiffer,
        5 => {
            let numer = dec_ivec(c)?;
            Certificate::GcdRefutation {
                numer,
                denom: c.ivarint()?,
            }
        }
        6 => {
            let (particular, basis) = dec_lattice_part(c)?;
            Certificate::Refuted {
                particular,
                basis,
                refutation: dec_sysref(c)?,
            }
        }
        7 => {
            let (particular, basis) = dec_lattice_part(c)?;
            Certificate::DirectionsExhausted {
                particular,
                basis,
                tree: dec_dirtree(c, 0)?,
            }
        }
        t => return c.fail(format!("bad certificate tag {t}")),
    })
}

fn dec_gcd_value(c: &mut Cur<'_>) -> Result<EqOutcome, PersistV3Error> {
    Ok(match c.u8()? {
        0 => EqOutcome::Independent { refutation: None },
        1 => {
            let numer = dec_ivec(c)?;
            EqOutcome::Independent {
                refutation: Some((numer, c.ivarint()?)),
            }
        }
        2 => {
            let (particular, basis) = dec_lattice_part(c)?;
            EqOutcome::Lattice(Lattice { particular, basis })
        }
        t => return c.fail(format!("bad gcd tag {t}")),
    })
}

fn dec_resolved(c: &mut Cur<'_>) -> Result<ResolvedBy, PersistV3Error> {
    Ok(match c.u8()? {
        0 => ResolvedBy::Constant,
        1 => ResolvedBy::Gcd,
        2 => ResolvedBy::Test(TestKind::Svpc),
        3 => ResolvedBy::Test(TestKind::Acyclic),
        4 => ResolvedBy::Test(TestKind::LoopResidue),
        5 => ResolvedBy::Test(TestKind::FourierMotzkin),
        6 => ResolvedBy::Assumed,
        t => return c.fail(format!("bad resolver tag {t}")),
    })
}

fn dec_full_value(c: &mut Cur<'_>) -> Result<CachedOutcome, PersistV3Error> {
    let answer = match c.u8()? {
        0 => Answer::Independent,
        1 => Answer::Dependent(None),
        2 => Answer::Unknown,
        t => return c.fail(format!("bad answer tag {t}")),
    };
    let resolved_by = dec_resolved(c)?;
    let witness = match c.u8()? {
        0 => None,
        1 => Some(dec_ivec(c)?),
        t => return c.fail(format!("bad witness tag {t}")),
    };
    let nv = c.count()?;
    let mut direction_vectors = Vec::with_capacity(nv);
    for _ in 0..nv {
        let nd = c.count()?;
        let mut dirs = Vec::with_capacity(nd);
        for _ in 0..nd {
            dirs.push(match c.u8()? {
                0 => Direction::Lt,
                1 => Direction::Eq,
                2 => Direction::Gt,
                3 => Direction::Any,
                t => return c.fail(format!("bad direction tag {t}")),
            });
        }
        direction_vectors.push(DirectionVector(dirs));
    }
    let nd = c.count()?;
    let mut distance = Vec::with_capacity(nd);
    for _ in 0..nd {
        distance.push(match c.u8()? {
            0 => None,
            1 => Some(c.ivarint()?),
            t => return c.fail(format!("bad distance tag {t}")),
        });
    }
    let certificate = dec_cert(c)?;
    Ok(CachedOutcome {
        result: DependenceResult {
            answer,
            resolved_by,
        },
        witness,
        direction_vectors,
        distance: DistanceVector(distance),
        certificate,
    })
}

// --- writer --------------------------------------------------------------

/// Sorts one shard's records by key hash (stably, so equal hashes keep
/// their sorted-key input order and the file stays deterministic) and
/// lays out `index + blobs`.
fn build_payload(mut entries: Vec<(u64, Vec<u8>)>) -> io::Result<Vec<u8>> {
    entries.sort_by_key(|(h, _)| *h);
    let index_len = entries.len() * INDEX_ENTRY_LEN;
    let total = index_len + entries.iter().map(|(_, b)| b.len()).sum::<usize>();
    if u32::try_from(total).is_err() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "memo v3 shard payload exceeds 4 GiB; raise the shard count",
        ));
    }
    let mut out = Vec::with_capacity(total);
    let mut off = index_len as u32;
    for (h, blob) in &entries {
        out.extend_from_slice(&h.to_le_bytes());
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        off += blob.len() as u32;
    }
    for (_, blob) in &entries {
        out.extend_from_slice(blob);
    }
    Ok(out)
}

fn partition<V>(
    entries: &[(MemoKey, V)],
    shard_count: usize,
    enc: impl Fn(&mut Vec<u8>, &V),
) -> io::Result<Vec<(Vec<u8>, u64)>> {
    let mut shards: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); shard_count];
    for (k, v) in entries {
        let h = route_hash(k);
        let mut blob = Vec::new();
        enc_key(&mut blob, k);
        enc(&mut blob, v);
        shards[(h % shard_count as u64) as usize].push((h, blob));
    }
    shards
        .into_iter()
        .map(|e| {
            let records = e.len() as u64;
            Ok((build_payload(e)?, records))
        })
        .collect()
}

/// Streams a complete v3 archive: header, directory, then each shard
/// payload (zero-padded to 8-byte alignment).
fn assemble(
    gcd: &[(Vec<u8>, u64)],
    full: &[(Vec<u8>, u64)],
    out: &mut dyn io::Write,
) -> io::Result<()> {
    let shard_count = gcd.len();
    debug_assert_eq!(shard_count, full.len());
    let dir_len = 2 * shard_count * DIR_ENTRY_LEN;
    let mut pos = (HEADER_LEN + dir_len) as u64;
    let mut total_records = 0u64;
    let mut entries = Vec::with_capacity(2 * shard_count);
    for (payload, records) in gcd.iter().chain(full.iter()) {
        let pad = pos.next_multiple_of(8) - pos;
        pos += pad;
        entries.push((pos, payload.len() as u64, *records, xxh64(payload, 0), pad));
        pos += payload.len() as u64;
        total_records += records;
    }
    let file_len = pos;

    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&VERSION.to_le_bytes());
    // flags at 12..16 stay zero.
    header[16..20].copy_from_slice(&(shard_count as u32).to_le_bytes());
    header[20..24].copy_from_slice(&2u32.to_le_bytes());
    header[24..32].copy_from_slice(&total_records.to_le_bytes());
    header[32..40].copy_from_slice(&file_len.to_le_bytes());
    // reserved at 40..56 stay zero.
    let sum = xxh64(&header[..56], 0);
    header[56..64].copy_from_slice(&sum.to_le_bytes());
    out.write_all(&header)?;

    for (offset, len, records, checksum, _) in &entries {
        out.write_all(&offset.to_le_bytes())?;
        out.write_all(&len.to_le_bytes())?;
        out.write_all(&records.to_le_bytes())?;
        out.write_all(&checksum.to_le_bytes())?;
    }
    const ZEROS: [u8; 8] = [0u8; 8];
    for ((_, _, _, _, pad), (payload, _)) in entries.iter().zip(gcd.iter().chain(full.iter())) {
        out.write_all(&ZEROS[..*pad as usize])?;
        out.write_all(payload)?;
    }
    Ok(())
}

/// Writes a complete v3 archive atomically. Entries should arrive in
/// sorted key order (as produced by the memo snapshots) so the output
/// is deterministic byte-for-byte.
pub(crate) fn write_memo_v3(
    path: &Path,
    gcd: &[(MemoKey, EqOutcome)],
    full: &[(MemoKey, CachedOutcome)],
    shard_count: usize,
) -> io::Result<()> {
    let shard_count = shard_count.clamp(1, MAX_SHARDS);
    let gcd_payloads = partition(gcd, shard_count, enc_gcd_value)?;
    let full_payloads = partition(full, shard_count, enc_full_value)?;
    write_atomic_with(path, |out| assemble(&gcd_payloads, &full_payloads, out))
}

// --- mmap region ---------------------------------------------------------

#[cfg(unix)]
mod region {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A read-only private mapping of a whole archive file.
    pub(super) struct Region {
        ptr: *mut c_void,
        len: usize,
    }

    // Safety: the mapping is PROT_READ + MAP_PRIVATE over an archive
    // that is never written through this handle; sharing immutable
    // bytes across threads is sound.
    unsafe impl Send for Region {}
    unsafe impl Sync for Region {}

    impl Region {
        pub(super) fn map(file: &File, len: usize) -> io::Result<Region> {
            if len == 0 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "empty file"));
            }
            // Safety: the fd is open for the duration of the call; the
            // whole file is mapped read-only and privately.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Region { ptr, len })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // Safety: ptr..ptr+len is a live read-only mapping owned by
            // this Region for its whole lifetime.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Region {
        fn drop(&mut self) {
            // Safety: ptr/len came from a successful mmap and are
            // unmapped exactly once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Backing bytes of an open archive: a page-cache mapping when the
/// platform allows it, an 8-aligned owned buffer otherwise.
enum ArchiveData {
    #[cfg(unix)]
    Mapped(region::Region),
    Owned {
        buf: Vec<u64>,
        len: usize,
    },
}

impl ArchiveData {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            ArchiveData::Mapped(r) => r.as_slice(),
            ArchiveData::Owned { buf, len } => {
                // Safety: a `u64` buffer of `buf.len()` words is exactly
                // `buf.len() * 8` bytes and `len <= buf.len() * 8`; byte
                // views of integer memory are always valid.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) }
            }
        }
    }
}

fn read_aligned(file: &mut fs::File, len: usize) -> io::Result<ArchiveData> {
    use std::io::Read as _;
    let mut buf = vec![0u64; len.div_ceil(8)];
    // Safety: same layout argument as `ArchiveData::bytes`, mutably —
    // the buffer is exclusively owned here.
    let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
    file.read_exact(bytes)?;
    Ok(ArchiveData::Owned { buf, len })
}

// --- archive -------------------------------------------------------------

/// Which logical table a shard belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSection {
    /// Equation-level gcd/lattice outcomes.
    Gcd,
    /// Full per-pair cached outcomes (verdict + certificate).
    Full,
}

impl fmt::Display for ShardSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShardSection::Gcd => "gcd",
            ShardSection::Full => "full",
        })
    }
}

/// One shard's directory entry, as reported by
/// [`MemoArchive::shard_infos`] (and `dda memo inspect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// Section the shard belongs to.
    pub section: ShardSection,
    /// Shard index within its section.
    pub shard: usize,
    /// Absolute byte offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Number of records in the shard.
    pub records: u64,
    /// XXH64 checksum of the payload.
    pub checksum: u64,
}

#[derive(Clone, Copy)]
struct Shard {
    offset: usize,
    len: usize,
    records: usize,
    checksum: u64,
}

/// An open, validated dda-memo v3 archive.
///
/// Opening validates every structural claim (header, directory bounds,
/// per-shard checksums, index ordering and record bounds) in O(file)
/// time but O(shards) allocation; records decode lazily on lookup, so
/// the cost of a warm start is paid per *used* record, not per stored
/// one.
pub struct MemoArchive {
    data: ArchiveData,
    shard_count: usize,
    total_records: u64,
    gcd_shards: Vec<Shard>,
    full_shards: Vec<Shard>,
    mapped: bool,
}

impl fmt::Debug for MemoArchive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoArchive")
            .field("shard_count", &self.shard_count)
            .field("total_records", &self.total_records)
            .field("file_len", &self.file_len())
            .field("mapped", &self.mapped)
            .finish()
    }
}

fn invalid_data(e: PersistV3Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl MemoArchive {
    /// Opens and validates an archive, preferring `mmap` (the bytes
    /// stay in the page cache and fault in on demand) and falling back
    /// to [`MemoArchive::open_buffered`] when mapping is unavailable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; format errors are wrapped as
    /// [`std::io::ErrorKind::InvalidData`] with a byte-offset location.
    pub fn open(path: impl AsRef<Path>) -> io::Result<MemoArchive> {
        let path = path.as_ref();
        let mut file = fs::File::open(path)?;
        let len = file_len_usize(&file)?;
        #[cfg(unix)]
        {
            if let Ok(r) = region::Region::map(&file, len) {
                return MemoArchive::from_data(ArchiveData::Mapped(r), true).map_err(invalid_data);
            }
        }
        let data = read_aligned(&mut file, len)?;
        MemoArchive::from_data(data, false).map_err(invalid_data)
    }

    /// Opens an archive by reading it into an 8-aligned buffer — the
    /// portable fallback path, public so benchmarks can compare it
    /// against the mapped path directly.
    ///
    /// # Errors
    ///
    /// Same contract as [`MemoArchive::open`].
    pub fn open_buffered(path: impl AsRef<Path>) -> io::Result<MemoArchive> {
        let mut file = fs::File::open(path.as_ref())?;
        let len = file_len_usize(&file)?;
        let data = read_aligned(&mut file, len)?;
        MemoArchive::from_data(data, false).map_err(invalid_data)
    }

    fn from_data(data: ArchiveData, mapped: bool) -> Result<MemoArchive, PersistV3Error> {
        let b = data.bytes();
        if b.len() < HEADER_LEN {
            return verr(
                0,
                format!(
                    "file is {} bytes, shorter than the 64-byte v3 header",
                    b.len()
                ),
            );
        }
        if b[0..8] != MAGIC {
            return verr(0, "bad magic (expected `DDAMEMO3`)");
        }
        let version = u32le(&b[8..]);
        if version != VERSION {
            return verr(
                8,
                format!("unsupported version {version} (expected {VERSION})"),
            );
        }
        let flags = u32le(&b[12..]);
        if flags != 0 {
            return verr(12, format!("unsupported flags {flags:#x}"));
        }
        let shard_count = u32le(&b[16..]) as usize;
        if shard_count == 0 || shard_count > MAX_SHARDS {
            return verr(
                16,
                format!("shard count {shard_count} outside 1..={MAX_SHARDS}"),
            );
        }
        let sections = u32le(&b[20..]);
        if sections != 2 {
            return verr(20, format!("section count {sections} (expected 2)"));
        }
        let total_records = u64le(&b[24..]);
        let file_len = u64le(&b[32..]);
        if file_len != b.len() as u64 {
            return verr(
                32,
                format!("declared file length {file_len} != actual {}", b.len()),
            );
        }
        let declared = u64le(&b[56..]);
        let actual = xxh64(&b[..56], 0);
        if declared != actual {
            return verr(
                56,
                format!(
                    "header checksum mismatch (stored {declared:#018x}, computed {actual:#018x})"
                ),
            );
        }
        let dir_len = 2 * shard_count * DIR_ENTRY_LEN;
        let payload_start = HEADER_LEN + dir_len;
        if b.len() < payload_start {
            return verr(
                HEADER_LEN as u64,
                format!("file too short for a {shard_count}-shard directory"),
            );
        }

        let mut gcd_shards = Vec::with_capacity(shard_count);
        let mut full_shards = Vec::with_capacity(shard_count);
        let mut record_sum = 0u64;
        for idx in 0..2 * shard_count {
            let at = HEADER_LEN + idx * DIR_ENTRY_LEN;
            let (section, shard) = if idx < shard_count {
                (ShardSection::Gcd, idx)
            } else {
                (ShardSection::Full, idx - shard_count)
            };
            let offset = u64le(&b[at..]);
            let len = u64le(&b[at + 8..]);
            let records = u64le(&b[at + 16..]);
            let checksum = u64le(&b[at + 24..]);
            if !offset.is_multiple_of(8) {
                return verr(
                    at as u64,
                    format!("{section} shard {shard}: offset {offset} is not 8-aligned"),
                );
            }
            if offset < payload_start as u64 {
                return verr(
                    at as u64,
                    format!("{section} shard {shard}: offset {offset} overlaps the directory"),
                );
            }
            let end = offset.checked_add(len);
            if end.is_none_or(|e| e > file_len) {
                return verr(
                    (at + 8) as u64,
                    format!(
                        "{section} shard {shard}: payload [{offset}, +{len}) runs past the file"
                    ),
                );
            }
            // Every record costs a 16-byte index entry, so a crafted
            // record count is refuted by the payload length before it
            // sizes anything.
            if records
                .checked_mul(INDEX_ENTRY_LEN as u64)
                .is_none_or(|n| n > len)
            {
                return verr(
                    (at + 16) as u64,
                    format!(
                        "{section} shard {shard}: {records} records exceed a {len}-byte payload"
                    ),
                );
            }
            record_sum = record_sum.checked_add(records).ok_or(PersistV3Error {
                offset: (at + 16) as u64,
                message: "record counts overflow".into(),
            })?;
            let shard_meta = Shard {
                offset: offset as usize,
                len: len as usize,
                records: records as usize,
                checksum,
            };
            if idx < shard_count {
                gcd_shards.push(shard_meta);
            } else {
                full_shards.push(shard_meta);
            }
        }
        if record_sum != total_records {
            return verr(
                24,
                format!("directory holds {record_sum} records but header declares {total_records}"),
            );
        }

        // Checksums and index invariants: one pass over the payload
        // bytes, still zero per-record allocation.
        for (idx, shard) in gcd_shards.iter().chain(full_shards.iter()).enumerate() {
            let at = HEADER_LEN + idx * DIR_ENTRY_LEN;
            let (section, shard_no) = if idx < shard_count {
                (ShardSection::Gcd, idx)
            } else {
                (ShardSection::Full, idx - shard_count)
            };
            let payload = &b[shard.offset..shard.offset + shard.len];
            let actual = xxh64(payload, 0);
            if actual != shard.checksum {
                return verr(
                    (at + 24) as u64,
                    format!(
                        "{section} shard {shard_no}: payload checksum mismatch (stored {:#018x}, computed {actual:#018x})",
                        shard.checksum
                    ),
                );
            }
            let index_len = shard.records * INDEX_ENTRY_LEN;
            let mut prev_hash = 0u64;
            for j in 0..shard.records {
                let e = j * INDEX_ENTRY_LEN;
                let hash = u64le(&payload[e..]);
                let rec_off = u32le(&payload[e + 8..]) as u64;
                let rec_len = u32le(&payload[e + 12..]) as u64;
                let entry_at = (shard.offset + e) as u64;
                if j > 0 && hash < prev_hash {
                    return verr(
                        entry_at,
                        format!(
                            "{section} shard {shard_no}: index hashes not sorted at record {j}"
                        ),
                    );
                }
                prev_hash = hash;
                if rec_off < index_len as u64 {
                    return verr(
                        entry_at + 8,
                        format!("{section} shard {shard_no}: record {j} overlaps the index"),
                    );
                }
                if rec_off + rec_len > shard.len as u64 {
                    return verr(
                        entry_at + 8,
                        format!("{section} shard {shard_no}: record {j} runs past the payload"),
                    );
                }
            }
        }

        Ok(MemoArchive {
            data,
            shard_count,
            total_records,
            gcd_shards,
            full_shards,
            mapped,
        })
    }

    /// Number of shards per section.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Total records across both sections.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Archive length in bytes.
    #[must_use]
    pub fn file_len(&self) -> u64 {
        self.data.bytes().len() as u64
    }

    /// Whether the archive is backed by an `mmap` (vs an owned buffer).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// Directory metadata for every shard, section-major.
    #[must_use]
    pub fn shard_infos(&self) -> Vec<ShardInfo> {
        let describe = |section: ShardSection, shards: &[Shard]| {
            shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardInfo {
                    section,
                    shard: i,
                    offset: s.offset as u64,
                    len: s.len as u64,
                    records: s.records as u64,
                    checksum: s.checksum,
                })
                .collect::<Vec<_>>()
        };
        let mut out = describe(ShardSection::Gcd, &self.gcd_shards);
        out.extend(describe(ShardSection::Full, &self.full_shards));
        out
    }

    fn lookup<T>(
        &self,
        shards: &[Shard],
        key: &MemoKey,
        dec: impl Fn(&mut Cur<'_>) -> Result<T, PersistV3Error>,
    ) -> Option<T> {
        let h = route_hash(key);
        let shard = &shards[(h % self.shard_count as u64) as usize];
        let payload = &self.data.bytes()[shard.offset..shard.offset + shard.len];
        let idx_hash = |j: usize| u64le(&payload[j * INDEX_ENTRY_LEN..]);
        let (mut lo, mut hi) = (0usize, shard.records);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if idx_hash(mid) < h {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        while lo < shard.records && idx_hash(lo) == h {
            let e = lo * INDEX_ENTRY_LEN;
            let rec_off = u32le(&payload[e + 8..]) as usize;
            let rec_len = u32le(&payload[e + 12..]) as usize;
            let rec = &payload[rec_off..rec_off + rec_len];
            let mut cur = Cur::new(rec, (shard.offset + rec_off) as u64);
            match key_matches(&mut cur, key.as_slice()) {
                Ok(true) => {
                    let v = dec(&mut cur).ok()?;
                    cur.finish().ok()?;
                    return Some(v);
                }
                Ok(false) => {}
                Err(_) => return None,
            }
            lo += 1;
        }
        None
    }

    /// Looks up one gcd record without decoding anything else.
    ///
    /// Returns `None` on a miss — or if the record fails to decode,
    /// which after the open-time checksum pass indicates a writer bug
    /// rather than file corruption.
    #[must_use]
    pub fn get_gcd(&self, key: &MemoKey) -> Option<EqOutcome> {
        self.lookup(&self.gcd_shards, key, dec_gcd_value)
    }

    /// Looks up one full record without decoding anything else. Same
    /// miss semantics as [`MemoArchive::get_gcd`].
    #[must_use]
    pub fn get_full(&self, key: &MemoKey) -> Option<CachedOutcome> {
        self.lookup(&self.full_shards, key, dec_full_value)
    }

    fn for_each<T>(
        &self,
        shards: &[Shard],
        dec: impl Fn(&mut Cur<'_>) -> Result<T, PersistV3Error>,
        mut f: impl FnMut(MemoKey, T),
    ) -> Result<(), PersistV3Error> {
        for shard in shards {
            let payload = &self.data.bytes()[shard.offset..shard.offset + shard.len];
            for j in 0..shard.records {
                let e = j * INDEX_ENTRY_LEN;
                let rec_off = u32le(&payload[e + 8..]) as usize;
                let rec_len = u32le(&payload[e + 12..]) as usize;
                let rec = &payload[rec_off..rec_off + rec_len];
                let mut cur = Cur::new(rec, (shard.offset + rec_off) as u64);
                let key = dec_key(&mut cur)?;
                let v = dec(&mut cur)?;
                cur.finish()?;
                f(key, v);
            }
        }
        Ok(())
    }

    /// Decodes every gcd record, in shard order then hash order.
    ///
    /// # Errors
    ///
    /// Returns a located [`PersistV3Error`] if any record is malformed.
    pub fn for_each_gcd(&self, f: impl FnMut(MemoKey, EqOutcome)) -> Result<(), PersistV3Error> {
        self.for_each(&self.gcd_shards, dec_gcd_value, f)
    }

    /// Decodes every full record, in shard order then hash order.
    ///
    /// # Errors
    ///
    /// Returns a located [`PersistV3Error`] if any record is malformed.
    pub fn for_each_full(
        &self,
        f: impl FnMut(MemoKey, CachedOutcome),
    ) -> Result<(), PersistV3Error> {
        self.for_each(&self.full_shards, dec_full_value, f)
    }
}

/// Streams the stored key and compares it against `key` element by
/// element — no allocation on mismatch, none on match either.
fn key_matches(cur: &mut Cur<'_>, key: &[i64]) -> Result<bool, PersistV3Error> {
    let n = cur.count()?;
    if n != key.len() {
        return Ok(false);
    }
    for &want in key {
        if cur.ivarint()? != want {
            return Ok(false);
        }
    }
    Ok(true)
}

fn file_len_usize(file: &fs::File) -> io::Result<usize> {
    let len = file.metadata()?.len();
    usize::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file larger than address space"))
}

/// Sniffs whether `path` starts with the v3 magic (files shorter than
/// the magic are not v3; the caller will treat them as text).
///
/// # Errors
///
/// Propagates I/O errors other than a short read.
pub fn is_v3_file(path: &Path) -> io::Result<bool> {
    use std::io::Read as _;
    let mut file = fs::File::open(path)?;
    let mut magic = [0u8; 8];
    match file.read_exact(&mut magic) {
        Ok(()) => Ok(magic == MAGIC),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::DependenceAnalyzer;
    use crate::memo::SharedMemo;
    use dda_ir::parse_program;

    fn trained_memo() -> SharedMemo {
        let src = "
            for i = 1 to 10 { a[i + 1] = a[i]; }
            for i = 1 to 10 { b[2 * i] = b[2 * i + 1]; }
            for i = 1 to 10 { for j = i to 10 { c[j + 2] = c[j]; } }
            read(n); for i = 1 to 10 { d[i + n] = d[i + n + 3]; }
            for i = 1 to 10 { z[i] = z[i + 20]; }
        ";
        let mut an = DependenceAnalyzer::new();
        an.analyze_program(&parse_program(src).unwrap());
        let memo = SharedMemo::new(4);
        memo.import_memo(&an.export_memo()).unwrap();
        memo
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dda_persist_v3_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn xxh64_matches_reference_vectors() {
        // Published XXH64 test vectors.
        assert_eq!(xxh64(b"", 0), 0xef46_db37_51d8_e999);
        assert_eq!(xxh64(b"abc", 0), 0x44bc_2cf5_ad77_0999);
        // Long input exercises the 32-byte stripe loop.
        let data: Vec<u8> = (0u32..1009).map(|i| (i * 31 % 251) as u8).collect();
        assert_eq!(xxh64(&data, 7), xxh64(&data, 7));
        assert_ne!(xxh64(&data, 7), xxh64(&data, 8));
    }

    #[test]
    fn varints_round_trip() {
        let cases = [
            0i64,
            1,
            -1,
            63,
            -64,
            64,
            i64::MAX,
            i64::MIN,
            i64::MIN + 1,
            123_456_789_012_345,
        ];
        let mut buf = Vec::new();
        for &v in &cases {
            enc_key(&mut buf, &MemoKey::from_vec(vec![v]));
        }
        let mut cur = Cur::new(&buf, 0);
        for &v in &cases {
            let k = dec_key(&mut cur).unwrap();
            assert_eq!(k.as_slice(), &[v]);
        }
        cur.finish().unwrap();
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // Eleven continuation bytes can encode more than 64 bits.
        let buf = [0xffu8; 11];
        let mut cur = Cur::new(&buf, 100);
        let e = cur.uvarint().unwrap_err();
        assert_eq!(e.offset, 100);
        assert!(e.message.contains("overflows"), "{}", e.message);
    }

    #[test]
    fn archive_round_trips_and_looks_up_every_key() {
        let memo = trained_memo();
        let path = tmp("round_trip.dm3");
        memo.save_memo_file_v3(&path, 4).unwrap();

        let archive = MemoArchive::open(&path).unwrap();
        assert_eq!(archive.shard_count(), 4);
        let expected_records = (memo.gcd.unique_entries() + memo.full.unique_entries()) as u64;
        assert_eq!(archive.total_records(), expected_records);

        // Point lookups find every record with the exact stored value.
        for (k, v) in memo.gcd.snapshot() {
            assert_eq!(archive.get_gcd(&k), Some(v));
        }
        for (k, v) in memo.full.snapshot() {
            assert_eq!(archive.get_full(&k), Some(v));
        }
        // And miss on a key that was never stored.
        assert_eq!(archive.get_gcd(&MemoKey::from_vec(vec![99, 98, 97])), None);

        // Full iteration recovers the same entry sets.
        let mut gcd = Vec::new();
        archive.for_each_gcd(|k, v| gcd.push((k, v))).unwrap();
        gcd.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(gcd, memo.gcd.snapshot());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn buffered_open_agrees_with_mapped_open() {
        let memo = trained_memo();
        let path = tmp("buffered.dm3");
        memo.save_memo_file_v3(&path, 3).unwrap();
        let mapped = MemoArchive::open(&path).unwrap();
        let buffered = MemoArchive::open_buffered(&path).unwrap();
        assert!(!buffered.is_mapped());
        assert_eq!(mapped.total_records(), buffered.total_records());
        for (k, v) in memo.full.snapshot() {
            assert_eq!(buffered.get_full(&k), Some(v.clone()));
            assert_eq!(mapped.get_full(&k), Some(v));
        }
        assert_eq!(mapped.shard_infos(), buffered.shard_infos());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writes_are_deterministic_per_shard_count() {
        let memo = trained_memo();
        let a = tmp("det_a.dm3");
        let b = tmp("det_b.dm3");
        memo.save_memo_file_v3(&a, 8).unwrap();
        memo.save_memo_file_v3(&b, 8).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());

        // A different shard count is a different (but valid) file.
        memo.save_memo_file_v3(&b, 2).unwrap();
        assert_ne!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        assert_eq!(
            MemoArchive::open(&b).unwrap().total_records(),
            MemoArchive::open(&a).unwrap().total_records()
        );
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    fn valid_file_bytes() -> Vec<u8> {
        let memo = trained_memo();
        let path = tmp("hostile_base.dm3");
        memo.save_memo_file_v3(&path, 2).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        bytes
    }

    fn open_bytes(name: &str, bytes: &[u8]) -> io::Result<MemoArchive> {
        let path = tmp(name);
        std::fs::write(&path, bytes).unwrap();
        let r = MemoArchive::open(&path);
        std::fs::remove_file(&path).ok();
        r
    }

    fn expect_located(r: io::Result<MemoArchive>, needle: &str) -> String {
        let e = r.unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        let msg = e.to_string();
        assert!(
            msg.contains("offset") && msg.contains(needle),
            "expected located error mentioning `{needle}`, got: {msg}"
        );
        msg
    }

    #[test]
    fn hostile_bad_magic_and_version() {
        let good = valid_file_bytes();

        let mut bad = good.clone();
        bad[0] = b'X';
        expect_located(open_bytes("bad_magic.dm3", &bad), "magic");

        let mut bad = good.clone();
        bad[8] = 9; // version 9
                    // The version field lies inside the checksummed header prefix,
                    // so fix the header checksum to isolate the version check.
        let sum = xxh64(&bad[..56], 0);
        bad[56..64].copy_from_slice(&sum.to_le_bytes());
        expect_located(open_bytes("bad_version.dm3", &bad), "version 9");
    }

    #[test]
    fn hostile_truncated_file_is_located() {
        let good = valid_file_bytes();
        // Truncating anywhere invalidates the declared file length.
        expect_located(
            open_bytes("trunc_shard.dm3", &good[..good.len() - 5]),
            "file length",
        );
        // A file shorter than the header never reads past its end.
        expect_located(open_bytes("trunc_header.dm3", &good[..20]), "shorter");
        assert!(matches!(
            is_v3_file(&{
                let p = tmp("five.dm3");
                std::fs::write(&p, b"DDAME").unwrap();
                p
            }),
            Ok(false)
        ));
    }

    #[test]
    fn hostile_flipped_checksum_byte_is_located() {
        let good = valid_file_bytes();

        // Flip one byte inside the first shard payload: its stored
        // checksum no longer matches.
        let payload_start = HEADER_LEN + 4 * DIR_ENTRY_LEN;
        let mut bad = good.clone();
        bad[payload_start + 3] ^= 0x40;
        let msg = expect_located(open_bytes("flip_payload.dm3", &bad), "checksum mismatch");
        assert!(msg.contains("shard"), "{msg}");

        // Flip a byte of the header instead: the header checksum trips.
        let mut bad = good.clone();
        bad[40] ^= 1;
        expect_located(open_bytes("flip_header.dm3", &bad), "header checksum");
    }

    #[test]
    fn hostile_oversized_counts_fail_before_allocation() {
        let good = valid_file_bytes();

        // Claim 2^56 records in shard 0's directory entry. The records
        // field is at directory offset +16. Re-seal the payload-level
        // lie is unnecessary — the directory is covered by bounds
        // checks, not the header checksum.
        let mut bad = good.clone();
        let at = HEADER_LEN + 16;
        bad[at..at + 8].copy_from_slice(&(1u64 << 56).to_le_bytes());
        expect_located(open_bytes("huge_records.dm3", &bad), "records exceed");

        // Claim a total_records that disagrees with the directory sum
        // (header checksum fixed so the count check itself is reached).
        let mut bad = good.clone();
        bad[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        let sum = xxh64(&bad[..56], 0);
        bad[56..64].copy_from_slice(&sum.to_le_bytes());
        expect_located(open_bytes("bad_total.dm3", &bad), "header declares");

        // A shard whose offset+len overruns the file.
        let mut bad = good.clone();
        let at = HEADER_LEN + 8; // shard 0 `len`
        bad[at..at + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        expect_located(open_bytes("overrun.dm3", &bad), "runs past the file");
    }

    #[test]
    fn hostile_record_count_inside_record_fails_located() {
        // Craft a payload whose single record claims a huge key length.
        // The count guard must refuse before sizing a Vec from it.
        let mut blob = Vec::new();
        put_u(&mut blob, 1 << 40); // key_len lie
        let payload = build_payload(vec![(7, blob)]).unwrap();
        let gcd = [(payload, 1u64)];
        let full = [(build_payload(Vec::new()).unwrap(), 0u64)];
        let mut bytes = Vec::new();
        assemble(&gcd, &full, &mut bytes).unwrap();

        let archive = open_bytes("lying_record.dm3", &bytes).unwrap();
        // Structural validation passes (the lie is inside the record),
        // but decoding the record trips the count guard, located at the
        // record's absolute offset.
        let e = archive.for_each_gcd(|_, _| {}).unwrap_err();
        assert!(
            e.message.contains("exceeds") && e.message.contains("remaining"),
            "{}",
            e.message
        );
        // One shard per section: payloads start after a 2-entry directory.
        assert!(e.offset >= (HEADER_LEN + 2 * DIR_ENTRY_LEN) as u64);
        // Point lookups treat the undecodable record as a miss.
        assert_eq!(archive.get_gcd(&MemoKey::from_vec(vec![1])), None);
    }

    #[test]
    fn hostile_unsorted_index_is_rejected() {
        let blob_a = {
            let mut b = Vec::new();
            enc_key(&mut b, &MemoKey::from_vec(vec![1]));
            b.push(0);
            b
        };
        let blob_b = {
            let mut b = Vec::new();
            enc_key(&mut b, &MemoKey::from_vec(vec![2]));
            b.push(0);
            b
        };
        // build_payload sorts; sabotage the order by hand afterwards.
        let mut payload = build_payload(vec![(5, blob_a), (9, blob_b)]).unwrap();
        let (lo, hi) = (5u64.to_le_bytes(), 9u64.to_le_bytes());
        payload[0..8].copy_from_slice(&hi);
        payload[16..24].copy_from_slice(&lo);
        let gcd = [(payload, 2u64)];
        let full = [(build_payload(Vec::new()).unwrap(), 0u64)];
        let mut bytes = Vec::new();
        assemble(&gcd, &full, &mut bytes).unwrap();
        expect_located(open_bytes("unsorted.dm3", &bytes), "not sorted");
    }

    #[test]
    fn shared_memo_lazy_load_faults_records_on_demand() {
        use crate::persist::MemoFormat;
        let memo = trained_memo();
        let path = tmp("lazy.dm3");
        memo.save_memo_file_v3(&path, 4).unwrap();

        let warm = SharedMemo::new(4);
        assert_eq!(warm.load_memo_file(&path).unwrap(), MemoFormat::V3Binary);
        // Nothing is resident yet — the archive is attached, not decoded.
        assert_eq!(warm.full.unique_entries(), 0);
        assert_eq!(warm.gcd.unique_entries(), 0);
        let stats = warm.memo_load_stats();
        assert_eq!(stats.files, 1);
        assert_eq!(
            stats.records,
            (memo.gcd.unique_entries() + memo.full.unique_entries()) as u64
        );
        assert_eq!(stats.archive_faults, 0);

        // A lookup faults exactly one record into the hot tier.
        let (k, v) = &memo.full.snapshot()[0];
        assert_eq!(warm.lookup_full(k).as_ref(), Some(v));
        assert_eq!(warm.full.unique_entries(), 1);
        assert_eq!(warm.memo_load_stats().archive_faults, 1);
        // Resident now: the second lookup hits the table, not the archive.
        assert_eq!(warm.lookup_full(k).as_ref(), Some(v));
        assert_eq!(warm.memo_load_stats().archive_faults, 1);

        // Exports see through both tiers: byte-identical to the source.
        assert_eq!(warm.export_memo(), memo.export_memo());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn second_v3_load_decodes_eagerly() {
        use crate::persist::MemoFormat;
        let memo = trained_memo();
        let path = tmp("second_load.dm3");
        memo.save_memo_file_v3(&path, 4).unwrap();

        let warm = SharedMemo::new(4);
        assert_eq!(warm.load_memo_file(&path).unwrap(), MemoFormat::V3Binary);
        assert_eq!(warm.load_memo_file(&path).unwrap(), MemoFormat::V3Binary);
        // The second archive could not attach, so its records were
        // decoded eagerly into the resident tables.
        assert_eq!(warm.full.unique_entries(), memo.full.unique_entries());
        assert_eq!(warm.gcd.unique_entries(), memo.gcd.unique_entries());
        assert_eq!(warm.export_memo(), memo.export_memo());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serial_analyzer_loads_v3_eagerly() {
        use crate::persist::MemoFormat;
        let memo = trained_memo();
        let path = tmp("serial.dm3");
        memo.save_memo_file_v3(&path, 4).unwrap();

        let mut an = DependenceAnalyzer::new();
        assert_eq!(an.load_memo_file(&path).unwrap(), MemoFormat::V3Binary);
        assert_eq!(an.memo_entries(), memo.full.unique_entries());
        assert_eq!(an.gcd_memo_entries(), memo.gcd.unique_entries());
        // The v2 text round trip agrees byte-for-byte.
        assert_eq!(an.export_memo(), memo.export_memo());
        std::fs::remove_file(&path).ok();
    }
}
