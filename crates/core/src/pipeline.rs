//! The instrumented solve pipeline: a configurable cascade with probes.
//!
//! The paper's cascade (SVPC → Acyclic → Loop Residue → Fourier–Motzkin)
//! used to be a hardcoded call sequence. This module generalizes it into a
//! *pipeline*: the test list is runtime-configurable ([`PipelineConfig`]),
//! and every stage reports to a [`Probe`] — a compile-time hook that is
//! erased entirely on the hot path ([`NullProbe`]), records typed
//! [`TraceEvent`]s for diagnostics ([`RecordingProbe`]), or accumulates
//! per-test wall time ([`StatsProbe`]).
//!
//! The pipeline threads a running state — scalar [`VarBounds`], residual
//! multi-variable constraints, and the Acyclic elimination
//! [`Trace`] — through the configured tests in
//! order, so a later test always runs on the system as *simplified* by the
//! earlier ones, exactly as the paper prescribes. With the full default
//! configuration the pipeline is answer-for-answer identical to the
//! original cascade (property-tested in `tests/prop_tests.rs`).

use std::borrow::Cow;
use std::fmt;
use std::str::FromStr;
use std::time::Instant;

use crate::acyclic::{acyclic_into, AcyclicOutcome, Trace};
use crate::cascade::CascadeOutcome;
use crate::certificate::{FmTree, RefProof, SystemRefutation, Trail};
use crate::fourier_motzkin::{fourier_motzkin_cert, FmLimits, FmOutcome};
use crate::loop_residue::{loop_residue_into, LoopResidueOutcome};
use crate::result::{Answer, DependenceResult, DirectionVector, DistanceVector, TestKind};
use crate::stats::StageTimings;
use crate::svpc::{svpc_into, SvpcStep};
use crate::system::{Constraint, System, VarBounds};

/// A request-scoped trace identifier, carried by probes so that every
/// event a pipeline emits can be attributed to the request (service
/// call, batch, CLI invocation) that caused it.
///
/// The id is an opaque 64-bit value rendered as 16 lowercase hex
/// digits. The pipeline itself never reads it — like everything else a
/// probe carries, it cannot feed back into analysis results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Parses the canonical hex form (1–16 hex digits, as produced by
    /// `Display`). Returns `None` for anything else.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 || !s.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A hook that observes the pipeline without influencing it.
///
/// Probes receive [`TraceEvent`]s from every instrumented layer (GCD
/// phase, cascade stages, direction refinement, memo decisions). Events
/// never feed back into control flow, so a probed run returns bit-identical
/// answers to an unprobed one.
pub trait Probe {
    /// Whether this probe consumes events. When `false` (the
    /// [`NullProbe`]), call sites skip event construction and timing
    /// entirely — the monomorphized hot path carries zero overhead.
    const ACTIVE: bool = true;

    /// Receives one event.
    fn record(&mut self, event: TraceEvent);

    /// The request trace this probe attributes its events to, when the
    /// probe was built for one (see [`TraceId`]). The pipeline never
    /// calls this — it exists so downstream renderers (span JSONL, the
    /// flight recorder) can stamp their output without a side channel.
    fn trace(&self) -> Option<TraceId> {
        None
    }
}

/// The zero-cost probe: ignores everything, `ACTIVE = false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ACTIVE: bool = false;
    fn record(&mut self, _event: TraceEvent) {}
}

/// Captures every event in order, for rendering or serialization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingProbe {
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl Probe for RecordingProbe {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Accumulates per-test call counts and wall time, discarding everything
/// else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsProbe {
    /// The accumulated timings.
    pub timings: StageTimings,
}

impl Probe for StatsProbe {
    fn record(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Stage { test, nanos, .. } => self.timings.record(test, nanos),
            TraceEvent::Gcd { nanos, .. } => self.timings.record_gcd(nanos),
            _ => {}
        }
    }
}

/// How a pair classified before any dependence testing (mirror of
/// [`crate::steps::Classified`], without the payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifiedKind {
    /// All subscripts constant; `dependent` is the comparison verdict.
    Constant {
        /// Whether the constant subscripts coincide.
        dependent: bool,
    },
    /// No affine system could be built: dependence assumed.
    Unbuildable,
    /// A well-formed dependence problem.
    Problem {
        /// Number of `x`-space variables.
        vars: usize,
        /// Number of subscript equality rows.
        equations: usize,
        /// Number of bound constraints.
        bounds: usize,
    },
}

/// Verdict of the extended GCD phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcdVerdict {
    /// The equality system has no integer solution: independent.
    Independent,
    /// Solutions form a lattice; the cascade runs on the reduced system.
    Lattice,
    /// Arithmetic overflow while solving: dependence assumed.
    Overflow,
}

/// What one pipeline stage concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageVerdict {
    /// The stage proved independence (exact).
    Independent,
    /// The stage proved dependence (exact).
    Dependent,
    /// The stage gave up and no later test remains: dependence assumed.
    Unknown,
    /// The stage could not decide; the pipeline moves to the next test.
    Pass,
}

impl fmt::Display for StageVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StageVerdict::Independent => "independent",
            StageVerdict::Dependent => "dependent",
            StageVerdict::Unknown => "unknown",
            StageVerdict::Pass => "pass",
        };
        f.write_str(s)
    }
}

/// One typed event emitted by an instrumented layer.
///
/// Wall times (`nanos`) are measured only when the receiving probe is
/// `ACTIVE`, and never influence answers.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A pair's analysis began.
    PairStarted {
        /// Array both references touch.
        array: String,
        /// Id of the first access.
        a_access: usize,
        /// Id of the second access.
        b_access: usize,
        /// Number of common loops.
        common: usize,
    },
    /// The pair classified (before any testing).
    Classified {
        /// The classification.
        kind: ClassifiedKind,
    },
    /// The full-result memo table answered; no tests ran.
    CacheHit,
    /// The extended GCD phase finished.
    Gcd {
        /// Its verdict.
        verdict: GcdVerdict,
        /// Whether the no-bounds memo table supplied the lattice.
        cached: bool,
        /// Wall time, when timed.
        nanos: u64,
    },
    /// The problem was reduced through the GCD lattice into `t`-space.
    Reduced {
        /// Number of free (`t`) variables.
        free_vars: usize,
        /// The reduced inequality system handed to the cascade.
        system: System,
    },
    /// The lattice substitution overflowed: dependence assumed.
    ReduceOverflow,
    /// A cascade stage is about to run; records the system shape it sees.
    StageEntered {
        /// The test.
        test: TestKind,
        /// Number of `t`-space variables.
        vars: usize,
        /// Residual multi-variable constraints at entry.
        constraints: usize,
        /// Finite scalar bounds (lower + upper) at entry.
        bounded: usize,
    },
    /// A cascade stage finished.
    Stage {
        /// The test.
        test: TestKind,
        /// What it concluded.
        verdict: StageVerdict,
        /// Wall time, when timed.
        nanos: u64,
    },
    /// A dependence witness in `x`-space (original problem variables).
    Witness {
        /// The witness assignment.
        x: Vec<i64>,
    },
    /// Direction-vector refinement began; subsequent [`TraceEvent::Stage`]
    /// events belong to refinement cascades, not the base query.
    RefinementStarted,
    /// Direction-vector refinement finished.
    Directions {
        /// Surviving direction vectors.
        vectors: Vec<DirectionVector>,
        /// Constant per-level distances.
        distance: DistanceVector,
        /// Cascade invocations made during refinement.
        tests: u64,
        /// Whether every vector rests on exact answers.
        exact: bool,
        /// Wall time, when timed.
        nanos: u64,
    },
    /// The pair's analysis finished.
    PairFinished {
        /// The final verdict.
        result: DependenceResult,
        /// Whether it came from the full-result memo table.
        from_cache: bool,
    },
}

/// Which tests the pipeline runs, in order.
///
/// At most four tests, no duplicates. The default is the paper's full
/// measured-cost order; ablations disable or reorder tests:
///
/// ```
/// use dda_core::pipeline::PipelineConfig;
/// use dda_core::result::TestKind;
///
/// let full = PipelineConfig::default();
/// assert_eq!(full.to_string(), "svpc,acyclic,residue,fm");
/// let fm_only = PipelineConfig::from_tests(&[TestKind::FourierMotzkin]).unwrap();
/// assert_eq!(fm_only.to_string(), "fm");
/// assert_eq!("svpc,fm".parse::<PipelineConfig>().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineConfig {
    tests: [Option<TestKind>; 4],
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig::full()
    }
}

impl PipelineConfig {
    /// All four tests in the paper's cascade order.
    #[must_use]
    pub fn full() -> PipelineConfig {
        PipelineConfig {
            tests: [
                Some(TestKind::Svpc),
                Some(TestKind::Acyclic),
                Some(TestKind::LoopResidue),
                Some(TestKind::FourierMotzkin),
            ],
        }
    }

    /// A pipeline running exactly `order`, in that order.
    ///
    /// Returns `None` when `order` is empty, longer than four, or contains
    /// a duplicate.
    #[must_use]
    pub fn from_tests(order: &[TestKind]) -> Option<PipelineConfig> {
        if order.is_empty() || order.len() > 4 {
            return None;
        }
        let mut tests = [None; 4];
        for (i, &t) in order.iter().enumerate() {
            if order[..i].contains(&t) {
                return None;
            }
            tests[i] = Some(t);
        }
        Some(PipelineConfig { tests })
    }

    /// This pipeline with `kind` removed (later tests shift up).
    #[must_use]
    pub fn without(self, kind: TestKind) -> PipelineConfig {
        let order: Vec<TestKind> = self.tests().filter(|&t| t != kind).collect();
        let mut tests = [None; 4];
        for (i, &t) in order.iter().enumerate() {
            tests[i] = Some(t);
        }
        PipelineConfig { tests }
    }

    /// The configured tests, in order.
    pub fn tests(&self) -> impl Iterator<Item = TestKind> + '_ {
        self.tests.iter().flatten().copied()
    }

    /// Number of configured tests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tests.iter().flatten().count()
    }

    /// Whether no test is configured (only reachable via
    /// [`PipelineConfig::without`]; the pipeline then answers `Unknown`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `kind` is configured.
    #[must_use]
    pub fn enabled(&self, kind: TestKind) -> bool {
        self.tests().any(|t| t == kind)
    }

    /// Whether every test is enabled (in any order). Exactness of
    /// "assumed" answers is only guaranteed in this case.
    #[must_use]
    pub fn includes_all(&self) -> bool {
        TestKind::ALL.iter().all(|&t| self.enabled(t))
    }
}

/// Canonical token for a test in `--tests` lists.
fn test_token(kind: TestKind) -> &'static str {
    match kind {
        TestKind::Svpc => "svpc",
        TestKind::Acyclic => "acyclic",
        TestKind::LoopResidue => "residue",
        TestKind::FourierMotzkin => "fm",
    }
}

impl fmt::Display for PipelineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tests().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            f.write_str(test_token(t))?;
        }
        Ok(())
    }
}

impl FromStr for PipelineConfig {
    type Err = String;

    /// Parses a comma-separated test list, e.g. `svpc,acyclic,residue,fm`.
    ///
    /// Accepted aliases: `residue`/`loop-residue`/`loopresidue` and
    /// `fm`/`fourier-motzkin`/`fouriermotzkin`.
    fn from_str(s: &str) -> Result<PipelineConfig, String> {
        let mut order = Vec::new();
        for token in s.split(',') {
            let token = token.trim().to_ascii_lowercase();
            let kind = match token.as_str() {
                "svpc" => TestKind::Svpc,
                "acyclic" => TestKind::Acyclic,
                "residue" | "loop-residue" | "loopresidue" => TestKind::LoopResidue,
                "fm" | "fourier-motzkin" | "fouriermotzkin" => TestKind::FourierMotzkin,
                "" => return Err("empty test name in list".to_string()),
                other => return Err(format!("unknown test '{other}'")),
            };
            if order.contains(&kind) {
                return Err(format!("duplicate test '{token}'"));
            }
            order.push(kind);
        }
        PipelineConfig::from_tests(&order).ok_or_else(|| "empty test list".to_string())
    }
}

/// What one stage did with the running state.
enum StepOutcome {
    /// Exact verdict; the pipeline stops.
    Decided(Answer),
    /// State simplified; move on.
    Continue,
    /// The test did not apply or gave up; move on (or assume dependence
    /// if it was the last test).
    Undecided,
}

/// Runs the configured tests over `system`, reporting to `probe`.
///
/// With [`PipelineConfig::full`] this is answer-for-answer identical to
/// [`crate::cascade::run_cascade_with`] (which is now a thin wrapper over
/// it). An empty configuration answers `Unknown`.
#[must_use]
pub fn run_pipeline<P: Probe>(
    system: &System,
    config: &PipelineConfig,
    limits: FmLimits,
    probe: &mut P,
) -> CascadeOutcome {
    // COLLECT = false: the answer-only path skips certificate
    // materialization entirely (the provenance trail still records, but
    // no `Rule`s are ever built).
    run_pipeline_impl::<P, false>(system, config, limits, probe).0
}

/// [`run_pipeline`], additionally returning a refutation certificate when
/// the answer is `Independent` and every derivation the deciding stage
/// made could be accounted for (`None` otherwise — the answer itself is
/// never affected).
///
/// The refutation's premises are rows of `system` by value; see
/// [`crate::certificate`] for the proof grammar.
#[must_use]
pub fn run_pipeline_collect<P: Probe>(
    system: &System,
    config: &PipelineConfig,
    limits: FmLimits,
    probe: &mut P,
) -> (CascadeOutcome, Option<SystemRefutation>) {
    run_pipeline_impl::<P, true>(system, config, limits, probe)
}

/// The shared pipeline body. `COLLECT` gates certificate construction at
/// compile time: the residual starts as a borrow of the system's rows
/// (first materialized by whichever stage shrinks it) and the trail logs
/// provenance inline, so with `COLLECT = false` a pair that resolves in
/// the early stages completes without a single heap allocation beyond
/// its witness.
fn run_pipeline_impl<P: Probe, const COLLECT: bool>(
    system: &System,
    config: &PipelineConfig,
    limits: FmLimits,
    probe: &mut P,
) -> (CascadeOutcome, Option<SystemRefutation>) {
    let n = system.num_vars;
    let mut bounds = VarBounds::unbounded(n);
    let mut residual: Cow<'_, [Constraint]> = Cow::Borrowed(&system.constraints);
    let mut trace = Trace::default();
    let mut trail = Trail::for_rows(n, &system.constraints);
    let mut fm_tree: Option<FmTree> = None;
    let mut used = TestKind::Svpc;

    let order = config.tests;
    let count = config.len();
    for (pos, test) in order.iter().flatten().copied().enumerate() {
        let last = pos + 1 == count;
        used = test;
        if P::ACTIVE {
            let bounded = bounds.lb.iter().chain(bounds.ub.iter()).flatten().count();
            probe.record(TraceEvent::StageEntered {
                test,
                vars: n,
                constraints: residual.len(),
                bounded,
            });
        }
        let start = if P::ACTIVE {
            Some(Instant::now())
        } else {
            None
        };

        let step = match test {
            TestKind::Svpc => match svpc_into(&mut bounds, &residual, &mut trail) {
                SvpcStep::Infeasible => StepOutcome::Decided(Answer::Independent),
                SvpcStep::Done => {
                    let mut sample: Vec<i64> = (0..n).map(|v| bounds.pick(v)).collect();
                    StepOutcome::Decided(match trace.complete(&mut sample) {
                        Some(()) => Answer::Dependent(Some(sample)),
                        None => Answer::Dependent(None),
                    })
                }
                SvpcStep::Residual(rest) => {
                    residual = Cow::Owned(rest);
                    StepOutcome::Continue
                }
            },
            TestKind::Acyclic => match acyclic_into(&bounds, &residual, &mut trail) {
                AcyclicOutcome::Infeasible => StepOutcome::Decided(Answer::Independent),
                AcyclicOutcome::Complete { mut sample } => {
                    StepOutcome::Decided(match trace.complete(&mut sample) {
                        Some(()) => Answer::Dependent(Some(sample)),
                        None => Answer::Dependent(None),
                    })
                }
                AcyclicOutcome::Stuck {
                    bounds: b,
                    residual: r,
                    trace: t,
                } => {
                    bounds = b;
                    residual = Cow::Owned(r);
                    trace.extend(t);
                    StepOutcome::Continue
                }
            },
            TestKind::LoopResidue => match loop_residue_into(&bounds, &residual, &mut trail) {
                LoopResidueOutcome::Infeasible => StepOutcome::Decided(Answer::Independent),
                LoopResidueOutcome::Feasible(mut sample) => {
                    StepOutcome::Decided(match trace.complete(&mut sample) {
                        Some(()) => Answer::Dependent(Some(sample)),
                        None => Answer::Dependent(None),
                    })
                }
                LoopResidueOutcome::NotApplicable => StepOutcome::Undecided,
            },
            TestKind::FourierMotzkin => run_fm_stage(
                n,
                &bounds,
                &residual,
                &trace,
                limits,
                &mut trail,
                &mut fm_tree,
            ),
        };

        if P::ACTIVE {
            let nanos = start.map_or(0, |s| {
                u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            let verdict = match &step {
                StepOutcome::Decided(a) if a.is_independent() => StageVerdict::Independent,
                StepOutcome::Decided(_) => StageVerdict::Dependent,
                StepOutcome::Undecided if last => StageVerdict::Unknown,
                StepOutcome::Continue | StepOutcome::Undecided => StageVerdict::Pass,
            };
            probe.record(TraceEvent::Stage {
                test,
                verdict,
                nanos,
            });
        }

        if let StepOutcome::Decided(answer) = step {
            let refutation = if COLLECT && answer.is_independent() {
                match fm_tree {
                    // FM refuted: its tree rides on the arena built so far.
                    Some(tree) if trail.ok => Some(SystemRefutation {
                        arena: trail.materialize(&system.constraints),
                        proof: RefProof::Fm { tree },
                    }),
                    Some(_) => None,
                    // An earlier stage refuted: the arena itself sealed.
                    None => trail.into_arena_refutation(&system.constraints),
                }
            } else {
                None
            };
            return (CascadeOutcome { answer, used }, refutation);
        }
    }

    (
        CascadeOutcome {
            answer: Answer::Unknown,
            used,
        },
        None,
    )
}

/// The Fourier–Motzkin stage: bounds re-expanded to constraints, then the
/// bounded elimination.
///
/// The FM input rows must all be accountable for its refutation tree to
/// check out: residual rows carry their trail steps, and each re-expanded
/// bound row must have a recorded bound step (else the trail is poisoned —
/// the answer stands, the certificate is withheld). On `Infeasible`,
/// `fm_tree` receives the elimination/branch tree.
#[allow(clippy::too_many_arguments)]
fn run_fm_stage(
    n: usize,
    bounds: &VarBounds,
    residual: &[Constraint],
    trace: &Trace,
    limits: FmLimits,
    trail: &mut Trail,
    fm_tree: &mut Option<FmTree>,
) -> StepOutcome {
    let bound_rows = bounds.lb.iter().chain(bounds.ub.iter()).flatten().count();
    let mut constraints = Vec::with_capacity(residual.len() + bound_rows);
    constraints.extend_from_slice(residual);
    for v in 0..n {
        if let Some(u) = bounds.ub[v] {
            let mut row = dda_linalg::CoeffVec::from_elem(0, n);
            row[v] = 1;
            constraints.push(Constraint::new(row, u));
            if trail.ub_step[v].is_none() {
                trail.ok = false;
            }
        }
        if let Some(l) = bounds.lb[v] {
            let mut row = dda_linalg::CoeffVec::from_elem(0, n);
            row[v] = -1;
            let Some(neg) = l.checked_neg() else {
                return StepOutcome::Undecided;
            };
            constraints.push(Constraint::new(row, neg));
            if trail.lb_step[v].is_none() {
                trail.ok = false;
            }
        }
    }
    let (out, tree) = fourier_motzkin_cert(n, &constraints, limits);
    match out {
        FmOutcome::Infeasible => {
            *fm_tree = tree;
            StepOutcome::Decided(Answer::Independent)
        }
        FmOutcome::Sample(mut sample) => StepOutcome::Decided(match trace.complete(&mut sample) {
            Some(()) => Answer::Dependent(Some(sample)),
            None => Answer::Dependent(None),
        }),
        FmOutcome::Unknown => StepOutcome::Undecided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(rows: &[(&[i64], i64)]) -> System {
        let n = rows.first().map_or(0, |(c, _)| c.len());
        let mut s = System::new(n);
        for (coeffs, rhs) in rows {
            s.push(Constraint::new(coeffs.to_vec(), *rhs));
        }
        s
    }

    #[test]
    fn config_parsing_round_trips() {
        for text in [
            "svpc",
            "fm",
            "svpc,fm",
            "acyclic,residue",
            "svpc,acyclic,residue,fm",
        ] {
            let cfg: PipelineConfig = text.parse().unwrap();
            assert_eq!(cfg.to_string(), text);
        }
        assert_eq!(
            "fourier-motzkin".parse::<PipelineConfig>().unwrap(),
            PipelineConfig::from_tests(&[TestKind::FourierMotzkin]).unwrap()
        );
        assert!("".parse::<PipelineConfig>().is_err());
        assert!("svpc,svpc".parse::<PipelineConfig>().is_err());
        assert!("banzai".parse::<PipelineConfig>().is_err());
    }

    #[test]
    fn without_removes_and_shifts() {
        let cfg = PipelineConfig::full().without(TestKind::Acyclic);
        let order: Vec<TestKind> = cfg.tests().collect();
        assert_eq!(
            order,
            vec![
                TestKind::Svpc,
                TestKind::LoopResidue,
                TestKind::FourierMotzkin
            ]
        );
        assert!(!cfg.includes_all());
        assert!(PipelineConfig::full().includes_all());
    }

    #[test]
    fn empty_pipeline_answers_unknown() {
        let empty = PipelineConfig::full()
            .without(TestKind::Svpc)
            .without(TestKind::Acyclic)
            .without(TestKind::LoopResidue)
            .without(TestKind::FourierMotzkin);
        assert!(empty.is_empty());
        let s = sys(&[(&[1], 0)]);
        let out = run_pipeline(&s, &empty, FmLimits::default(), &mut NullProbe);
        assert_eq!(out.answer, Answer::Unknown);
    }

    #[test]
    fn fm_only_pipeline_decides() {
        let fm_only = PipelineConfig::from_tests(&[TestKind::FourierMotzkin]).unwrap();
        let s = sys(&[(&[-1, 0], -1), (&[1, 0], 10), (&[0, 1], 10), (&[0, -1], -1)]);
        let out = run_pipeline(&s, &fm_only, FmLimits::default(), &mut NullProbe);
        assert_eq!(out.used, TestKind::FourierMotzkin);
        assert!(matches!(out.answer, Answer::Dependent(Some(_))));
    }

    #[test]
    fn recording_probe_sees_stage_events() {
        let mut probe = RecordingProbe::default();
        let s = sys(&[(&[-1], -1), (&[1], 10)]);
        let out = run_pipeline(&s, &PipelineConfig::full(), FmLimits::default(), &mut probe);
        assert_eq!(out.used, TestKind::Svpc);
        assert!(matches!(
            probe.events.as_slice(),
            [
                TraceEvent::StageEntered {
                    test: TestKind::Svpc,
                    ..
                },
                TraceEvent::Stage {
                    test: TestKind::Svpc,
                    verdict: StageVerdict::Dependent,
                    ..
                }
            ]
        ));
    }

    #[test]
    fn stats_probe_accumulates_stage_time() {
        let mut probe = StatsProbe::default();
        let s = sys(&[(&[2, -1], 0), (&[-2, 1], -1)]);
        let out = run_pipeline(&s, &PipelineConfig::full(), FmLimits::default(), &mut probe);
        assert_eq!(out.used, TestKind::FourierMotzkin);
        assert_eq!(probe.timings.calls_for(TestKind::Svpc), 1);
        assert_eq!(probe.timings.calls_for(TestKind::Acyclic), 1);
        assert_eq!(probe.timings.calls_for(TestKind::LoopResidue), 1);
        assert_eq!(probe.timings.calls_for(TestKind::FourierMotzkin), 1);
        assert_eq!(probe.timings.total_calls(), 4);
    }

    #[test]
    fn reordered_full_config_still_decides_exactly() {
        // FM first: same verdicts as the default order on decided systems.
        let reordered = PipelineConfig::from_tests(&[
            TestKind::FourierMotzkin,
            TestKind::Svpc,
            TestKind::Acyclic,
            TestKind::LoopResidue,
        ])
        .unwrap();
        let cases: Vec<System> = vec![
            sys(&[(&[-1, 0], -1), (&[1, 0], 10), (&[0, 1], 10), (&[0, -1], -1)]),
            sys(&[(&[2, -1], 0), (&[-2, 1], -1)]),
            sys(&[(&[1, -1], -1), (&[-1, 1], -1)]),
        ];
        for s in &cases {
            let a = run_pipeline(
                s,
                &PipelineConfig::full(),
                FmLimits::default(),
                &mut NullProbe,
            );
            let b = run_pipeline(s, &reordered, FmLimits::default(), &mut NullProbe);
            assert_eq!(
                a.answer.is_independent(),
                b.answer.is_independent(),
                "verdict class must not depend on order for\n{s}"
            );
        }
    }
}
