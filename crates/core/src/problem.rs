//! Construction of the dependence problem for a pair of references.
//!
//! Given two accesses of the same array with their enclosing loop
//! contexts, this module builds the paper's Section 2 system: one integer
//! variable per loop index *instance* (shared loops contribute one
//! variable per side, `i` and `i′`), plus one shared variable per symbolic
//! constant; one equality per array dimension; and two inequalities per
//! loop bound.

use std::collections::BTreeMap;
use std::fmt;

use dda_ir::{Access, AffineExpr, Bound, Subscript};

use crate::system::Constraint;

/// Identity of one problem variable in the original (`x`) space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum XVar {
    /// Iteration variable of common loop `level` as seen by the first
    /// reference (`i` in the paper).
    CommonA(usize),
    /// Iteration variable of common loop `level` as seen by the second
    /// reference (`i′`).
    CommonB(usize),
    /// A loop enclosing only the first reference, `index` levels below the
    /// common nest.
    ExtraA(usize),
    /// A loop enclosing only the second reference.
    ExtraB(usize),
    /// A loop-invariant unknown, shared by both sides (Section 8).
    Symbolic(String),
}

impl fmt::Display for XVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XVar::CommonA(k) => write!(f, "i{k}"),
            XVar::CommonB(k) => write!(f, "i{k}'"),
            XVar::ExtraA(k) => write!(f, "ja{k}"),
            XVar::ExtraB(k) => write!(f, "jb{k}"),
            XVar::Symbolic(s) => write!(f, "{s}"),
        }
    }
}

/// Why a problem could not be built (the analyzer then assumes
/// dependence).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A subscript is not an affine function of loop variables and
    /// symbolic constants.
    NonAffine,
    /// The two references disagree on dimensionality.
    DimensionMismatch,
    /// The pair uses symbolic constants but symbolic analysis is disabled
    /// (Section 8 ablation).
    SymbolicDisabled,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NonAffine => f.write_str("non-affine subscript or bound"),
            BuildError::DimensionMismatch => f.write_str("references differ in rank"),
            BuildError::SymbolicDisabled => {
                f.write_str("symbolic terms present but symbolic analysis disabled")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// The full dependence problem in the original variable space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependenceProblem {
    /// The variables, in a fixed structural order: common-A, common-B,
    /// extra-A, extra-B, symbolics (sorted by name).
    pub vars: Vec<XVar>,
    /// Equality rows: `eq_coeffs[d] · x = eq_rhs[d]`, one per dimension.
    pub eq_coeffs: Vec<Vec<i64>>,
    /// Equality right-hand sides.
    pub eq_rhs: Vec<i64>,
    /// Loop-bound inequalities `a · x ≤ b`.
    pub bounds: Vec<Constraint>,
    /// Number of common loops.
    pub num_common: usize,
}

impl DependenceProblem {
    /// Index of a variable in the structural order.
    #[must_use]
    pub fn var_index(&self, v: &XVar) -> Option<usize> {
        self.vars.iter().position(|x| x == v)
    }

    /// Number of problem variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Whether the problem involves symbolic constants.
    #[must_use]
    pub fn has_symbolics(&self) -> bool {
        self.vars.iter().any(|v| matches!(v, XVar::Symbolic(_)))
    }

    /// Checks a witness: every equality and bound must hold.
    #[must_use]
    pub fn is_witness(&self, x: &[i64]) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (row, &rhs) in self.eq_coeffs.iter().zip(&self.eq_rhs) {
            match dda_linalg::num::dot(row, x) {
                Ok(v) if v == rhs => {}
                _ => return false,
            }
        }
        self.bounds
            .iter()
            .all(|c| c.is_satisfied_by(x) == Some(true))
    }
}

/// If both references have all-constant subscripts, decides dependence by
/// direct comparison — the paper's "Constant" column, "handled without
/// dependence testing".
///
/// Returns `Some(true)` for dependent (all dimensions equal), `Some(false)`
/// for independent, and `None` when any subscript involves a variable.
#[must_use]
pub fn constant_compare(a: &Access, b: &Access) -> Option<bool> {
    let mut all_equal = true;
    if a.subscripts.len() != b.subscripts.len() {
        return None;
    }
    for (sa, sb) in a.subscripts.iter().zip(&b.subscripts) {
        let (ea, eb) = (sa.as_affine()?, sb.as_affine()?);
        if !ea.is_constant() || !eb.is_constant() {
            return None;
        }
        if ea.constant_part() != eb.constant_part() {
            all_equal = false;
        }
    }
    Some(all_equal)
}

/// Maps an affine expression over one side's loop variables into problem
/// coordinates. Returns the coefficient row and the constant part.
fn map_expr(
    expr: &AffineExpr,
    side_map: &BTreeMap<&str, usize>,
    sym_map: &BTreeMap<&str, usize>,
    num_vars: usize,
) -> Result<(Vec<i64>, i64), BuildError> {
    let mut row = vec![0i64; num_vars];
    for (name, coeff) in expr.iter_terms() {
        let idx = side_map
            .get(name)
            .or_else(|| sym_map.get(name))
            .copied()
            .ok_or(BuildError::NonAffine)?;
        row[idx] += coeff;
    }
    Ok((row, expr.constant_part()))
}

/// Builds the dependence problem for accesses `a` and `b` sharing
/// `common` enclosing loops.
///
/// `allow_symbolics` gates Section 8 support: when `false`, any
/// loop-invariant unknown in a subscript or bound yields
/// [`BuildError::SymbolicDisabled`].
///
/// # Errors
///
/// Returns a [`BuildError`] when the pair cannot be expressed in the
/// paper's model; the caller assumes dependence.
pub fn build_problem(
    a: &Access,
    b: &Access,
    common: usize,
    allow_symbolics: bool,
) -> Result<DependenceProblem, BuildError> {
    if a.subscripts.len() != b.subscripts.len() {
        return Err(BuildError::DimensionMismatch);
    }

    // Collect symbolic names used anywhere in either side.
    let mut symbolic_names: Vec<String> = Vec::new();
    {
        let mut note = |e: &AffineExpr, loop_vars: &[&str]| {
            for v in e.vars() {
                if !loop_vars.contains(&v) && !symbolic_names.iter().any(|s| s == v) {
                    symbolic_names.push(v.to_owned());
                }
            }
        };
        for acc in [a, b] {
            let loop_vars: Vec<&str> = acc.loops.iter().map(|l| l.var.as_str()).collect();
            for s in &acc.subscripts {
                match s {
                    Subscript::Affine(e) => note(e, &loop_vars),
                    Subscript::NonAffine => return Err(BuildError::NonAffine),
                }
            }
            for l in &acc.loops {
                for bnd in [&l.lower, &l.upper] {
                    if let Bound::Affine(e) = bnd {
                        note(e, &loop_vars);
                    }
                }
            }
        }
        symbolic_names.sort();
    }
    if !allow_symbolics && !symbolic_names.is_empty() {
        return Err(BuildError::SymbolicDisabled);
    }

    // Structural variable order.
    let extra_a = a.loops.len() - common;
    let extra_b = b.loops.len() - common;
    let mut vars = Vec::new();
    for k in 0..common {
        vars.push(XVar::CommonA(k));
    }
    for k in 0..common {
        vars.push(XVar::CommonB(k));
    }
    for k in 0..extra_a {
        vars.push(XVar::ExtraA(k));
    }
    for k in 0..extra_b {
        vars.push(XVar::ExtraB(k));
    }
    for s in &symbolic_names {
        vars.push(XVar::Symbolic(s.clone()));
    }
    let num_vars = vars.len();

    // Per-side name → variable index maps (innermost shadowing outermost).
    let mut map_a: BTreeMap<&str, usize> = BTreeMap::new();
    for (k, l) in a.loops.iter().enumerate() {
        let idx = if k < common {
            k
        } else {
            2 * common + (k - common)
        };
        map_a.insert(l.var.as_str(), idx);
    }
    let mut map_b: BTreeMap<&str, usize> = BTreeMap::new();
    for (k, l) in b.loops.iter().enumerate() {
        let idx = if k < common {
            common + k
        } else {
            2 * common + extra_a + (k - common)
        };
        map_b.insert(l.var.as_str(), idx);
    }
    let sym_map: BTreeMap<&str, usize> = symbolic_names
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_str(), 2 * common + extra_a + extra_b + i))
        .collect();

    // Equalities: f_d(i) − f′_d(i′) = 0 per dimension.
    let mut eq_coeffs = Vec::new();
    let mut eq_rhs = Vec::new();
    for (sa, sb) in a.subscripts.iter().zip(&b.subscripts) {
        let ea = sa.as_affine().ok_or(BuildError::NonAffine)?;
        let eb = sb.as_affine().ok_or(BuildError::NonAffine)?;
        let (row_a, ca) = map_expr(ea, &map_a, &sym_map, num_vars)?;
        let (row_b, cb) = map_expr(eb, &map_b, &sym_map, num_vars)?;
        let row: Vec<i64> = row_a.iter().zip(&row_b).map(|(x, y)| x - y).collect();
        eq_coeffs.push(row);
        eq_rhs.push(cb - ca);
    }

    // Bounds: L ≤ i and i ≤ U for every loop instance on each side.
    let mut bounds = Vec::new();
    let mut add_bounds = |acc: &Access, map: &BTreeMap<&str, usize>| -> Result<(), BuildError> {
        for (k, l) in acc.loops.iter().enumerate() {
            let var_idx = map[l.var.as_str()];
            let _ = k;
            if let Bound::Affine(lo) = &l.lower {
                // L(x) ≤ i  ⇔  L_coeffs·x − i ≤ −L_const
                let (mut row, c) = map_expr(lo, map, &sym_map, num_vars)?;
                row[var_idx] -= 1;
                bounds.push(Constraint::new(row, -c));
            }
            if let Bound::Affine(up) = &l.upper {
                // i ≤ U(x)  ⇔  i − U_coeffs·x ≤ U_const
                let (urow, c) = map_expr(up, map, &sym_map, num_vars)?;
                let mut row: Vec<i64> = urow.iter().map(|v| -v).collect();
                row[var_idx] += 1;
                bounds.push(Constraint::new(row, c));
            }
        }
        Ok(())
    };
    add_bounds(a, &map_a)?;
    add_bounds(b, &map_b)?;

    Ok(DependenceProblem {
        vars,
        eq_coeffs,
        eq_rhs,
        bounds,
        num_common: common,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    fn problem_for(src: &str) -> DependenceProblem {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        assert_eq!(pairs.len(), 1, "expected exactly one pair");
        build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap()
    }

    #[test]
    fn paper_first_loop() {
        // a[i] = a[i+10]: i − i′ = 10, bounds 1..10 each side.
        let p = problem_for("for i = 1 to 10 { a[i] = a[i + 10] + 3; }");
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.eq_coeffs, vec![vec![1, -1]]);
        assert_eq!(p.eq_rhs, vec![10]);
        assert_eq!(p.bounds.len(), 4);
        assert_eq!(p.num_common, 1);
        // (i, i') = (11, 1) solves the equality but violates bounds.
        assert!(!p.is_witness(&[11, 1]));
    }

    #[test]
    fn second_paper_loop_has_witness() {
        // a[i+1] = a[i]: i + 1 = i′ ⇒ i − i′ = −1.
        let p = problem_for("for i = 1 to 10 { a[i + 1] = a[i] + 3; }");
        assert_eq!(p.eq_rhs, vec![-1]);
        assert!(p.is_witness(&[1, 2]));
        assert!(!p.is_witness(&[10, 11])); // i' out of bounds
    }

    #[test]
    fn coupled_subscripts() {
        // a[i1][i2] = a[i2+10][i1+9]
        let p = problem_for(
            "for i1 = 1 to 10 { for i2 = 1 to 10 {
                a[i1][i2] = a[i2 + 10][i1 + 9];
            } }",
        );
        assert_eq!(p.num_vars(), 4); // i1, i2, i1', i2'
        assert_eq!(p.eq_coeffs.len(), 2);
        // dim 0: i1 − i2′ = 10
        assert_eq!(p.eq_coeffs[0], vec![1, 0, 0, -1]);
        assert_eq!(p.eq_rhs[0], 10);
        // dim 1: i2 − i1′ = 9
        assert_eq!(p.eq_coeffs[1], vec![0, 1, -1, 0]);
        assert_eq!(p.eq_rhs[1], 9);
    }

    #[test]
    fn symbolic_constant_shared() {
        let p = problem_for("read(n); for i = 1 to 10 { a[i + n] = a[i + 2 * n + 1]; }");
        assert_eq!(p.num_vars(), 3);
        assert!(p.has_symbolics());
        // i + n = i' + 2n + 1  ⇒  i − i′ − n = 1
        assert_eq!(p.eq_coeffs, vec![vec![1, -1, -1]]);
        assert_eq!(p.eq_rhs, vec![1]);
    }

    #[test]
    fn symbolic_disabled_errors() {
        let src = "read(n); for i = 1 to 10 { a[i + n] = a[i]; }";
        let prog = parse_program(src).unwrap();
        let set = extract_accesses(&prog);
        let pairs = reference_pairs(&set, false);
        let err = build_problem(pairs[0].a, pairs[0].b, pairs[0].common, false);
        assert_eq!(err.unwrap_err(), BuildError::SymbolicDisabled);
    }

    #[test]
    fn symbolic_bound_counts_as_symbolic() {
        let src = "for i = 1 to n { a[i] = a[i + 1]; }";
        let prog = parse_program(src).unwrap();
        let set = extract_accesses(&prog);
        let pairs = reference_pairs(&set, false);
        let err = build_problem(pairs[0].a, pairs[0].b, pairs[0].common, false);
        assert_eq!(err.unwrap_err(), BuildError::SymbolicDisabled);
        let ok = build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap();
        assert!(ok.has_symbolics());
    }

    #[test]
    fn triangular_bounds_reference_outer_var() {
        let p = problem_for("for i = 1 to 10 { for j = i to 10 { a[i][j] = a[i - 1][j]; } }");
        // j's lower bound i ≤ j: row has +1 on i and −1 on j.
        let idx_i = p.var_index(&XVar::CommonA(0)).unwrap();
        let idx_j = p.var_index(&XVar::CommonA(1)).unwrap();
        let tri = p
            .bounds
            .iter()
            .find(|c| c.coeffs[idx_i] == 1 && c.coeffs[idx_j] == -1)
            .expect("triangular bound present");
        assert_eq!(tri.rhs, 0);
    }

    #[test]
    fn constant_compare_cases() {
        let prog = parse_program("for i = 1 to 10 { a[3] = a[4]; b[5] = b[5]; }").unwrap();
        let set = extract_accesses(&prog);
        let pairs = reference_pairs(&set, false);
        let pa = pairs.iter().find(|p| p.a.array == "a").unwrap();
        let pb = pairs.iter().find(|p| p.a.array == "b").unwrap();
        assert_eq!(constant_compare(pa.a, pa.b), Some(false));
        assert_eq!(constant_compare(pb.a, pb.b), Some(true));
        let prog2 = parse_program("for i = 1 to 10 { c[i] = c[3]; }").unwrap();
        let set2 = extract_accesses(&prog2);
        let pairs2 = reference_pairs(&set2, false);
        assert_eq!(constant_compare(pairs2[0].a, pairs2[0].b), None);
    }

    #[test]
    fn sibling_loops_no_common() {
        let src = "for i = 1 to 10 { a[i] = 1; } for j = 1 to 5 { a[j + 20] = 2; }";
        let prog = parse_program(src).unwrap();
        let set = extract_accesses(&prog);
        let pairs = reference_pairs(&set, false);
        assert_eq!(pairs.len(), 1);
        let p = build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap();
        assert_eq!(p.num_common, 0);
        assert_eq!(p.num_vars(), 2); // one ExtraA, one ExtraB
        assert_eq!(p.vars[0], XVar::ExtraA(0));
        assert_eq!(p.vars[1], XVar::ExtraB(0));
    }
}
