//! Result types: answers, resolving tests, direction and distance vectors.

use std::fmt;

/// The four cascaded tests, in the cost order the paper applies them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TestKind {
    /// Single Variable Per Constraint test.
    Svpc,
    /// Acyclic test.
    Acyclic,
    /// Simple Loop Residue test (exact restricted form).
    LoopResidue,
    /// Fourier–Motzkin backup.
    FourierMotzkin,
}

impl TestKind {
    /// All tests in cascade order.
    pub const ALL: [TestKind; 4] = [
        TestKind::Svpc,
        TestKind::Acyclic,
        TestKind::LoopResidue,
        TestKind::FourierMotzkin,
    ];
}

impl fmt::Display for TestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TestKind::Svpc => "SVPC",
            TestKind::Acyclic => "Acyclic",
            TestKind::LoopResidue => "Loop Residue",
            TestKind::FourierMotzkin => "Fourier-Motzkin",
        };
        f.write_str(s)
    }
}

/// What resolved a dependence question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolvedBy {
    /// Both references had constant subscripts: compared directly, no
    /// dependence testing (the paper's "Constant" column).
    Constant,
    /// The extended GCD test proved independence from the equality system
    /// alone (the "GCD" column).
    Gcd,
    /// One of the cascaded tests on the reduced inequality system.
    Test(TestKind),
    /// No test applied (non-affine subscripts, arithmetic overflow, or
    /// symbolic analysis disabled): dependence is assumed.
    Assumed,
}

impl fmt::Display for ResolvedBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolvedBy::Constant => f.write_str("constant"),
            ResolvedBy::Gcd => f.write_str("GCD"),
            ResolvedBy::Test(t) => write!(f, "{t}"),
            ResolvedBy::Assumed => f.write_str("assumed"),
        }
    }
}

/// The answer to "can these two references touch the same location?"
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// Provably no common location: the loop can be parallelized with
    /// respect to this pair.
    Independent,
    /// Provably dependent; carries a witness assignment of the problem
    /// variables (loop indices of both references, then symbolics) when
    /// one was constructed.
    Dependent(Option<Vec<i64>>),
    /// The tests could not decide; dependence is assumed (sound, inexact).
    Unknown,
}

impl Answer {
    /// Whether the answer is a definitive "independent".
    #[must_use]
    pub fn is_independent(&self) -> bool {
        matches!(self, Answer::Independent)
    }

    /// Whether the answer is a definitive "dependent".
    #[must_use]
    pub fn is_dependent(&self) -> bool {
        matches!(self, Answer::Dependent(_))
    }

    /// Whether the compiler must treat the pair as dependent (definitive
    /// or assumed).
    #[must_use]
    pub fn must_assume_dependent(&self) -> bool {
        !self.is_independent()
    }

    /// Whether the answer is exact (not an assumption).
    #[must_use]
    pub fn is_exact(&self) -> bool {
        !matches!(self, Answer::Unknown)
    }
}

/// The outcome of a dependence query on one pair of references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependenceResult {
    /// The verdict.
    pub answer: Answer,
    /// What produced the verdict.
    pub resolved_by: ResolvedBy,
}

impl DependenceResult {
    /// Shorthand for `self.answer.is_independent()`.
    #[must_use]
    pub fn is_independent(&self) -> bool {
        self.answer.is_independent()
    }
}

/// One component of a direction vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// `<` — the first reference's iteration precedes the second's.
    Lt,
    /// `=` — same iteration at this level.
    Eq,
    /// `>` — the first reference's iteration follows the second's.
    Gt,
    /// `*` — any direction (unrefined or proven irrelevant).
    Any,
}

impl Direction {
    /// The three refinable directions, in the order the hierarchy tries
    /// them.
    pub const REFINED: [Direction; 3] = [Direction::Lt, Direction::Eq, Direction::Gt];
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::Lt => "<",
            Direction::Eq => "=",
            Direction::Gt => ">",
            Direction::Any => "*",
        };
        f.write_str(s)
    }
}

/// A direction vector: one [`Direction`] per common loop, outermost first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirectionVector(pub Vec<Direction>);

impl DirectionVector {
    /// The all-`*` vector of length `n`.
    #[must_use]
    pub fn any(n: usize) -> DirectionVector {
        DirectionVector(vec![Direction::Any; n])
    }

    /// Whether every component is `=` — a loop-independent (same
    /// iteration) dependence.
    #[must_use]
    pub fn is_all_eq(&self) -> bool {
        self.0.iter().all(|&d| d == Direction::Eq)
    }

    /// Whether the dependence is carried by loop `level` (0-based,
    /// outermost first): all outer components are `=` and this one is `<`
    /// or `>`.
    #[must_use]
    pub fn carried_by(&self, level: usize) -> bool {
        self.0.len() > level
            && self.0[..level].iter().all(|&d| d == Direction::Eq)
            && matches!(self.0[level], Direction::Lt | Direction::Gt)
    }
}

impl fmt::Display for DirectionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// Classification of a dependence by the access kinds of its endpoints,
/// oriented source → sink (the source executes first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependenceKind {
    /// Write then read (true/RAW dependence).
    Flow,
    /// Read then write (WAR).
    Anti,
    /// Write then write (WAW).
    Output,
    /// Read then read (RAR; only reported when input dependences are
    /// requested).
    Input,
}

impl DependenceKind {
    /// Classifies by the two endpoints' access kinds, in source → sink
    /// order.
    #[must_use]
    pub fn classify(source_is_write: bool, sink_is_write: bool) -> DependenceKind {
        match (source_is_write, sink_is_write) {
            (true, false) => DependenceKind::Flow,
            (false, true) => DependenceKind::Anti,
            (true, true) => DependenceKind::Output,
            (false, false) => DependenceKind::Input,
        }
    }
}

impl fmt::Display for DependenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DependenceKind::Flow => "flow",
            DependenceKind::Anti => "anti",
            DependenceKind::Output => "output",
            DependenceKind::Input => "input",
        };
        f.write_str(s)
    }
}

/// A distance vector: the constant `i′ − i` per common loop when known.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DistanceVector(pub Vec<Option<i64>>);

impl fmt::Display for DistanceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match d {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "?")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_vector_display() {
        let v = DirectionVector(vec![Direction::Lt, Direction::Eq, Direction::Any]);
        assert_eq!(v.to_string(), "(<, =, *)");
    }

    #[test]
    fn carried_by_levels() {
        let v = DirectionVector(vec![Direction::Eq, Direction::Lt, Direction::Any]);
        assert!(!v.carried_by(0));
        assert!(v.carried_by(1));
        assert!(!v.carried_by(2));
        assert!(DirectionVector(vec![Direction::Eq, Direction::Eq]).is_all_eq());
    }

    #[test]
    fn answer_predicates() {
        assert!(Answer::Independent.is_independent());
        assert!(Answer::Dependent(None).is_dependent());
        assert!(Answer::Dependent(None).is_exact());
        assert!(!Answer::Unknown.is_exact());
        assert!(Answer::Unknown.must_assume_dependent());
    }

    #[test]
    fn distance_vector_display() {
        let d = DistanceVector(vec![Some(2), None]);
        assert_eq!(d.to_string(), "(2, ?)");
    }

    #[test]
    fn test_kind_display_ordering() {
        let names: Vec<String> = TestKind::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(
            names,
            ["SVPC", "Acyclic", "Loop Residue", "Fourier-Motzkin"]
        );
    }
}
