//! Statistics counters backing the paper's evaluation tables.

use std::fmt;
use std::ops::Sub;

use crate::result::TestKind;

impl TestKind {
    /// Dense index for counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            TestKind::Svpc => 0,
            TestKind::Acyclic => 1,
            TestKind::LoopResidue => 2,
            TestKind::FourierMotzkin => 3,
        }
    }
}

/// Per-test invocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TestCounts {
    /// Number of cascade resolutions credited to each test
    /// (indexed by [`TestKind::index`]).
    pub calls: [u64; 4],
    /// How many of those returned "independent".
    pub independent: [u64; 4],
}

impl TestCounts {
    /// Records one invocation.
    pub fn record(&mut self, kind: TestKind, was_independent: bool) {
        self.calls[kind.index()] += 1;
        if was_independent {
            self.independent[kind.index()] += 1;
        }
    }

    /// Calls credited to `kind`.
    #[must_use]
    pub fn calls_for(&self, kind: TestKind) -> u64 {
        self.calls[kind.index()]
    }

    /// Total calls across all tests.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// Adds another counter set into this one.
    pub fn add(&mut self, other: &TestCounts) {
        for i in 0..4 {
            self.calls[i] += other.calls[i];
            self.independent[i] += other.independent[i];
        }
    }
}

impl Sub for TestCounts {
    type Output = TestCounts;
    fn sub(self, rhs: TestCounts) -> TestCounts {
        let mut out = TestCounts::default();
        for i in 0..4 {
            out.calls[i] = self.calls[i] - rhs.calls[i];
            out.independent[i] = self.independent[i] - rhs.independent[i];
        }
        out
    }
}

impl fmt::Display for TestCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, kind) in TestKind::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{kind}: {}", self.calls[i])?;
        }
        Ok(())
    }
}

/// Whole-analysis statistics: the raw material of Tables 1–5 and 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisStats {
    /// Reference pairs examined.
    pub pairs: u64,
    /// Pairs with all-constant subscripts (no dependence testing).
    pub constant: u64,
    /// Pairs proven independent by the extended GCD test alone.
    pub gcd_independent: u64,
    /// Pairs where no test applied (non-affine, overflow, symbolic
    /// disabled): dependence assumed.
    pub assumed: u64,
    /// The test resolving each pair's base (`*`-vector) query — Table 1
    /// semantics.
    pub base_tests: TestCounts,
    /// Every cascade invocation made while refining direction vectors —
    /// Table 4/5 semantics.
    pub direction_tests: TestCounts,
    /// Queries against the full-result memo table.
    pub memo_queries: u64,
    /// Hits in the full-result memo table.
    pub memo_hits: u64,
    /// Queries against the no-bounds (GCD) memo table.
    pub gcd_memo_queries: u64,
    /// Hits in the no-bounds memo table.
    pub gcd_memo_hits: u64,
    /// Pairs whose final answer was independent.
    pub independent_pairs: u64,
    /// Pairs whose final answer was (or had to be assumed) dependent.
    pub dependent_pairs: u64,
    /// Total direction vectors reported.
    pub direction_vectors_found: u64,
}

impl AnalysisStats {
    /// Statistics accumulated since `earlier` (for per-program deltas on a
    /// long-lived analyzer).
    #[must_use]
    pub fn since(&self, earlier: &AnalysisStats) -> AnalysisStats {
        AnalysisStats {
            pairs: self.pairs - earlier.pairs,
            constant: self.constant - earlier.constant,
            gcd_independent: self.gcd_independent - earlier.gcd_independent,
            assumed: self.assumed - earlier.assumed,
            base_tests: self.base_tests - earlier.base_tests,
            direction_tests: self.direction_tests - earlier.direction_tests,
            memo_queries: self.memo_queries - earlier.memo_queries,
            memo_hits: self.memo_hits - earlier.memo_hits,
            gcd_memo_queries: self.gcd_memo_queries - earlier.gcd_memo_queries,
            gcd_memo_hits: self.gcd_memo_hits - earlier.gcd_memo_hits,
            independent_pairs: self.independent_pairs - earlier.independent_pairs,
            dependent_pairs: self.dependent_pairs - earlier.dependent_pairs,
            direction_vectors_found: self.direction_vectors_found - earlier.direction_vectors_found,
        }
    }

    /// Adds another accumulator into this one (for summing per-worker or
    /// per-program partials into batch totals).
    pub fn add(&mut self, other: &AnalysisStats) {
        self.pairs += other.pairs;
        self.constant += other.constant;
        self.gcd_independent += other.gcd_independent;
        self.assumed += other.assumed;
        self.base_tests.add(&other.base_tests);
        self.direction_tests.add(&other.direction_tests);
        self.memo_queries += other.memo_queries;
        self.memo_hits += other.memo_hits;
        self.gcd_memo_queries += other.gcd_memo_queries;
        self.gcd_memo_hits += other.gcd_memo_hits;
        self.independent_pairs += other.independent_pairs;
        self.dependent_pairs += other.dependent_pairs;
        self.direction_vectors_found += other.direction_vectors_found;
    }

    /// Fraction of memo queries that were unique (missed), as a
    /// percentage — the paper's Table 2 metric.
    #[must_use]
    pub fn unique_case_percentage(&self) -> f64 {
        if self.memo_queries == 0 {
            return 100.0;
        }
        let misses = self.memo_queries - self.memo_hits;
        100.0 * misses as f64 / self.memo_queries as f64
    }
}

/// Per-test wall-time accumulators, collected by a
/// [`StatsProbe`](crate::pipeline::StatsProbe).
///
/// Kept *separate* from [`AnalysisStats`] on purpose: `AnalysisStats` is
/// compared bit-for-bit between the serial analyzer and the parallel
/// engine, and wall times are inherently non-deterministic. Call counts
/// here may exceed [`AnalysisStats::base_tests`] because every pipeline
/// stage that *runs* is counted, not only the stage credited with the
/// resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// Stage executions per test (indexed by [`TestKind::index`]).
    pub calls: [u64; 4],
    /// Accumulated wall time per test, in nanoseconds.
    pub nanos: [u64; 4],
    /// Extended-GCD phase executions.
    pub gcd_calls: u64,
    /// Accumulated extended-GCD wall time, in nanoseconds.
    pub gcd_nanos: u64,
}

impl StageTimings {
    /// Records one stage execution.
    pub fn record(&mut self, kind: TestKind, nanos: u64) {
        self.calls[kind.index()] += 1;
        self.nanos[kind.index()] += nanos;
    }

    /// Records one extended-GCD phase execution.
    pub fn record_gcd(&mut self, nanos: u64) {
        self.gcd_calls += 1;
        self.gcd_nanos += nanos;
    }

    /// Stage executions recorded for `kind`.
    #[must_use]
    pub fn calls_for(&self, kind: TestKind) -> u64 {
        self.calls[kind.index()]
    }

    /// Wall time recorded for `kind`, in nanoseconds.
    #[must_use]
    pub fn nanos_for(&self, kind: TestKind) -> u64 {
        self.nanos[kind.index()]
    }

    /// Mean nanoseconds per execution of `kind` (0 when it never ran).
    #[must_use]
    pub fn mean_nanos(&self, kind: TestKind) -> f64 {
        let calls = self.calls_for(kind);
        if calls == 0 {
            return 0.0;
        }
        self.nanos_for(kind) as f64 / calls as f64
    }

    /// Total stage executions across all tests.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// Adds another accumulator into this one. Aggregation order is the
    /// caller's responsibility; the engine sums per-leader timings in job
    /// enumeration order so the aggregate is schedule-independent in
    /// structure.
    pub fn add(&mut self, other: &StageTimings) {
        for i in 0..4 {
            self.calls[i] += other.calls[i];
            self.nanos[i] += other.nanos[i];
        }
        self.gcd_calls += other.gcd_calls;
        self.gcd_nanos += other.gcd_nanos;
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gcd: {} calls {:.1}ms",
            self.gcd_calls,
            self.gcd_nanos as f64 / 1e6
        )?;
        for (i, kind) in TestKind::ALL.iter().enumerate() {
            write!(
                f,
                " | {kind}: {} calls {:.1}ms",
                self.calls[i],
                self.nanos[i] as f64 / 1e6
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timings_record_and_add() {
        let mut t = StageTimings::default();
        t.record(TestKind::Svpc, 100);
        t.record(TestKind::Svpc, 50);
        t.record_gcd(30);
        let mut u = StageTimings::default();
        u.record(TestKind::FourierMotzkin, 1000);
        t.add(&u);
        assert_eq!(t.calls_for(TestKind::Svpc), 2);
        assert_eq!(t.nanos_for(TestKind::Svpc), 150);
        assert!((t.mean_nanos(TestKind::Svpc) - 75.0).abs() < 1e-9);
        assert_eq!(t.mean_nanos(TestKind::Acyclic), 0.0);
        assert_eq!(t.calls_for(TestKind::FourierMotzkin), 1);
        assert_eq!(t.gcd_calls, 1);
        assert_eq!(t.total_calls(), 3);
        let shown = t.to_string();
        assert!(shown.contains("SVPC: 2 calls"), "{shown}");
        assert!(shown.contains("gcd: 1 calls"), "{shown}");
    }

    #[test]
    fn record_and_total() {
        let mut c = TestCounts::default();
        c.record(TestKind::Svpc, true);
        c.record(TestKind::Svpc, false);
        c.record(TestKind::FourierMotzkin, true);
        assert_eq!(c.calls_for(TestKind::Svpc), 2);
        assert_eq!(c.independent[TestKind::Svpc.index()], 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn since_subtracts() {
        let a = AnalysisStats {
            pairs: 10,
            memo_queries: 8,
            memo_hits: 6,
            ..AnalysisStats::default()
        };
        let mut b = a;
        b.pairs = 25;
        b.memo_queries = 20;
        b.memo_hits = 10;
        let d = b.since(&a);
        assert_eq!(d.pairs, 15);
        assert_eq!(d.memo_queries, 12);
        assert_eq!(d.memo_hits, 4);
    }

    #[test]
    fn unique_percentage() {
        let mut s = AnalysisStats::default();
        assert_eq!(s.unique_case_percentage(), 100.0);
        s.memo_queries = 100;
        s.memo_hits = 94;
        assert!((s.unique_case_percentage() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn indices_are_dense_and_distinct() {
        let idx: Vec<usize> = TestKind::ALL.iter().map(|k| k.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }
}
