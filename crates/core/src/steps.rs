//! Single-pair analysis steps, factored out of the serial analyzer.
//!
//! [`DependenceAnalyzer`](crate::analyzer::DependenceAnalyzer) and the
//! batch engine (`dda-engine`) must produce bit-identical reports, so the
//! per-pair logic lives here as pure functions over explicit inputs: the
//! serial analyzer threads its own memo tables and statistics through
//! them, while the engine replays the same steps across worker threads
//! and reconstructs the statistics in enumeration order.
//!
//! Every function is deterministic: same inputs, same output, no hidden
//! state. That property is what makes the engine's leader-election
//! parallelism sound — any thread may compute a key's result and every
//! other pair with that key can reuse it verbatim.

use dda_ir::Access;

use std::time::Instant;

use crate::analyzer::{AnalyzerConfig, CachedOutcome, MemoMode, PairReport};
use crate::cascade::CascadeOutcome;
use crate::certificate::Certificate;
use crate::direction::{analyze_directions, DirectionAnalysis, DirectionConfig};
use crate::gcd::{reduce_with_lattice, Lattice};
use crate::memo::{bounds_key, CanonicalKey};
use crate::pipeline::{run_pipeline_collect, NullProbe, Probe, TraceEvent};
use crate::problem::{build_problem, constant_compare, DependenceProblem};
use crate::result::{
    Answer, DependenceResult, Direction, DirectionVector, DistanceVector, ResolvedBy, TestKind,
};
use crate::stats::{AnalysisStats, TestCounts};
use crate::symmetry;

/// How a pair classifies before any dependence testing.
#[derive(Debug, Clone)]
pub enum Classified {
    /// All subscripts constant: the verdict is a comparison.
    Constant {
        /// Whether the constant subscripts coincide (dependent).
        dependent: bool,
    },
    /// The integer system could not be built (non-affine subscript, or a
    /// symbolic term with symbolic support off): dependence is assumed.
    Unbuildable,
    /// A well-formed integer dependence problem, ready for testing.
    Problem(Box<DependenceProblem>),
}

impl Classified {
    /// The problem, when one was built.
    #[must_use]
    pub fn problem(&self) -> Option<&DependenceProblem> {
        match self {
            Classified::Problem(p) => Some(p),
            _ => None,
        }
    }
}

/// Classifies one pair: constant short-circuit, then system construction.
#[must_use]
pub fn classify_pair(a: &Access, b: &Access, common: usize, symbolic: bool) -> Classified {
    if let Some(dependent) = constant_compare(a, b) {
        return Classified::Constant { dependent };
    }
    match build_problem(a, b, common, symbolic) {
        Ok(p) => Classified::Problem(Box::new(p)),
        Err(_) => Classified::Unbuildable,
    }
}

/// The blank report every step fills in: identity fields set, verdict
/// still "assumed dependent".
#[must_use]
pub fn pair_template(a: &Access, b: &Access, common: usize) -> PairReport {
    PairReport {
        array: a.array.clone(),
        a_access: a.id,
        b_access: b.id,
        common_loop_ids: a.loops.iter().take(common).map(|l| l.id).collect(),
        result: DependenceResult {
            answer: Answer::Unknown,
            resolved_by: ResolvedBy::Assumed,
        },
        witness: None,
        direction_vectors: Vec::new(),
        distance: DistanceVector(vec![None; common]),
        from_cache: false,
        certificate: Certificate::Conservative,
    }
}

/// Finishes a constant-subscript pair.
#[must_use]
pub fn constant_report(
    mut template: PairReport,
    dependent: bool,
    compute_directions: bool,
) -> PairReport {
    let common = template.distance.0.len();
    template.result = DependenceResult {
        answer: if dependent {
            Answer::Dependent(None)
        } else {
            Answer::Independent
        },
        resolved_by: ResolvedBy::Constant,
    };
    if dependent && compute_directions {
        template.direction_vectors = vec![DirectionVector::any(common)];
    }
    template.certificate = if dependent {
        Certificate::ConstantsEqual
    } else {
        Certificate::ConstantsDiffer
    };
    template
}

/// Finishes an unbuildable pair (assumed dependent under any vector).
#[must_use]
pub fn assumed_report(mut template: PairReport, compute_directions: bool) -> PairReport {
    let common = template.distance.0.len();
    if compute_directions {
        template.direction_vectors = vec![DirectionVector::any(common)];
    }
    template
}

/// Finishes a pair the extended GCD test proved independent.
/// `refutation` is the divisibility witness from
/// [`refute_equalities`](crate::gcd::refute_equalities); `None` degrades
/// the certificate to [`Certificate::Unverified`] without touching the
/// verdict.
#[must_use]
pub fn gcd_independent_report(
    mut template: PairReport,
    refutation: Option<(Vec<i64>, i64)>,
) -> PairReport {
    template.result = DependenceResult {
        answer: Answer::Independent,
        resolved_by: ResolvedBy::Gcd,
    };
    template.certificate = match refutation {
        Some((numer, denom)) => Certificate::GcdRefutation { numer, denom },
        None => Certificate::Unverified,
    };
    template
}

/// The full-result memo key for a problem, or `None` when memoization is
/// off. With symmetric canonicalization enabled, a pair and its mirror
/// share the lexicographically smaller key; the returned flag records
/// whether *this* problem is the mirror of what the table stores.
#[must_use]
pub fn full_key(
    config: &AnalyzerConfig,
    problem: &DependenceProblem,
) -> Option<(CanonicalKey, bool)> {
    if config.memo == MemoMode::Off {
        return None;
    }
    let improved = config.memo == MemoMode::Improved;
    let own = bounds_key(problem, improved);
    if config.memo_symmetry && symmetry::swappable(problem) {
        // A mirror that overflows to build just skips canonicalization.
        if let Some(mirrored) = symmetry::swap_problem(problem) {
            let mirror = bounds_key(&mirrored, improved);
            if mirror.key < own.key {
                return Some((mirror, true));
            }
        }
    }
    Some((own, false))
}

/// Restricts full-length vectors to the kept levels, deduplicating.
fn restrict_vectors(vectors: &[DirectionVector], kept_levels: &[usize]) -> Vec<DirectionVector> {
    let mut out: Vec<DirectionVector> = Vec::new();
    for v in vectors {
        let restricted = DirectionVector(kept_levels.iter().map(|&k| v.0[k]).collect());
        if !out.contains(&restricted) {
            out.push(restricted);
        }
    }
    out
}

/// Expands canonical vectors back to `common` levels, filling dropped
/// (unused) levels with `*`.
fn expand_vectors(
    vectors: &[DirectionVector],
    kept_levels: &[usize],
    common: usize,
) -> Vec<DirectionVector> {
    vectors
        .iter()
        .map(|v| {
            let mut full = vec![Direction::Any; common];
            for (ci, &k) in kept_levels.iter().enumerate() {
                full[k] = v.0[ci];
            }
            DirectionVector(full)
        })
        .collect()
}

fn restrict_distance(d: &DistanceVector, kept_levels: &[usize]) -> DistanceVector {
    DistanceVector(kept_levels.iter().map(|&k| d.0[k]).collect())
}

fn expand_distance(d: &DistanceVector, kept_levels: &[usize], common: usize) -> DistanceVector {
    let mut full = vec![None; common];
    for (ci, &k) in kept_levels.iter().enumerate() {
        full[k] = d.0[ci];
    }
    DistanceVector(full)
}

/// Rehydrates a full-memo hit into a concrete report for this pair.
#[must_use]
pub fn rehydrate_hit(
    memo: MemoMode,
    cached: CachedOutcome,
    ck: &CanonicalKey,
    flipped: bool,
    mut template: PairReport,
) -> PairReport {
    let common = template.distance.0.len();
    template.result = cached.result;
    // Witnesses only transfer when the problems are literally identical;
    // under the improved scheme (or a mirror hit) they may not be.
    template.witness = if memo == MemoMode::Improved || flipped {
        None
    } else {
        cached.witness
    };
    let (vectors, distance) = if flipped {
        (
            symmetry::flip_vectors(&cached.direction_vectors),
            symmetry::flip_distance(&cached.distance),
        )
    } else {
        (cached.direction_vectors, cached.distance)
    };
    template.direction_vectors = expand_vectors(&vectors, &ck.kept_levels, common);
    template.distance = expand_distance(&distance, &ck.kept_levels, common);
    template.from_cache = true;
    // Certificates speak about one concrete problem. Only a Simple-mode,
    // unflipped hit is guaranteed to be the same problem (same equations,
    // same bound multiset), so only then does the evidence transfer; an
    // Improved or mirrored hit keeps the verdict but degrades checkable
    // evidence to Unverified.
    template.certificate = if memo == MemoMode::Simple && !flipped {
        cached.certificate
    } else if cached.certificate == Certificate::Conservative {
        Certificate::Conservative
    } else {
        Certificate::Unverified
    };
    template
}

/// What to insert into the full-result table for a freshly computed
/// report: restricted to canonical space, mirrored when the key was.
#[must_use]
pub fn canonical_outcome(report: &PairReport, ck: &CanonicalKey, flipped: bool) -> CachedOutcome {
    let (vectors, distance) = if flipped {
        (
            symmetry::flip_vectors(&report.direction_vectors),
            symmetry::flip_distance(&report.distance),
        )
    } else {
        (report.direction_vectors.clone(), report.distance.clone())
    };
    CachedOutcome {
        result: report.result.clone(),
        witness: if flipped {
            None
        } else {
            report.witness.clone()
        },
        direction_vectors: restrict_vectors(&vectors, &ck.kept_levels),
        distance: restrict_distance(&distance, &ck.kept_levels),
        certificate: if flipped {
            // The stored verdict describes the mirror problem; this
            // pair's evidence does not.
            Certificate::Unverified
        } else {
            report.certificate.clone()
        },
    }
}

/// Statistics side-effects of [`analyze_reduced`], captured explicitly so
/// callers can attribute them wherever the pair lives (the serial
/// analyzer applies them immediately; the engine applies them to the
/// leader pair's program during in-order assembly).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReduceEffects {
    /// The lattice substitution overflowed: dependence assumed.
    pub assumed: bool,
    /// The base (`*`-vector) cascade resolution, when one ran.
    pub base_test: Option<(TestKind, bool)>,
    /// Cascade invocations made while refining direction vectors.
    pub direction_tests: TestCounts,
}

impl ReduceEffects {
    /// Folds these effects into an accumulator.
    pub fn apply_to(&self, stats: &mut AnalysisStats) {
        if self.assumed {
            stats.assumed += 1;
        }
        if let Some((kind, independent)) = self.base_test {
            stats.base_tests.record(kind, independent);
        }
        stats.direction_tests.add(&self.direction_tests);
    }
}

/// The compute path of a memo miss: reduce through the GCD lattice, run
/// the cascade, refine direction vectors. Pure; side-effects land in
/// `fx`.
#[must_use]
pub fn analyze_reduced(
    config: &AnalyzerConfig,
    problem: &DependenceProblem,
    lattice: &Lattice,
    report: PairReport,
    fx: &mut ReduceEffects,
) -> PairReport {
    analyze_reduced_probed(config, problem, lattice, report, fx, &mut NullProbe)
}

/// [`analyze_reduced`] with an explicit [`Probe`]. The probe observes the
/// lattice reduction, every pipeline stage of the base query, the
/// witness, and the direction refinement; it never changes the report.
#[must_use]
pub fn analyze_reduced_probed<P: Probe>(
    config: &AnalyzerConfig,
    problem: &DependenceProblem,
    lattice: &Lattice,
    mut report: PairReport,
    fx: &mut ReduceEffects,
    probe: &mut P,
) -> PairReport {
    let Some(reduced) = reduce_with_lattice(problem, lattice) else {
        fx.assumed = true;
        if P::ACTIVE {
            probe.record(TraceEvent::ReduceOverflow);
        }
        return report;
    };
    if P::ACTIVE {
        probe.record(TraceEvent::Reduced {
            free_vars: reduced.num_t(),
            system: reduced.system.clone(),
        });
    }

    // Base (star-vector) cascade.
    let (base, base_refutation): (CascadeOutcome, _) =
        run_pipeline_collect(&reduced.system, &config.pipeline, config.fm_limits, probe);
    fx.base_test = Some((base.used, base.answer.is_independent()));
    report.result = DependenceResult {
        answer: match &base.answer {
            Answer::Dependent(_) => Answer::Dependent(None),
            other => other.clone(),
        },
        resolved_by: ResolvedBy::Test(base.used),
    };
    if let Answer::Dependent(Some(t)) = &base.answer {
        report.witness = reduced.x_at(t);
        debug_assert!(
            report
                .witness
                .as_ref()
                .is_none_or(|w| problem.is_witness(w)),
            "cascade witness must satisfy the original problem"
        );
        if let Some(w) = &report.witness {
            report.certificate = Certificate::Witness { x: w.clone() };
        }
        if P::ACTIVE {
            if let Some(w) = &report.witness {
                probe.record(TraceEvent::Witness { x: w.clone() });
            }
        }
    }
    if base.answer.is_independent() {
        report.certificate = match base_refutation {
            Some(refutation) => Certificate::Refuted {
                particular: lattice.particular.clone(),
                basis: lattice.basis.clone(),
                refutation,
            },
            None => Certificate::Unverified,
        };
        return report;
    }

    // Direction vectors.
    if config.compute_directions {
        if P::ACTIVE {
            probe.record(TraceEvent::RefinementStarted);
        }
        let start = if P::ACTIVE {
            Some(Instant::now())
        } else {
            None
        };
        let mut counts = TestCounts::default();
        let DirectionAnalysis {
            vectors,
            distance,
            exact,
            tree,
        } = analyze_directions(
            problem,
            &reduced,
            DirectionConfig {
                prune_unused: config.prune_unused,
                prune_distance: config.prune_distance,
                separable: config.separable_directions,
                fm_limits: config.fm_limits,
                pipeline: config.pipeline,
            },
            &mut counts,
            probe,
        );
        fx.direction_tests.add(&counts);
        if P::ACTIVE {
            let nanos = start.map_or(0, |s| {
                u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            probe.record(TraceEvent::Directions {
                vectors: vectors.clone(),
                distance: distance.clone(),
                tests: counts.total(),
                exact,
                nanos,
            });
        }
        report.distance = distance;
        if vectors.is_empty() && exact {
            // The paper's implicit branch and bound: every direction
            // proved independent even though the `*` query could not.
            report.result.answer = Answer::Independent;
            report.certificate = match tree {
                Some(tree) => Certificate::DirectionsExhausted {
                    particular: lattice.particular.clone(),
                    basis: lattice.basis.clone(),
                    tree,
                },
                None => Certificate::Unverified,
            };
        } else {
            report.direction_vectors = vectors;
        }
    }
    report
}

/// Tallies a finished pair into the outcome counters.
pub fn note_outcome(stats: &mut AnalysisStats, report: &PairReport) {
    if report.result.is_independent() {
        stats.independent_pairs += 1;
    } else {
        stats.dependent_pairs += 1;
    }
    stats.direction_vectors_found += report.direction_vectors.len() as u64;
}
