//! The Single Variable Per Constraint (SVPC) test.
//!
//! Exact whenever every constraint involves at most one variable (Section
//! 3.2): each constraint is then just an upper or lower bound for one
//! variable, and the system is dependent iff every variable's range is
//! non-empty. This is a superset of the classic single-loop,
//! single-dimension exact test and — per the paper's measurements — handles
//! the overwhelming majority of real dependence queries.
//!
//! Even when some constraints have several variables, this pass still
//! absorbs every single-variable constraint into per-variable scalar
//! bounds, shrinking the system for the Acyclic and Loop Residue tests.

#![warn(clippy::arithmetic_side_effects)]

use dda_linalg::{num, SmallVec};

use crate::certificate::{Rule, Trail};
use crate::system::{Constraint, System, VarBounds};

/// Outcome of the SVPC pass.
// Boxing the large variant would allocate on the independence fast path,
// which is required to stay allocation-free (crates/core/tests/alloc.rs).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvpcOutcome {
    /// Some variable's range is empty, or a variable-free constraint is
    /// violated: the references are independent (exact).
    Infeasible,
    /// Every constraint had at most one variable and the ranges are all
    /// non-empty: dependent (exact), with a witness assignment.
    Complete {
        /// A satisfying assignment of the `t` variables.
        sample: Vec<i64>,
    },
    /// Multi-variable constraints remain; `bounds` holds the scalar ranges
    /// and `residual` the constraints SVPC could not absorb.
    Partial {
        /// Scalar bounds accumulated from single-variable constraints.
        bounds: VarBounds,
        /// The remaining multi-variable constraints (normalized).
        residual: Vec<Constraint>,
    },
}

/// Runs the SVPC pass over a system.
///
/// Constraints are gcd-normalized on the fly, so `2t ≤ 5` correctly bounds
/// `t ≤ 2`.
///
/// # Examples
///
/// The paper's Section 3.2 worked example (`a[i1][i2]` vs
/// `a[i2+10][i1+9]`) reduces to four single-variable constraints whose
/// ranges collapse to `11 ≤ t1 ≤ 10` — independent:
///
/// ```
/// use dda_core::system::{Constraint, System};
/// use dda_core::svpc::{svpc, SvpcOutcome};
///
/// let mut s = System::new(2);
/// s.push(Constraint::new(vec![-1, 0], -1)); // 1 ≤ t1
/// s.push(Constraint::new(vec![1, 0], 10));  // t1 ≤ 10
/// s.push(Constraint::new(vec![0, -1], -1)); // 1 ≤ t2
/// s.push(Constraint::new(vec![0, 1], 10));  // t2 ≤ 10
/// s.push(Constraint::new(vec![0, 1], 1));   // t2 + 9 ≤ 10
/// s.push(Constraint::new(vec![-1, 0], -11)); // 1 ≤ t1 - 10
/// assert_eq!(svpc(&s), SvpcOutcome::Infeasible);
/// ```
#[must_use]
pub fn svpc(system: &System) -> SvpcOutcome {
    let n = system.num_vars;
    let mut bounds = VarBounds::unbounded(n);
    let mut trail = Trail::for_rows(n, &system.constraints);
    match svpc_into(&mut bounds, &system.constraints, &mut trail) {
        SvpcStep::Infeasible => SvpcOutcome::Infeasible,
        SvpcStep::Done => {
            let sample = (0..n).map(|v| bounds.pick(v)).collect();
            SvpcOutcome::Complete { sample }
        }
        SvpcStep::Residual(residual) => SvpcOutcome::Partial { bounds, residual },
    }
}

/// Outcome of one absorption pass ([`svpc_into`]), relative to bounds the
/// caller already holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SvpcStep {
    /// The merged bounds are empty or a variable-free constraint is
    /// violated: independent (exact).
    Infeasible,
    /// Every constraint was absorbed and the merged bounds are non-empty:
    /// dependent (exact); pick a sample from the bounds.
    Done,
    /// Multi-variable constraints remain.
    Residual(Vec<Constraint>),
}

/// Absorbs every single-variable constraint of `constraints` into
/// `bounds`, the pipeline-stage form of [`svpc`].
///
/// A single-variable constraint whose integer tightening `⌊c/a⌋` / `⌈c/a⌉`
/// overflows `i64` is left in the residual untouched — exactness is
/// preserved and a later (checked) test decides.
///
/// `trail` must map each row of `constraints` to its arena step on entry;
/// on `Residual` exit it maps the residual rows instead, and absorbed
/// bounds have their producing steps recorded. On `Infeasible` the trail
/// is sealed (when accountable).
pub(crate) fn svpc_into(
    bounds: &mut VarBounds,
    constraints: &[Constraint],
    trail: &mut Trail,
) -> SvpcStep {
    let mut residual = Vec::new();
    let mut residual_steps: SmallVec<usize, 12> = SmallVec::new();
    for (i, c) in constraints.iter().enumerate() {
        let mut step = trail.row_step[i];
        let mut c = c.clone();
        let g = num::gcd_slice(&c.coeffs);
        c.normalize();
        if g > 1 {
            step = trail.push(Rule::Div { of: step, d: g });
        }
        if c.is_trivial() {
            if !c.trivially_satisfied() {
                trail.seal = Some(step);
                return SvpcStep::Infeasible;
            }
            continue;
        }
        if let Some(v) = c.single_var() {
            // Normalized single-variable rows have coefficient ±1, so the
            // row itself *is* the bound: `v ≤ q` or `−v ≤ −q`.
            let a = c.coeffs[v];
            let absorbed = if a > 0 {
                num::checked_div_floor(c.rhs, a).map(|q| {
                    let old = bounds.ub[v];
                    bounds.tighten_ub(v, q);
                    if bounds.ub[v] != old {
                        trail.ub_step[v] = Some(step);
                    }
                })
            } else {
                num::checked_div_ceil(c.rhs, a).map(|q| {
                    let old = bounds.lb[v];
                    bounds.tighten_lb(v, q);
                    if bounds.lb[v] != old {
                        trail.lb_step[v] = Some(step);
                    }
                })
            };
            if absorbed.is_none() {
                residual.push(c);
                residual_steps.push(step);
            }
        } else {
            residual.push(c);
            residual_steps.push(step);
        }
    }
    trail.row_step = residual_steps;

    if let Some(v) = first_empty_var(bounds) {
        match (trail.ub_step[v], trail.lb_step[v]) {
            // ub row `v ≤ u` plus lb row `−v ≤ −l` sums to `0 ≤ u − l < 0`.
            (Some(ub), Some(lb)) => {
                trail.seal = Some(trail.push(Rule::Comb {
                    a: ub,
                    ca: 1,
                    b: lb,
                    cb: 1,
                }));
            }
            _ => trail.ok = false,
        }
        return SvpcStep::Infeasible;
    }
    if residual.is_empty() {
        return SvpcStep::Done;
    }
    SvpcStep::Residual(residual)
}

/// The first variable whose merged range is empty, mirroring
/// [`VarBounds::any_empty`].
pub(crate) fn first_empty_var(bounds: &VarBounds) -> Option<usize> {
    (0..bounds.lb.len())
        .find(|&v| matches!((bounds.lb[v], bounds.ub[v]), (Some(l), Some(u)) if l > u))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(rows: &[(&[i64], i64)]) -> System {
        let n = rows.first().map_or(0, |(c, _)| c.len());
        let mut s = System::new(n);
        for (coeffs, rhs) in rows {
            s.push(Constraint::new(coeffs.to_vec(), *rhs));
        }
        s
    }

    #[test]
    fn paper_example_a_i_plus_10() {
        // for i = 1 to 10: a[i+10] = a[i]; after GCD, t with
        // 1 ≤ t ≤ 10 and 1 ≤ t + 10 ≤ 10  ⇒  11 ≤ t ≤ 0: independent.
        let s = sys(&[
            (&[-1], -1),
            (&[1], 10),
            (&[-1], 9), // 1 ≤ t + 10  ⇔  -t ≤ 9
            (&[1], 0),  // t + 10 ≤ 10 ⇔  t ≤ 0
        ]);
        // Wait: with bounds -9 ≤ t ≤ 0 and 1 ≤ t ≤ 10 → 1 ≤ t ≤ 0: empty.
        assert_eq!(svpc(&s), SvpcOutcome::Infeasible);
    }

    #[test]
    fn dependent_with_sample() {
        let s = sys(&[(&[-1, 0], -1), (&[1, 0], 10), (&[0, 1], 5)]);
        let SvpcOutcome::Complete { sample } = svpc(&s) else {
            panic!("expected complete");
        };
        assert!(s.is_satisfied_by(&sample).unwrap());
    }

    #[test]
    fn trivial_violation_is_infeasible() {
        let s = sys(&[(&[0, 0], -1)]);
        assert_eq!(svpc(&s), SvpcOutcome::Infeasible);
    }

    #[test]
    fn trivial_satisfied_ignored() {
        let s = sys(&[(&[0], 3)]);
        let SvpcOutcome::Complete { sample } = svpc(&s) else {
            panic!();
        };
        assert_eq!(sample, vec![0]);
    }

    #[test]
    fn gcd_tightening_applies() {
        // 2t ≤ 5 and 2t ≥ 5 has a real solution (2.5) but no integer one.
        let s = sys(&[(&[2], 5), (&[-2], -5)]);
        assert_eq!(svpc(&s), SvpcOutcome::Infeasible);
    }

    #[test]
    fn multi_var_goes_to_residual() {
        let s = sys(&[(&[1, -1], 0), (&[1, 0], 5)]);
        let SvpcOutcome::Partial { bounds, residual } = svpc(&s) else {
            panic!("expected partial");
        };
        assert_eq!(residual.len(), 1);
        assert_eq!(bounds.ub[0], Some(5));
        assert_eq!(bounds.ub[1], None);
    }

    #[test]
    fn infeasible_detected_even_with_residual() {
        // Empty scalar range decides regardless of the multi-var leftover.
        let s = sys(&[(&[1, -1], 0), (&[1, 0], 0), (&[-1, 0], -1)]);
        assert_eq!(svpc(&s), SvpcOutcome::Infeasible);
    }

    #[test]
    fn empty_system_is_dependent() {
        let s = System::new(3);
        let SvpcOutcome::Complete { sample } = svpc(&s) else {
            panic!();
        };
        assert_eq!(sample, vec![0, 0, 0]);
    }

    #[test]
    fn overflowing_tightening_demotes_to_residual() {
        // -t ≤ i64::MIN: the tightening ⌈MIN/-1⌉ overflows i64, so the
        // constraint must stay in the residual instead of being absorbed
        // with a wrong bound.
        let s = sys(&[(&[-1], i64::MIN), (&[1], 5)]);
        let SvpcOutcome::Partial { bounds, residual } = svpc(&s) else {
            panic!("expected partial");
        };
        assert_eq!(residual.len(), 1);
        assert_eq!(bounds.ub[0], Some(5));
        assert_eq!(bounds.lb[0], None);
    }

    #[test]
    fn negative_coefficient_lower_bound() {
        // -3t ≤ -7  ⇒  t ≥ ceil(7/3) = 3.
        let s = sys(&[(&[-3], -7), (&[1], 2)]);
        assert_eq!(svpc(&s), SvpcOutcome::Infeasible);
        let s2 = sys(&[(&[-3], -7), (&[1], 3)]);
        let SvpcOutcome::Complete { sample } = svpc(&s2) else {
            panic!();
        };
        assert_eq!(sample, vec![3]);
    }
}
