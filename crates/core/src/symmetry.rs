//! Symmetric-pair canonicalization — the "further optimization" of
//! Section 5.
//!
//! "Comparing `a[i]` to `a[i-1]` is the same as comparing `a[i-1]` to
//! `a[i]`":
//! swapping the two references of a pair produces a mirror problem whose
//! analysis is the mirror of the original (directions reversed, distances
//! negated). Canonicalizing each problem to the lexicographically smaller
//! of itself and its mirror lets the memo table serve both orientations
//! from one entry.

#![warn(clippy::arithmetic_side_effects)]

use crate::problem::{DependenceProblem, XVar};
use crate::result::{Direction, DirectionVector, DistanceVector};
use crate::system::Constraint;

/// Builds the mirror problem: reference roles swapped.
///
/// Variables keep the structural order (common-A block first, then
/// common-B, extras, symbolics), so the mirror maps `CommonA(k)` ↔
/// `CommonB(k)` and `ExtraA` ↔ `ExtraB` — a permutation of columns — and
/// negates the equality rows (`f_b − f_a = −(f_a − f_b)`).
///
/// Returns `None` when negating a row overflows (`i64::MIN` coefficient);
/// callers then simply skip canonicalization, which is always sound.
#[must_use]
pub fn swap_problem(p: &DependenceProblem) -> Option<DependenceProblem> {
    let n = p.num_vars();
    // permutation[i] = index in the original of the variable that sits at
    // position i of the mirror.
    let mut permutation = Vec::with_capacity(n);
    let mut vars = Vec::with_capacity(n);
    for v in &p.vars {
        let (mirror, source) = match v {
            XVar::CommonA(k) => (XVar::CommonA(*k), XVar::CommonB(*k)),
            XVar::CommonB(k) => (XVar::CommonB(*k), XVar::CommonA(*k)),
            XVar::ExtraA(k) => (XVar::ExtraA(*k), XVar::ExtraB(*k)),
            XVar::ExtraB(k) => (XVar::ExtraB(*k), XVar::ExtraA(*k)),
            XVar::Symbolic(s) => (XVar::Symbolic(s.clone()), XVar::Symbolic(s.clone())),
        };
        vars.push(mirror);
        permutation.push(
            p.var_index(&source)
                .expect("mirror variable exists in a well-formed problem"),
        );
    }

    let permute = |row: &[i64]| -> Vec<i64> { permutation.iter().map(|&src| row[src]).collect() };

    let eq_coeffs: Vec<Vec<i64>> = p
        .eq_coeffs
        .iter()
        .map(|row| permute(row).iter().map(|c| c.checked_neg()).collect())
        .collect::<Option<_>>()?;
    let eq_rhs: Vec<i64> = p
        .eq_rhs
        .iter()
        .map(|c| c.checked_neg())
        .collect::<Option<_>>()?;
    let bounds: Vec<Constraint> = p
        .bounds
        .iter()
        .map(|c| Constraint::new(permute(&c.coeffs), c.rhs))
        .collect();

    Some(DependenceProblem {
        vars,
        eq_coeffs,
        eq_rhs,
        bounds,
        num_common: p.num_common,
    })
}

/// Whether the mirror is well-defined: swapping the ExtraA/ExtraB blocks
/// must be a permutation, which requires the two references to have the
/// same number of non-common enclosing loops.
#[must_use]
pub fn swappable(p: &DependenceProblem) -> bool {
    let extra_a = p
        .vars
        .iter()
        .filter(|v| matches!(v, XVar::ExtraA(_)))
        .count();
    let extra_b = p
        .vars
        .iter()
        .filter(|v| matches!(v, XVar::ExtraB(_)))
        .count();
    extra_a == extra_b
}

/// Reverses a direction (the mirror pair's `<` is the original's `>`).
#[must_use]
pub fn flip_direction(d: Direction) -> Direction {
    match d {
        Direction::Lt => Direction::Gt,
        Direction::Gt => Direction::Lt,
        other => other,
    }
}

/// Mirrors a set of direction vectors.
#[must_use]
pub fn flip_vectors(vectors: &[DirectionVector]) -> Vec<DirectionVector> {
    vectors
        .iter()
        .map(|v| DirectionVector(v.0.iter().map(|&d| flip_direction(d)).collect()))
        .collect()
}

/// Mirrors a distance vector (`i′ − i` negates). A component whose
/// negation overflows degrades to unknown — conservative, never wrong.
#[must_use]
pub fn flip_distance(d: &DistanceVector) -> DistanceVector {
    DistanceVector(d.0.iter().map(|v| v.and_then(i64::checked_neg)).collect())
}

#[cfg(test)]
// Test fixtures use plain literals arithmetic; overflow aborts the test.
#[allow(clippy::arithmetic_side_effects)]
mod tests {
    use super::*;
    use crate::memo::bounds_key;
    use crate::problem::build_problem;
    use dda_ir::{extract_accesses, parse_program, reference_pairs};

    fn problem(src: &str) -> DependenceProblem {
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap()
    }

    #[test]
    fn mirror_of_mirror_is_identity() {
        for src in [
            "for i = 1 to 10 { a[i + 1] = a[i]; }",
            "for i = 1 to 10 { for j = i to 10 { a[i][j] = a[j][i + 2]; } }",
            "read(n); for i = 1 to 10 { a[i + n] = a[i]; }",
        ] {
            let p = problem(src);
            assert!(swappable(&p));
            let back = swap_problem(&swap_problem(&p).unwrap()).unwrap();
            assert_eq!(p, back, "{src}");
        }
    }

    #[test]
    fn mirrored_pairs_share_canonical_keys() {
        // a[i+1] = a[i]  vs  a[i] = a[i+1]: mirrors of each other.
        let p1 = problem("for i = 1 to 10 { a[i + 1] = a[i]; }");
        let p2 = problem("for i = 1 to 10 { a[i] = a[i + 1]; }");
        assert_ne!(bounds_key(&p1, true).key, bounds_key(&p2, true).key);
        let c1 = bounds_key(&p1, true)
            .key
            .min(bounds_key(&swap_problem(&p1).unwrap(), true).key);
        let c2 = bounds_key(&p2, true)
            .key
            .min(bounds_key(&swap_problem(&p2).unwrap(), true).key);
        assert_eq!(c1, c2);
    }

    #[test]
    fn mirror_preserves_witnesses_up_to_permutation() {
        let p = problem("for i = 1 to 10 { a[i + 1] = a[i]; }");
        let m = swap_problem(&p).unwrap();
        // (i, i') = (1, 2) satisfies p; the mirror swaps roles: (2, 1).
        assert!(p.is_witness(&[1, 2]));
        assert!(m.is_witness(&[2, 1]));
        assert!(!m.is_witness(&[1, 2]));
    }

    #[test]
    fn flips() {
        assert_eq!(flip_direction(Direction::Lt), Direction::Gt);
        assert_eq!(flip_direction(Direction::Eq), Direction::Eq);
        assert_eq!(flip_direction(Direction::Any), Direction::Any);
        let v = vec![DirectionVector(vec![Direction::Lt, Direction::Eq])];
        assert_eq!(
            flip_vectors(&v),
            vec![DirectionVector(vec![Direction::Gt, Direction::Eq])]
        );
        let d = DistanceVector(vec![Some(3), None]);
        assert_eq!(flip_distance(&d), DistanceVector(vec![Some(-3), None]));
    }

    #[test]
    fn unequal_extra_depths_not_swappable() {
        let src = "for i = 1 to 10 { a[i] = 1; }
                   for i = 1 to 10 { for j = 1 to 10 { a[j] = a[j] + 2; } }";
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        // The (w1, w2) pair has one ExtraA level and two ExtraB levels.
        let prob = build_problem(pairs[0].a, pairs[0].b, pairs[0].common, true).unwrap();
        assert!(!swappable(&prob));
    }
}
