//! Inequality constraint systems over the free variables `t`.
//!
//! After extended-GCD preprocessing, every dependence problem is a set of
//! linear inequality constraints `a · t ≤ b` over integer variables. All
//! four exact tests and the Fourier–Motzkin backup consume this form — one
//! of the paper's stated reasons for choosing this particular suite of
//! tests ("they all expect their data in the same form").

use std::fmt;

use dda_linalg::{num, CoeffVec, SmallVec};

/// A single linear inequality `coeffs · t ≤ rhs`.
///
/// Coefficients live in inline [`CoeffVec`] storage: the dominant
/// dependence systems have at most six columns, so cloning a row inside
/// the solver stages is a plain `memcpy` with no heap traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Coefficient per variable (dense; length = number of variables).
    pub coeffs: CoeffVec,
    /// The inclusive right-hand side.
    pub rhs: i64,
}

impl Constraint {
    /// Creates a constraint. Accepts any coefficient container that
    /// converts into [`CoeffVec`] (`Vec<i64>`, slices, arrays).
    #[must_use]
    pub fn new(coeffs: impl Into<CoeffVec>, rhs: i64) -> Constraint {
        Constraint {
            coeffs: coeffs.into(),
            rhs,
        }
    }

    /// Number of variables with non-zero coefficients.
    #[must_use]
    pub fn num_nonzero(&self) -> usize {
        self.coeffs.iter().filter(|&&c| c != 0).count()
    }

    /// Index of the single non-zero coefficient, if exactly one exists.
    #[must_use]
    pub fn single_var(&self) -> Option<usize> {
        let mut found = None;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                if found.is_some() {
                    return None;
                }
                found = Some(i);
            }
        }
        found
    }

    /// Whether the constraint involves no variables at all.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Whether a trivial constraint is satisfied (`0 ≤ rhs`).
    #[must_use]
    pub fn trivially_satisfied(&self) -> bool {
        self.rhs >= 0
    }

    /// Divides through by the gcd of the coefficients, flooring the
    /// right-hand side — a tightening that preserves exactly the *integer*
    /// solutions (the paper's loop-residue trick `a·t ≤ c  ⇒  t ≤ ⌊c/a⌋`
    /// generalized to whole rows).
    pub fn normalize(&mut self) {
        let g = num::gcd_slice(&self.coeffs);
        if g > 1 {
            for c in &mut self.coeffs {
                *c /= g;
            }
            self.rhs = num::div_floor(self.rhs, g);
        }
    }

    /// Evaluates whether an assignment satisfies the constraint.
    ///
    /// Returns `None` on overflow or length mismatch.
    #[must_use]
    pub fn is_satisfied_by(&self, t: &[i64]) -> Option<bool> {
        let lhs = num::dot(&self.coeffs, t).ok()?;
        Some(lhs <= self.rhs)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if first {
                if c == 1 {
                    write!(f, "t{i}")?;
                } else if c == -1 {
                    write!(f, "-t{i}")?;
                } else {
                    write!(f, "{c}*t{i}")?;
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + t{i}")?;
                } else {
                    write!(f, " + {c}*t{i}")?;
                }
            } else if c == -1 {
                write!(f, " - t{i}")?;
            } else {
                write!(f, " - {}*t{i}", -c)?;
            }
        }
        if first {
            write!(f, "0")?;
        }
        write!(f, " <= {}", self.rhs)
    }
}

/// Per-variable scalar bounds accumulated from single-variable
/// constraints. `None` means unbounded in that direction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VarBounds {
    /// Lower bound per variable.
    pub lb: SmallVec<Option<i64>, 6>,
    /// Upper bound per variable.
    pub ub: SmallVec<Option<i64>, 6>,
}

impl VarBounds {
    /// Creates unbounded bounds for `n` variables.
    #[must_use]
    pub fn unbounded(n: usize) -> VarBounds {
        VarBounds {
            lb: SmallVec::from_elem(None, n),
            ub: SmallVec::from_elem(None, n),
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lb.len()
    }

    /// Whether there are no variables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lb.is_empty()
    }

    /// Tightens the lower bound of `v` to at least `value`.
    pub fn tighten_lb(&mut self, v: usize, value: i64) {
        self.lb[v] = Some(self.lb[v].map_or(value, |old| old.max(value)));
    }

    /// Tightens the upper bound of `v` to at most `value`.
    pub fn tighten_ub(&mut self, v: usize, value: i64) {
        self.ub[v] = Some(self.ub[v].map_or(value, |old| old.min(value)));
    }

    /// Whether some variable has an empty range (`lb > ub`).
    #[must_use]
    pub fn any_empty(&self) -> bool {
        self.lb
            .iter()
            .zip(&self.ub)
            .any(|(l, u)| matches!((l, u), (Some(l), Some(u)) if l > u))
    }

    /// A concrete in-range value for variable `v`: the lower bound when
    /// one exists, else the upper bound, else 0.
    #[must_use]
    pub fn pick(&self, v: usize) -> i64 {
        match (self.lb[v], self.ub[v]) {
            (Some(l), _) => l,
            (None, Some(u)) => u,
            (None, None) => 0,
        }
    }
}

/// An inequality system over `num_vars` integer variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct System {
    /// Number of variables.
    pub num_vars: usize,
    /// The constraints (`a · t ≤ b` each).
    pub constraints: Vec<Constraint>,
}

impl System {
    /// Creates an empty system over `num_vars` variables.
    #[must_use]
    pub fn new(num_vars: usize) -> System {
        System {
            num_vars,
            constraints: Vec::new(),
        }
    }

    /// Appends a constraint.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient vector's length differs from `num_vars`.
    pub fn push(&mut self, c: Constraint) {
        assert_eq!(
            c.coeffs.len(),
            self.num_vars,
            "constraint arity must match system"
        );
        self.constraints.push(c);
    }

    /// Normalizes every constraint (gcd tightening).
    pub fn normalize(&mut self) {
        for c in &mut self.constraints {
            c.normalize();
        }
    }

    /// Checks an assignment against every constraint.
    ///
    /// Returns `None` on overflow or arity mismatch.
    #[must_use]
    pub fn is_satisfied_by(&self, t: &[i64]) -> Option<bool> {
        for c in &self.constraints {
            if !c.is_satisfied_by(t)? {
                return Some(false);
            }
        }
        Some(true)
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.constraints {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_var_detection() {
        assert_eq!(Constraint::new(vec![0, 3, 0], 5).single_var(), Some(1));
        assert_eq!(Constraint::new(vec![1, 3, 0], 5).single_var(), None);
        assert_eq!(Constraint::new(vec![0, 0], 5).single_var(), None);
        assert!(Constraint::new(vec![0, 0], 5).is_trivial());
    }

    #[test]
    fn normalize_tightens_by_gcd() {
        // 2t ≤ 5 ⇒ t ≤ 2 (integer tightening)
        let mut c = Constraint::new(vec![2, 0], 5);
        c.normalize();
        assert_eq!(c, Constraint::new(vec![1, 0], 2));
        // -3t ≤ -7 ⇒ -t ≤ floor(-7/3) = -3, i.e. t ≥ 3
        let mut c = Constraint::new(vec![-3], -7);
        c.normalize();
        assert_eq!(c, Constraint::new(vec![-1], -3));
    }

    #[test]
    fn normalize_keeps_integer_solutions() {
        for a in [2i64, 3, 4, 6] {
            for rhs in -10..10 {
                let orig = Constraint::new(vec![a], rhs);
                let mut norm = orig.clone();
                norm.normalize();
                for t in -20..20 {
                    assert_eq!(
                        orig.is_satisfied_by(&[t]).unwrap(),
                        norm.is_satisfied_by(&[t]).unwrap(),
                        "a={a} rhs={rhs} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_tighten_and_detect_empty() {
        let mut b = VarBounds::unbounded(2);
        b.tighten_lb(0, 1);
        b.tighten_ub(0, 10);
        b.tighten_lb(0, 3); // tighter
        b.tighten_lb(0, 2); // looser, ignored
        assert_eq!(b.lb[0], Some(3));
        assert!(!b.any_empty());
        b.tighten_ub(0, 2);
        assert!(b.any_empty());
    }

    #[test]
    fn pick_prefers_lower_bound() {
        let mut b = VarBounds::unbounded(3);
        b.tighten_lb(0, 5);
        b.tighten_ub(1, -2);
        assert_eq!(b.pick(0), 5);
        assert_eq!(b.pick(1), -2);
        assert_eq!(b.pick(2), 0);
    }

    #[test]
    fn system_satisfaction() {
        let mut s = System::new(2);
        s.push(Constraint::new(vec![1, -1], 0)); // t0 ≤ t1
        s.push(Constraint::new(vec![0, 1], 5)); // t1 ≤ 5
        assert_eq!(s.is_satisfied_by(&[3, 4]), Some(true));
        assert_eq!(s.is_satisfied_by(&[6, 5]), Some(false));
        assert_eq!(s.is_satisfied_by(&[3, 6]), Some(false));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut s = System::new(2);
        s.push(Constraint::new(vec![1], 0));
    }

    #[test]
    fn display_readable() {
        let c = Constraint::new(vec![1, -2, 0, -1], 7);
        assert_eq!(c.to_string(), "t0 - 2*t1 - t3 <= 7");
        assert_eq!(Constraint::new(vec![0, 0], -1).to_string(), "0 <= -1");
    }
}
