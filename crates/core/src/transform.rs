//! Legality checks for classic loop transformations.
//!
//! Direction vectors exist to license transformations: a reordering is
//! legal iff every dependence still flows forward (no vector becomes
//! lexicographically negative). These helpers answer the standard
//! questions a restructuring compiler asks of the analysis — and they are
//! where the paper's *exactness* cashes out: an inexact extra vector can
//! veto a perfectly legal transformation.

#![warn(clippy::arithmetic_side_effects)]

use std::collections::BTreeSet;

use crate::analyzer::ProgramReport;
use crate::result::{Direction, DirectionVector};

/// Whether a vector could be lexicographically negative — i.e. some
/// realization has `>` before any `<` (reading left to right, `=` skipped,
/// `*` treated as possibly `>`).
#[must_use]
pub fn may_be_lexicographically_negative(v: &DirectionVector) -> bool {
    for d in &v.0 {
        match d {
            Direction::Lt => return false,
            Direction::Eq => continue,
            Direction::Gt | Direction::Any => return true,
        }
    }
    false
}

/// Collects, for each pair, the direction vectors restricted to the given
/// common-loop levels in the given order. Pairs whose common nest does not
/// cover all requested levels are skipped (the transformation does not
/// touch them).
fn permuted_vectors(report: &ProgramReport, permutation: &[usize]) -> Vec<DirectionVector> {
    let mut out = Vec::new();
    for pair in report.pairs() {
        if pair.result.is_independent() {
            continue;
        }
        let depth = pair.common_loop_ids.len();
        if permutation.iter().any(|&k| k >= depth) {
            continue;
        }
        if pair.direction_vectors.is_empty() {
            // Assumed dependence with no vectors: conservatively any.
            out.push(DirectionVector::any(permutation.len()));
            continue;
        }
        for v in &pair.direction_vectors {
            out.push(DirectionVector(
                permutation.iter().map(|&k| v.0[k]).collect(),
            ));
        }
    }
    out
}

/// Whether permuting the common loop nest of every pair into the given
/// level order preserves all dependences.
///
/// `permutation[p] = k` means the loop currently at level `k` moves to
/// position `p`. Interchange of two adjacent loops is the permutation
/// `[1, 0]` (plus identity on deeper levels, which need not be listed —
/// trailing levels keep their relative order and cannot flip a leading
/// non-`=`... they can, so list every level you permute *through*).
///
/// # Examples
///
/// ```
/// use dda_core::{transform::permutation_is_legal, DependenceAnalyzer};
/// use dda_ir::parse_program;
///
/// // (=, <) dependence: interchanging the two loops is fine.
/// let p = parse_program(
///     "for i = 1 to 8 { for j = 1 to 8 { a[i][j + 1] = a[i][j]; } }",
/// )?;
/// let report = DependenceAnalyzer::new().analyze_program(&p);
/// assert!(permutation_is_legal(&report, &[1, 0]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn permutation_is_legal(report: &ProgramReport, permutation: &[usize]) -> bool {
    permuted_vectors(report, permutation)
        .iter()
        .all(|v| !may_be_lexicographically_negative(v))
}

/// Whether interchanging common-loop levels `a` and `b` is legal for
/// every dependent pair deep enough to be affected.
#[must_use]
pub fn interchange_is_legal(report: &ProgramReport, a: usize, b: usize) -> bool {
    let deepest = a.max(b);
    let mut perm: Vec<usize> = (0..=deepest).collect();
    perm.swap(a, b);
    permutation_is_legal(report, &perm)
}

/// Loop ids that can run fully in parallel (no carried dependence at
/// their level) — the complement of
/// [`ProgramReport::carried_dependence_loops`].
#[must_use]
pub fn parallelizable_loops(
    report: &ProgramReport,
    all_loop_ids: &BTreeSet<usize>,
) -> BTreeSet<usize> {
    let carried = report.carried_dependence_loops();
    all_loop_ids.difference(&carried).copied().collect()
}

/// Whether the innermost common loop of every pair can be vectorized:
/// legal when no dependence is carried by that loop, or every carried
/// dependence at that level has a (forward) distance of at least
/// `vector_width` — consecutive lanes then never conflict.
#[must_use]
pub fn innermost_vectorizable(report: &ProgramReport, vector_width: i64) -> bool {
    assert!(vector_width >= 1, "vector width must be positive");
    for pair in report.pairs() {
        if pair.result.is_independent() {
            continue;
        }
        let Some(depth) = pair.common_loop_ids.len().checked_sub(1) else {
            continue;
        };
        if pair.direction_vectors.is_empty() {
            return false; // assumed dependence: no information
        }
        for v in &pair.direction_vectors {
            if !v.carried_by(depth) && v.0.get(depth).is_none_or(|d| *d != Direction::Any) {
                continue; // not carried innermost
            }
            // checked_abs: an i64::MIN distance (unrepresentable |d|)
            // conservatively blocks vectorization instead of overflowing.
            match pair.distance.0.get(depth) {
                Some(Some(d)) if d.checked_abs().is_some_and(|a| a >= vector_width) => {}
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
// Test fixtures use plain literal arithmetic; overflow aborts the test.
#[allow(clippy::arithmetic_side_effects)]
mod tests {
    use super::*;
    use crate::DependenceAnalyzer;
    use dda_ir::{parse_program, passes};

    fn report(src: &str) -> ProgramReport {
        let mut p = parse_program(src).unwrap();
        passes::normalize(&mut p);
        DependenceAnalyzer::new().analyze_program(&p)
    }

    #[test]
    fn interchange_legal_for_inner_carried() {
        let r = report("for i = 1 to 8 { for j = 1 to 8 { a[i][j + 1] = a[i][j]; } }");
        assert!(interchange_is_legal(&r, 0, 1));
    }

    #[test]
    fn interchange_illegal_for_skewed_recurrence() {
        let r = report("for i = 2 to 8 { for j = 2 to 8 { a[i][j] = a[i - 1][j + 1]; } }");
        assert!(!interchange_is_legal(&r, 0, 1));
    }

    #[test]
    fn interchange_legal_for_diagonal() {
        let r = report("for i = 2 to 8 { for j = 2 to 8 { a[i][j] = a[i - 1][j - 1]; } }");
        assert!(interchange_is_legal(&r, 0, 1));
    }

    #[test]
    fn three_level_rotation() {
        // Dependence (=, =, <): any permutation keeping the k-loop's `<`
        // after the `=`s is legal; rotating k outermost is also legal
        // (leading `<`).
        let r = report(
            "for i = 1 to 4 { for j = 1 to 4 { for k = 1 to 4 {
                 a[i][j][k + 1] = a[i][j][k];
             } } }",
        );
        assert!(permutation_is_legal(&r, &[2, 0, 1]));
        assert!(permutation_is_legal(&r, &[0, 2, 1]));
    }

    #[test]
    fn rotation_illegal_when_it_reverses_flow() {
        // (<, >): moving level 1 outermost puts `>` first.
        let r = report("for i = 2 to 8 { for j = 2 to 8 { a[i][j] = a[i - 1][j + 1]; } }");
        assert!(!permutation_is_legal(&r, &[1, 0]));
    }

    #[test]
    fn vectorization_width_gate() {
        // Distance 4 innermost: vectorizable at width ≤ 4, not at 8.
        let r = report("for i = 1 to 64 { a[i + 4] = a[i]; }");
        assert!(innermost_vectorizable(&r, 4));
        assert!(!innermost_vectorizable(&r, 8));
        // Distance 1: never vectorizable beyond width 1.
        let r = report("for i = 1 to 64 { a[i + 1] = a[i]; }");
        assert!(innermost_vectorizable(&r, 1));
        assert!(!innermost_vectorizable(&r, 2));
    }

    #[test]
    fn vectorization_blocked_by_unknown_dependence() {
        let r = report("for i = 1 to 64 { a[b[i]] = a[i]; }");
        assert!(!innermost_vectorizable(&r, 2));
    }

    #[test]
    fn independent_program_fully_transformable() {
        let r = report("for i = 1 to 8 { for j = 1 to 8 { a[i][j] = c[j][i]; } }");
        assert!(interchange_is_legal(&r, 0, 1));
        assert!(innermost_vectorizable(&r, 16));
    }
}
