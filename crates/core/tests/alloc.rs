//! Zero-allocation steady state for the SVPC fast path, pinned with a
//! counting global allocator.
//!
//! The dominant dependence queries resolve in the SVPC stage (the
//! paper's measurement, reproduced by the batch engine's stats). After
//! the tiered-numeric/inline-storage refactor, an answer-only pipeline
//! run over an SVPC-decided system must not touch the heap at all:
//! constraint rows clone into inline [`CoeffVec`] storage, scalar
//! bounds and the derivation trail live in inline `SmallVec`s, and the
//! non-collecting path never materializes a certificate arena.
//!
//! One test only — the counter is process-global, and a sibling test
//! allocating concurrently would race the measurement window.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use dda_core::fourier_motzkin::FmLimits;
use dda_core::pipeline::run_pipeline;
use dda_core::system::{Constraint, System};
use dda_core::{Answer, NullProbe, PipelineConfig, TestKind};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        SystemAlloc.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SystemAlloc.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn svpc_fast_path_never_allocates() {
    // The paper's Section 3.2 worked example: four single-variable
    // ranges collapsing to 11 ≤ t1 ≤ 10 — independent, decided by SVPC.
    let mut s = System::new(2);
    s.push(Constraint::new(vec![-1, 0], -1));
    s.push(Constraint::new(vec![1, 0], 10));
    s.push(Constraint::new(vec![0, -1], -1));
    s.push(Constraint::new(vec![0, 1], 10));
    s.push(Constraint::new(vec![0, 1], 1));
    s.push(Constraint::new(vec![-1, 0], -11));

    let config = PipelineConfig::full();
    let limits = FmLimits::default();

    // Warm up once (first-call laziness, if any), then measure.
    let out = run_pipeline(&s, &config, limits, &mut NullProbe);
    assert_eq!(out.answer, Answer::Independent);
    assert_eq!(out.used, TestKind::Svpc);

    // The counter is process-global, so a harness thread can add a few
    // stray counts to any single window. Measure several windows and
    // take the minimum: background noise misses some window, while a
    // genuine per-call allocation shows up ≥1000 times in every one.
    let mut min_delta = u64::MAX;
    for _ in 0..8 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..1_000 {
            let out = run_pipeline(&s, &config, limits, &mut NullProbe);
            std::hint::black_box(&out);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        min_delta = min_delta.min(after - before);
    }
    assert_eq!(
        min_delta, 0,
        "SVPC fast path allocated {min_delta} time(s) in every 1000-run window"
    );
}
