//! Allocation pin for the v3 memo archive's load path.
//!
//! Opening a v3 archive must not allocate per record: the file maps (or
//! reads into one aligned buffer), the directory parses into O(shards)
//! vectors, and records stay encoded until a lookup faults them in.
//! This test builds two archives with the same shard count whose record
//! counts differ by ~50× and pins that `MemoArchive::open` performs the
//! same number of heap allocations for both (modulo a tiny constant
//! slack for the buffered-fallback read buffer).
//!
//! One test only — the counter is process-global, and a sibling test
//! allocating concurrently would race the measurement window.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dda_core::{DependenceAnalyzer, MemoArchive, SharedMemo};
use dda_ir::parse_program;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        SystemAlloc.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SystemAlloc.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Trains a memo on `n` distinct programs and persists it as a v3
/// archive with a fixed shard count; returns the path and record count.
fn build_archive(name: &str, n: usize) -> (PathBuf, u64) {
    let dir = std::env::temp_dir().join("dda_alloc_v3_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);

    let mut analyzer = DependenceAnalyzer::new();
    for k in 0..n {
        let src = format!("for i = 1 to 10 {{ a[i] = a[i + {}] + 1; }}", k + 1);
        let program = parse_program(&src).unwrap();
        analyzer.analyze_program(&program);
    }
    let memo = SharedMemo::new(4);
    memo.import_memo(&analyzer.export_memo()).unwrap();
    memo.save_memo_file_v3(&path, 8).unwrap();
    let records = (memo.gcd.unique_entries() + memo.full.unique_entries()) as u64;
    (path, records)
}

/// Minimum allocation count over several `open` calls — background
/// threads can dirty any single window, but never every one.
fn min_open_allocs(path: &PathBuf) -> u64 {
    let mut min_delta = u64::MAX;
    for _ in 0..8 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let archive = MemoArchive::open(path).unwrap();
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        std::hint::black_box(&archive);
        drop(archive);
        min_delta = min_delta.min(after - before);
    }
    min_delta
}

#[test]
fn archive_open_allocations_do_not_scale_with_record_count() {
    let (small_path, small_records) = build_archive("small.dda-memo3", 3);
    let (large_path, large_records) = build_archive("large.dda-memo3", 160);
    assert!(
        large_records >= 50 * small_records / 2,
        "corpus should differ by an order of magnitude: {small_records} vs {large_records}"
    );

    let small = min_open_allocs(&small_path);
    let large = min_open_allocs(&large_path);

    // Same shard count ⇒ same directory shape. A per-record allocation
    // would add hundreds of counts to every large-archive window; allow
    // a constant ±2 for the (size-dependent but single) fallback read
    // buffer and allocator rounding.
    assert!(
        large <= small + 2,
        "archive open allocated per record: {small} allocs for {small_records} records, \
         {large} allocs for {large_records} records"
    );

    std::fs::remove_file(&small_path).ok();
    std::fs::remove_file(&large_path).ok();
}
