//! Differential oracle for the Fourier–Motzkin rewrite.
//!
//! `oracle_solve` below is the pre-refactor elimination copied verbatim
//! from the tree before the tiered-numeric/arena rewrite: rational-first
//! back-substitution bounds, eagerly built `Rule` arenas, per-step
//! lower/upper row vectors. The rewritten [`fourier_motzkin_cert`] must
//! agree with it **bit-for-bit** on every input — same outcome (including
//! the exact sample and the exact `Unknown` overflow boundary) and the
//! byte-identical refutation tree, across generators that keep bounds in
//! the `i64`-component fast tier and generators that force promotion.

use dda_core::certificate::{Derivation, FmTree, Rule};
use dda_core::fourier_motzkin::{fourier_motzkin_cert, FmLimits, FmOutcome};
use dda_core::system::Constraint;
use dda_linalg::{num, Rational};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One elimination step of the pre-refactor solver: the eliminated
/// variable plus its lower/upper bound rows and their arena steps.
struct Step {
    var: usize,
    lowers: Vec<Constraint>,
    uppers: Vec<Constraint>,
    lower_steps: Vec<usize>,
    upper_steps: Vec<usize>,
}

/// The pre-refactor elimination core, kept as a test-only oracle.
fn oracle_solve(
    num_vars: usize,
    constraints: &[Constraint],
    limits: FmLimits,
    depth: usize,
) -> (FmOutcome, Option<FmTree>) {
    let mut lrules: Vec<Rule> = constraints
        .iter()
        .map(|c| Rule::Premise {
            coeffs: c.coeffs.to_vec(),
            rhs: c.rhs,
        })
        .collect();
    let mut rows: Vec<Constraint> = Vec::with_capacity(constraints.len());
    let mut row_steps: Vec<usize> = Vec::with_capacity(constraints.len());
    for (i, c) in constraints.iter().enumerate() {
        let mut step = i;
        let mut c = c.clone();
        let g = num::gcd_slice(&c.coeffs);
        c.normalize();
        if g > 1 {
            lrules.push(Rule::Div { of: step, d: g });
            step = lrules.len() - 1;
        }
        if c.is_trivial() {
            if !c.trivially_satisfied() {
                let tree = FmTree::Sealed(Derivation {
                    rules: lrules,
                    seal: step,
                });
                return (FmOutcome::Infeasible, Some(tree));
            }
            continue;
        }
        rows.push(c);
        row_steps.push(step);
    }

    let mut remaining: Vec<usize> = (0..num_vars)
        .filter(|&v| rows.iter().any(|c| c.coeffs[v] != 0))
        .collect();
    let mut steps: Vec<Step> = Vec::new();

    while let Some(pick_idx) = pick_variable(&rows, &remaining) {
        let v = remaining.swap_remove(pick_idx);
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        let mut rest = Vec::new();
        let mut lower_steps = Vec::new();
        let mut upper_steps = Vec::new();
        let mut rest_steps = Vec::new();
        for (c, s) in rows.into_iter().zip(row_steps) {
            match c.coeffs[v].cmp(&0) {
                std::cmp::Ordering::Less => {
                    lowers.push(c);
                    lower_steps.push(s);
                }
                std::cmp::Ordering::Greater => {
                    uppers.push(c);
                    upper_steps.push(s);
                }
                std::cmp::Ordering::Equal => {
                    rest.push(c);
                    rest_steps.push(s);
                }
            }
        }
        for (lo, lo_s) in lowers.iter().zip(&lower_steps) {
            for (up, up_s) in uppers.iter().zip(&upper_steps) {
                let Some(mut combined) = combine(lo, up, v) else {
                    return (FmOutcome::Unknown, None); // overflow
                };
                lrules.push(Rule::Comb {
                    a: *lo_s,
                    ca: up.coeffs[v],
                    b: *up_s,
                    cb: -lo.coeffs[v],
                });
                let mut cstep = lrules.len() - 1;
                let g = num::gcd_slice(&combined.coeffs);
                combined.normalize();
                if g > 1 {
                    lrules.push(Rule::Div { of: cstep, d: g });
                    cstep = lrules.len() - 1;
                }
                if combined.is_trivial() {
                    if !combined.trivially_satisfied() {
                        let tree = FmTree::Sealed(Derivation {
                            rules: lrules,
                            seal: cstep,
                        });
                        return (FmOutcome::Infeasible, Some(tree));
                    }
                } else {
                    rest.push(combined);
                    rest_steps.push(cstep);
                }
                if rest.len() > limits.max_constraints {
                    return (FmOutcome::Unknown, None);
                }
            }
        }
        steps.push(Step {
            var: v,
            lowers,
            uppers,
            lower_steps,
            upper_steps,
        });
        rows = rest;
        row_steps = rest_steps;
    }

    // Real-feasible. Back-substitute in reverse elimination order.
    let mut sample = vec![0i64; num_vars];
    let mut assigned = vec![false; num_vars];
    for (k, step) in steps.iter().rev().enumerate() {
        let lo = tightest(&step.lowers, step.var, &sample, &assigned, true);
        let up = tightest(&step.uppers, step.var, &sample, &assigned, false);
        let (lo, up) = match (lo, up) {
            (Err(()), _) | (_, Err(())) => return (FmOutcome::Unknown, None), // overflow
            (Ok(l), Ok(u)) => (l, u),
        };
        let lo_int = lo.as_ref().map(Rational::ceil);
        let up_int = up.as_ref().map(Rational::floor);
        let value = match (lo_int, up_int) {
            (Some(l), Some(u)) if l > u => {
                if k == 0 {
                    let tree = seal_last_var(lrules, step);
                    return (FmOutcome::Infeasible, tree);
                }
                if depth >= limits.max_branch_depth {
                    return (FmOutcome::Unknown, None);
                }
                return branch(
                    num_vars,
                    constraints,
                    limits,
                    depth,
                    step.var,
                    lo.expect("two-sided").floor(),
                    up.expect("two-sided").ceil(),
                );
            }
            (Some(l), Some(u)) => {
                // The integer nearest the middle of the allowed range.
                let mid = Rational::new(l + u, 2).map_or(l, |m| m.round_nearest());
                mid.clamp(l, u)
            }
            (Some(l), None) => l,
            (None, Some(u)) => u,
            (None, None) => 0,
        };
        let Ok(value) = i64::try_from(value) else {
            return (FmOutcome::Unknown, None);
        };
        sample[step.var] = value;
        assigned[step.var] = true;
    }
    (FmOutcome::Sample(sample), None)
}

fn seal_last_var(mut lrules: Vec<Rule>, step: &Step) -> Option<FmTree> {
    let v = step.var;
    let mut best_lo: Option<(i128, usize)> = None;
    for (c, &s) in step.lowers.iter().zip(&step.lower_steps) {
        if c.single_var() != Some(v) || c.coeffs[v] != -1 {
            return None;
        }
        let l = -i128::from(c.rhs);
        if best_lo.is_none_or(|(b, _)| l > b) {
            best_lo = Some((l, s));
        }
    }
    let mut best_up: Option<(i128, usize)> = None;
    for (c, &s) in step.uppers.iter().zip(&step.upper_steps) {
        if c.single_var() != Some(v) || c.coeffs[v] != 1 {
            return None;
        }
        let u = i128::from(c.rhs);
        if best_up.is_none_or(|(b, _)| u < b) {
            best_up = Some((u, s));
        }
    }
    let ((l, lo_s), (u, up_s)) = (best_lo?, best_up?);
    debug_assert!(l > u, "range was reported empty");
    lrules.push(Rule::Comb {
        a: up_s,
        ca: 1,
        b: lo_s,
        cb: 1,
    });
    let seal = lrules.len() - 1;
    Some(FmTree::Sealed(Derivation {
        rules: lrules,
        seal,
    }))
}

fn pick_variable(rows: &[Constraint], remaining: &[usize]) -> Option<usize> {
    remaining
        .iter()
        .enumerate()
        .map(|(idx, &v)| {
            let p = rows.iter().filter(|c| c.coeffs[v] > 0).count() as i64;
            let q = rows.iter().filter(|c| c.coeffs[v] < 0).count() as i64;
            (idx, p * q - p - q)
        })
        .min_by_key(|&(_, growth)| growth)
        .map(|(idx, _)| idx)
}

fn combine(lo: &Constraint, up: &Constraint, v: usize) -> Option<Constraint> {
    let a_lo = lo.coeffs[v]; // < 0
    let a_up = up.coeffs[v]; // > 0
    let m_lo = a_up;
    let m_up = a_lo.checked_neg()?;
    let mut coeffs = Vec::with_capacity(lo.coeffs.len());
    for (l, u) in lo.coeffs.iter().zip(&up.coeffs) {
        let term = l.checked_mul(m_lo)?.checked_add(u.checked_mul(m_up)?)?;
        coeffs.push(term);
    }
    debug_assert_eq!(coeffs[v], 0);
    let rhs = lo
        .rhs
        .checked_mul(m_lo)?
        .checked_add(up.rhs.checked_mul(m_up)?)?;
    Some(Constraint::new(coeffs, rhs))
}

#[allow(clippy::result_unit_err)]
fn tightest(
    rows: &[Constraint],
    var: usize,
    sample: &[i64],
    assigned: &[bool],
    is_lower: bool,
) -> Result<Option<Rational>, ()> {
    let mut best: Option<Rational> = None;
    for c in rows {
        let a = c.coeffs[var];
        debug_assert_ne!(a, 0);
        let mut rest = i128::from(c.rhs);
        for (j, &aj) in c.coeffs.iter().enumerate() {
            if j != var && aj != 0 {
                debug_assert!(assigned[j] || sample[j] == 0);
                rest = rest
                    .checked_sub(
                        i128::from(aj)
                            .checked_mul(i128::from(sample[j]))
                            .ok_or(())?,
                    )
                    .ok_or(())?;
            }
        }
        let bound = Rational::new(rest, i128::from(a)).map_err(|_| ())?;
        best = Some(match best {
            None => bound,
            Some(b) if is_lower => b.max(bound),
            Some(b) => b.min(bound),
        });
    }
    Ok(best)
}

fn branch(
    num_vars: usize,
    constraints: &[Constraint],
    limits: FmLimits,
    depth: usize,
    var: usize,
    le_val: i128,
    ge_val: i128,
) -> (FmOutcome, Option<FmTree>) {
    let (Ok(le_val), Ok(ge_val)) = (i64::try_from(le_val), i64::try_from(ge_val)) else {
        return (FmOutcome::Unknown, None);
    };
    let mut left = constraints.to_vec();
    let mut coeffs = vec![0i64; num_vars];
    coeffs[var] = 1;
    left.push(Constraint::new(coeffs.clone(), le_val));
    let mut right = constraints.to_vec();
    coeffs[var] = -1;
    let Some(neg) = ge_val.checked_neg() else {
        return (FmOutcome::Unknown, None);
    };
    right.push(Constraint::new(coeffs, neg));

    let (left_out, left_tree) = oracle_solve(num_vars, &left, limits, depth + 1);
    match left_out {
        FmOutcome::Sample(s) => return (FmOutcome::Sample(s), None),
        FmOutcome::Infeasible => {}
        FmOutcome::Unknown => {
            return match oracle_solve(num_vars, &right, limits, depth + 1).0 {
                FmOutcome::Sample(s) => (FmOutcome::Sample(s), None),
                _ => (FmOutcome::Unknown, None),
            };
        }
    }
    let (right_out, right_tree) = oracle_solve(num_vars, &right, limits, depth + 1);
    match right_out {
        FmOutcome::Infeasible => {
            let tree = match (left_tree, right_tree) {
                (Some(l), Some(r)) => Some(FmTree::Split {
                    var,
                    le: le_val,
                    ge: ge_val,
                    left: Box::new(l),
                    right: Box::new(r),
                }),
                _ => None,
            };
            (FmOutcome::Infeasible, tree)
        }
        other => (other, None),
    }
}

// ---------------------------------------------------------------------
// Generators and the differential property itself.

/// Small systems: 1–3 vars, boxed, mixing feasible, directly-infeasible,
/// integer-gap, and branch-and-bound paths.
fn arb_small_system() -> impl Strategy<Value = (usize, Vec<Constraint>)> {
    (1usize..=3)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(
                    (proptest::collection::vec(-4i64..=4, n), -12i64..=12),
                    0..=5,
                ),
                1i64..=8,
            )
        })
        .prop_map(|(n, rows, bx)| {
            let mut cs: Vec<Constraint> = rows
                .into_iter()
                .map(|(c, r)| Constraint::new(c, r))
                .collect();
            for v in 0..n {
                let mut row = vec![0i64; n];
                row[v] = 1;
                cs.push(Constraint::new(row.clone(), bx));
                row[v] = -1;
                cs.push(Constraint::new(row, bx));
            }
            (n, cs)
        })
}

/// Wide systems: right-hand sides drawn from near-`i64`-extreme bands so
/// back-substitution bounds outgrow the `i64`-component tier and the
/// overflow cutoffs (`combine`, `tightest`) are actually reached. The
/// rewrite must land on `Unknown` on *exactly* the same inputs.
fn arb_wide_system() -> impl Strategy<Value = (usize, Vec<Constraint>)> {
    let wide_rhs = (
        0u8..8,
        -12i64..=12,
        (i64::MAX / 2)..=i64::MAX,
        (i64::MAX / 4096)..=(i64::MAX / 2048),
    )
        .prop_map(|(band, small, big, mid)| match band {
            0..=2 => small,
            3 | 4 => big,
            5 | 6 => -big,
            _ => mid,
        });
    (1usize..=3)
        .prop_flat_map(move |n| {
            (
                Just(n),
                proptest::collection::vec(
                    (proptest::collection::vec(-4i64..=4, n), wide_rhs.clone()),
                    1..=5,
                ),
            )
        })
        .prop_map(|(n, rows)| {
            (
                n,
                rows.into_iter()
                    .map(|(c, r)| Constraint::new(c, r))
                    .collect(),
            )
        })
}

/// Asserts the rewrite and the oracle agree bit-for-bit.
fn assert_identical(n: usize, cs: &[Constraint], limits: FmLimits) -> Result<(), TestCaseError> {
    let new = fourier_motzkin_cert(n, cs, limits);
    let old = oracle_solve(n, cs, limits, 0);
    prop_assert_eq!(
        &new,
        &old,
        "rewrite diverged from rational-first oracle on {:?}",
        cs
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1500))]

    /// Bit-identical verdicts, samples, and refutation trees on boxed
    /// small systems (the fast-tier steady state).
    #[test]
    fn rewrite_matches_oracle_small((n, cs) in arb_small_system()) {
        assert_identical(n, &cs, FmLimits::default())?;
    }

    /// Bit-identical behaviour under tight limits, where both sides give
    /// up — the `Unknown` budget boundary must not move.
    #[test]
    fn rewrite_matches_oracle_tight_limits((n, cs) in arb_small_system()) {
        assert_identical(
            n,
            &cs,
            FmLimits { max_constraints: 6, max_branch_depth: 1 },
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Bit-identical behaviour on extreme-magnitude systems: tier
    /// promotion in the rewrite's bounds must be invisible, and overflow
    /// `Unknown`s must trip at the identical inputs.
    #[test]
    fn rewrite_matches_oracle_wide((n, cs) in arb_wide_system()) {
        assert_identical(n, &cs, FmLimits::default())?;
    }
}

/// Fixed regressions through both implementations: the doc example, an
/// integer gap, a branch-and-bound refutation, and the extreme midpoint.
#[test]
fn rewrite_matches_oracle_fixtures() {
    let fixtures: Vec<(usize, Vec<Constraint>)> = vec![
        (
            2,
            vec![
                Constraint::new(vec![1, 1], 3),
                Constraint::new(vec![-1, 0], -1),
                Constraint::new(vec![0, -1], -1),
            ],
        ),
        (
            1,
            vec![Constraint::new(vec![2], 1), Constraint::new(vec![-2], -1)],
        ),
        (
            2,
            vec![
                Constraint::new(vec![3, 5], 7),
                Constraint::new(vec![-3, -5], -7),
                Constraint::new(vec![-1, 0], 0),
                Constraint::new(vec![0, -1], 0),
                Constraint::new(vec![1, 0], 10),
                Constraint::new(vec![0, 1], 10),
            ],
        ),
        (
            1,
            vec![
                Constraint::new(vec![-1], i64::MAX / 2),
                Constraint::new(vec![1], i64::MAX / 2 - 1),
            ],
        ),
    ];
    for (n, cs) in fixtures {
        let new = fourier_motzkin_cert(n, &cs, FmLimits::default());
        let old = oracle_solve(n, &cs, FmLimits::default(), 0);
        assert_eq!(new, old, "diverged on fixture {cs:?}");
    }
}
