//! Property-based tests: the exact tests against brute-force enumeration
//! on randomly generated constraint systems.
//!
//! Each system is small enough (≤ 3 variables, coefficients ≤ 4 in
//! magnitude, right-hand sides ≤ 12) that any feasible instance has a
//! witness inside a modest box, so "no solution in the box plus a
//! bounding argument" gives ground truth. Every generated system includes
//! explicit box bounds, which makes brute force complete.

use dda_core::acyclic::{acyclic, AcyclicOutcome};
use dda_core::cascade::{complete_with_trace, run_cascade, CascadeOutcome};
use dda_core::fourier_motzkin::{fourier_motzkin, fourier_motzkin_with, FmLimits, FmOutcome};
use dda_core::loop_residue::{loop_residue, LoopResidueOutcome};
use dda_core::pipeline::run_pipeline;
use dda_core::svpc::{svpc, SvpcOutcome};
use dda_core::system::{Constraint, System};
use dda_core::{
    AnalyzerConfig, Answer, DependenceAnalyzer, MemoMode, NullProbe, PipelineConfig,
    RecordingProbe, TestKind,
};
use dda_ir::parse_program;
use proptest::prelude::*;

const BOX: i64 = 8;

/// A random constraint over `n` vars (plus implicit box bounds added by
/// the caller).
fn arb_constraint(n: usize) -> impl Strategy<Value = Constraint> {
    (proptest::collection::vec(-4i64..=4, n), -12i64..=12)
        .prop_map(|(coeffs, rhs)| Constraint::new(coeffs, rhs))
}

/// A system of 0..=4 random constraints over 1..=3 vars, each variable
/// boxed to [-BOX, BOX] so brute force is complete.
fn arb_system() -> impl Strategy<Value = System> {
    (1usize..=3)
        .prop_flat_map(|n| {
            proptest::collection::vec(arb_constraint(n), 0..=4).prop_map(move |cs| (n, cs))
        })
        .prop_map(|(n, cs)| {
            let mut s = System::new(n);
            for c in cs {
                s.push(c);
            }
            for v in 0..n {
                let mut up = vec![0i64; n];
                up[v] = 1;
                s.push(Constraint::new(up.clone(), BOX));
                up[v] = -1;
                s.push(Constraint::new(up, BOX));
            }
            s
        })
}

/// Exhaustive search over the box.
#[allow(unreachable_code)] // the odometer loop exits via `return`
fn brute_force(s: &System) -> Option<Vec<i64>> {
    let n = s.num_vars;
    let mut t = vec![-BOX; n];
    loop {
        if s.is_satisfied_by(&t) == Some(true) {
            return Some(t);
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == n {
                return None;
            }
            t[k] += 1;
            if t[k] <= BOX {
                break;
            }
            t[k] = -BOX;
            k += 1;
        }
    }
}

/// The pre-refactor cascade driver, copied verbatim (modulo the public
/// `complete_with_trace` accessor) from the tree before the pipeline
/// unification. [`run_pipeline`] with the full configuration must agree
/// with this function bit-for-bit on every input.
fn legacy_cascade(system: &System, limits: FmLimits) -> CascadeOutcome {
    let (bounds, residual) = match svpc(system) {
        SvpcOutcome::Infeasible => {
            return CascadeOutcome {
                answer: Answer::Independent,
                used: TestKind::Svpc,
            }
        }
        SvpcOutcome::Complete { sample } => {
            return CascadeOutcome {
                answer: Answer::Dependent(Some(sample)),
                used: TestKind::Svpc,
            }
        }
        SvpcOutcome::Partial { bounds, residual } => (bounds, residual),
    };

    let (bounds, residual, trace) = match acyclic(&bounds, &residual) {
        AcyclicOutcome::Infeasible => {
            return CascadeOutcome {
                answer: Answer::Independent,
                used: TestKind::Acyclic,
            }
        }
        AcyclicOutcome::Complete { sample } => {
            return CascadeOutcome {
                answer: Answer::Dependent(Some(sample)),
                used: TestKind::Acyclic,
            }
        }
        AcyclicOutcome::Stuck {
            bounds,
            residual,
            trace,
        } => (bounds, residual, trace),
    };

    match loop_residue(&bounds, &residual) {
        LoopResidueOutcome::Infeasible => {
            return CascadeOutcome {
                answer: Answer::Independent,
                used: TestKind::LoopResidue,
            }
        }
        LoopResidueOutcome::Feasible(mut sample) => {
            let answer = match complete_with_trace(&trace, &mut sample) {
                Some(()) => Answer::Dependent(Some(sample)),
                None => Answer::Dependent(None),
            };
            return CascadeOutcome {
                answer,
                used: TestKind::LoopResidue,
            };
        }
        LoopResidueOutcome::NotApplicable => {}
    }

    let n = bounds.len();
    let mut constraints = residual;
    for v in 0..n {
        if let Some(u) = bounds.ub[v] {
            let mut row = vec![0i64; n];
            row[v] = 1;
            constraints.push(Constraint::new(row, u));
        }
        if let Some(l) = bounds.lb[v] {
            let mut row = vec![0i64; n];
            row[v] = -1;
            let Some(neg) = l.checked_neg() else {
                return CascadeOutcome {
                    answer: Answer::Unknown,
                    used: TestKind::FourierMotzkin,
                };
            };
            constraints.push(Constraint::new(row, neg));
        }
    }
    match fourier_motzkin_with(n, &constraints, limits) {
        FmOutcome::Infeasible => CascadeOutcome {
            answer: Answer::Independent,
            used: TestKind::FourierMotzkin,
        },
        FmOutcome::Sample(mut sample) => {
            let answer = match complete_with_trace(&trace, &mut sample) {
                Some(()) => Answer::Dependent(Some(sample)),
                None => Answer::Dependent(None),
            };
            CascadeOutcome {
                answer,
                used: TestKind::FourierMotzkin,
            }
        }
        FmOutcome::Unknown => CascadeOutcome {
            answer: Answer::Unknown,
            used: TestKind::FourierMotzkin,
        },
    }
}

/// A small random two-level affine loop nest: coefficients and offsets
/// chosen so pairs land across the whole cascade (GCD independence, each
/// cascade test, direction refinement).
fn arb_program_source() -> impl Strategy<Value = String> {
    (
        (2i64..=8, 2i64..=8),              // trip counts
        (-3i64..=3, -3i64..=3, -5i64..=5), // write: i, j coefficients + offset
        (-3i64..=3, -3i64..=3, -5i64..=5), // read: i, j coefficients + offset
    )
        .prop_map(|((n, m), (wi, wj, wo), (ri, rj, ro))| {
            format!(
                "for i = 1 to {n} {{ for j = 1 to {m} {{ \
                 a[{wi} * i + {wj} * j + {wo}] = a[{ri} * i + {rj} * j + {ro}] + 1; }} }}"
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// The cascade agrees with brute force on every boxed system.
    #[test]
    fn cascade_matches_brute_force(s in arb_system()) {
        let truth = brute_force(&s);
        let out = run_cascade(&s);
        match out.answer {
            Answer::Independent => {
                prop_assert!(truth.is_none(),
                    "cascade says independent, brute force found {truth:?}\n{s}");
            }
            Answer::Dependent(witness) => {
                prop_assert!(truth.is_some(),
                    "cascade says dependent, brute force found nothing\n{s}");
                if let Some(w) = witness {
                    prop_assert_eq!(s.is_satisfied_by(&w), Some(true),
                        "witness invalid\n{}", s);
                }
            }
            Answer::Unknown => {
                // Allowed (inexact), but on these tiny systems it should
                // never happen — matching the paper's experience.
                prop_assert!(false, "cascade returned unknown on\n{s}");
            }
        }
    }

    /// Fourier–Motzkin alone is exact on every boxed system.
    #[test]
    fn fourier_motzkin_matches_brute_force(s in arb_system()) {
        let truth = brute_force(&s);
        match fourier_motzkin(s.num_vars, &s.constraints) {
            FmOutcome::Infeasible => prop_assert!(truth.is_none(), "{s}"),
            FmOutcome::Sample(w) => {
                prop_assert!(truth.is_some(), "{s}");
                prop_assert_eq!(s.is_satisfied_by(&w), Some(true), "{}", s);
            }
            FmOutcome::Unknown => prop_assert!(false, "unknown on\n{s}"),
        }
    }

    /// SVPC never lies: Infeasible means brute force finds nothing;
    /// Complete witnesses check out.
    #[test]
    fn svpc_sound(s in arb_system()) {
        match svpc(&s) {
            SvpcOutcome::Infeasible => {
                prop_assert!(brute_force(&s).is_none(), "{s}");
            }
            SvpcOutcome::Complete { sample } => {
                prop_assert_eq!(s.is_satisfied_by(&sample), Some(true), "{}", s);
            }
            SvpcOutcome::Partial { .. } => {}
        }
    }

    /// The unified pipeline at its full configuration is bit-identical to
    /// the pre-refactor cascade on every boxed system.
    #[test]
    fn pipeline_matches_legacy_cascade(s in arb_system()) {
        let legacy = legacy_cascade(&s, FmLimits::default());
        let piped = run_pipeline(&s, &PipelineConfig::full(), FmLimits::default(), &mut NullProbe);
        prop_assert_eq!(&piped, &legacy, "pipeline diverged from legacy cascade on\n{}", s);
        // And the run_cascade wrapper stays in agreement too.
        prop_assert_eq!(&run_cascade(&s), &legacy, "wrapper diverged on\n{}", s);
    }

    /// Attaching a recording probe never changes the pipeline's answer.
    #[test]
    fn pipeline_probe_is_transparent(s in arb_system()) {
        let silent = run_pipeline(&s, &PipelineConfig::full(), FmLimits::default(), &mut NullProbe);
        let mut probe = RecordingProbe::default();
        let recorded = run_pipeline(&s, &PipelineConfig::full(), FmLimits::default(), &mut probe);
        prop_assert_eq!(&recorded, &silent, "probe changed the outcome on\n{}", s);
        prop_assert!(!probe.events.is_empty(), "recording probe saw no events on\n{}", s);
    }

    /// gcd-row normalization preserves the integer solution set.
    #[test]
    fn normalization_preserves_integer_points(s in arb_system()) {
        let mut normalized = s.clone();
        normalized.normalize();
        let n = s.num_vars;
        let mut t = vec![-BOX; n];
        'grid: loop {
            prop_assert_eq!(
                s.is_satisfied_by(&t),
                normalized.is_satisfied_by(&t),
                "normalization changed satisfaction at {:?}\n{}", t, s
            );
            let mut k = 0;
            loop {
                if k == n {
                    break 'grid;
                }
                t[k] += 1;
                if t[k] <= BOX {
                    break;
                }
                t[k] = -BOX;
                k += 1;
            }
        }
    }
}

proptest! {
    // Whole-program analysis is heavier per case; fewer cases suffice
    // because each program contributes several pairs.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Analyzer-level probe transparency: for every memoization mode, an
    /// analysis observed by a recording probe returns a report identical
    /// to the unobserved analysis — same answers, same witnesses, same
    /// statistics, same cache attribution.
    #[test]
    fn analyzer_probe_transparent_across_memo_modes(src in arb_program_source()) {
        let program = parse_program(&src).unwrap();
        for memo in [MemoMode::Off, MemoMode::Simple, MemoMode::Improved] {
            let config = AnalyzerConfig { memo, ..AnalyzerConfig::default() };
            let silent = DependenceAnalyzer::with_config(config).analyze_program(&program);
            let mut probe = RecordingProbe::default();
            let observed = DependenceAnalyzer::with_config(config)
                .analyze_program_probed(&program, &mut probe);
            prop_assert_eq!(
                &observed, &silent,
                "probe changed the report under {:?} for\n{}", memo, src
            );
        }
    }
}
