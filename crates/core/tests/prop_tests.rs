//! Property-based tests: the exact tests against brute-force enumeration
//! on randomly generated constraint systems.
//!
//! Each system is small enough (≤ 3 variables, coefficients ≤ 4 in
//! magnitude, right-hand sides ≤ 12) that any feasible instance has a
//! witness inside a modest box, so "no solution in the box plus a
//! bounding argument" gives ground truth. Every generated system includes
//! explicit box bounds, which makes brute force complete.

use dda_core::cascade::run_cascade;
use dda_core::fourier_motzkin::{fourier_motzkin, FmOutcome};
use dda_core::svpc::{svpc, SvpcOutcome};
use dda_core::system::{Constraint, System};
use dda_core::Answer;
use proptest::prelude::*;

const BOX: i64 = 8;

/// A random constraint over `n` vars (plus implicit box bounds added by
/// the caller).
fn arb_constraint(n: usize) -> impl Strategy<Value = Constraint> {
    (proptest::collection::vec(-4i64..=4, n), -12i64..=12)
        .prop_map(|(coeffs, rhs)| Constraint::new(coeffs, rhs))
}

/// A system of 0..=4 random constraints over 1..=3 vars, each variable
/// boxed to [-BOX, BOX] so brute force is complete.
fn arb_system() -> impl Strategy<Value = System> {
    (1usize..=3)
        .prop_flat_map(|n| {
            proptest::collection::vec(arb_constraint(n), 0..=4).prop_map(move |cs| (n, cs))
        })
        .prop_map(|(n, cs)| {
            let mut s = System::new(n);
            for c in cs {
                s.push(c);
            }
            for v in 0..n {
                let mut up = vec![0i64; n];
                up[v] = 1;
                s.push(Constraint::new(up.clone(), BOX));
                up[v] = -1;
                s.push(Constraint::new(up, BOX));
            }
            s
        })
}

/// Exhaustive search over the box.
#[allow(unreachable_code)] // the odometer loop exits via `return`
fn brute_force(s: &System) -> Option<Vec<i64>> {
    let n = s.num_vars;
    let mut t = vec![-BOX; n];
    loop {
        if s.is_satisfied_by(&t) == Some(true) {
            return Some(t);
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == n {
                return None;
            }
            t[k] += 1;
            if t[k] <= BOX {
                break;
            }
            t[k] = -BOX;
            k += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// The cascade agrees with brute force on every boxed system.
    #[test]
    fn cascade_matches_brute_force(s in arb_system()) {
        let truth = brute_force(&s);
        let out = run_cascade(&s);
        match out.answer {
            Answer::Independent => {
                prop_assert!(truth.is_none(),
                    "cascade says independent, brute force found {truth:?}\n{s}");
            }
            Answer::Dependent(witness) => {
                prop_assert!(truth.is_some(),
                    "cascade says dependent, brute force found nothing\n{s}");
                if let Some(w) = witness {
                    prop_assert_eq!(s.is_satisfied_by(&w), Some(true),
                        "witness invalid\n{}", s);
                }
            }
            Answer::Unknown => {
                // Allowed (inexact), but on these tiny systems it should
                // never happen — matching the paper's experience.
                prop_assert!(false, "cascade returned unknown on\n{s}");
            }
        }
    }

    /// Fourier–Motzkin alone is exact on every boxed system.
    #[test]
    fn fourier_motzkin_matches_brute_force(s in arb_system()) {
        let truth = brute_force(&s);
        match fourier_motzkin(s.num_vars, &s.constraints) {
            FmOutcome::Infeasible => prop_assert!(truth.is_none(), "{s}"),
            FmOutcome::Sample(w) => {
                prop_assert!(truth.is_some(), "{s}");
                prop_assert_eq!(s.is_satisfied_by(&w), Some(true), "{}", s);
            }
            FmOutcome::Unknown => prop_assert!(false, "unknown on\n{s}"),
        }
    }

    /// SVPC never lies: Infeasible means brute force finds nothing;
    /// Complete witnesses check out.
    #[test]
    fn svpc_sound(s in arb_system()) {
        match svpc(&s) {
            SvpcOutcome::Infeasible => {
                prop_assert!(brute_force(&s).is_none(), "{s}");
            }
            SvpcOutcome::Complete { sample } => {
                prop_assert_eq!(s.is_satisfied_by(&sample), Some(true), "{}", s);
            }
            SvpcOutcome::Partial { .. } => {}
        }
    }

    /// gcd-row normalization preserves the integer solution set.
    #[test]
    fn normalization_preserves_integer_points(s in arb_system()) {
        let mut normalized = s.clone();
        normalized.normalize();
        let n = s.num_vars;
        let mut t = vec![-BOX; n];
        'grid: loop {
            prop_assert_eq!(
                s.is_satisfied_by(&t),
                normalized.is_satisfied_by(&t),
                "normalization changed satisfaction at {:?}\n{}", t, s
            );
            let mut k = 0;
            loop {
                if k == n {
                    break 'grid;
                }
                t[k] += 1;
                if t[k] <= BOX {
                    break;
                }
                t[k] = -BOX;
                k += 1;
            }
        }
    }
}
