//! Parallel batch dependence-analysis engine.
//!
//! [`Engine`] analyzes a batch of programs by fanning their reference
//! pairs across scoped worker threads, sharing work through the sharded
//! concurrent memo tables of [`dda_core::SharedMemo`] — and still
//! produces output *bit-identical* to running a single serial
//! [`DependenceAnalyzer`](dda_core::DependenceAnalyzer) over the same
//! programs in order: the same [`PairReport`]s, the same per-program
//! [`AnalysisStats`], regardless of worker count.
//!
//! # How determinism survives parallelism
//!
//! Every per-pair step (classification, key construction, the extended
//! GCD solve, the cascade) is a pure function in [`dda_core::steps`], so
//! results depend only on inputs, never on schedule. The engine runs in
//! waves:
//!
//! 1. **Classify** every pair in parallel (constant short-circuit or
//!    integer-problem construction).
//! 2. **Extended GCD**: compute no-bounds memo keys in parallel, then
//!    elect — serially, in global enumeration order — a *leader* per
//!    distinct key (the first pair that would reach the table in a
//!    serial run). Leaders solve in parallel; every other pair with the
//!    same key reuses the leader's result, exactly as a serial run would
//!    have found it in the table.
//! 3. **Full analysis**: the same election over full-result keys;
//!    leaders run the test cascade and direction refinement in parallel.
//! 4. **Assemble** serially, in enumeration order: rebuild each
//!    program's statistics delta by replaying the serial analyzer's
//!    counting discipline over the precomputed outcomes.
//!
//! Because a leader is always the *first* occurrence in enumeration
//! order, the hit/miss pattern — and therefore every statistics counter —
//! matches the serial analyzer's exactly. An unresolvable GCD solve
//! (overflow, `None`) is never inserted into the table, and since the
//! solve is deterministic per key, later pairs with that key are counted
//! as misses that recompute the identical `None` — again matching the
//! serial analyzer.
//!
//! # Example
//!
//! ```
//! use dda_engine::{Engine, EngineConfig};
//! use dda_ir::parse_program;
//!
//! let programs = vec![
//!     parse_program("for i = 1 to 10 { a[i] = a[i + 10] + 3; }")?,
//!     parse_program("for i = 1 to 10 { a[i + 1] = a[i] + 3; }")?,
//! ];
//! let mut engine = Engine::with_config(EngineConfig {
//!     workers: 4,
//!     ..EngineConfig::default()
//! });
//! let reports = engine.analyze_programs(&programs);
//! assert!(reports[0].pairs()[0].result.is_independent());
//! assert!(reports[1].pairs()[0].result.answer.is_dependent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod pool;

use std::collections::HashMap;
use std::path::Path;
use std::time::{Duration, Instant};

use dda_check::{check_pair, CheckOutcome};
use dda_core::gcd::{
    expand_lattice, refute_equalities, solve_equalities, solve_equalities_restricted,
    witness_for_problem, EqOutcome, Lattice,
};
use dda_core::memo::{nobounds_key, MemoKey, NoBoundsKey};
use dda_core::persist::PersistError;
use dda_core::stats::{AnalysisStats, StageTimings};
use dda_core::steps::{self, Classified, ReduceEffects};
use dda_core::{
    AnalyzerConfig, CachedOutcome, DependenceKind, MemoFormat, MemoMode, PairReport, ProgramReport,
    SharedMemo, StatsProbe,
};
use dda_graph::{build_graph, ProgramGraph};
use dda_ir::{extract_accesses, reference_pairs, Access, Program};
use dda_obs::{MemoTableKind, MetricsProbe, MetricsRegistry, TraceContext, WaveReport};

use pool::par_map_metered;

/// The telemetry verdict of one extended-GCD outcome (`None` is an
/// overflowed solve).
fn gcd_verdict_of(out: Option<&EqOutcome>) -> dda_core::pipeline::GcdVerdict {
    use dda_core::pipeline::GcdVerdict;
    match out {
        None => GcdVerdict::Overflow,
        Some(EqOutcome::Independent { .. }) => GcdVerdict::Independent,
        Some(EqOutcome::Lattice(_)) => GcdVerdict::Lattice,
    }
}

/// The engine's observability sink: the process-global registry plus an
/// optional request-scoped tee — the request's [`TraceContext`] local
/// delta and trace id, as threaded by [`analyze_batch_traced`].
///
/// `Copy`, so wave closures capture it by value. Every `record_*`
/// forwards to the global registry and, when a request scope is
/// attached, repeats the recording into the local delta — one extra
/// relaxed atomic add per event, no locks, no allocation. Nothing here
/// feeds back into analysis, so verdicts are bit-identical with or
/// without a scope (proptested in `tests/obs.rs`).
#[derive(Clone, Copy)]
struct Obs<'a> {
    global: &'a MetricsRegistry,
    local: Option<&'a MetricsRegistry>,
    trace: Option<dda_core::pipeline::TraceId>,
}

impl<'a> Obs<'a> {
    fn untraced(global: &'a MetricsRegistry) -> Obs<'a> {
        Obs {
            global,
            local: None,
            trace: None,
        }
    }

    fn traced(global: &'a MetricsRegistry, trace: Option<&'a TraceContext>) -> Obs<'a> {
        Obs {
            global,
            local: trace.map(TraceContext::local),
            trace: trace.map(TraceContext::id),
        }
    }

    /// A pipeline probe for one wave leader: records into the global
    /// registry and tees into the request scope when one is attached.
    fn probe(self) -> MetricsProbe<'a> {
        MetricsProbe::scoped(self.global, self.local, self.trace)
    }

    fn record_wave(self, wave: &WaveReport) {
        self.global.record_wave(wave);
        if let Some(local) = self.local {
            local.record_wave(wave);
        }
    }

    fn record_gcd(self, verdict: dda_core::pipeline::GcdVerdict, cached: bool, nanos: u64) {
        self.global.record_gcd(verdict, cached, nanos);
        if let Some(local) = self.local {
            local.record_gcd(verdict, cached, nanos);
        }
    }

    fn record_leader_elections(self, table: MemoTableKind, n: u64) {
        self.global.record_leader_elections(table, n);
        if let Some(local) = self.local {
            local.record_leader_elections(table, n);
        }
    }

    fn record_incremental(self, spliced: u64, resolved: u64) {
        self.global.record_incremental(spliced, resolved);
        if let Some(local) = self.local {
            local.record_incremental(spliced, resolved);
        }
    }

    fn record_graph(self, edges: [u64; 4], parallel: u64, sequential: u64, nanos: u64) {
        self.global.record_graph(edges, parallel, sequential, nanos);
        if let Some(local) = self.local {
            local.record_graph(edges, parallel, sequential, nanos);
        }
    }
}

/// [`par_map`] with the wave folded into the metrics registry. Empty
/// slices are skipped entirely so idle waves don't inflate the counts.
fn par_map_obs<T, R, F>(obs: Obs<'_>, workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let (out, wave) = par_map_metered(workers, items, f);
    obs.record_wave(&wave);
    out
}

/// Batch-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Shard count for the concurrent memo tables (contention knob only —
    /// never affects results).
    pub shards: usize,
    /// Memoization flavour. Overrides `analyzer.memo`, which would
    /// otherwise silently disagree with the shared tables.
    pub memo_mode: MemoMode,
    /// Per-pair analysis options (directions, pruning, symbolics, …).
    pub analyzer: AnalyzerConfig,
    /// Run the independent `dda-check` kernel over every report produced
    /// by [`Engine::analyze_programs`], panicking on any rejected
    /// certificate or resolution mismatch. Defaults to on under
    /// `debug_assertions`, turning every test of the engine into a
    /// translation-validation test; release callers opt in explicitly
    /// (e.g. the CLI's `--check`) via [`Engine::check_programs`], which
    /// reports failures instead of panicking.
    pub check: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 0,
            shards: 16,
            memo_mode: MemoMode::Improved,
            analyzer: AnalyzerConfig::default(),
            check: cfg!(debug_assertions),
        }
    }
}

impl EngineConfig {
    /// The analyzer configuration the engine actually runs with:
    /// [`analyzer`](Self::analyzer) with its memo flavour replaced by
    /// [`memo_mode`](Self::memo_mode). A serial
    /// [`DependenceAnalyzer`](dda_core::DependenceAnalyzer) built from
    /// this is the engine's reference semantics.
    #[must_use]
    pub fn effective_analyzer_config(&self) -> AnalyzerConfig {
        AnalyzerConfig {
            memo: self.memo_mode,
            ..self.analyzer
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// A wall-clock cancellation point threaded through the engine's wave
/// loop. `Deadline::none()` never expires; [`Deadline::after`] expires a
/// fixed duration from now.
///
/// Expiry is checked between waves and before every *leader* solve, so
/// a timed-out batch returns promptly with partial results: pairs whose
/// computation was skipped come back as assumed dependences with
/// [`Certificate::Conservative`](dda_core::Certificate) — sound, just
/// not exact — and [`BatchOutcome::deadline_exceeded`] reports that it
/// happened. Cached (warm) values are still used after expiry; only new
/// computation is cancelled.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// A deadline that never expires.
    #[must_use]
    pub fn none() -> Deadline {
        Deadline(None)
    }

    /// Expires `limit` from now.
    #[must_use]
    pub fn after(limit: Duration) -> Deadline {
        Deadline(Some(Instant::now() + limit))
    }

    /// At a specific instant.
    #[must_use]
    pub fn at(instant: Instant) -> Deadline {
        Deadline(Some(instant))
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.0.is_some_and(|t| Instant::now() >= t)
    }
}

/// Everything one [`analyze_batch`] call produced: per-program reports
/// plus the batch's aggregate accounting, so callers that share one
/// memo table across requests (the `dda serve` service) can accumulate
/// engine state without owning an [`Engine`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// One report per program, in input order.
    pub reports: Vec<ProgramReport>,
    /// Statistics summed over the batch (program enumeration order).
    pub stats: AnalysisStats,
    /// Stage wall-time accumulated over the batch.
    pub timings: StageTimings,
    /// Whether the deadline expired: some pairs carry conservative
    /// partial results instead of exact verdicts.
    pub deadline_exceeded: bool,
    /// Pairs whose verdicts were spliced straight from warm memo
    /// entries (including cold-tier archive faults) — the incremental
    /// fast path. `spliced + resolved == stats.pairs`.
    pub spliced: u64,
    /// Pairs actually re-solved this batch (including constant-resolved
    /// and deadline-cancelled conservative pairs).
    pub resolved: u64,
}

/// The parallel batch analyzer.
///
/// Like [`DependenceAnalyzer`](dda_core::DependenceAnalyzer), an engine
/// owns its memo tables, so one instance reused across batches models the
/// paper's "store the hash table across compilations" extension — and its
/// tables can be saved/loaded in the same `dda-memo v1` format.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    memo: SharedMemo,
    stats: AnalysisStats,
    timings: StageTimings,
    obs: MetricsRegistry,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::with_config(EngineConfig::default())
    }
}

/// One reference pair queued for analysis.
struct Job<'a> {
    a: &'a Access,
    b: &'a Access,
    common: usize,
}

/// Where a memoizable job's value comes from, decided serially in
/// enumeration order (see [`elect_leaders`]).
enum Src<V> {
    /// The shared table already had it (warm start / earlier batch).
    Warm(V),
    /// First occurrence of the key: this job computes.
    Leader,
    /// Reuse the result of the leader job at this index.
    Share(usize),
}

/// Outcome of the extended-GCD wave for one job.
// The lattice payload uses inline storage on purpose; boxing it here would
// add a heap allocation per batched GCD solve. The enum is consumed
// immediately after the phase, so its stack footprint does not accumulate.
#[allow(clippy::large_enum_variant)]
enum GcdRes {
    /// Constant or unbuildable pair: the GCD phase never ran.
    Skip,
    /// The solve overflowed; dependence is assumed.
    Overflow,
    /// The deadline expired before this job's solve could run;
    /// dependence is conservatively assumed (partial result).
    Cancelled,
    /// Proven independent. `hit` mirrors the serial analyzer's
    /// `gcd_memo_hits` increment for this pair.
    Independent {
        /// Whether a serial run would count this as a no-bounds memo hit.
        hit: bool,
        /// Whether the verdict came from a warm table/archive entry
        /// (not from a leader elected in this batch) — the pair was
        /// spliced, not re-solved.
        warm: bool,
        /// The solve's refutation witness, remapped to this problem's row
        /// order (absent when the witness did not transfer, e.g. a v1
        /// warm entry — assembly re-derives it).
        refutation: Option<(Vec<i64>, i64)>,
    },
    /// A solution lattice (expanded to all problem variables).
    Lattice {
        /// The expanded lattice.
        lattice: Lattice,
        /// Whether a serial run would count this as a no-bounds memo hit.
        hit: bool,
    },
}

/// Outcome of the full-analysis wave for one job.
enum FullRes {
    /// The job never reached the full phase (no lattice).
    NotReached,
    /// The deadline expired before this job's cascade could run.
    Cancelled,
    /// Freshly computed (leader, or memoization off).
    Computed {
        report: PairReport,
        fx: ReduceEffects,
        timings: StageTimings,
    },
    /// Served from the memo (warm hit or a leader's freshly inserted
    /// entry); rehydrated during assembly.
    Cached {
        cached: CachedOutcome,
        ck: dda_core::memo::CanonicalKey,
        flipped: bool,
        /// Warm table/archive entry (spliced) vs a leader's freshly
        /// inserted result (re-solved this batch).
        warm: bool,
    },
}

/// For each job's (optional) memo key, decide — serially, in enumeration
/// order — whether the value comes from the warm memo (resident table or
/// cold archive tier, via `lookup`), from this job as the elected
/// leader, or from an earlier leader. The memo is consulted exactly once
/// per distinct key, so its own traffic counters track *table* load, not
/// per-pair accounting.
fn elect_leaders<V: Clone>(
    keys: &[Option<&MemoKey>],
    lookup: impl Fn(&MemoKey) -> Option<V>,
) -> Vec<Option<Src<V>>> {
    let mut seen: HashMap<&MemoKey, Src<V>> = HashMap::new();
    let mut plan = Vec::with_capacity(keys.len());
    for (i, key) in keys.iter().enumerate() {
        let Some(k) = key else {
            plan.push(None);
            continue;
        };
        if let Some(prior) = seen.get(k) {
            plan.push(Some(match prior {
                Src::Warm(v) => Src::Warm(v.clone()),
                Src::Share(j) => Src::Share(*j),
                Src::Leader => unreachable!("leaders are recorded as Share"),
            }));
        } else if let Some(v) = lookup(k) {
            seen.insert(k, Src::Warm(v.clone()));
            plan.push(Some(Src::Warm(v)));
        } else {
            seen.insert(k, Src::Share(i));
            plan.push(Some(Src::Leader));
        }
    }
    plan
}

impl Engine {
    /// Creates an engine with the default configuration.
    #[must_use]
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Creates an engine with an explicit configuration.
    #[must_use]
    pub fn with_config(config: EngineConfig) -> Engine {
        Engine {
            memo: SharedMemo::new(config.shards),
            stats: AnalysisStats::default(),
            timings: StageTimings::default(),
            obs: MetricsRegistry::with_workers(config.effective_workers()),
            config,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cumulative statistics since construction (or the last
    /// [`reset`](Self::reset)), summed in program enumeration order.
    #[must_use]
    pub fn stats(&self) -> &AnalysisStats {
        &self.stats
    }

    /// Per-stage wall-time accumulators since construction (or the last
    /// [`reset`](Self::reset)). Call counts are deterministic — only
    /// *leader* solves are timed, and leader election is
    /// schedule-independent — while the nanosecond values naturally vary
    /// run to run. Aggregation happens in job enumeration order.
    #[must_use]
    pub fn stage_timings(&self) -> &StageTimings {
        &self.timings
    }

    /// The shared memo tables (e.g. for persistence).
    #[must_use]
    pub fn memo(&self) -> &SharedMemo {
        &self.memo
    }

    /// The always-on metrics registry: stage/GCD latencies, leader
    /// elections, worker-pool figures. Pure telemetry — nothing in it
    /// feeds back into results, and the deterministic outputs
    /// ([`stats`](Self::stats), reports) are identical whether or not
    /// anyone reads it.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.obs
    }

    /// Number of distinct entries in the full-result memo table.
    #[must_use]
    pub fn memo_entries(&self) -> usize {
        self.memo.full.unique_entries()
    }

    /// Number of distinct entries in the no-bounds (GCD) memo table.
    #[must_use]
    pub fn gcd_memo_entries(&self) -> usize {
        self.memo.gcd.unique_entries()
    }

    /// Clears memo tables, statistics, and metrics.
    pub fn reset(&mut self) {
        self.memo.clear();
        self.stats = AnalysisStats::default();
        self.timings = StageTimings::default();
        self.obs.clear();
    }

    /// Serializes the memo tables (`dda-memo v1`, interchangeable with
    /// the serial analyzer's).
    #[must_use]
    pub fn export_memo(&self) -> String {
        self.memo.export_memo()
    }

    /// Warm-starts the memo tables from exported text.
    ///
    /// # Errors
    ///
    /// Returns a located [`PersistError`] on malformed content.
    pub fn import_memo(&self, text: &str) -> Result<(), PersistError> {
        self.memo.import_memo(text)
    }

    /// Writes the memo tables to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_memo_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.memo.save_memo_file(path)
    }

    /// Warm-starts the memo tables from a file — `dda-memo v2` text or a
    /// v3 binary archive (attached as a lazily-faulted read tier) — and
    /// reports which format was found.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; format errors surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load_memo_file(&self, path: impl AsRef<Path>) -> std::io::Result<MemoFormat> {
        self.memo.load_memo_file(path)
    }

    /// Writes the memo tables (including any attached archive tier) as a
    /// sharded `dda-memo v3` binary archive.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_memo_file_v3(
        &self,
        path: impl AsRef<Path>,
        shard_count: usize,
    ) -> std::io::Result<()> {
        self.memo.save_memo_file_v3(path, shard_count)
    }

    /// Analyzes one program (a batch of one).
    pub fn analyze_program(&mut self, program: &Program) -> ProgramReport {
        self.analyze_programs(std::slice::from_ref(program))
            .pop()
            .expect("one program in, one report out")
    }

    /// Analyzes a batch of programs and returns one report per program,
    /// in input order — bit-identical to looping a serial
    /// [`DependenceAnalyzer`](dda_core::DependenceAnalyzer) (with
    /// [`EngineConfig::effective_analyzer_config`] and the same warm
    /// state) over the batch, for any worker or shard count.
    pub fn analyze_programs(&mut self, programs: &[Program]) -> Vec<ProgramReport> {
        let out = analyze_batch(
            &self.config,
            &self.memo,
            &self.obs,
            programs,
            Deadline::none(),
        );
        self.stats.add(&out.stats);
        self.timings.add(&out.timings);
        out.reports
    }
}

/// Analyzes a batch of programs against an externally owned memo table
/// and metrics registry — the long-running service entry point.
///
/// With [`Deadline::none()`] this is exactly [`Engine::analyze_programs`]
/// (which delegates here): bit-identical to a serial
/// [`DependenceAnalyzer`](dda_core::DependenceAnalyzer) with the same
/// warm state, for any worker or shard count. The difference is
/// ownership — `memo` and `obs` outlive any engine, so a caller like
/// `dda serve` keeps one warm [`SharedMemo`] across requests while each
/// request brings its own config and deadline.
///
/// When `deadline` expires mid-batch, remaining computation is skipped:
/// every affected pair reports `Answer::Unknown`, resolved-by-assumed,
/// with a `Conservative` certificate (sound, not exact); nothing is
/// inserted into the memo tables for it and no memo counters are
/// bumped; [`BatchOutcome::deadline_exceeded`] is set. Warm table
/// entries still resolve after expiry — only fresh solves are
/// cancelled. When `config.check` is on, the auto-check is skipped for
/// deadline-exceeded batches (conservative partials re-analyze to
/// different, exact answers by design).
pub fn analyze_batch(
    config: &EngineConfig,
    memo: &SharedMemo,
    obs: &MetricsRegistry,
    programs: &[Program],
    deadline: Deadline,
) -> BatchOutcome {
    analyze_batch_traced(config, memo, obs, programs, deadline, None)
}

/// [`analyze_batch`] with an optional request scope: when `trace` is
/// set, every wave report, leader election, stage timing, GCD verdict,
/// refinement, and the batch's spliced/resolved split are *teed* into
/// the context's local registry (in addition to `obs`) under its trace
/// id — so a service can attribute each recording to the request that
/// caused it.
///
/// Tracing is telemetry only: one extra relaxed atomic add per event,
/// still allocation-free on the hot path, and the returned reports,
/// stats, and timings are bit-identical to calling [`analyze_batch`]
/// without a scope (proptested in `tests/obs.rs`).
pub fn analyze_batch_traced(
    config: &EngineConfig,
    memo: &SharedMemo,
    obs: &MetricsRegistry,
    programs: &[Program],
    deadline: Deadline,
    trace: Option<&TraceContext>,
) -> BatchOutcome {
    let obs = Obs::traced(obs, trace);
    let cfg = config.effective_analyzer_config();
    let workers = config.effective_workers();
    let memo_on = cfg.memo != MemoMode::Off;

    // Flatten the batch into one global job list; each program owns a
    // contiguous range, so enumeration order is (program, pair).
    let sets: Vec<_> = programs.iter().map(extract_accesses).collect();
    let mut jobs: Vec<Job<'_>> = Vec::new();
    let mut ranges = Vec::with_capacity(programs.len());
    for set in &sets {
        let start = jobs.len();
        for pair in reference_pairs(set, cfg.include_input_deps) {
            jobs.push(Job {
                a: pair.a,
                b: pair.b,
                common: pair.common,
            });
        }
        ranges.push(start..jobs.len());
    }

    // Wave 1: classify every pair (pure).
    let classified = par_map_obs(obs, workers, &jobs, |_, j| {
        steps::classify_pair(j.a, j.b, j.common, cfg.symbolic)
    });

    // Wave 2: extended GCD.
    let (gcd, gcd_timings) = if memo_on {
        gcd_wave_memo(obs, memo, &cfg, workers, &jobs, &classified, deadline)
    } else {
        gcd_wave_off(obs, workers, &jobs, &classified, deadline)
    };
    let mut batch_timings = gcd_timings;

    // Wave 3: full analysis of the surviving (lattice) jobs.
    let full = if memo_on {
        full_wave_memo(obs, memo, &cfg, workers, &jobs, &classified, &gcd, deadline)
    } else {
        full_wave_off(obs, &cfg, workers, &jobs, &classified, &gcd, deadline)
    };

    // Wave 4: serial in-order assembly, replaying the serial
    // analyzer's counting discipline per program. Cancelled pairs are
    // handled up front: a bare conservative template, counted as
    // assumed, with none of the memo accounting a completed visit
    // would have done.
    let mut batch_stats = AnalysisStats::default();
    let mut deadline_exceeded = false;
    let mut batch_spliced = 0u64;
    let mut batch_resolved = 0u64;
    let mut reports = Vec::with_capacity(programs.len());
    let mut gcd_it = gcd.into_iter();
    let mut full_it = full.into_iter();
    for range in ranges {
        let mut delta = AnalysisStats::default();
        let mut pair_reports = Vec::with_capacity(range.len());
        for i in range {
            let job = &jobs[i];
            let g = gcd_it.next().expect("one GCD outcome per job");
            let f = full_it.next().expect("one full outcome per job");
            delta.pairs += 1;
            // Incremental accounting: a pair is *spliced* when its
            // verdict came straight from a warm memo entry (table or
            // archive tier), *re-solved* otherwise. Flipped below by
            // the warm arms.
            let mut spliced = false;
            let template = steps::pair_template(job.a, job.b, job.common);
            let report = match &classified[i] {
                Classified::Constant { dependent } => {
                    delta.constant += 1;
                    steps::constant_report(template, *dependent, cfg.compute_directions)
                }
                Classified::Unbuildable => {
                    delta.assumed += 1;
                    steps::assumed_report(template, cfg.compute_directions)
                }
                Classified::Problem(_)
                    if matches!(g, GcdRes::Cancelled) || matches!(f, FullRes::Cancelled) =>
                {
                    deadline_exceeded = true;
                    delta.assumed += 1;
                    template
                }
                Classified::Problem(p) => {
                    if memo_on {
                        delta.gcd_memo_queries += 1;
                    }
                    match g {
                        GcdRes::Skip => {
                            unreachable!("problem jobs always run the GCD wave")
                        }
                        GcdRes::Cancelled => unreachable!("handled by the guard above"),
                        // Overflows are never cached, so they are
                        // never hits.
                        GcdRes::Overflow => {
                            delta.assumed += 1;
                            template
                        }
                        GcdRes::Independent {
                            hit,
                            warm,
                            refutation,
                        } => {
                            if hit {
                                delta.gcd_memo_hits += 1;
                            }
                            spliced = warm;
                            delta.gcd_independent += 1;
                            let refutation = refutation.or_else(|| refute_equalities(p));
                            steps::gcd_independent_report(template, refutation)
                        }
                        GcdRes::Lattice { hit, .. } => {
                            if hit {
                                delta.gcd_memo_hits += 1;
                            }
                            if memo_on {
                                delta.memo_queries += 1;
                            }
                            match f {
                                FullRes::NotReached => {
                                    unreachable!("lattice jobs always run the full wave")
                                }
                                FullRes::Cancelled => {
                                    unreachable!("handled by the guard above")
                                }
                                FullRes::Computed {
                                    report,
                                    fx,
                                    timings,
                                } => {
                                    fx.apply_to(&mut delta);
                                    batch_timings.add(&timings);
                                    report
                                }
                                FullRes::Cached {
                                    cached,
                                    ck,
                                    flipped,
                                    warm,
                                } => {
                                    delta.memo_hits += 1;
                                    spliced = warm;
                                    steps::rehydrate_hit(cfg.memo, cached, &ck, flipped, template)
                                }
                            }
                        }
                    }
                }
            };
            if spliced {
                batch_spliced += 1;
            } else {
                batch_resolved += 1;
            }
            steps::note_outcome(&mut delta, &report);
            pair_reports.push(report);
        }
        batch_stats.add(&delta);
        reports.push(ProgramReport::from_parts(pair_reports, delta));
    }
    debug_assert_eq!(batch_spliced + batch_resolved, batch_stats.pairs);
    obs.record_incremental(batch_spliced, batch_resolved);
    if config.check && !deadline_exceeded {
        let summary = check_batch_obs(config, obs, programs, &reports);
        assert!(
            summary.failures.is_empty(),
            "certificate check failed: {:?}",
            summary.failures
        );
    }
    BatchOutcome {
        reports,
        stats: batch_stats,
        timings: batch_timings,
        deadline_exceeded,
        spliced: batch_spliced,
        resolved: batch_resolved,
    }
}

/// The memoized GCD wave: parallel key construction, serial leader
/// election, parallel leader solves, parallel per-job resolution. A
/// leader whose turn comes after `deadline` skips its solve; it and
/// every job sharing its key resolve to [`GcdRes::Cancelled`].
#[allow(clippy::too_many_arguments)]
fn gcd_wave_memo(
    obs: Obs<'_>,
    memo: &SharedMemo,
    cfg: &AnalyzerConfig,
    workers: usize,
    jobs: &[Job<'_>],
    classified: &[Classified],
    deadline: Deadline,
) -> (Vec<GcdRes>, StageTimings) {
    let improved = cfg.memo == MemoMode::Improved;
    let nkeys: Vec<Option<NoBoundsKey>> = par_map_obs(obs, workers, jobs, |i, _| {
        classified[i].problem().map(|p| nobounds_key(p, improved))
    });
    let key_refs: Vec<Option<&MemoKey>> = nkeys
        .iter()
        .map(|nk| nk.as_ref().map(|nk| &nk.key))
        .collect();
    let plan = elect_leaders(&key_refs, |k| memo.lookup_gcd(k));

    let leader_jobs: Vec<usize> = plan
        .iter()
        .enumerate()
        .filter_map(|(i, s)| matches!(s, Some(Src::Leader)).then_some(i))
        .collect();
    obs.record_leader_elections(MemoTableKind::Gcd, leader_jobs.len() as u64);
    let solved: Vec<Option<(Option<EqOutcome>, u64)>> =
        par_map_obs(obs, workers, &leader_jobs, |_, &i| {
            if deadline.expired() {
                return None;
            }
            let p = classified[i].problem().expect("leaders have a problem");
            let nk = nkeys[i].as_ref().expect("leaders have a key");
            let start = Instant::now();
            let out = solve_equalities_restricted(&p.eq_coeffs, &p.eq_rhs, &nk.kept_vars);
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            Some((out, nanos))
        });
    let mut timings = StageTimings::default();
    // Leaders absent from the map were cancelled by the deadline.
    let mut leader_out: HashMap<usize, Option<EqOutcome>> =
        HashMap::with_capacity(leader_jobs.len());
    for (slot, &i) in solved.into_iter().zip(&leader_jobs) {
        let Some((v, nanos)) = slot else {
            continue;
        };
        timings.record_gcd(nanos);
        obs.record_gcd(gcd_verdict_of(v.as_ref()), false, nanos);
        if let Some(v) = &v {
            // Matches the serial analyzer: overflows are not cached.
            memo.gcd.insert(
                nkeys[i].as_ref().expect("leaders have a key").key.clone(),
                v.clone(),
            );
        }
        leader_out.insert(i, v);
    }

    let res = par_map_obs(obs, workers, jobs, |i, _| {
        let Some(src) = &plan[i] else {
            return GcdRes::Skip;
        };
        let (canonical, hit, warm) = match src {
            Src::Warm(v) => (Some(v.clone()), true, true),
            Src::Leader => match leader_out.get(&i) {
                None => return GcdRes::Cancelled,
                Some(v) => (v.clone(), false, false),
            },
            Src::Share(j) => match leader_out.get(j) {
                None => return GcdRes::Cancelled,
                Some(v) => {
                    // The leader's overflow was not inserted, so a serial
                    // run would miss here and recompute the identical
                    // `None`; anything cached is a hit.
                    let hit = v.is_some();
                    (v.clone(), hit, false)
                }
            },
        };
        // Telemetry: non-leader jobs were served without solving
        // (leaders were recorded when they solved).
        if !matches!(src, Src::Leader) {
            obs.record_gcd(gcd_verdict_of(canonical.as_ref()), true, 0);
        }
        match canonical {
            None => GcdRes::Overflow,
            Some(EqOutcome::Independent { refutation }) => {
                let p = classified[i]
                    .problem()
                    .expect("memoized jobs have a problem");
                let nk = nkeys[i].as_ref().expect("memoized jobs have a key");
                GcdRes::Independent {
                    hit,
                    warm,
                    refutation: refutation.and_then(|w| witness_for_problem(p, &nk.kept_vars, &w)),
                }
            }
            Some(EqOutcome::Lattice(l)) => {
                let p = classified[i].problem().expect("lattice implies a problem");
                let nk = nkeys[i].as_ref().expect("memoized jobs have a key");
                GcdRes::Lattice {
                    lattice: expand_lattice(&l, &nk.kept_vars, p.num_vars()),
                    hit,
                }
            }
        }
    });
    (res, timings)
}

/// The memoized full-analysis wave over lattice jobs. Leaders whose
/// turn comes after `deadline` skip the cascade; they and every job
/// sharing their key resolve to [`FullRes::Cancelled`].
#[allow(clippy::too_many_arguments)]
fn full_wave_memo(
    obs: Obs<'_>,
    memo: &SharedMemo,
    cfg: &AnalyzerConfig,
    workers: usize,
    jobs: &[Job<'_>],
    classified: &[Classified],
    gcd: &[GcdRes],
    deadline: Deadline,
) -> Vec<FullRes> {
    let fkeys = par_map_obs(obs, workers, jobs, |i, _| {
        if !matches!(gcd[i], GcdRes::Lattice { .. }) {
            return None;
        }
        steps::full_key(
            cfg,
            classified[i].problem().expect("lattice implies a problem"),
        )
    });
    let key_refs: Vec<Option<&MemoKey>> = fkeys
        .iter()
        .map(|f| f.as_ref().map(|(ck, _)| &ck.key))
        .collect();
    let plan = elect_leaders(&key_refs, |k| memo.lookup_full(k));

    let leader_jobs: Vec<usize> = plan
        .iter()
        .enumerate()
        .filter_map(|(i, s)| matches!(s, Some(Src::Leader)).then_some(i))
        .collect();
    obs.record_leader_elections(MemoTableKind::Full, leader_jobs.len() as u64);
    let computed: Vec<Option<(PairReport, ReduceEffects, CachedOutcome, StageTimings)>> =
        par_map_obs(obs, workers, &leader_jobs, |_, &i| {
            if deadline.expired() {
                return None;
            }
            let job = &jobs[i];
            let p = classified[i].problem().expect("leaders have a problem");
            let GcdRes::Lattice { lattice, .. } = &gcd[i] else {
                unreachable!("full-wave leaders have a lattice")
            };
            let template = steps::pair_template(job.a, job.b, job.common);
            let mut fx = ReduceEffects::default();
            let mut probe = obs.probe();
            let report =
                steps::analyze_reduced_probed(cfg, p, lattice, template, &mut fx, &mut probe);
            let (ck, flipped) = fkeys[i].as_ref().expect("leaders have a key");
            let cached = steps::canonical_outcome(&report, ck, *flipped);
            Some((report, fx, cached, probe.timings))
        });

    // Leaders absent from both maps were cancelled by the deadline.
    let mut leader_reports: HashMap<usize, (PairReport, ReduceEffects, StageTimings)> =
        HashMap::with_capacity(leader_jobs.len());
    let mut leader_cached: HashMap<usize, CachedOutcome> =
        HashMap::with_capacity(leader_jobs.len());
    for (slot, &i) in computed.into_iter().zip(&leader_jobs) {
        let Some((report, fx, cached, timings)) = slot else {
            continue;
        };
        let (ck, _) = fkeys[i].as_ref().expect("leaders have a key");
        memo.full.insert(ck.key.clone(), cached.clone());
        leader_reports.insert(i, (report, fx, timings));
        leader_cached.insert(i, cached);
    }

    plan.iter()
        .zip(fkeys)
        .enumerate()
        .map(|(i, (src, fk))| match src {
            None => FullRes::NotReached,
            Some(Src::Warm(c)) => {
                let (ck, flipped) = fk.expect("planned jobs have a key");
                FullRes::Cached {
                    cached: c.clone(),
                    ck,
                    flipped,
                    warm: true,
                }
            }
            Some(Src::Leader) => match leader_reports.remove(&i) {
                None => FullRes::Cancelled,
                Some((report, fx, timings)) => FullRes::Computed {
                    report,
                    fx,
                    timings,
                },
            },
            Some(Src::Share(j)) => match leader_cached.get(j) {
                None => FullRes::Cancelled,
                Some(c) => {
                    let (ck, flipped) = fk.expect("planned jobs have a key");
                    FullRes::Cached {
                        cached: c.clone(),
                        ck,
                        flipped,
                        warm: false,
                    }
                }
            },
        })
        .collect()
}

/// One pair whose certificate failed independent verification — either
/// the kernel rejected it outright, or the pair's memo-free re-analysis
/// disagreed with the reported verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckFailure {
    /// Index of the program in the checked batch.
    pub program: usize,
    /// Index of the pair within that program's report.
    pub pair: usize,
    /// Name of the shared array (empty for enumeration mismatches).
    pub array: String,
    /// What went wrong.
    pub reason: String,
}

/// Aggregate result of checking a batch of reports.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckSummary {
    /// Pairs whose certificates the kernel verified (directly, or after
    /// resolving an unverified memo transfer by re-analysis).
    pub verified: usize,
    /// Pairs that remain without checkable evidence even after
    /// resolution (conservative claims of independence never occur, so
    /// these are re-analyses that again withheld a certificate).
    pub unverified: usize,
    /// Rejected certificates and resolution mismatches.
    pub failures: Vec<CheckFailure>,
}

impl CheckSummary {
    /// Whether every pair verified (no failures and nothing unverified).
    #[must_use]
    pub fn all_verified(&self) -> bool {
        self.failures.is_empty() && self.unverified == 0
    }
}

/// How one pair's check resolved.
enum Resolved {
    Verified,
    Unverified,
    Failed(String),
}

/// Re-analyzes one pair from scratch, memo-free — the serial
/// `MemoMode::Off` path, reproduced step by step. Used to resolve
/// [`CheckOutcome::Unverified`] reports: the fresh run carries a fresh
/// certificate for the kernel to verify.
fn fresh_pair_report(cfg: &AnalyzerConfig, a: &Access, b: &Access, common: usize) -> PairReport {
    let template = steps::pair_template(a, b, common);
    match steps::classify_pair(a, b, common, cfg.symbolic) {
        Classified::Constant { dependent } => {
            steps::constant_report(template, dependent, cfg.compute_directions)
        }
        Classified::Unbuildable => steps::assumed_report(template, cfg.compute_directions),
        Classified::Problem(p) => match solve_equalities(&p) {
            None => template, // overflow: dependence assumed
            Some(EqOutcome::Independent { refutation }) => {
                let refutation = refutation.or_else(|| refute_equalities(&p));
                steps::gcd_independent_report(template, refutation)
            }
            Some(EqOutcome::Lattice(lattice)) => {
                let mut fx = ReduceEffects::default();
                let mut probe = StatsProbe::default();
                steps::analyze_reduced_probed(cfg, &p, &lattice, template, &mut fx, &mut probe)
            }
        },
    }
}

impl Engine {
    /// Runs the independent `dda-check` kernel over a batch's reports, in
    /// parallel on the worker pool.
    ///
    /// Every pair's certificate is verified against a fresh enumeration
    /// of the program's reference pairs. Reports whose evidence did not
    /// transfer through the memo table
    /// ([`CheckOutcome::Unverified`](dda_check::CheckOutcome)) are
    /// *resolved*: the pair is re-analyzed from scratch with memoization
    /// off, the fresh verdict must agree with the reported one, and the
    /// fresh certificate is checked in its place.
    #[must_use]
    pub fn check_programs(&self, programs: &[Program], reports: &[ProgramReport]) -> CheckSummary {
        check_batch(&self.config, &self.obs, programs, reports)
    }
}

/// Runs the independent `dda-check` kernel over a batch's reports
/// against an externally owned metrics registry — the free-function
/// counterpart of [`Engine::check_programs`] (which delegates here),
/// for callers like `dda serve` that have no engine.
#[must_use]
pub fn check_batch(
    config: &EngineConfig,
    obs: &MetricsRegistry,
    programs: &[Program],
    reports: &[ProgramReport],
) -> CheckSummary {
    check_batch_obs(config, Obs::untraced(obs), programs, reports)
}

/// [`check_batch`] against the engine's internal sink, so a traced
/// batch's auto-check waves are teed into the request scope too.
fn check_batch_obs(
    config: &EngineConfig,
    obs: Obs<'_>,
    programs: &[Program],
    reports: &[ProgramReport],
) -> CheckSummary {
    let cfg = config.effective_analyzer_config();
    let resolve_cfg = AnalyzerConfig {
        memo: MemoMode::Off,
        ..cfg
    };
    let workers = config.effective_workers();

    struct CheckJob<'a> {
        program: usize,
        pair: usize,
        a: &'a Access,
        b: &'a Access,
        common: usize,
        report: &'a PairReport,
    }

    let mut summary = CheckSummary::default();
    let sets: Vec<_> = programs.iter().map(extract_accesses).collect();
    let mut jobs: Vec<CheckJob<'_>> = Vec::new();
    for (pi, (set, rep)) in sets.iter().zip(reports).enumerate() {
        let pairs = reference_pairs(set, cfg.include_input_deps);
        if pairs.len() != rep.pairs().len() {
            summary.failures.push(CheckFailure {
                program: pi,
                pair: 0,
                array: String::new(),
                reason: format!(
                    "report covers {} pairs but the program enumerates {}",
                    rep.pairs().len(),
                    pairs.len()
                ),
            });
            continue;
        }
        for (qi, (pair, pr)) in pairs.iter().zip(rep.pairs()).enumerate() {
            jobs.push(CheckJob {
                program: pi,
                pair: qi,
                a: pair.a,
                b: pair.b,
                common: pair.common,
                report: pr,
            });
        }
    }

    let outcomes = par_map_obs(obs, workers, &jobs, |_, j| {
        if j.report.a_access != j.a.id || j.report.b_access != j.b.id {
            return Resolved::Failed("report pair does not match the enumeration".into());
        }
        match check_pair(j.a, j.b, j.common, j.report) {
            CheckOutcome::Verified => Resolved::Verified,
            CheckOutcome::Rejected(e) => Resolved::Failed(e),
            CheckOutcome::Unverified => {
                let fresh = fresh_pair_report(&resolve_cfg, j.a, j.b, j.common);
                if std::mem::discriminant(&fresh.result.answer)
                    != std::mem::discriminant(&j.report.result.answer)
                {
                    return Resolved::Failed(format!(
                        "memo-free re-analysis answered {:?} but the report says {:?}",
                        fresh.result.answer, j.report.result.answer
                    ));
                }
                match check_pair(j.a, j.b, j.common, &fresh) {
                    CheckOutcome::Verified => Resolved::Verified,
                    CheckOutcome::Unverified => Resolved::Unverified,
                    CheckOutcome::Rejected(e) => {
                        Resolved::Failed(format!("fresh certificate rejected: {e}"))
                    }
                }
            }
        }
    });
    for (job, outcome) in jobs.iter().zip(outcomes) {
        match outcome {
            Resolved::Verified => summary.verified += 1,
            Resolved::Unverified => summary.unverified += 1,
            Resolved::Failed(reason) => summary.failures.push(CheckFailure {
                program: job.program,
                pair: job.pair,
                array: job.report.array.clone(),
                reason,
            }),
        }
    }
    summary
}

/// A graph-construction batch: one dependence graph per program, plus
/// the analysis outcome the graphs were lowered from.
#[derive(Debug)]
pub struct GraphOutcome {
    /// One dependence graph per program, in input order.
    pub graphs: Vec<ProgramGraph>,
    /// The underlying analysis outcome (reports, stats, timings,
    /// deadline flag) — `graphs[i]` was built from
    /// `batch.reports[i]`.
    pub batch: BatchOutcome,
}

/// Dense index for a [`DependenceKind`], matching
/// [`dda_obs::GRAPH_EDGE_LABELS`].
fn edge_kind_index(kind: DependenceKind) -> usize {
    match kind {
        DependenceKind::Flow => 0,
        DependenceKind::Anti => 1,
        DependenceKind::Output => 2,
        DependenceKind::Input => 3,
    }
}

/// Analyzes a batch and lowers every report to its dependence graph —
/// the engine entry point behind `dda graph`, `dda parallel`, and the
/// service's `/parallel` endpoint.
///
/// Graph construction is a pure function of (program, report), so the
/// graphs inherit the analysis batch's determinism: bit-identical for
/// any worker or shard count and to a serial
/// [`build_graph`] loop over the same reports. Per-graph telemetry
/// (edge counts by kind, parallel/sequential loop verdicts, build
/// latency) is folded into `obs`.
#[must_use]
pub fn graph_batch(
    config: &EngineConfig,
    memo: &SharedMemo,
    obs: &MetricsRegistry,
    programs: &[Program],
    deadline: Deadline,
) -> GraphOutcome {
    graph_batch_traced(config, memo, obs, programs, deadline, None)
}

/// [`graph_batch`] with an optional request scope — the graph
/// counterpart of [`analyze_batch_traced`]: analysis *and* graph-build
/// telemetry (edge counts, loop verdicts, build latency) are teed into
/// the context's local registry, and the built graphs are bit-identical
/// with tracing on or off.
#[must_use]
pub fn graph_batch_traced(
    config: &EngineConfig,
    memo: &SharedMemo,
    obs: &MetricsRegistry,
    programs: &[Program],
    deadline: Deadline,
    trace: Option<&TraceContext>,
) -> GraphOutcome {
    let batch = analyze_batch_traced(config, memo, obs, programs, deadline, trace);
    let obs = Obs::traced(obs, trace);
    let workers = config.effective_workers();
    let items: Vec<(&Program, &ProgramReport)> = programs.iter().zip(&batch.reports).collect();
    let built = par_map_obs(obs, workers, &items, |_, (program, report)| {
        let start = Instant::now();
        let graph = build_graph(program, report);
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        (graph, nanos)
    });
    let mut graphs = Vec::with_capacity(built.len());
    for (graph, nanos) in built {
        let mut by_kind = [0u64; 4];
        for e in &graph.edges {
            by_kind[edge_kind_index(e.kind)] += 1;
        }
        let (mut parallel, mut sequential) = (0u64, 0u64);
        for l in graph.loops.loops() {
            if graph.is_parallel(l.id) {
                parallel += 1;
            } else {
                sequential += 1;
            }
        }
        obs.record_graph(by_kind, parallel, sequential, nanos);
        graphs.push(graph);
    }
    GraphOutcome { graphs, batch }
}

impl Engine {
    /// Analyzes a batch and builds every program's dependence graph
    /// (see [`graph_batch`]); reports are folded into the engine's
    /// cumulative stats exactly as
    /// [`analyze_programs`](Self::analyze_programs) would.
    #[must_use]
    pub fn graph_programs(&mut self, programs: &[Program]) -> GraphOutcome {
        let out = graph_batch(
            &self.config,
            &self.memo,
            &self.obs,
            programs,
            Deadline::none(),
        );
        self.stats.add(&out.batch.stats);
        self.timings.add(&out.batch.timings);
        out
    }
}

/// Number of statements in a statement list, counting nested bodies.
fn stmt_count(stmts: &[dda_ir::Stmt]) -> usize {
    use dda_ir::Stmt;
    stmts
        .iter()
        .map(|s| match s {
            Stmt::For(f) => 1 + stmt_count(&f.body),
            Stmt::If(i) => 1 + stmt_count(&i.then_body) + stmt_count(&i.else_body),
            _ => 1,
        })
        .sum()
}

/// Removes the `idx`-th statement in pre-order (counting nested bodies).
/// Returns whether a removal happened; `idx` is decremented as statements
/// are passed over.
fn remove_stmt(stmts: &mut Vec<dda_ir::Stmt>, idx: &mut usize) -> bool {
    use dda_ir::Stmt;
    let mut i = 0;
    while i < stmts.len() {
        if *idx == 0 {
            stmts.remove(i);
            return true;
        }
        *idx -= 1;
        let removed = match &mut stmts[i] {
            Stmt::For(f) => remove_stmt(&mut f.body, idx),
            Stmt::If(s) => remove_stmt(&mut s.then_body, idx) || remove_stmt(&mut s.else_body, idx),
            _ => false,
        };
        if removed {
            return true;
        }
        i += 1;
    }
    false
}

/// Greedily shrinks a program while `still_fails` keeps returning `true`:
/// repeatedly deletes single statements (anywhere in the nest) whose
/// removal preserves the failure, until no single deletion does. Used by
/// `dda --check` to dump a minimal reproducer when a certificate is
/// rejected. If the input itself does not satisfy `still_fails`, it is
/// returned unchanged.
pub fn minimize_program<F: Fn(&Program) -> bool>(program: &Program, still_fails: F) -> Program {
    let mut current = program.clone();
    loop {
        let mut shrunk = false;
        for k in 0..stmt_count(&current.stmts) {
            let mut candidate = current.clone();
            let mut idx = k;
            if !remove_stmt(&mut candidate.stmts, &mut idx) {
                continue;
            }
            if still_fails(&candidate) {
                current = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// The GCD wave without memoization: every problem job solves its own
/// full equality system, exactly like the serial `MemoMode::Off` path.
fn gcd_wave_off(
    obs: Obs<'_>,
    workers: usize,
    jobs: &[Job<'_>],
    classified: &[Classified],
    deadline: Deadline,
) -> (Vec<GcdRes>, StageTimings) {
    let solved = par_map_obs(obs, workers, jobs, |i, _| match classified[i].problem() {
        None => (GcdRes::Skip, 0),
        Some(_) if deadline.expired() => (GcdRes::Cancelled, 0),
        Some(p) => {
            let start = Instant::now();
            let out = solve_equalities(p);
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let res = match out {
                None => GcdRes::Overflow,
                Some(EqOutcome::Independent { refutation }) => GcdRes::Independent {
                    hit: false,
                    warm: false,
                    refutation,
                },
                Some(EqOutcome::Lattice(l)) => GcdRes::Lattice {
                    lattice: l,
                    hit: false,
                },
            };
            (res, nanos)
        }
    });
    let mut timings = StageTimings::default();
    let res = solved
        .into_iter()
        .map(|(res, nanos)| {
            if !matches!(res, GcdRes::Skip | GcdRes::Cancelled) {
                timings.record_gcd(nanos);
                let verdict = match &res {
                    GcdRes::Overflow => dda_core::pipeline::GcdVerdict::Overflow,
                    GcdRes::Independent { .. } => dda_core::pipeline::GcdVerdict::Independent,
                    GcdRes::Lattice { .. } => dda_core::pipeline::GcdVerdict::Lattice,
                    GcdRes::Skip | GcdRes::Cancelled => unreachable!("filtered above"),
                };
                obs.record_gcd(verdict, false, nanos);
            }
            res
        })
        .collect();
    (res, timings)
}

/// The full-analysis wave without memoization: every lattice job runs the
/// cascade itself.
fn full_wave_off(
    obs: Obs<'_>,
    cfg: &AnalyzerConfig,
    workers: usize,
    jobs: &[Job<'_>],
    classified: &[Classified],
    gcd: &[GcdRes],
    deadline: Deadline,
) -> Vec<FullRes> {
    par_map_obs(obs, workers, jobs, |i, job| {
        let GcdRes::Lattice { lattice, .. } = &gcd[i] else {
            return FullRes::NotReached;
        };
        if deadline.expired() {
            return FullRes::Cancelled;
        }
        let p = classified[i].problem().expect("lattice implies a problem");
        let template = steps::pair_template(job.a, job.b, job.common);
        let mut fx = ReduceEffects::default();
        let mut probe = obs.probe();
        let report = steps::analyze_reduced_probed(cfg, p, lattice, template, &mut fx, &mut probe);
        FullRes::Computed {
            report,
            fx,
            timings: probe.timings,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_core::DependenceAnalyzer;
    use dda_ir::parse_program;

    const SOURCES: &[&str] = &[
        "for i = 1 to 10 { a[i] = a[i + 10] + 3; }",
        "for i = 1 to 10 { a[i + 1] = a[i] + 3; }",
        "for i1 = 1 to 10 { for i2 = 1 to 10 { a[i1][i2] = a[i2 + 10][i1 + 9] + 1; } }",
        "for i = 1 to 10 { a[3] = a[4] + a[3]; }",
        "for i = 1 to 8 { for j = 1 to 8 { b[i][j] = b[i - 1][j + 1] + 1; } }",
        "for i = 1 to 10 { a[2 * i] = a[2 * i + 1] + 1; }",
        "for i = 1 to 10 { a[i + 1] = a[i] + 3; }",
    ];

    fn batch() -> Vec<Program> {
        SOURCES.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    fn serial_reports(cfg: AnalyzerConfig, programs: &[Program]) -> Vec<ProgramReport> {
        let mut analyzer = DependenceAnalyzer::with_config(cfg);
        programs
            .iter()
            .map(|p| analyzer.analyze_program(p))
            .collect()
    }

    #[test]
    fn matches_serial_analyzer_for_every_memo_mode() {
        let programs = batch();
        for memo_mode in [MemoMode::Off, MemoMode::Simple, MemoMode::Improved] {
            for workers in [1, 3] {
                let config = EngineConfig {
                    workers,
                    shards: 4,
                    memo_mode,
                    ..EngineConfig::default()
                };
                let mut engine = Engine::with_config(config);
                let got = engine.analyze_programs(&programs);
                let want = serial_reports(config.effective_analyzer_config(), &programs);
                assert_eq!(got, want, "memo={memo_mode:?} workers={workers}");
            }
        }
    }

    #[test]
    fn graph_batch_matches_serial_build_and_records_metrics() {
        let programs = batch();
        let want: Vec<ProgramGraph> = {
            let config = EngineConfig::default();
            let reports = serial_reports(config.effective_analyzer_config(), &programs);
            programs
                .iter()
                .zip(&reports)
                .map(|(p, r)| build_graph(p, r))
                .collect()
        };
        for workers in [1, 3] {
            let config = EngineConfig {
                workers,
                shards: 4,
                ..EngineConfig::default()
            };
            let mut engine = Engine::with_config(config);
            let out = engine.graph_programs(&programs);
            assert_eq!(out.graphs, want, "workers={workers}");
            let edges: u64 = engine.metrics().graph_edges().iter().sum();
            let total: usize = want.iter().map(|g| g.edges.len()).sum();
            assert_eq!(edges, total as u64);
            assert_eq!(
                engine.metrics().graph_build_latency().count,
                programs.len() as u64
            );
            let loops: u64 =
                engine.metrics().graph_parallel_loops() + engine.metrics().graph_sequential_loops();
            let total_loops: usize = want.iter().map(|g| g.loops.len()).sum();
            assert_eq!(loops, total_loops as u64);
        }
    }

    #[test]
    fn cumulative_stats_match_serial() {
        let programs = batch();
        let config = EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        };
        let mut engine = Engine::with_config(config);
        engine.analyze_programs(&programs);
        let mut analyzer = DependenceAnalyzer::with_config(config.effective_analyzer_config());
        for p in &programs {
            analyzer.analyze_program(p);
        }
        assert_eq!(engine.stats(), analyzer.stats());
        assert_eq!(engine.memo_entries(), analyzer.memo_entries());
        assert_eq!(engine.gcd_memo_entries(), analyzer.gcd_memo_entries());
    }

    #[test]
    fn warm_start_round_trips_with_serial_analyzer() {
        let programs = batch();
        let config = EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        };
        let mut cold = Engine::with_config(config);
        cold.analyze_programs(&programs);
        let exported = cold.export_memo();

        // A warm engine replays with hits everywhere a serial warm
        // analyzer would hit.
        let mut warm = Engine::with_config(config);
        warm.import_memo(&exported).unwrap();
        let got = warm.analyze_programs(&programs);
        let mut analyzer = DependenceAnalyzer::with_config(config.effective_analyzer_config());
        analyzer.import_memo(&exported).unwrap();
        let want: Vec<ProgramReport> = programs
            .iter()
            .map(|p| analyzer.analyze_program(p))
            .collect();
        assert_eq!(got, want);
        assert!(got.iter().any(|r| r.pairs().iter().any(|p| p.from_cache)));
    }

    #[test]
    fn v3_warm_start_is_bit_identical_to_v2_at_any_workers_and_shards() {
        let programs = batch();
        let dir = std::env::temp_dir().join("dda_engine_v3_test");
        std::fs::create_dir_all(&dir).unwrap();
        let v2 = dir.join("bit_identical.dda-memo");
        let v3 = dir.join("bit_identical.dda-memo3");

        let mut cold = Engine::with_config(EngineConfig::default());
        cold.analyze_programs(&programs);
        cold.save_memo_file(&v2).unwrap();
        cold.save_memo_file_v3(&v3, 4).unwrap();

        // The reference: a warm serial analyzer replaying the batch.
        let mut analyzer =
            DependenceAnalyzer::with_config(EngineConfig::default().effective_analyzer_config());
        analyzer.load_memo_file(&v2).unwrap();
        let want: Vec<ProgramReport> = programs
            .iter()
            .map(|p| analyzer.analyze_program(p))
            .collect();

        for workers in [1, 3] {
            for shards in [1, 8] {
                let config = EngineConfig {
                    workers,
                    shards,
                    ..EngineConfig::default()
                };
                let mut from_v2 = Engine::with_config(config);
                assert_eq!(from_v2.load_memo_file(&v2).unwrap(), MemoFormat::V2Text);
                let got_v2 = from_v2.analyze_programs(&programs);

                let mut from_v3 = Engine::with_config(config);
                assert_eq!(from_v3.load_memo_file(&v3).unwrap(), MemoFormat::V3Binary);
                let got_v3 = from_v3.analyze_programs(&programs);

                assert_eq!(got_v2, want, "v2 warm, workers={workers} shards={shards}");
                assert_eq!(got_v3, want, "v3 warm, workers={workers} shards={shards}");
                // The archive tier serves the same hits the resident
                // v2 table does, so splice accounting agrees too.
                assert_eq!(
                    from_v3.metrics().incremental_spliced(),
                    from_v2.metrics().incremental_spliced(),
                );
            }
        }
        std::fs::remove_file(&v2).ok();
        std::fs::remove_file(&v3).ok();
    }

    #[test]
    fn incremental_reanalysis_splices_unchanged_pairs_and_passes_check() {
        let programs = batch();
        let dir = std::env::temp_dir().join("dda_engine_v3_test");
        std::fs::create_dir_all(&dir).unwrap();
        let v3 = dir.join("incremental.dda-memo3");

        let config = EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        };
        let mut cold = Engine::with_config(config);
        cold.analyze_programs(&programs);
        cold.save_memo_file_v3(&v3, 2).unwrap();

        // Edit one program; the rest of the batch is unchanged and its
        // verdicts splice straight from the archive.
        let mut edited = programs.clone();
        edited[3] = parse_program("for i = 1 to 10 { a[5] = a[6] + a[5]; }").unwrap();

        let mut warm = Engine::with_config(config);
        warm.load_memo_file(&v3).unwrap();
        let reports = warm.analyze_programs(&edited);

        let spliced = warm.metrics().incremental_spliced();
        let resolved = warm.metrics().incremental_resolved();
        let pairs: u64 = reports.iter().map(|r| r.stats.pairs).sum();
        assert_eq!(spliced + resolved, pairs);
        assert!(spliced > 0, "unchanged pairs must splice from the memo");
        assert!(resolved > 0, "the edited program must re-solve");

        // Spliced verdicts carry certificates the independent kernel
        // accepts.
        let summary = warm.check_programs(&edited, &reports);
        assert!(summary.failures.is_empty(), "{:?}", summary.failures);

        // Incremental replay is bit-identical to analyzing the edited
        // batch cold-plus-warm-table (the serial analyzer's view).
        let mut analyzer = DependenceAnalyzer::with_config(config.effective_analyzer_config());
        analyzer.load_memo_file(&v3).unwrap();
        let want: Vec<ProgramReport> = edited.iter().map(|p| analyzer.analyze_program(p)).collect();
        assert_eq!(reports, want);
        std::fs::remove_file(&v3).ok();
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let programs = batch();
        let mut reference: Option<Vec<ProgramReport>> = None;
        for shards in [1, 2, 64] {
            let mut engine = Engine::with_config(EngineConfig {
                workers: 3,
                shards,
                ..EngineConfig::default()
            });
            let got = engine.analyze_programs(&programs);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "shards={shards}"),
            }
        }
    }

    #[test]
    fn stage_timing_call_counts_are_deterministic() {
        // Only leaders are timed, and leader election replays the serial
        // miss pattern — so stage-call counts must equal what a serial
        // analyzer's StatsProbe sees, for any worker count.
        let programs = batch();
        let config = EngineConfig {
            workers: 3,
            ..EngineConfig::default()
        };
        let mut engine = Engine::with_config(config);
        engine.analyze_programs(&programs);

        let mut analyzer = DependenceAnalyzer::with_config(config.effective_analyzer_config());
        let mut probe = StatsProbe::default();
        for p in &programs {
            analyzer.analyze_program_probed(p, &mut probe);
        }
        assert_eq!(engine.stage_timings().calls, probe.timings.calls);
        // Serial probes time every GCD phase (hits included); the engine
        // times only the solves that actually ran (the misses).
        let stats = engine.stats();
        assert_eq!(
            engine.stage_timings().gcd_calls,
            stats.gcd_memo_queries - stats.gcd_memo_hits
        );

        engine.reset();
        assert_eq!(engine.stage_timings().total_calls(), 0);
    }

    #[test]
    fn check_programs_verifies_batches_and_catches_corruption() {
        use dda_core::Answer;
        let programs = batch();
        let config = EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        };
        let mut engine = Engine::with_config(config);
        let reports = engine.analyze_programs(&programs);
        // Cold run: everything carries a fresh certificate.
        let summary = engine.check_programs(&programs, &reports);
        assert!(summary.failures.is_empty(), "{:?}", summary.failures);
        assert!(summary.all_verified());

        // Warm run: memo hits come back Unverified and are resolved by
        // memo-free re-analysis — still zero failures, zero unverified.
        let warm = engine.analyze_programs(&programs);
        let summary = engine.check_programs(&programs, &warm);
        assert!(summary.failures.is_empty(), "{:?}", summary.failures);
        assert!(summary.all_verified());
        assert!(warm.iter().any(|r| r.pairs().iter().any(|p| p.from_cache)));

        // Corrupt a verdict: a dependent pair flipped to Independent must
        // be caught (its witness certificate proves the opposite).
        let mut pairs: Vec<PairReport> = warm[1].pairs().to_vec();
        assert!(!pairs[0].result.is_independent());
        pairs[0].result.answer = Answer::Independent;
        let forged = ProgramReport::from_parts(pairs, warm[1].stats);
        let summary = engine.check_programs(&programs[1..2], std::slice::from_ref(&forged));
        assert_eq!(summary.failures.len(), 1, "{summary:?}");
        assert_eq!(summary.failures[0].program, 0);
        assert_eq!(summary.failures[0].pair, 0);
    }

    #[test]
    fn minimizer_shrinks_to_the_failing_statement() {
        let src = "for i = 1 to 10 { \
                     b[i] = 0; \
                     for j = 1 to 10 { c[j] = 1; a[i][j] = a[i][j - 1] + 1; } \
                     d[i] = 2; \
                   }";
        let program = parse_program(src).unwrap();
        // "Failure" = the program still contains the coupled a[][] pair.
        let still_fails = |p: &Program| {
            let accesses = dda_ir::extract_accesses(p);
            dda_ir::reference_pairs(&accesses, false)
                .iter()
                .any(|pair| pair.a.array == "a" && pair.b.array == "a")
        };
        let min = minimize_program(&program, still_fails);
        assert!(still_fails(&min));
        // Everything except the enclosing loops and the one a[][]
        // statement is gone: for i { for j { a[i][j] = ...; } }.
        assert_eq!(stmt_count(&min.stmts), 3, "{min}");

        // A predicate the original never satisfies leaves it untouched.
        let untouched = minimize_program(&program, |_| false);
        assert_eq!(stmt_count(&untouched.stmts), stmt_count(&program.stmts));
    }

    #[test]
    fn analyze_batch_with_no_deadline_matches_the_engine_path() {
        let programs = batch();
        let config = EngineConfig {
            workers: 3,
            check: false,
            ..EngineConfig::default()
        };
        let memo = SharedMemo::new(config.shards);
        let obs = MetricsRegistry::with_workers(3);
        let out = analyze_batch(&config, &memo, &obs, &programs, Deadline::none());
        assert!(!out.deadline_exceeded);
        let want = serial_reports(config.effective_analyzer_config(), &programs);
        assert_eq!(out.reports, want);
    }

    #[test]
    fn expired_deadline_yields_conservative_partial_results() {
        let programs = batch();
        for memo_mode in [MemoMode::Off, MemoMode::Improved] {
            let config = EngineConfig {
                workers: 2,
                memo_mode,
                check: false,
                ..EngineConfig::default()
            };
            let memo = SharedMemo::new(config.shards);
            let obs = MetricsRegistry::with_workers(2);
            let out = analyze_batch(
                &config,
                &memo,
                &obs,
                &programs,
                Deadline::after(Duration::ZERO),
            );
            assert!(out.deadline_exceeded, "memo={memo_mode:?}");
            assert_eq!(out.reports.len(), programs.len());
            // Cancelled leaders insert nothing into the shared tables.
            assert_eq!(memo.full.unique_entries(), 0);
            assert_eq!(memo.gcd.unique_entries(), 0);
            // Every pair either short-circuited as constant (those still
            // resolve exactly — classification ran before the deadline
            // check) or came back as a conservative assumed dependence.
            for r in &out.reports {
                assert_eq!(r.stats.assumed + r.stats.constant, r.stats.pairs);
            }
        }
    }

    #[test]
    fn warm_table_entries_still_resolve_past_the_deadline() {
        // Only fresh computation is cancelled: a fully warm table
        // answers the whole batch even with an already-expired deadline.
        let programs = batch();
        let config = EngineConfig {
            workers: 2,
            check: false,
            ..EngineConfig::default()
        };
        let memo = SharedMemo::new(config.shards);
        let obs = MetricsRegistry::with_workers(2);
        let cold = analyze_batch(&config, &memo, &obs, &programs, Deadline::none());
        let warm = analyze_batch(
            &config,
            &memo,
            &obs,
            &programs,
            Deadline::after(Duration::ZERO),
        );
        assert!(!warm.deadline_exceeded, "no fresh solves were needed");
        for (c, w) in cold.reports.iter().zip(&warm.reports) {
            for (cp, wp) in c.pairs().iter().zip(w.pairs()) {
                assert_eq!(
                    std::mem::discriminant(&cp.result.answer),
                    std::mem::discriminant(&wp.result.answer)
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_program() {
        let mut engine = Engine::new();
        assert!(engine.analyze_programs(&[]).is_empty());
        let trivial = parse_program("for i = 1 to 10 { a[i] = 1; }").unwrap();
        let report = engine.analyze_program(&trivial);
        assert_eq!(report.stats.pairs, 0);
    }
}
