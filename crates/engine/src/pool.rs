//! A minimal scoped-thread fork/join helper.
//!
//! The engine's waves are all embarrassingly parallel maps over job
//! slices, so a work-stealing pool would be overkill: scoped threads with
//! an atomic bump index balance load perfectly well when per-item cost
//! varies, and results are merged back *by index*, which is what keeps
//! the engine's output order (and therefore its statistics) identical to
//! the serial analyzer's.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

use dda_obs::{WaveReport, WorkerWork};

/// Applies `f` to every item, spreading work across up to `workers`
/// threads, and returns the results in item order — plus a measurement
/// of the wave: wall time and, per worker, items processed, busy
/// nanoseconds inside `f`, and the delay before the first item was
/// picked up. Falls back to a plain serial map when a single worker (or
/// a trivial slice) makes threads pointless; the fallback reports one
/// worker whose busy time is the wall time.
///
/// The report is plain data (see [`WaveReport`]) so this module needs
/// no knowledge of the metrics registry, and the item-ordered merge
/// keeps results schedule-independent — only the nanosecond readings
/// (and, in parallel mode, the per-worker task split) vary run to run.
pub(crate) fn par_map_metered<T, R, F>(workers: usize, items: &[T], f: F) -> (Vec<R>, WaveReport)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let wave_start = Instant::now();
    if workers <= 1 || items.len() <= 1 {
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        let wall = elapsed_nanos(wave_start);
        let report = WaveReport {
            wall_nanos: wall,
            workers: vec![WorkerWork {
                tasks: items.len() as u64,
                busy_nanos: wall,
                queue_wait_nanos: 0,
            }],
        };
        return (out, report);
    }
    let threads = workers.min(items.len());
    let next = AtomicUsize::new(0);
    let parts: Vec<(Vec<(usize, R)>, WorkerWork)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    let mut work = WorkerWork::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        if work.tasks == 0 {
                            work.queue_wait_nanos = elapsed_nanos(wave_start);
                        }
                        let item_start = Instant::now();
                        local.push((i, f(i, &items[i])));
                        work.busy_nanos += elapsed_nanos(item_start);
                        work.tasks += 1;
                    }
                    (local, work)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut report = WaveReport {
        wall_nanos: elapsed_nanos(wave_start),
        workers: Vec::with_capacity(parts.len()),
    };
    for (part, work) in parts {
        report.workers.push(work);
        for (i, r) in part {
            debug_assert!(out[i].is_none(), "index {i} mapped twice");
            out[i] = Some(r);
        }
    }
    let out = out
        .into_iter()
        .map(|r| r.expect("every index mapped exactly once"))
        .collect();
    (out, report)
}

fn elapsed_nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn par_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        par_map_metered(workers, items, f).0
    }

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..257).collect();
        for workers in [1, 2, 3, 8] {
            let out = par_map(workers, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_slices() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items() {
        let items = [1u64, 2, 3];
        assert_eq!(par_map(64, &items, |_, &x| x * x), vec![1, 4, 9]);
    }

    #[test]
    fn metered_serial_fallback_reports_one_worker() {
        let items: Vec<u32> = (0..5).collect();
        let (out, wave) = par_map_metered(1, &items, |_, &x| x + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(wave.workers.len(), 1);
        assert_eq!(wave.workers[0].tasks, 5);
        assert_eq!(wave.workers[0].queue_wait_nanos, 0);
        assert_eq!(wave.workers[0].busy_nanos, wave.wall_nanos);
    }

    #[test]
    fn metered_parallel_task_counts_sum_to_items() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [2, 4, 7] {
            let (out, wave) = par_map_metered(workers, &items, |_, &x| x * 2);
            assert_eq!(out.len(), 100);
            assert!(wave.workers.len() <= workers);
            let total: u64 = wave.workers.iter().map(|w| w.tasks).sum();
            assert_eq!(total, 100, "every item is counted exactly once");
        }
    }
}
