//! A minimal scoped-thread fork/join helper.
//!
//! The engine's waves are all embarrassingly parallel maps over job
//! slices, so a work-stealing pool would be overkill: scoped threads with
//! an atomic bump index balance load perfectly well when per-item cost
//! varies, and results are merged back *by index*, which is what keeps
//! the engine's output order (and therefore its statistics) identical to
//! the serial analyzer's.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Applies `f` to every item, spreading work across up to `workers`
/// threads, and returns the results in item order. Falls back to a plain
/// serial map when a single worker (or a trivial slice) makes threads
/// pointless.
pub(crate) fn par_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let threads = workers.min(items.len());
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            debug_assert!(out[i].is_none(), "index {i} mapped twice");
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index mapped exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..257).collect();
        for workers in [1, 2, 3, 8] {
            let out = par_map(workers, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_slices() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items() {
        let items = [1u64, 2, 3];
        assert_eq!(par_map(64, &items, |_, &x| x * x), vec![1, 4, 9]);
    }
}
