//! Property tests: the engine is bit-identical to the serial analyzer.
//!
//! For random batches of random programs — spanning constant subscripts,
//! non-affine subscripts (assumed dependence), symbolic terms,
//! triangular nests and coupled dimensions — the engine must reproduce a
//! serial [`DependenceAnalyzer`] run exactly: same [`ProgramReport`]s
//! (per-pair verdicts, vectors, distances, cache flags *and* per-program
//! statistics, since `ProgramReport: PartialEq` covers them all), same
//! cumulative statistics, same memo-table population — for every memo
//! mode, with and without symmetric canonicalization, at 1, 2 and 8
//! workers.

use dda_core::{AnalyzerConfig, DependenceAnalyzer, MemoMode, ProgramReport};
use dda_engine::{Engine, EngineConfig};
use dda_ir::{parse_program, passes, Program};
use proptest::prelude::*;

/// A subscript over up to `depth` loop variables: usually affine, but
/// sometimes symbolic (`n`) and sometimes non-affine (`b[v0 + 1]`), so
/// every classification path gets exercised. Symbolic terms are gated to
/// shallow nests — a symbolic unknown inside a deep coupled triangular
/// nest can push one Fourier–Motzkin query into seconds, which is a
/// property of the analyzer (shared by the engine), not of this test.
fn arb_subscript(depth: usize, allow_symbolic: bool) -> impl Strategy<Value = String> {
    let coeffs = proptest::collection::vec(-2i64..=2, depth);
    (coeffs, -6i64..=6, 0u8..=11).prop_map(move |(coeffs, c, kind)| {
        if kind == 0 {
            return "b[v0 + 1]".to_owned();
        }
        let mut s = String::new();
        for (k, a) in coeffs.iter().enumerate() {
            if *a != 0 {
                if !s.is_empty() {
                    s.push_str(" + ");
                }
                s.push_str(&format!("{a} * v{k}"));
            }
        }
        if kind == 1 && allow_symbolic {
            if !s.is_empty() {
                s.push_str(" + ");
            }
            s.push('n');
        }
        if s.is_empty() {
            format!("{c}")
        } else {
            format!("{s} + {c}")
        }
    })
}

/// One random program: a nest of 1–3 loops (possibly triangular) around
/// 1–2 statements of 1–2-D references to a shared array.
fn arb_program() -> impl Strategy<Value = String> {
    (1usize..=3)
        .prop_flat_map(|depth| {
            let allow_symbolic = depth <= 2;
            let bounds = proptest::collection::vec((0i64..=2, 2i64..=5, prop::bool::ANY), depth);
            let dims = 1usize..=2;
            let stmts = proptest::collection::vec(
                (
                    proptest::collection::vec(arb_subscript(depth, allow_symbolic), 2),
                    proptest::collection::vec(arb_subscript(depth, allow_symbolic), 2),
                ),
                1..=2,
            );
            (Just(depth), bounds, dims, stmts)
        })
        .prop_map(|(depth, bounds, dims, stmts)| {
            let mut src = String::new();
            for (k, (lo, hi, triangular)) in bounds.iter().enumerate() {
                let lower = if *triangular && k > 0 {
                    format!("v{}", k - 1)
                } else {
                    lo.to_string()
                };
                src.push_str(&format!("for v{k} = {lower} to {hi} {{ "));
            }
            for (wsubs, rsubs) in &stmts {
                let w: Vec<String> = wsubs.iter().take(dims).map(|s| format!("[{s}]")).collect();
                let r: Vec<String> = rsubs.iter().take(dims).map(|s| format!("[{s}]")).collect();
                src.push_str(&format!("a{} = a{} + 1; ", w.concat(), r.concat()));
            }
            for _ in 0..depth {
                src.push_str("} ");
            }
            // The symbolic term needs its declaration.
            if src.contains('n') {
                format!("read(n); {src}")
            } else {
                src
            }
        })
}

fn arb_batch() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(arb_program(), 1..=3)
}

fn parse_batch(sources: &[String]) -> Vec<Program> {
    sources
        .iter()
        .map(|s| {
            let mut p = parse_program(s).expect("generated programs parse");
            passes::normalize(&mut p);
            p
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold-start equivalence across every memo mode, symmetry setting
    /// and worker count.
    #[test]
    fn engine_matches_serial_analyzer(sources in arb_batch()) {
        let programs = parse_batch(&sources);
        for memo in [MemoMode::Off, MemoMode::Simple, MemoMode::Improved] {
            for memo_symmetry in [false, true] {
                if memo == MemoMode::Off && memo_symmetry {
                    // Symmetry only shapes full-memo keys; with
                    // memoization off it is a no-op.
                    continue;
                }
                let analyzer_cfg = AnalyzerConfig {
                    memo,
                    memo_symmetry,
                    ..AnalyzerConfig::default()
                };
                let mut analyzer = DependenceAnalyzer::with_config(analyzer_cfg);
                let want: Vec<ProgramReport> =
                    programs.iter().map(|p| analyzer.analyze_program(p)).collect();
                for workers in [1usize, 2, 8] {
                    let mut engine = Engine::with_config(EngineConfig {
                        workers,
                        shards: 4,
                        memo_mode: memo,
                        analyzer: analyzer_cfg,
                        ..EngineConfig::default()
                    });
                    let got = engine.analyze_programs(&programs);
                    let ctx = format!(
                        "memo={memo:?} symmetry={memo_symmetry} workers={workers}\n\
                         sources: {sources:#?}"
                    );
                    assert_eq!(got, want, "reports diverge: {ctx}");
                    assert_eq!(engine.stats(), analyzer.stats(), "stats diverge: {ctx}");
                    assert_eq!(
                        engine.memo_entries(),
                        analyzer.memo_entries(),
                        "full-table population diverges: {ctx}"
                    );
                    assert_eq!(
                        engine.gcd_memo_entries(),
                        analyzer.gcd_memo_entries(),
                        "gcd-table population diverges: {ctx}"
                    );
                }
            }
        }
    }

    /// Warm-start equivalence: a table exported by the engine warms a
    /// serial analyzer and a fresh engine into the same replay.
    #[test]
    fn warm_start_matches_serial_analyzer(sources in arb_batch()) {
        let programs = parse_batch(&sources);
        let config = EngineConfig {
            workers: 4,
            shards: 2,
            ..EngineConfig::default()
        };
        let mut cold = Engine::with_config(config);
        cold.analyze_programs(&programs);
        let exported = cold.export_memo();

        let mut analyzer =
            DependenceAnalyzer::with_config(config.effective_analyzer_config());
        analyzer.import_memo(&exported).expect("exported tables import");
        let want: Vec<ProgramReport> =
            programs.iter().map(|p| analyzer.analyze_program(p)).collect();

        let mut warm = Engine::with_config(config);
        warm.import_memo(&exported).expect("exported tables import");
        let got = warm.analyze_programs(&programs);
        assert_eq!(got, want, "warm replay diverges\nsources: {sources:#?}");
        assert_eq!(warm.stats(), analyzer.stats());
        // The warm run discovered nothing new: both ends re-export the
        // same bytes.
        assert_eq!(warm.export_memo(), exported);
        assert_eq!(analyzer.export_memo(), exported);
    }

    /// Batching is invisible: one engine over the whole batch equals one
    /// engine call per program (state carries across calls).
    #[test]
    fn batch_equals_sequential_calls(sources in arb_batch()) {
        let programs = parse_batch(&sources);
        let config = EngineConfig { workers: 3, ..EngineConfig::default() };
        let mut batched = Engine::with_config(config);
        let want = batched.analyze_programs(&programs);
        let mut one_by_one = Engine::with_config(config);
        let got: Vec<ProgramReport> =
            programs.iter().map(|p| one_by_one.analyze_program(p)).collect();
        assert_eq!(got, want, "sources: {sources:#?}");
        assert_eq!(one_by_one.stats(), batched.stats());
    }
}
