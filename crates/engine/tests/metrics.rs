//! Property tests for the engine's memo and telemetry accounting.
//!
//! Two invariants, across worker and shard counts:
//!
//! 1. **Shard-op conservation** — every operation the sharded tables
//!    perform is counted on exactly one shard, so the per-shard op
//!    counts sum to `queries + inserts` for each table.
//! 2. **Stats equivalence** — the memo counters inside the engine's
//!    cumulative [`AnalysisStats`] (the per-pair accounting replayed in
//!    the assembly wave) equal a serial analyzer's, bit for bit. The
//!    broader equivalence suite already pins whole reports; this test
//!    names the memo counters so a telemetry regression fails here
//!    with a focused message.
//!
//! Plus one exposition-validity check: a snapshot of an engine run
//! joined with a service section whose request counts are split by
//! `(endpoint, outcome)` must render a Prometheus exposition that
//! [`dda_obs::prom::parse_exposition`] accepts (declared types, no
//! duplicate series), with the labeled `dda_serve_requests_total`
//! samples carrying the exact per-cell counts.

use dda_core::{AnalyzerConfig, DependenceAnalyzer, MemoMode};
use dda_engine::{Engine, EngineConfig};
use dda_ir::{parse_program, passes, Program};
use dda_obs::prom::parse_exposition;
use dda_obs::{MetricsSnapshot, ServiceSection};
use proptest::prelude::*;

/// A small affine program: 1–2 loops around 1–2 statements over one
/// array, with enough coefficient spread to exercise both memo tables.
fn arb_program() -> impl Strategy<Value = String> {
    (1usize..=2)
        .prop_flat_map(|depth| {
            let bounds = proptest::collection::vec((0i64..=2, 2i64..=6), depth);
            let stmts = proptest::collection::vec(
                (
                    proptest::collection::vec(-2i64..=2, depth),
                    -4i64..=4,
                    proptest::collection::vec(-2i64..=2, depth),
                    -4i64..=4,
                ),
                1..=2,
            );
            (Just(depth), bounds, stmts)
        })
        .prop_map(|(depth, bounds, stmts)| {
            let mut src = String::new();
            for (k, (lo, hi)) in bounds.iter().enumerate() {
                src.push_str(&format!("for v{k} = {lo} to {hi} {{ "));
            }
            let sub = |coeffs: &[i64], c: i64| {
                let mut s = String::new();
                for (k, a) in coeffs.iter().enumerate() {
                    if *a != 0 {
                        if !s.is_empty() {
                            s.push_str(" + ");
                        }
                        s.push_str(&format!("{a} * v{k}"));
                    }
                }
                if s.is_empty() {
                    format!("{c}")
                } else {
                    format!("{s} + {c}")
                }
            };
            for (wc, w0, rc, r0) in &stmts {
                src.push_str(&format!("a[{}] = a[{}] + 1; ", sub(wc, *w0), sub(rc, *r0)));
            }
            for _ in 0..depth {
                src.push_str("} ");
            }
            src
        })
}

fn parse_batch(sources: &[String]) -> Vec<Program> {
    sources
        .iter()
        .map(|s| {
            let mut p = parse_program(s).expect("generated programs parse");
            passes::normalize(&mut p);
            p
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shard_ops_conserve_table_traffic(
        sources in proptest::collection::vec(arb_program(), 1..=3),
        workers in 1usize..=4,
        shards in 1usize..=5,
    ) {
        let programs = parse_batch(&sources);
        let mut engine = Engine::with_config(EngineConfig {
            workers,
            shards,
            memo_mode: MemoMode::Improved,
            analyzer: AnalyzerConfig::default(),
            check: false,
        });
        engine.analyze_programs(&programs);
        let memo = engine.memo();
        for (label, table_ops, queries, inserts) in [
            (
                "full",
                memo.full.shard_ops(),
                memo.full.queries(),
                memo.full.inserts(),
            ),
            (
                "gcd",
                memo.gcd.shard_ops(),
                memo.gcd.queries(),
                memo.gcd.inserts(),
            ),
        ] {
            prop_assert_eq!(table_ops.len(), shards);
            let total: u64 = table_ops.iter().sum();
            prop_assert_eq!(
                total,
                queries + inserts,
                "{} table: shard ops must sum to queries + inserts",
                label
            );
        }
    }

    #[test]
    fn engine_memo_stats_match_serial(
        sources in proptest::collection::vec(arb_program(), 1..=3),
        workers in 1usize..=4,
        shards in 1usize..=5,
    ) {
        let programs = parse_batch(&sources);
        let mut serial = DependenceAnalyzer::new();
        for p in &programs {
            serial.analyze_program(p);
        }
        let mut engine = Engine::with_config(EngineConfig {
            workers,
            shards,
            memo_mode: MemoMode::Improved,
            analyzer: AnalyzerConfig::default(),
            check: false,
        });
        engine.analyze_programs(&programs);
        let (s, e) = (serial.stats(), engine.stats());
        prop_assert_eq!(e.memo_queries, s.memo_queries);
        prop_assert_eq!(e.memo_hits, s.memo_hits);
        prop_assert_eq!(e.gcd_memo_queries, s.gcd_memo_queries);
        prop_assert_eq!(e.gcd_memo_hits, s.gcd_memo_hits);
        // The registry is pure telemetry, but its wave accounting still
        // has exact structure: every pair-bearing wave item is counted.
        let reg = engine.metrics();
        prop_assert!(reg.tasks() >= programs.len() as u64);
        prop_assert_eq!(
            reg.worker_tasks().iter().sum::<u64>(),
            reg.tasks(),
            "per-worker task counts must sum to the wave total"
        );
    }
}

/// The exposition with outcome/endpoint-labeled request counters is
/// valid Prometheus text: parses cleanly, the labeled series carry the
/// exact counts, and the unlabeled legacy sample is gone once labels
/// are present.
#[test]
fn labeled_request_counters_render_a_valid_exposition() {
    let mut engine = Engine::with_config(EngineConfig {
        workers: 2,
        shards: 2,
        memo_mode: MemoMode::Improved,
        analyzer: AnalyzerConfig::default(),
        check: false,
    });
    let mut program = parse_program("for i = 1 to 9 { a[i + 1] = a[i]; }").unwrap();
    passes::normalize(&mut program);
    engine.analyze_programs(std::slice::from_ref(&program));

    let memo = engine.memo();
    let text = MetricsSnapshot::from_registry(engine.metrics())
        .with_pairs(engine.stats())
        .with_memo_table("full", memo.full.counters(), memo.full.shard_ops())
        .with_memo_table("gcd", memo.gcd.counters(), memo.gcd.shard_ops())
        .with_service(ServiceSection {
            in_flight: 1,
            max_in_flight: 8,
            requests: 12,
            shed: 2,
            deadline_exceeded: 1,
            requests_by: vec![
                ("/analyze", "ok", 8),
                ("/analyze", "deadline", 1),
                ("/batch", "error", 1),
                ("(accept)", "shed", 2),
            ],
        })
        .to_prometheus();

    let exp = parse_exposition(&text).expect("exposition must parse");
    assert_eq!(
        exp.types
            .get("dda_serve_requests_total")
            .map(String::as_str),
        Some("counter")
    );
    for (endpoint, outcome, count) in [
        ("/analyze", "ok", 8.0),
        ("/analyze", "deadline", 1.0),
        ("/batch", "error", 1.0),
        ("(accept)", "shed", 2.0),
    ] {
        assert_eq!(
            exp.value(
                "dda_serve_requests_total",
                &[("endpoint", endpoint), ("outcome", outcome)],
            ),
            Some(count),
            "missing series endpoint={endpoint} outcome={outcome}"
        );
    }
    // The unlabeled sample is replaced, not duplicated.
    assert_eq!(exp.value("dda_serve_requests_total", &[]), None);
    // The engine-side series still render alongside.
    assert!(exp.value("dda_pairs_total", &[]).is_some());
    assert!(exp
        .value("dda_memo_queries_total", &[("table", "full")])
        .is_some());
}
