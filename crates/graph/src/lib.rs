//! `dda-graph`: the program dependence graph over certificate-carrying
//! dependence verdicts, and the loop-legality oracle built on it.
//!
//! The per-pair verdicts of `dda-core` answer "can these two references
//! touch the same cell across iterations?" — this crate lifts them to
//! the program-level questions a parallelizing compiler asks:
//!
//! - **Graph** ([`build_graph`], [`ProgramGraph`]): nodes are statement
//!   accesses, edges are oriented flow/anti/output (and optionally
//!   input) dependences carrying the direction vector, the oriented
//!   distance vector, the carrying loop level, and — crucially — the
//!   index of the [`PairReport`](dda_core::PairReport) they were
//!   lowered from, so every edge traces back to a certificate the
//!   `dda-check` kernel can re-verify.
//! - **Race detection / parallelism** ([`ProgramGraph::loop_verdict`],
//!   [`ProgramGraph::is_parallel`]): a loop is parallel iff no edge is
//!   carried at its level — no cross-iteration race. Sequential
//!   verdicts are *explained*: [`LoopVerdict::Sequential`] lists the
//!   exact blocking edges (hence pairs, hence certificates).
//! - **Interchange legality** ([`ProgramGraph::interchange_legal`]):
//!   the classic direction-vector permutation test — swapping two
//!   adjacent loop levels is legal iff no dependence vector becomes
//!   lexicographically negative under the swap.
//! - **Renderers** ([`render`]): Graphviz DOT, graph JSONL, per-loop
//!   verdict JSONL, and annotated source. The CLI (`dda graph`,
//!   `dda parallel`) and the `dda-serve` `/parallel` endpoint all call
//!   these, which is what makes their outputs byte-identical.
//!
//! # Examples
//!
//! ```
//! use dda_core::DependenceAnalyzer;
//! use dda_graph::{build_graph, LoopVerdict};
//! use dda_ir::parse_program;
//!
//! let p = parse_program(
//!     "for i = 1 to 100 { for j = 1 to 100 { a[i][j + 1] = a[i][j]; } }",
//! )?;
//! let report = DependenceAnalyzer::new().analyze_program(&p);
//! let graph = build_graph(&p, &report);
//! // The (=, <) flow dependence is carried by j, not i:
//! assert!(graph.is_parallel(0));
//! assert!(matches!(graph.loop_verdict(1), LoopVerdict::Sequential { .. }));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::arithmetic_side_effects)]

mod model;
pub mod render;

pub use model::{
    build_graph, GraphNode, InterchangeVerdict, LoopVerdict, PairSummary, ProgramGraph,
};
