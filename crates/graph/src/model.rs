//! Graph construction and the loop-legality oracle.

use std::collections::BTreeSet;

use dda_core::graph::{dependence_graph, DependenceEdge};
use dda_core::{Direction, ProgramReport};
use dda_ir::{extract_accesses, loop_table, LoopTable, Program};

/// One node of the dependence graph: a statement access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphNode {
    /// The access id (index into the program's extraction order).
    pub access: usize,
    /// Rendered reference, e.g. `a[i + 1] (write)`.
    pub label: String,
    /// Whether the access writes.
    pub is_write: bool,
    /// Index of the statement the access belongs to.
    pub stmt_index: usize,
}

/// The per-pair context an edge's `pair` index resolves to: enough to
/// name the pair in an explanation (and to fetch its certificate from
/// the originating [`ProgramReport`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairSummary {
    /// Array both references touch.
    pub array: String,
    /// First access id of the pair, as analyzed.
    pub a_access: usize,
    /// Second access id of the pair, as analyzed.
    pub b_access: usize,
    /// Ids of the common enclosing loops, outermost first; direction
    /// vector component `k` talks about `common_loop_ids[k]`.
    pub common_loop_ids: Vec<usize>,
}

/// The verdict for one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopVerdict {
    /// No dependence is carried at this loop's level: iterations are
    /// race-free and may run in parallel.
    Parallel,
    /// Some dependence crosses iterations of this loop.
    Sequential {
        /// Indices into [`ProgramGraph::edges`] of every edge carried
        /// at this loop's level. Each names its pair report (and hence
        /// its certificate) via [`DependenceEdge::pair`].
        blocking_edges: Vec<usize>,
    },
}

impl LoopVerdict {
    /// Whether the verdict is [`LoopVerdict::Parallel`].
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        matches!(self, LoopVerdict::Parallel)
    }
}

/// The verdict for interchanging one directly nested loop pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterchangeVerdict {
    /// Id of the outer loop.
    pub outer: usize,
    /// Id of the inner loop (directly nested in `outer`).
    pub inner: usize,
    /// Whether the interchange is legal (no dependence vector becomes
    /// lexicographically negative under the component swap).
    pub legal: bool,
    /// Indices into [`ProgramGraph::edges`] of the edges that block the
    /// interchange. Empty for a legal interchange — and also when the
    /// loops are not directly nested, in which case `legal` is `false`
    /// for structural reasons rather than because of any edge.
    pub blocking_edges: Vec<usize>,
}

/// The program dependence graph plus the loop structure it hangs off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramGraph {
    /// Every access of the program, in extraction order (node id =
    /// access id).
    pub nodes: Vec<GraphNode>,
    /// Oriented dependence edges, in pair then vector order —
    /// deterministic for a given report.
    pub edges: Vec<DependenceEdge>,
    /// The program's loops, keyed by pre-order id.
    pub loops: LoopTable,
    /// Per-pair context, indexed by [`DependenceEdge::pair`].
    pub pairs: Vec<PairSummary>,
}

/// Builds the dependence graph of `program` from its analysis report.
///
/// `program` must be the same (identically normalized) program the
/// report was produced from: node identity comes from re-running access
/// extraction, which is deterministic.
#[must_use]
pub fn build_graph(program: &Program, report: &ProgramReport) -> ProgramGraph {
    let set = extract_accesses(program);
    let edges = dependence_graph(report, &set);
    let nodes = set
        .accesses
        .iter()
        .map(|a| GraphNode {
            access: a.id,
            label: a.to_string(),
            is_write: a.is_write,
            stmt_index: a.stmt_index,
        })
        .collect();
    let pairs = report
        .pairs()
        .iter()
        .map(|p| PairSummary {
            array: p.array.clone(),
            a_access: p.a_access,
            b_access: p.b_access,
            common_loop_ids: p.common_loop_ids.clone(),
        })
        .collect();
    ProgramGraph {
        nodes,
        edges,
        loops: loop_table(program),
        pairs,
    }
}

impl ProgramGraph {
    /// Whether `edge` crosses iterations of loop `loop_id`: the loop
    /// appears at some level `k` of the edge's pair, every outer
    /// component of the direction vector admits `=`, and component `k`
    /// admits `<` or `>`. Mirrors
    /// [`ProgramReport::carried_dependence_loops`] exactly (the
    /// predicate is invariant under the vector mirroring edge
    /// orientation performs).
    #[must_use]
    pub fn edge_carries_at(&self, edge: &DependenceEdge, loop_id: usize) -> bool {
        let Some(pair) = self.pairs.get(edge.pair) else {
            return false;
        };
        pair.common_loop_ids.iter().enumerate().any(|(k, &id)| {
            id == loop_id
                && edge
                    .vector
                    .0
                    .get(k)
                    .is_some_and(|d| matches!(d, Direction::Lt | Direction::Gt | Direction::Any))
                && edge.vector.0[..k]
                    .iter()
                    .all(|d| matches!(d, Direction::Eq | Direction::Any))
        })
    }

    /// The verdict for loop `loop_id`: parallel, or sequential with the
    /// blocking edges.
    #[must_use]
    pub fn loop_verdict(&self, loop_id: usize) -> LoopVerdict {
        let blocking: Vec<usize> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| self.edge_carries_at(e, loop_id))
            .map(|(i, _)| i)
            .collect();
        if blocking.is_empty() {
            LoopVerdict::Parallel
        } else {
            LoopVerdict::Sequential {
                blocking_edges: blocking,
            }
        }
    }

    /// Verdicts for every loop, in pre-order id order.
    #[must_use]
    pub fn loop_verdicts(&self) -> Vec<LoopVerdict> {
        self.loops
            .loops()
            .iter()
            .map(|l| self.loop_verdict(l.id))
            .collect()
    }

    /// Whether loop `loop_id` may run in parallel (no cross-iteration
    /// race).
    #[must_use]
    pub fn is_parallel(&self, loop_id: usize) -> bool {
        !self.edges.iter().any(|e| self.edge_carries_at(e, loop_id))
    }

    /// Ids of all loops carrying some dependence — equal, by
    /// construction, to
    /// [`ProgramReport::carried_dependence_loops`] of the originating
    /// report (pinned by proptest in the workspace test suite).
    #[must_use]
    pub fn carried_loops(&self) -> BTreeSet<usize> {
        self.loops
            .loops()
            .iter()
            .filter(|l| !self.is_parallel(l.id))
            .map(|l| l.id)
            .collect()
    }

    /// Whether `edge` blocks interchanging loops at pair positions
    /// found for `outer`/`inner`: after swapping the two components,
    /// the direction vector must not be (possibly) lexicographically
    /// negative. An edge whose pair sees only one of the two loops
    /// (imperfect nesting around the inner loop) conservatively blocks.
    fn edge_blocks_interchange(&self, edge: &DependenceEdge, outer: usize, inner: usize) -> bool {
        let Some(pair) = self.pairs.get(edge.pair) else {
            return false;
        };
        let po = pair.common_loop_ids.iter().position(|&id| id == outer);
        let pi = pair.common_loop_ids.iter().position(|&id| id == inner);
        match (po, pi) {
            (None, None) => false,
            // The pair straddles the nest: it runs under one of the
            // two loops but not the other, so the interchange would
            // reorder it against the nest in ways the vector can't
            // describe. Conservatively illegal.
            (Some(_), None) | (None, Some(_)) => true,
            (Some(po), Some(pi)) => {
                let mut v = edge.vector.0.clone();
                if po >= v.len() || pi >= v.len() {
                    return true; // malformed vector: conservative
                }
                v.swap(po, pi);
                for d in &v {
                    match d {
                        Direction::Eq => continue,
                        // Leading `<`: still lexicographically
                        // positive, the source stays before the sink.
                        Direction::Lt => return false,
                        // Leading `>` (or a `*` that could be `>`):
                        // the permuted dependence would run backwards.
                        Direction::Gt | Direction::Any => return true,
                    }
                }
                // All `=`: loop-independent, interchange preserves it.
                false
            }
        }
    }

    /// The direction-vector permutation test for interchanging `outer`
    /// with `inner`, which must be directly nested in `outer`
    /// (structurally illegal otherwise — `legal: false` with no
    /// blocking edges).
    #[must_use]
    pub fn interchange_legal(&self, outer: usize, inner: usize) -> InterchangeVerdict {
        if !self.loops.directly_nested(outer, inner) {
            return InterchangeVerdict {
                outer,
                inner,
                legal: false,
                blocking_edges: Vec::new(),
            };
        }
        let blocking: Vec<usize> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| self.edge_blocks_interchange(e, outer, inner))
            .map(|(i, _)| i)
            .collect();
        InterchangeVerdict {
            outer,
            inner,
            legal: blocking.is_empty(),
            blocking_edges: blocking,
        }
    }

    /// Interchange verdicts for every directly nested loop pair, in
    /// inner-loop id order.
    #[must_use]
    pub fn interchange_verdicts(&self) -> Vec<InterchangeVerdict> {
        self.loops
            .loops()
            .iter()
            .filter_map(|l| l.parent.map(|outer| self.interchange_legal(outer, l.id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_core::DependenceAnalyzer;
    use dda_ir::parse_program;

    fn graph(src: &str) -> ProgramGraph {
        let p = parse_program(src).unwrap();
        let report = DependenceAnalyzer::new().analyze_program(&p);
        build_graph(&p, &report)
    }

    #[test]
    fn carried_flow_makes_the_loop_sequential() {
        let g = graph("for i = 1 to 100 { a[i + 1] = a[i]; }");
        match g.loop_verdict(0) {
            LoopVerdict::Sequential { blocking_edges } => {
                assert_eq!(blocking_edges.len(), 1);
                let e = &g.edges[blocking_edges[0]];
                assert_eq!(g.pairs[e.pair].array, "a");
            }
            LoopVerdict::Parallel => panic!("a[i+1] = a[i] is carried"),
        }
        assert!(!g.is_parallel(0));
    }

    #[test]
    fn independent_references_leave_the_loop_parallel() {
        let g = graph("for i = 1 to 100 { a[2 * i] = a[2 * i + 1]; }");
        assert!(g.is_parallel(0));
        assert!(g.loop_verdict(0).is_parallel());
        assert!(g.carried_loops().is_empty());
    }

    #[test]
    fn inner_carried_dependence_spares_the_outer_loop() {
        let g = graph("for i = 1 to 100 { for j = 1 to 100 { a[i][j + 1] = a[i][j]; } }");
        assert!(g.is_parallel(0));
        assert!(!g.is_parallel(1));
        assert_eq!(g.carried_loops(), std::iter::once(1).collect());
    }

    #[test]
    fn verdicts_match_the_report_summary() {
        for src in [
            "for i = 1 to 100 { a[i + 1] = a[i]; }",
            "for i = 1 to 100 { for j = 1 to 100 { a[i][j + 1] = a[i][j]; } }",
            "for i = 2 to 100 { for j = 2 to 100 { a[i][j] = a[i - 1][j] + a[i][j - 1]; } }",
            "for i = 1 to 10 { a[i * i] = a[i]; }",
            "for i = 1 to 40 { s[0] = s[0] + c[i]; }",
        ] {
            let p = parse_program(src).unwrap();
            let report = DependenceAnalyzer::new().analyze_program(&p);
            let g = build_graph(&p, &report);
            assert_eq!(
                g.carried_loops(),
                report.carried_dependence_loops(),
                "{src}"
            );
        }
    }

    #[test]
    fn interchange_legal_for_all_lt_vectors() {
        // (<, <): swapping gives (<, <), still positive.
        let g = graph("for i = 1 to 30 { for j = 1 to 30 { a[i + 1][j + 1] = a[i][j] + 1; } }");
        let v = g.interchange_legal(0, 1);
        assert!(v.legal, "{v:?}");
        assert!(v.blocking_edges.is_empty());
        assert_eq!(g.interchange_verdicts(), vec![v]);
    }

    #[test]
    fn interchange_illegal_for_lt_gt_vectors() {
        // (<, >): swapping gives (>, <), lexicographically negative.
        let g = graph("for i = 1 to 30 { for j = 1 to 30 { b[i + 1][j] = b[i][j + 1] + 1; } }");
        let v = g.interchange_legal(0, 1);
        assert!(!v.legal);
        assert_eq!(v.blocking_edges.len(), 1);
        let e = &g.edges[v.blocking_edges[0]];
        assert_eq!(g.pairs[e.pair].array, "b");
    }

    #[test]
    fn interchange_of_non_nested_loops_is_structurally_illegal() {
        let g = graph("for i = 1 to 9 { a[i] = 0; } for j = 1 to 9 { a[j] = 1; }");
        let v = g.interchange_legal(0, 1);
        assert!(!v.legal);
        assert!(v.blocking_edges.is_empty());
        assert!(g.interchange_verdicts().is_empty());
    }

    #[test]
    fn pair_straddling_the_nest_blocks_interchange() {
        // The a-pair lives only under i (statement between the loops):
        // interchanging i and j must be conservatively rejected even
        // though the j-body pair is interchange-clean.
        let g = graph(
            "for i = 1 to 30 { a[i + 1] = a[i]; \
             for j = 1 to 30 { c[i + 1][j + 1] = c[i][j]; } }",
        );
        let v = g.interchange_legal(0, 1);
        assert!(!v.legal);
        assert!(v
            .blocking_edges
            .iter()
            .any(|&i| g.pairs[g.edges[i].pair].array == "a"));
    }

    #[test]
    fn reduction_loop_is_sequential_with_certificate_backed_edges() {
        let g = graph("for i = 1 to 40 { s[0] = s[0] + c[i]; }");
        match g.loop_verdict(0) {
            LoopVerdict::Sequential { blocking_edges } => {
                assert!(!blocking_edges.is_empty());
            }
            LoopVerdict::Parallel => panic!("a reduction carries an output/flow dependence"),
        }
    }

    #[test]
    fn nodes_cover_every_access_and_loops_every_loop() {
        let g = graph("for i = 1 to 9 { for j = i to 9 { a[i] = a[j] + b[i][j]; } }");
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.nodes[0].label, "a[i] (write)");
        assert!(g.nodes[0].is_write);
        assert_eq!(g.loops.len(), 2);
    }
}
