//! Renderers over [`ProgramGraph`]: Graphviz DOT, JSONL, and annotated
//! source.
//!
//! Both the CLI (`dda graph`, `dda parallel`) and the `dda-serve`
//! `/parallel` endpoint call these — one implementation is what makes
//! their outputs byte-identical for the same inputs.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use dda_core::graph::DependenceEdge;
use dda_ir::{ForLoop, Program, Stmt};

use crate::model::{LoopVerdict, ProgramGraph};

/// Minimal JSON string escaping (hand-rolled: no serde in this tree).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len().saturating_add(2));
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the graph in Graphviz DOT: edge-incident accesses as nodes
/// (writes boxed, reads elliptic), one edge per oriented dependence,
/// solid when loop-carried (labelled with its carrying level), dashed
/// when loop-independent.
#[must_use]
pub fn to_dot(graph: &ProgramGraph) -> String {
    let mut out = String::new();
    out.push_str("digraph dependences {\n");
    out.push_str("    rankdir=LR;\n");
    let mut nodes = BTreeSet::new();
    for e in &graph.edges {
        nodes.insert(e.source);
        nodes.insert(e.sink);
    }
    for n in nodes {
        let node = &graph.nodes[n];
        let _ = writeln!(
            out,
            "    n{n} [label=\"#{n} {}\" shape={}];",
            node.label,
            if node.is_write { "box" } else { "ellipse" }
        );
    }
    for e in &graph.edges {
        let style = if e.is_loop_carried() {
            "solid"
        } else {
            "dashed"
        };
        let level = e
            .carrying_level
            .map_or(String::new(), |l| format!(" @L{l}"));
        let _ = writeln!(
            out,
            "    n{} -> n{} [label=\"{} {}{level}\" style={style}];",
            e.source, e.sink, e.kind, e.vector
        );
    }
    out.push_str("}\n");
    out
}

/// One blocking-edge citation: edge index, pair index, array, oriented
/// endpoints, kind, and vector. `level` (the position of the loop under
/// discussion in the pair's common nest) is present only when the
/// citation explains a per-loop verdict.
fn edge_object(
    graph: &ProgramGraph,
    index: usize,
    edge: &DependenceEdge,
    level: Option<usize>,
) -> String {
    let array = graph.pairs.get(edge.pair).map_or("", |p| p.array.as_str());
    let mut out = format!(
        "{{\"edge\":{index},\"pair\":{},\"array\":\"{}\",\"source\":{},\"sink\":{},\
         \"kind\":\"{}\",\"vector\":\"{}\"",
        edge.pair,
        json_escape(array),
        edge.source,
        edge.sink,
        edge.kind,
        edge.vector
    );
    if let Some(level) = level {
        let _ = write!(out, ",\"level\":{level}");
    }
    out.push('}');
    out
}

/// One JSONL record for the full graph: nodes, oriented edges (with
/// direction/distance summaries and carrying level), and the loop
/// table.
#[must_use]
pub fn graph_json_line(file: &str, graph: &ProgramGraph) -> String {
    let mut line = format!("{{\"file\":\"{}\",\"nodes\":[", json_escape(file));
    for (i, n) in graph.nodes.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(
            line,
            "{{\"id\":{},\"label\":\"{}\",\"write\":{},\"stmt\":{}}}",
            n.access,
            json_escape(&n.label),
            n.is_write,
            n.stmt_index
        );
    }
    line.push_str("],\"edges\":[");
    for (i, e) in graph.edges.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let array = graph.pairs.get(e.pair).map_or("", |p| p.array.as_str());
        let _ = write!(
            line,
            "{{\"pair\":{},\"array\":\"{}\",\"source\":{},\"sink\":{},\"kind\":\"{}\",\
             \"vector\":\"{}\",\"distance\":\"{}\",\"level\":{}}}",
            e.pair,
            json_escape(array),
            e.source,
            e.sink,
            e.kind,
            e.vector,
            e.distance,
            e.carrying_level
                .map_or("null".to_owned(), |l| l.to_string())
        );
    }
    line.push_str("],\"loops\":[");
    for (i, l) in graph.loops.loops().iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(
            line,
            "{{\"id\":{},\"var\":\"{}\",\"depth\":{},\"parent\":{}}}",
            l.id,
            json_escape(&l.var),
            l.depth,
            l.parent.map_or("null".to_owned(), |p| p.to_string())
        );
    }
    line.push_str("]}");
    line
}

/// One JSONL record for the per-loop parallelism verdicts and
/// interchange legality of a program. Every `Sequential` loop and
/// every illegal interchange cites its blocking edges — pair index,
/// array, oriented endpoints, kind, vector — so the claim can be
/// re-checked against the pair's certificate.
#[must_use]
pub fn parallel_json_line(file: &str, graph: &ProgramGraph) -> String {
    let mut line = format!("{{\"file\":\"{}\",\"loops\":[", json_escape(file));
    for (i, l) in graph.loops.loops().iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let verdict = graph.loop_verdict(l.id);
        let _ = write!(
            line,
            "{{\"id\":{},\"var\":\"{}\",\"depth\":{},\"parallel\":{},\"blocking\":[",
            l.id,
            json_escape(&l.var),
            l.depth,
            verdict.is_parallel()
        );
        if let LoopVerdict::Sequential { blocking_edges } = &verdict {
            for (j, &ei) in blocking_edges.iter().enumerate() {
                if j > 0 {
                    line.push(',');
                }
                let e = &graph.edges[ei];
                let level = graph
                    .pairs
                    .get(e.pair)
                    .and_then(|p| p.common_loop_ids.iter().position(|&id| id == l.id));
                line.push_str(&edge_object(graph, ei, e, level));
            }
        }
        line.push_str("]}");
    }
    line.push_str("],\"interchange\":[");
    for (i, v) in graph.interchange_verdicts().iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(
            line,
            "{{\"outer\":{},\"inner\":{},\"legal\":{},\"blocking\":[",
            v.outer, v.inner, v.legal
        );
        for (j, &ei) in v.blocking_edges.iter().enumerate() {
            if j > 0 {
                line.push(',');
            }
            line.push_str(&edge_object(graph, ei, &graph.edges[ei], None));
        }
        line.push_str("]}");
    }
    line.push_str("]}");
    line
}

/// Prints the program source with every loop header annotated
/// `// parallel` or `// sequential` according to the graph's verdicts.
///
/// The walk mirrors [`dda_ir::loop_table`] (statement order, both `if`
/// branches), so the counter it carries reproduces the pre-order loop
/// ids.
#[must_use]
pub fn annotate_source(program: &Program, graph: &ProgramGraph) -> String {
    let carried = graph.carried_loops();
    fn go(
        out: &mut String,
        stmts: &[Stmt],
        depth: usize,
        next_id: &mut usize,
        carried: &BTreeSet<usize>,
    ) {
        let indent = depth.saturating_mul(4);
        for s in stmts {
            match s {
                Stmt::For(ForLoop {
                    var,
                    lower,
                    upper,
                    body,
                    ..
                }) => {
                    let id = *next_id;
                    *next_id = next_id.saturating_add(1);
                    let tag = if carried.contains(&id) {
                        "sequential"
                    } else {
                        "parallel"
                    };
                    let _ = writeln!(
                        out,
                        "{:indent$}for {var} = {lower} to {upper} {{   // {tag}",
                        ""
                    );
                    go(out, body, depth.saturating_add(1), next_id, carried);
                    let _ = writeln!(out, "{:indent$}}}", "");
                }
                Stmt::ArrayAssign(a) => {
                    let _ = writeln!(out, "{:indent$}{} = {};", "", a.target, a.value);
                }
                Stmt::ScalarAssign(a) => {
                    let _ = writeln!(out, "{:indent$}{} = {};", "", a.name, a.value);
                }
                Stmt::Read(n) => {
                    let _ = writeln!(out, "{:indent$}read({n});", "");
                }
                Stmt::If(i) => {
                    let _ = writeln!(
                        out,
                        "{:indent$}if ({} {} {}) {{",
                        "",
                        i.lhs,
                        i.op.as_str(),
                        i.rhs
                    );
                    go(out, &i.then_body, depth.saturating_add(1), next_id, carried);
                    if !i.else_body.is_empty() {
                        let _ = writeln!(out, "{:indent$}}} else {{", "");
                        go(out, &i.else_body, depth.saturating_add(1), next_id, carried);
                    }
                    let _ = writeln!(out, "{:indent$}}}", "");
                }
            }
        }
    }
    let mut out = String::new();
    let mut next_id = 0;
    go(&mut out, &program.stmts, 0, &mut next_id, &carried);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_graph;
    use dda_core::DependenceAnalyzer;
    use dda_ir::parse_program;

    fn graph(src: &str) -> (dda_ir::Program, ProgramGraph) {
        let p = parse_program(src).unwrap();
        let report = DependenceAnalyzer::new().analyze_program(&p);
        let g = build_graph(&p, &report);
        (p, g)
    }

    #[test]
    fn dot_has_the_documented_shape() {
        let (_, g) = graph("for i = 1 to 10 { a[i + 1] = a[i]; }");
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph dependences {\n    rankdir=LR;\n"));
        assert!(dot.contains("n0 [label=\"#0 a[i + 1] (write)\" shape=box];"));
        assert!(dot.contains("n1 [label=\"#1 a[i] (read)\" shape=ellipse];"));
        assert!(dot.contains("n0 -> n1 [label=\"flow (<) @L0\" style=solid];"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn graph_jsonl_is_valid_and_complete() {
        let (_, g) = graph("for i = 1 to 10 { a[i + 1] = a[i]; }");
        let line = graph_json_line("k.loop", &g);
        assert!(line.starts_with("{\"file\":\"k.loop\",\"nodes\":["));
        assert!(line.contains("\"vector\":\"(<)\""));
        assert!(line.contains("\"distance\":\"(1)\""));
        assert!(line.contains("\"kind\":\"flow\""));
        assert!(line.contains("\"loops\":[{\"id\":0,\"var\":\"i\",\"depth\":0,\"parent\":null}]"));
    }

    #[test]
    fn parallel_jsonl_cites_blocking_edges() {
        let (_, g) = graph("for i = 1 to 10 { a[i + 1] = a[i]; }");
        let line = parallel_json_line("k.loop", &g);
        assert!(line.contains("\"parallel\":false"));
        assert!(line.contains("\"array\":\"a\""));
        assert!(line.contains("\"level\":0"));
        assert!(line.contains("\"interchange\":[]"));
    }

    #[test]
    fn parallel_jsonl_reports_interchange() {
        let (_, g) =
            graph("for i = 1 to 30 { for j = 1 to 30 { b[i + 1][j] = b[i][j + 1] + 1; } }");
        let line = parallel_json_line("k.loop", &g);
        assert!(line.contains("{\"outer\":0,\"inner\":1,\"legal\":false,\"blocking\":["));
    }

    #[test]
    fn annotation_marks_parallel_and_sequential_loops() {
        let (p, g) = graph(
            "for i = 1 to 100 { for j = 1 to 100 { a[i][j + 1] = a[i][j]; } } \
             for k = 1 to 100 { b[k] = b[k + 200]; }",
        );
        let text = annotate_source(&p, &g);
        assert_eq!(
            text,
            "for i = 1 to 100 {   // parallel\n\
             \x20   for j = 1 to 100 {   // sequential\n\
             \x20       a[i][j + 1] = a[i][j];\n\
             \x20   }\n\
             }\n\
             for k = 1 to 100 {   // parallel\n\
             \x20   b[k] = b[k + 200];\n\
             }\n"
        );
    }
}
