//! Extraction of array accesses and candidate reference pairs.
//!
//! Dependence testing operates on *pairs of array references* together with
//! their enclosing loop context. This module walks a [`Program`], lowers
//! every subscript and loop bound to affine form (or marks it non-affine),
//! classifies free scalars as symbolic constants, and enumerates the pairs
//! the analyzer must test.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::ast::{Program, Stmt};
use crate::expr::{AffineExpr, ArrayRef, Expr};

/// A loop bound in affine form, or a marker that it could not be lowered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// An affine function of outer loop variables and symbolic constants.
    Affine(AffineExpr),
    /// Not analyzable (non-linear, or uses a mutated scalar).
    NonAffine,
}

impl Bound {
    /// The affine payload, if any.
    #[must_use]
    pub fn as_affine(&self) -> Option<&AffineExpr> {
        match self {
            Bound::Affine(e) => Some(e),
            Bound::NonAffine => None,
        }
    }
}

/// One enclosing loop of an access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Unique id of this loop instance within the program walk. Two
    /// accesses share an enclosing loop exactly when the ids match.
    pub id: usize,
    /// The induction variable name.
    pub var: String,
    /// Inclusive lower bound.
    pub lower: Bound,
    /// Inclusive upper bound.
    pub upper: Bound,
}

/// A subscript in affine form, or a marker that it could not be lowered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subscript {
    /// Affine in loop variables and symbolic constants.
    Affine(AffineExpr),
    /// Not analyzable.
    NonAffine,
}

impl Subscript {
    /// The affine payload, if any.
    #[must_use]
    pub fn as_affine(&self) -> Option<&AffineExpr> {
        match self {
            Subscript::Affine(e) => Some(e),
            Subscript::NonAffine => None,
        }
    }
}

/// A single array access (read or write) with its loop context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Unique id within the extraction.
    pub id: usize,
    /// The array's name.
    pub array: String,
    /// Lowered subscripts, one per dimension.
    pub subscripts: Vec<Subscript>,
    /// Enclosing loops, outermost first.
    pub loops: Vec<LoopInfo>,
    /// Whether this access writes the element.
    pub is_write: bool,
    /// Index of the owning statement in a pre-order statement numbering.
    pub stmt_index: usize,
    /// Whether the access sits under an `if`: it may not execute on every
    /// iteration, so "dependent" answers are may-dependences for it.
    pub conditional: bool,
}

impl Access {
    /// Whether every subscript is affine.
    #[must_use]
    pub fn is_affine(&self) -> bool {
        self.subscripts
            .iter()
            .all(|s| matches!(s, Subscript::Affine(_)))
    }

    /// Loop nesting depth of the access.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.loops.len()
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.array)?;
        for s in &self.subscripts {
            match s {
                Subscript::Affine(e) => write!(f, "[{e}]")?,
                Subscript::NonAffine => write!(f, "[?]")?,
            }
        }
        write!(f, " ({})", if self.is_write { "write" } else { "read" })
    }
}

/// All accesses of a program, plus the symbolic constants in scope.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessSet {
    /// Extracted accesses in program order.
    pub accesses: Vec<Access>,
    /// Scalars treated as loop-invariant unknowns (declared with `read(x);`
    /// or never assigned).
    pub symbolics: BTreeSet<String>,
}

/// A candidate pair of accesses to the same array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefPair<'a> {
    /// First access (earlier in program order).
    pub a: &'a Access,
    /// Second access.
    pub b: &'a Access,
    /// Number of loops enclosing *both* accesses (shared prefix length).
    pub common: usize,
}

struct Extractor {
    accesses: Vec<Access>,
    loop_stack: Vec<LoopInfo>,
    assigned_scalars: BTreeSet<String>,
    declared_symbolics: BTreeSet<String>,
    used_scalars: BTreeSet<String>,
    next_loop_id: usize,
    stmt_index: usize,
    cond_depth: usize,
}

impl Extractor {
    fn loop_vars(&self) -> BTreeSet<&str> {
        self.loop_stack.iter().map(|l| l.var.as_str()).collect()
    }

    /// Lowers `e` to affine form valid in the current loop context: every
    /// variable must be a loop variable in scope or an immutable scalar.
    fn lower(&self, e: &Expr) -> Option<AffineExpr> {
        let affine = AffineExpr::from_expr(e)?;
        let loop_vars = self.loop_vars();
        for v in affine.vars() {
            if !loop_vars.contains(v) && self.assigned_scalars.contains(v) {
                return None; // mutated scalar: not a symbolic constant
            }
        }
        Some(affine)
    }

    fn lower_subscript(&self, e: &Expr) -> Subscript {
        match self.lower(e) {
            Some(a) => Subscript::Affine(a),
            None => Subscript::NonAffine,
        }
    }

    fn lower_bound(&self, e: &Expr) -> Bound {
        match self.lower(e) {
            Some(a) => Bound::Affine(a),
            None => Bound::NonAffine,
        }
    }

    fn note_symbolic_uses(&mut self, a: &AffineExpr) {
        let loop_vars: BTreeSet<String> = self.loop_stack.iter().map(|l| l.var.clone()).collect();
        for v in a.vars() {
            if !loop_vars.contains(v) {
                self.used_scalars.insert(v.to_owned());
            }
        }
    }

    fn record(&mut self, r: &ArrayRef, is_write: bool) {
        let subscripts: Vec<Subscript> = r
            .subscripts
            .iter()
            .map(|s| self.lower_subscript(s))
            .collect();
        for s in &subscripts {
            if let Subscript::Affine(a) = s {
                let a = a.clone();
                self.note_symbolic_uses(&a);
            }
        }
        self.accesses.push(Access {
            id: self.accesses.len(),
            array: r.array.clone(),
            subscripts,
            loops: self.loop_stack.clone(),
            is_write,
            stmt_index: self.stmt_index,
            conditional: self.cond_depth > 0,
        });
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt_index += 1;
            match s {
                Stmt::Read(n) => {
                    self.declared_symbolics.insert(n.clone());
                }
                Stmt::ScalarAssign(a) => {
                    // Already noted in the pre-scan; reads inside count too.
                    for r in a.value.array_reads() {
                        self.record(r, false);
                    }
                }
                Stmt::ArrayAssign(a) => {
                    self.record(&a.target, true);
                    for r in a.value.array_reads() {
                        self.record(r, false);
                    }
                    // Array refs nested inside subscripts count as reads.
                    for sub in &a.target.subscripts {
                        for r in sub.array_reads() {
                            self.record(r, false);
                        }
                    }
                }
                Stmt::If(i) => {
                    // Condition reads always execute; branch accesses are
                    // conditional.
                    for r in i.lhs.array_reads() {
                        self.record(r, false);
                    }
                    for r in i.rhs.array_reads() {
                        self.record(r, false);
                    }
                    self.cond_depth += 1;
                    self.walk(&i.then_body);
                    self.walk(&i.else_body);
                    self.cond_depth -= 1;
                }
                Stmt::For(l) => {
                    let lower = self.lower_bound(&l.lower);
                    let upper = self.lower_bound(&l.upper);
                    if let Bound::Affine(a) = &lower {
                        let a = a.clone();
                        self.note_symbolic_uses(&a);
                    }
                    if let Bound::Affine(a) = &upper {
                        let a = a.clone();
                        self.note_symbolic_uses(&a);
                    }
                    self.loop_stack.push(LoopInfo {
                        id: self.next_loop_id,
                        var: l.var.clone(),
                        lower,
                        upper,
                    });
                    self.next_loop_id += 1;
                    self.walk(&l.body);
                    self.loop_stack.pop();
                }
            }
        }
    }
}

fn collect_assigned_scalars(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::ScalarAssign(a) => {
                out.insert(a.name.clone());
            }
            Stmt::For(l) => {
                out.insert(l.var.clone());
                collect_assigned_scalars(&l.body, out);
            }
            Stmt::If(i) => {
                collect_assigned_scalars(&i.then_body, out);
                collect_assigned_scalars(&i.else_body, out);
            }
            _ => {}
        }
    }
}

/// Extracts every array access of `program` with lowered subscripts, loop
/// contexts, and the set of symbolic constants.
///
/// Run the normalization passes first (see [`crate::passes`]) so that
/// scalar temporaries and induction variables have been substituted away —
/// exactly the prepass the paper relies on.
///
/// # Examples
///
/// ```
/// use dda_ir::{parse_program, extract_accesses};
///
/// let p = parse_program("read(n); for i = 1 to n { a[i + n] = a[i] + 1; }")?;
/// let set = extract_accesses(&p);
/// assert_eq!(set.accesses.len(), 2);
/// assert!(set.symbolics.contains("n"));
/// assert!(set.accesses.iter().all(|a| a.is_affine()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn extract_accesses(program: &Program) -> AccessSet {
    let mut assigned = BTreeSet::new();
    collect_assigned_scalars(&program.stmts, &mut assigned);
    let mut ex = Extractor {
        accesses: Vec::new(),
        loop_stack: Vec::new(),
        assigned_scalars: assigned,
        declared_symbolics: BTreeSet::new(),
        used_scalars: BTreeSet::new(),
        next_loop_id: 0,
        stmt_index: 0,
        cond_depth: 0,
    };
    ex.walk(&program.stmts);

    // Symbolics: declared via read(), plus any used scalar that is never
    // assigned (a free parameter).
    let mut symbolics = ex.declared_symbolics;
    for v in &ex.used_scalars {
        if !ex.assigned_scalars.contains(v) {
            symbolics.insert(v.clone());
        }
    }
    AccessSet {
        accesses: ex.accesses,
        symbolics,
    }
}

/// Enumerates the reference pairs a dependence analyzer must test: pairs of
/// distinct accesses to the same array where at least one is a write (set
/// `include_input_deps` to also get read–read pairs).
///
/// # Examples
///
/// ```
/// use dda_ir::{parse_program, extract_accesses, reference_pairs};
///
/// let p = parse_program("for i = 1 to 10 { a[i + 1] = a[i] + b[i]; }")?;
/// let set = extract_accesses(&p);
/// let pairs = reference_pairs(&set, false);
/// assert_eq!(pairs.len(), 1); // a[i+1] vs a[i]; b has no write
/// assert_eq!(pairs[0].common, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn reference_pairs(set: &AccessSet, include_input_deps: bool) -> Vec<RefPair<'_>> {
    // Group by array first: programs with many arrays would otherwise pay
    // a quadratic scan over unrelated accesses.
    let mut by_array: BTreeMap<&str, Vec<&Access>> = BTreeMap::new();
    for a in &set.accesses {
        by_array.entry(a.array.as_str()).or_default().push(a);
    }
    let mut pairs = Vec::new();
    for group in by_array.values() {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                if !include_input_deps && !a.is_write && !b.is_write {
                    continue;
                }
                let common = a
                    .loops
                    .iter()
                    .zip(&b.loops)
                    .take_while(|(x, y)| x.id == y.id)
                    .count();
                pairs.push(RefPair { a, b, common });
            }
        }
    }
    // Keep the historical (id-ordered) enumeration order.
    pairs.sort_by_key(|p| (p.a.id, p.b.id));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn extracts_writes_and_reads() {
        let p = parse_program("for i = 1 to 10 { a[i] = a[i + 10] + 3; }").unwrap();
        let set = extract_accesses(&p);
        assert_eq!(set.accesses.len(), 2);
        assert!(set.accesses[0].is_write);
        assert!(!set.accesses[1].is_write);
        assert_eq!(set.accesses[0].loops.len(), 1);
    }

    #[test]
    fn mutated_scalar_is_not_symbolic() {
        let p = parse_program("k = 5; for i = 1 to 10 { a[i + k] = a[i]; k = k + 1; }").unwrap();
        let set = extract_accesses(&p);
        // k is assigned, so a[i+k] is non-affine without forward subst.
        assert!(!set.accesses[0].is_affine());
        assert!(set.symbolics.is_empty());
    }

    #[test]
    fn free_scalar_is_symbolic() {
        let p = parse_program("for i = 1 to m { a[i + n] = a[i]; }").unwrap();
        let set = extract_accesses(&p);
        assert!(set.symbolics.contains("n"));
        assert!(set.symbolics.contains("m"));
        assert!(set.accesses[0].is_affine());
    }

    #[test]
    fn loop_ids_distinguish_sibling_loops() {
        let p = parse_program("for i = 1 to 10 { a[i] = 1; } for i = 1 to 10 { a[i] = a[i] + 2; }")
            .unwrap();
        let set = extract_accesses(&p);
        let pairs = reference_pairs(&set, false);
        // Three pairs among {w1, w2, r2}; only (w2, r2) shares its loop.
        assert_eq!(pairs.len(), 3);
        let commons: Vec<usize> = pairs.iter().map(|p| p.common).collect();
        assert_eq!(commons.iter().filter(|&&c| c == 0).count(), 2);
        assert_eq!(commons.iter().filter(|&&c| c == 1).count(), 1);
    }

    #[test]
    fn read_read_pairs_opt_in() {
        let p = parse_program("for i = 1 to 10 { b[i] = a[i] + a[i + 1]; }").unwrap();
        let set = extract_accesses(&p);
        assert_eq!(reference_pairs(&set, false).len(), 0);
        assert_eq!(reference_pairs(&set, true).len(), 1);
    }

    #[test]
    fn triangular_bounds_lowered() {
        let p =
            parse_program("for i = 1 to 10 { for j = i to 10 { a[i][j] = a[j][i]; } }").unwrap();
        let set = extract_accesses(&p);
        let inner = &set.accesses[0].loops[1];
        let lower = inner.lower.as_affine().unwrap();
        assert_eq!(lower.coeff("i"), 1);
    }

    #[test]
    fn nonlinear_subscript_marked() {
        let p = parse_program("for i = 1 to 10 { a[i * i] = 0; }").unwrap();
        let set = extract_accesses(&p);
        assert_eq!(set.accesses[0].subscripts[0], Subscript::NonAffine);
    }

    #[test]
    fn subscript_of_subscript_counts_as_read() {
        let p = parse_program("for i = 1 to 10 { a[b[i]] = 0; }").unwrap();
        let set = extract_accesses(&p);
        assert_eq!(set.accesses.len(), 2);
        assert_eq!(set.accesses[0].array, "a");
        assert!(!set.accesses[0].is_affine());
        assert_eq!(set.accesses[1].array, "b");
        assert!(!set.accesses[1].is_write);
    }
}
