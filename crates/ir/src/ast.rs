//! Abstract syntax for the Fortran-like loop-nest language.
//!
//! Programs are lists of statements; loops nest arbitrarily. The paper's
//! running examples all fit this shape:
//!
//! ```text
//! for i = 1 to 10 {
//!     a[i] = a[i + 10] + 3;
//! }
//! ```

use std::fmt;

use crate::expr::{ArrayRef, Expr};

/// A statement of the source language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// A counted loop.
    For(ForLoop),
    /// An assignment to an array element.
    ArrayAssign(ArrayAssign),
    /// An assignment to a scalar variable.
    ScalarAssign(ScalarAssign),
    /// `read(n);` — declares `n` as a loop-invariant unknown (symbolic
    /// constant) for the remainder of the program.
    Read(String),
    /// A two-way conditional. Dependence analysis treats both branches as
    /// possibly executing (the paper's affine model has no control flow;
    /// this is the standard conservative extension).
    If(IfStmt),
}

/// A relational operator in an `if` condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl RelOp {
    /// Evaluates the comparison.
    #[must_use]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            RelOp::Lt => lhs < rhs,
            RelOp::Le => lhs <= rhs,
            RelOp::Gt => lhs > rhs,
            RelOp::Ge => lhs >= rhs,
            RelOp::Eq => lhs == rhs,
            RelOp::Ne => lhs != rhs,
        }
    }

    /// Source spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
            RelOp::Eq => "==",
            RelOp::Ne => "!=",
        }
    }
}

/// `if (lhs op rhs) { … } else { … }`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfStmt {
    /// Left-hand side of the condition.
    pub lhs: Expr,
    /// The comparison.
    pub op: RelOp,
    /// Right-hand side of the condition.
    pub rhs: Expr,
    /// Statements executed when the condition holds.
    pub then_body: Vec<Stmt>,
    /// Statements executed otherwise (may be empty).
    pub else_body: Vec<Stmt>,
}

/// A counted `for` loop with an optional non-unit step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForLoop {
    /// The induction variable.
    pub var: String,
    /// Lower bound expression.
    pub lower: Expr,
    /// Upper bound expression (inclusive).
    pub upper: Expr,
    /// Step; the paper's model requires `1` after normalization.
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

/// `target[subs…] = value;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayAssign {
    /// The written element.
    pub target: ArrayRef,
    /// The right-hand side (may read arrays and scalars).
    pub value: Expr,
}

/// `name = value;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarAssign {
    /// The written scalar.
    pub name: String,
    /// The right-hand side.
    pub value: Expr,
}

/// A whole program: a statement list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Program {
        Program::default()
    }

    /// Total number of statements, counting nested bodies recursively.
    #[must_use]
    pub fn num_stmts(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::For(l) => 1 + count(&l.body),
                    Stmt::If(i) => 1 + count(&i.then_body) + count(&i.else_body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// Maximum loop nesting depth.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        fn depth(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::For(l) => 1 + depth(&l.body),
                    Stmt::If(i) => depth(&i.then_body).max(depth(&i.else_body)),
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        depth(&self.stmts)
    }
}

fn write_indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        write!(f, "    ")?;
    }
    Ok(())
}

fn write_stmt(f: &mut fmt::Formatter<'_>, s: &Stmt, depth: usize) -> fmt::Result {
    write_indent(f, depth)?;
    match s {
        Stmt::For(l) => {
            write!(f, "for {} = {} to {}", l.var, l.lower, l.upper)?;
            if l.step != 1 {
                write!(f, " step {}", l.step)?;
            }
            writeln!(f, " {{")?;
            for inner in &l.body {
                write_stmt(f, inner, depth + 1)?;
            }
            write_indent(f, depth)?;
            writeln!(f, "}}")
        }
        Stmt::ArrayAssign(a) => writeln!(f, "{} = {};", a.target, a.value),
        Stmt::ScalarAssign(a) => writeln!(f, "{} = {};", a.name, a.value),
        Stmt::Read(n) => writeln!(f, "read({n});"),
        Stmt::If(i) => {
            writeln!(f, "if ({} {} {}) {{", i.lhs, i.op.as_str(), i.rhs)?;
            for inner in &i.then_body {
                write_stmt(f, inner, depth + 1)?;
            }
            if !i.else_body.is_empty() {
                write_indent(f, depth)?;
                writeln!(f, "}} else {{")?;
                for inner in &i.else_body {
                    write_stmt(f, inner, depth + 1)?;
                }
            }
            write_indent(f, depth)?;
            writeln!(f, "}}")
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stmts {
            write_stmt(f, s, 0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        Program {
            stmts: vec![Stmt::For(ForLoop {
                var: "i".into(),
                lower: Expr::Const(1),
                upper: Expr::Const(10),
                step: 1,
                body: vec![Stmt::ArrayAssign(ArrayAssign {
                    target: ArrayRef {
                        array: "a".into(),
                        subscripts: vec![Expr::var("i")],
                    },
                    value: Expr::Const(0),
                })],
            })],
        }
    }

    #[test]
    fn counting() {
        let p = tiny();
        assert_eq!(p.num_stmts(), 2);
        assert_eq!(p.max_depth(), 1);
        assert_eq!(Program::new().max_depth(), 0);
    }

    #[test]
    fn display_round_trippable_shape() {
        let p = tiny();
        let text = p.to_string();
        assert!(text.contains("for i = 1 to 10 {"));
        assert!(text.contains("a[i] = 0;"));
    }
}
