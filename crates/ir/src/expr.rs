//! Expression trees and affine (linear) forms.
//!
//! The parser produces general [`Expr`] trees; the dependence tests only
//! understand *affine* functions of loop variables and symbolic constants.
//! [`AffineExpr`] is that normal form, and [`AffineExpr::from_expr`]
//! performs the lowering (after the normalization passes have done constant
//! propagation and substitution).

use std::collections::BTreeMap;
use std::fmt;

/// A multi-dimensional array reference, e.g. `a[i + 1][j]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// The array's name.
    pub array: String,
    /// One subscript expression per dimension.
    pub subscripts: Vec<Expr>,
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.array)?;
        for s in &self.subscripts {
            write!(f, "[{s}]")?;
        }
        Ok(())
    }
}

/// A general scalar expression as written in the source program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Const(i64),
    /// A scalar variable: loop index, symbolic constant, or program scalar.
    Var(String),
    /// A read of an array element.
    ArrayRead(ArrayRef),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a variable expression.
    #[must_use]
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_owned())
    }

    /// Collects every array reference read inside this expression, in
    /// left-to-right order.
    #[must_use]
    pub fn array_reads(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        self.visit_reads(&mut out);
        out
    }

    fn visit_reads<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::ArrayRead(r) => {
                out.push(r);
                // Reads nested inside subscripts (a[b[i]]) are accesses
                // too, in pre-order after their parent.
                for s in &r.subscripts {
                    s.visit_reads(out);
                }
            }
            Expr::Neg(e) => e.visit_reads(out),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.visit_reads(out);
                b.visit_reads(out);
            }
        }
    }

    /// Collects every scalar variable mentioned (not array names).
    #[must_use]
    pub fn scalar_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit_vars(&mut out);
        out
    }

    fn visit_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => out.push(v),
            Expr::ArrayRead(r) => {
                for s in &r.subscripts {
                    s.visit_vars(out);
                }
            }
            Expr::Neg(e) => e.visit_vars(out),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.visit_vars(out);
                b.visit_vars(out);
            }
        }
    }
}

impl Expr {
    fn is_atom(&self) -> bool {
        matches!(self, Expr::Var(_) | Expr::ArrayRead(_) | Expr::Const(0..))
    }

    fn fmt_factor(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // A factor position (operand of `*` or `-x`) needs parentheses
        // around anything that is not an atom.
        if self.is_atom() {
            write!(f, "{self}")
        } else {
            write!(f, "({self})")
        }
    }

    fn fmt_add_rhs(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The right operand of a left-associative `+`/`-` chain needs
        // parentheses around a nested `+`/`-`.
        if matches!(self, Expr::Add(..) | Expr::Sub(..)) {
            write!(f, "({self})")
        } else {
            write!(f, "{self}")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::ArrayRead(r) => write!(f, "{r}"),
            Expr::Neg(e) => {
                write!(f, "-")?;
                e.fmt_factor(f)
            }
            Expr::Add(a, b) => {
                write!(f, "{a} + ")?;
                b.fmt_add_rhs(f)
            }
            Expr::Sub(a, b) => {
                write!(f, "{a} - ")?;
                b.fmt_add_rhs(f)
            }
            Expr::Mul(a, b) => {
                a.fmt_factor(f)?;
                write!(f, " * ")?;
                b.fmt_factor(f)
            }
        }
    }
}

/// An affine (integral linear) function of named variables:
/// `c₀ + Σ cᵥ · v`.
///
/// This is the only form the dependence tests accept for subscripts and
/// loop bounds. Terms with zero coefficients are never stored.
///
/// # Examples
///
/// ```
/// use dda_ir::AffineExpr;
///
/// let e = AffineExpr::term("i", 2).add(&AffineExpr::constant(3));
/// assert_eq!(e.coeff("i"), 2);
/// assert_eq!(e.constant_part(), 3);
/// assert_eq!(e.to_string(), "2*i + 3");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    terms: BTreeMap<String, i64>,
    constant: i64,
}

impl AffineExpr {
    /// The zero function.
    #[must_use]
    pub fn zero() -> AffineExpr {
        AffineExpr::default()
    }

    /// A constant function.
    #[must_use]
    pub fn constant(c: i64) -> AffineExpr {
        AffineExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// A single term `coeff * var`.
    #[must_use]
    pub fn term(var: &str, coeff: i64) -> AffineExpr {
        let mut e = AffineExpr::zero();
        e.set_coeff(var, coeff);
        e
    }

    /// A bare variable `1 * var`.
    #[must_use]
    pub fn var(name: &str) -> AffineExpr {
        AffineExpr::term(name, 1)
    }

    /// The coefficient of `var` (zero if absent).
    #[must_use]
    pub fn coeff(&self, var: &str) -> i64 {
        self.terms.get(var).copied().unwrap_or(0)
    }

    /// Sets the coefficient of `var`, removing the term when zero.
    pub fn set_coeff(&mut self, var: &str, coeff: i64) {
        if coeff == 0 {
            self.terms.remove(var);
        } else {
            self.terms.insert(var.to_owned(), coeff);
        }
    }

    /// The constant part `c₀`.
    #[must_use]
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Whether this function is a constant (no variable terms).
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The variables with non-zero coefficients, in sorted order.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(String::as_str)
    }

    /// Iterates over `(variable, coefficient)` pairs in sorted order.
    pub fn iter_terms(&self) -> impl Iterator<Item = (&str, i64)> {
        self.terms.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Pointwise sum.
    ///
    /// # Panics
    ///
    /// Panics on `i64` overflow (dependence systems use tiny coefficients;
    /// the analyzer bails out to "assume dependent" far earlier).
    #[must_use]
    pub fn add(&self, rhs: &AffineExpr) -> AffineExpr {
        let mut out = self.clone();
        for (v, c) in rhs.iter_terms() {
            let nc = out
                .coeff(v)
                .checked_add(c)
                .expect("affine coefficient overflow");
            out.set_coeff(v, nc);
        }
        out.constant = out
            .constant
            .checked_add(rhs.constant)
            .expect("affine constant overflow");
        out
    }

    /// Pointwise difference.
    ///
    /// # Panics
    ///
    /// Panics on `i64` overflow.
    #[must_use]
    pub fn sub(&self, rhs: &AffineExpr) -> AffineExpr {
        self.add(&rhs.scale(-1))
    }

    /// Multiplies every coefficient and the constant by `k`.
    ///
    /// # Panics
    ///
    /// Panics on `i64` overflow.
    #[must_use]
    pub fn scale(&self, k: i64) -> AffineExpr {
        let mut out = AffineExpr::zero();
        for (v, c) in self.iter_terms() {
            out.set_coeff(v, c.checked_mul(k).expect("affine coefficient overflow"));
        }
        out.constant = self
            .constant
            .checked_mul(k)
            .expect("affine constant overflow");
        out
    }

    /// Replaces `var` with `replacement` throughout.
    ///
    /// # Panics
    ///
    /// Panics on `i64` overflow.
    #[must_use]
    pub fn substitute(&self, var: &str, replacement: &AffineExpr) -> AffineExpr {
        let c = self.coeff(var);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.set_coeff(var, 0);
        out.add(&replacement.scale(c))
    }

    /// Renames a variable. If `to` already has a coefficient, the terms are
    /// merged.
    #[must_use]
    pub fn rename(&self, from: &str, to: &str) -> AffineExpr {
        self.substitute(from, &AffineExpr::var(to))
    }

    /// Evaluates at an assignment; variables absent from `env` are an
    /// error.
    ///
    /// Returns `None` if a variable is unbound or the arithmetic overflows.
    #[must_use]
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> Option<i64> {
        let mut acc = self.constant;
        for (v, c) in self.iter_terms() {
            let val = env.get(v)?;
            acc = acc.checked_add(c.checked_mul(*val)?)?;
        }
        Some(acc)
    }

    /// Lowers a general expression to affine form.
    ///
    /// Returns `None` when the expression is not affine: it reads an array,
    /// or multiplies two non-constant subexpressions.
    ///
    /// # Examples
    ///
    /// ```
    /// use dda_ir::{AffineExpr, Expr};
    ///
    /// let e = Expr::Mul(Box::new(Expr::Const(2)), Box::new(Expr::var("i")));
    /// let a = AffineExpr::from_expr(&e).expect("affine");
    /// assert_eq!(a.coeff("i"), 2);
    ///
    /// let bad = Expr::Mul(Box::new(Expr::var("i")), Box::new(Expr::var("j")));
    /// assert!(AffineExpr::from_expr(&bad).is_none());
    /// ```
    #[must_use]
    pub fn from_expr(e: &Expr) -> Option<AffineExpr> {
        match e {
            Expr::Const(c) => Some(AffineExpr::constant(*c)),
            Expr::Var(v) => Some(AffineExpr::var(v)),
            Expr::ArrayRead(_) => None,
            Expr::Neg(inner) => Some(AffineExpr::from_expr(inner)?.scale(-1)),
            Expr::Add(a, b) => Some(AffineExpr::from_expr(a)?.add(&AffineExpr::from_expr(b)?)),
            Expr::Sub(a, b) => Some(AffineExpr::from_expr(a)?.sub(&AffineExpr::from_expr(b)?)),
            Expr::Mul(a, b) => {
                let la = AffineExpr::from_expr(a)?;
                let lb = AffineExpr::from_expr(b)?;
                if la.is_constant() {
                    Some(lb.scale(la.constant_part()))
                } else if lb.is_constant() {
                    Some(la.scale(lb.constant_part()))
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.iter_terms() {
            if first {
                if c == 1 {
                    write!(f, "{v}")?;
                } else if c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if c >= 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}*{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}*{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_basic_ops() {
        let e = AffineExpr::term("i", 2)
            .add(&AffineExpr::term("j", -1))
            .add(&AffineExpr::constant(5));
        assert_eq!(e.coeff("i"), 2);
        assert_eq!(e.coeff("j"), -1);
        assert_eq!(e.coeff("k"), 0);
        assert_eq!(e.constant_part(), 5);
        let d = e.sub(&AffineExpr::term("i", 2));
        assert_eq!(d.coeff("i"), 0);
        assert!(!d.vars().any(|v| v == "i"));
    }

    #[test]
    fn affine_substitute() {
        // 2i + 1 with i := j + 3  =>  2j + 7
        let e = AffineExpr::term("i", 2).add(&AffineExpr::constant(1));
        let r = AffineExpr::var("j").add(&AffineExpr::constant(3));
        let s = e.substitute("i", &r);
        assert_eq!(s.coeff("j"), 2);
        assert_eq!(s.constant_part(), 7);
        assert_eq!(s.coeff("i"), 0);
    }

    #[test]
    fn affine_eval() {
        let e = AffineExpr::term("i", 3).add(&AffineExpr::constant(-2));
        let mut env = BTreeMap::new();
        env.insert("i".to_owned(), 4);
        assert_eq!(e.eval(&env), Some(10));
        assert_eq!(AffineExpr::var("x").eval(&env), None);
    }

    #[test]
    fn lowering_rejects_nonlinear() {
        let nonlinear = Expr::Mul(Box::new(Expr::var("i")), Box::new(Expr::var("j")));
        assert!(AffineExpr::from_expr(&nonlinear).is_none());
        let read = Expr::ArrayRead(ArrayRef {
            array: "a".into(),
            subscripts: vec![Expr::var("i")],
        });
        assert!(AffineExpr::from_expr(&read).is_none());
    }

    #[test]
    fn lowering_handles_nested_arithmetic() {
        // -(2 * (i - 3)) + j  =>  -2i + j + 6
        let e = Expr::Add(
            Box::new(Expr::Neg(Box::new(Expr::Mul(
                Box::new(Expr::Const(2)),
                Box::new(Expr::Sub(
                    Box::new(Expr::var("i")),
                    Box::new(Expr::Const(3)),
                )),
            )))),
            Box::new(Expr::var("j")),
        );
        let a = AffineExpr::from_expr(&e).unwrap();
        assert_eq!(a.coeff("i"), -2);
        assert_eq!(a.coeff("j"), 1);
        assert_eq!(a.constant_part(), 6);
    }

    #[test]
    fn display_formats() {
        let e = AffineExpr::term("i", 1)
            .add(&AffineExpr::term("j", -2))
            .add(&AffineExpr::constant(-3));
        assert_eq!(e.to_string(), "i - 2*j - 3");
        assert_eq!(AffineExpr::zero().to_string(), "0");
        assert_eq!(AffineExpr::term("i", -1).to_string(), "-i");
    }

    #[test]
    fn array_reads_collected_in_order() {
        let r1 = ArrayRef {
            array: "a".into(),
            subscripts: vec![Expr::var("i")],
        };
        let r2 = ArrayRef {
            array: "b".into(),
            subscripts: vec![Expr::var("j")],
        };
        let e = Expr::Add(
            Box::new(Expr::ArrayRead(r1.clone())),
            Box::new(Expr::ArrayRead(r2.clone())),
        );
        let reads = e.array_reads();
        assert_eq!(reads, vec![&r1, &r2]);
    }
}
