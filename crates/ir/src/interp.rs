//! A reference interpreter: executes a program and records every array
//! access with its iteration vector.
//!
//! This is the *oracle* for dependence analysis: two references are truly
//! dependent exactly when some pair of their recorded accesses touches the
//! same element, and the true direction vectors can be read off the
//! iteration vectors. Integration tests replay the analyzer's verdicts
//! against this ground truth — the executable meaning of the paper's
//! "exact".
//!
//! The interpreter requires concrete loop bounds; symbolic constants are
//! supplied through an environment.

use std::collections::BTreeMap;

use crate::ast::{Program, Stmt};
use crate::expr::{ArrayRef, Expr};

/// One concrete array access observed during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Touch {
    /// Which array.
    pub array: String,
    /// The element's index vector.
    pub element: Vec<i64>,
    /// Whether the access wrote the element.
    pub is_write: bool,
    /// The access id assigned by [`crate::extract_accesses`] (extraction
    /// order), so touches can be matched to analyzed accesses.
    pub access_id: usize,
    /// Values of the enclosing loop variables, outermost first.
    pub iteration: Vec<i64>,
}

/// Why execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A scalar (or symbolic constant) had no value.
    UnboundVariable(String),
    /// The step budget was exhausted (runaway loop).
    BudgetExhausted,
    /// Arithmetic overflowed.
    Overflow,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            ExecError::BudgetExhausted => write!(f, "execution budget exhausted"),
            ExecError::Overflow => write!(f, "arithmetic overflow"),
        }
    }
}

impl std::error::Error for ExecError {}

struct Interp {
    env: BTreeMap<String, i64>,
    memory: BTreeMap<(String, Vec<i64>), i64>,
    loop_stack: Vec<(String, i64)>,
    touches: Vec<Touch>,
    next_access_id: usize,
    budget: u64,
}

impl Interp {
    fn eval(&mut self, e: &Expr) -> Result<i64, ExecError> {
        match e {
            Expr::Const(c) => Ok(*c),
            Expr::Var(v) => self
                .env
                .get(v)
                .copied()
                .ok_or_else(|| ExecError::UnboundVariable(v.clone())),
            Expr::ArrayRead(r) => self.touch(r, false),
            Expr::Neg(x) => self.eval(x)?.checked_neg().ok_or(ExecError::Overflow),
            Expr::Add(a, b) => self
                .eval(a)?
                .checked_add(self.eval(b)?)
                .ok_or(ExecError::Overflow),
            Expr::Sub(a, b) => self
                .eval(a)?
                .checked_sub(self.eval(b)?)
                .ok_or(ExecError::Overflow),
            Expr::Mul(a, b) => self
                .eval(a)?
                .checked_mul(self.eval(b)?)
                .ok_or(ExecError::Overflow),
        }
    }

    /// Records a read access and returns the element's stored value
    /// (unwritten elements read as 0). Access ids are assigned in
    /// *extraction order* (the order `extract_accesses` walks the AST):
    /// the reference itself first, then reads nested in its subscripts.
    fn touch(&mut self, r: &ArrayRef, is_write: bool) -> Result<i64, ExecError> {
        let access_id = self.next_access_id;
        self.next_access_id += 1;
        let element: Result<Vec<i64>, ExecError> =
            r.subscripts.iter().map(|s| self.eval_pure(s)).collect();
        let element = element?;
        // Reads nested inside subscripts get their own touches.
        for s in &r.subscripts {
            self.record_nested_reads(s)?;
        }
        self.touches.push(Touch {
            array: r.array.clone(),
            element: element.clone(),
            is_write,
            access_id,
            iteration: self.loop_stack.iter().map(|(_, v)| *v).collect(),
        });
        Ok(self
            .memory
            .get(&(r.array.clone(), element))
            .copied()
            .unwrap_or(0))
    }

    /// Evaluates an expression without recording reads (subscripts record
    /// their nested reads separately, to keep ids aligned with
    /// extraction).
    fn eval_pure(&mut self, e: &Expr) -> Result<i64, ExecError> {
        match e {
            Expr::Const(c) => Ok(*c),
            Expr::Var(v) => self
                .env
                .get(v)
                .copied()
                .ok_or_else(|| ExecError::UnboundVariable(v.clone())),
            Expr::ArrayRead(r) => {
                // Pure evaluation (no touch recording): used for the
                // subscripts of an access, whose nested reads are recorded
                // separately to keep ids aligned with extraction.
                let element: Result<Vec<i64>, ExecError> =
                    r.subscripts.iter().map(|s| self.eval_pure(s)).collect();
                Ok(self
                    .memory
                    .get(&(r.array.clone(), element?))
                    .copied()
                    .unwrap_or(0))
            }
            Expr::Neg(x) => self.eval_pure(x)?.checked_neg().ok_or(ExecError::Overflow),
            Expr::Add(a, b) => self
                .eval_pure(a)?
                .checked_add(self.eval_pure(b)?)
                .ok_or(ExecError::Overflow),
            Expr::Sub(a, b) => self
                .eval_pure(a)?
                .checked_sub(self.eval_pure(b)?)
                .ok_or(ExecError::Overflow),
            Expr::Mul(a, b) => self
                .eval_pure(a)?
                .checked_mul(self.eval_pure(b)?)
                .ok_or(ExecError::Overflow),
        }
    }

    fn record_nested_reads(&mut self, e: &Expr) -> Result<(), ExecError> {
        match e {
            Expr::Const(_) | Expr::Var(_) => Ok(()),
            Expr::ArrayRead(r) => self.touch(r, false).map(|_| ()),
            Expr::Neg(x) => self.record_nested_reads(x),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                self.record_nested_reads(a)?;
                self.record_nested_reads(b)
            }
        }
    }

    fn run(&mut self, stmts: &[Stmt]) -> Result<(), ExecError> {
        for s in stmts {
            if self.budget == 0 {
                return Err(ExecError::BudgetExhausted);
            }
            self.budget -= 1;
            match s {
                Stmt::Read(name) => {
                    // The driver pre-binds symbolics; `read` is a no-op if
                    // already bound, else an error.
                    if !self.env.contains_key(name) {
                        return Err(ExecError::UnboundVariable(name.clone()));
                    }
                }
                Stmt::ScalarAssign(a) => {
                    let v = self.eval(&a.value)?;
                    self.env.insert(a.name.clone(), v);
                }
                Stmt::ArrayAssign(a) => {
                    // Extraction order: the write first, then RHS reads,
                    // then reads nested in the target's subscripts.
                    let write_id = self.next_access_id;
                    self.next_access_id += 1;
                    let element: Result<Vec<i64>, ExecError> = a
                        .target
                        .subscripts
                        .iter()
                        .map(|s| self.eval_pure(s))
                        .collect();
                    let element = element?;
                    self.touches.push(Touch {
                        array: a.target.array.clone(),
                        element: element.clone(),
                        is_write: true,
                        access_id: write_id,
                        iteration: self.loop_stack.iter().map(|(_, v)| *v).collect(),
                    });
                    let value = self.eval(&a.value)?;
                    for sub in &a.target.subscripts {
                        self.record_nested_reads(sub)?;
                    }
                    self.memory.insert((a.target.array.clone(), element), value);
                }
                Stmt::If(i) => {
                    // Condition reads execute unconditionally, in the same
                    // order extraction numbers them (lhs then rhs).
                    let lhs = self.eval(&i.lhs)?;
                    let rhs = self.eval(&i.rhs)?;
                    if i.op.eval(lhs, rhs) {
                        self.run(&i.then_body)?;
                        self.skip_ids(&i.else_body);
                    } else {
                        self.skip_ids(&i.then_body);
                        self.run(&i.else_body)?;
                    }
                }
                Stmt::For(l) => {
                    let lo = self.eval(&l.lower)?;
                    let hi = self.eval(&l.upper)?;
                    let step = l.step;
                    let saved = self.env.get(&l.var).copied();
                    let mut i = lo;
                    loop {
                        let done = if step > 0 { i > hi } else { i < hi };
                        if done {
                            break;
                        }
                        if self.budget == 0 {
                            return Err(ExecError::BudgetExhausted);
                        }
                        self.budget -= 1;
                        self.env.insert(l.var.clone(), i);
                        self.loop_stack.push((l.var.clone(), i));
                        let save_id = self.next_access_id;
                        self.run(&l.body)?;
                        // Each iteration replays the same static accesses:
                        // rewind ids so they stay aligned with extraction.
                        self.next_access_id = save_id;
                        self.loop_stack.pop();
                        i = i.checked_add(step).ok_or(ExecError::Overflow)?;
                    }
                    // After the loop the body's accesses are consumed once
                    // in the static numbering.
                    self.skip_ids(&l.body);
                    match saved {
                        Some(v) => {
                            self.env.insert(l.var.clone(), v);
                        }
                        None => {
                            self.env.remove(&l.var);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Advances the static access-id counter over `stmts` without
    /// executing them (used for zero-trip or finished loops).
    fn skip_ids(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::ArrayAssign(a) => {
                    self.next_access_id += 1; // the write
                    self.next_access_id += count_reads(&a.value);
                    for sub in &a.target.subscripts {
                        self.next_access_id += count_reads(sub);
                    }
                }
                Stmt::ScalarAssign(a) => {
                    self.next_access_id += count_reads(&a.value);
                }
                Stmt::For(l) => self.skip_ids(&l.body),
                Stmt::If(i) => {
                    self.next_access_id += count_reads(&i.lhs) + count_reads(&i.rhs);
                    self.skip_ids(&i.then_body);
                    self.skip_ids(&i.else_body);
                }
                Stmt::Read(_) => {}
            }
        }
    }
}

fn count_reads(e: &Expr) -> usize {
    e.array_reads()
        .iter()
        .map(|r| 1 + r.subscripts.iter().map(count_reads).sum::<usize>())
        .sum()
}

/// Executes `program`, binding symbolic constants from `symbolics`, and
/// returns every array access in execution order.
///
/// `budget` bounds the number of statements + iterations executed.
///
/// # Errors
///
/// Returns an [`ExecError`] for unbound variables, overflow, or budget
/// exhaustion.
///
/// # Examples
///
/// ```
/// use dda_ir::{parse_program, interp::execute};
///
/// let p = parse_program("for i = 1 to 3 { a[i + 1] = a[i]; }")?;
/// let touches = execute(&p, &Default::default(), 10_000)?;
/// assert_eq!(touches.len(), 6); // 3 iterations × (1 write + 1 read)
/// assert!(touches[0].is_write);
/// assert_eq!(touches[0].element, vec![2]);
/// assert_eq!(touches[1].element, vec![1]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn execute(
    program: &Program,
    symbolics: &BTreeMap<String, i64>,
    budget: u64,
) -> Result<Vec<Touch>, ExecError> {
    let mut interp = Interp {
        env: symbolics.clone(),
        memory: BTreeMap::new(),
        loop_stack: Vec::new(),
        touches: Vec::new(),
        next_access_id: 0,
        budget,
    };
    interp.run(&program.stmts)?;
    Ok(interp.touches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::extract_accesses;
    use crate::parser::parse_program;

    fn run(src: &str) -> Vec<Touch> {
        let p = parse_program(src).unwrap();
        execute(&p, &BTreeMap::new(), 100_000).unwrap()
    }

    #[test]
    fn records_in_execution_order() {
        let t = run("for i = 1 to 2 { a[i] = a[i + 1]; }");
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].element, vec![1]);
        assert!(t[0].is_write);
        assert_eq!(t[1].element, vec![2]);
        assert!(!t[1].is_write);
        assert_eq!(t[2].element, vec![2]);
        assert_eq!(t[3].element, vec![3]);
    }

    #[test]
    fn access_ids_match_extraction() {
        let src = "for i = 1 to 3 { a[i] = a[i - 1] + b[i]; } for j = 1 to 2 { b[j] = 1; }";
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        let touches = execute(&p, &BTreeMap::new(), 100_000).unwrap();
        for t in &touches {
            let acc = &set.accesses[t.access_id];
            assert_eq!(acc.array, t.array, "id {} array", t.access_id);
            assert_eq!(acc.is_write, t.is_write, "id {} rw", t.access_id);
            assert_eq!(acc.loops.len(), t.iteration.len());
        }
        // b's write in the second loop must carry id 3.
        assert!(touches.iter().any(|t| t.access_id == 3 && t.is_write));
    }

    #[test]
    fn triangular_loops() {
        let t = run("for i = 1 to 3 { for j = i to 3 { a[j] = 0; } }");
        // Iterations: (1,1..3), (2,2..3), (3,3): 6 writes.
        assert_eq!(t.len(), 6);
        assert_eq!(t[0].iteration, vec![1, 1]);
        assert_eq!(t[5].iteration, vec![3, 3]);
    }

    #[test]
    fn zero_trip_loop_records_nothing() {
        let t = run("for i = 5 to 1 { a[i] = 0; } a[7] = 1;");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].element, vec![7]);
        // The id still accounts for the skipped loop body.
        assert_eq!(t[0].access_id, 1);
    }

    #[test]
    fn negative_step() {
        let t = run("for i = 3 to 1 step -1 { a[i] = 0; }");
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].element, vec![3]);
        assert_eq!(t[2].element, vec![1]);
    }

    #[test]
    fn scalar_and_induction_semantics() {
        let t = run("k = 10; for i = 1 to 3 { k = k + 2; a[k] = 0; }");
        let elems: Vec<i64> = t.iter().map(|x| x.element[0]).collect();
        assert_eq!(elems, vec![12, 14, 16]);
    }

    #[test]
    fn symbolic_binding() {
        let p = parse_program("read(n); for i = 1 to n { a[i] = 0; }").unwrap();
        let mut env = BTreeMap::new();
        env.insert("n".to_owned(), 4);
        let t = execute(&p, &env, 100_000).unwrap();
        assert_eq!(t.len(), 4);
        let err = execute(&p, &BTreeMap::new(), 100_000).unwrap_err();
        assert_eq!(err, ExecError::UnboundVariable("n".into()));
    }

    #[test]
    fn budget_guards_runaway() {
        let p = parse_program("for i = 1 to 1000000 { a[i] = 0; }").unwrap();
        assert_eq!(
            execute(&p, &BTreeMap::new(), 100).unwrap_err(),
            ExecError::BudgetExhausted
        );
    }

    #[test]
    fn subscript_of_subscript_ids() {
        let src = "for i = 1 to 2 { a[b[i]] = 0; }";
        let p = parse_program(src).unwrap();
        let set = extract_accesses(&p);
        assert_eq!(set.accesses.len(), 2);
        let touches = execute(&p, &BTreeMap::new(), 1000).unwrap();
        // Per iteration: write to a (id 0) + read of b (id 1).
        assert_eq!(touches.len(), 4);
        for t in &touches {
            let acc = &set.accesses[t.access_id];
            assert_eq!(acc.array, t.array);
        }
    }
}
