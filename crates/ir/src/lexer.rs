//! Lexer for the Fortran-like DSL.

use std::fmt;

use crate::parser::{ParseError, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier (variable, array, or keyword candidate).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// `for`
    For,
    /// `to`
    To,
    /// `step`
    Step,
    /// `read`
    Read,
    /// `if`
    If,
    /// `else`
    Else,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Int(v) => write!(f, "integer `{v}`"),
            Token::For => write!(f, "`for`"),
            Token::To => write!(f, "`to`"),
            Token::Step => write!(f, "`step`"),
            Token::Read => write!(f, "`read`"),
            Token::If => write!(f, "`if`"),
            Token::Else => write!(f, "`else`"),
            Token::Assign => write!(f, "`=`"),
            Token::EqEq => write!(f, "`==`"),
            Token::NotEq => write!(f, "`!=`"),
            Token::Lt => write!(f, "`<`"),
            Token::Le => write!(f, "`<=`"),
            Token::Gt => write!(f, "`>`"),
            Token::Ge => write!(f, "`>=`"),
            Token::Plus => write!(f, "`+`"),
            Token::Minus => write!(f, "`-`"),
            Token::Star => write!(f, "`*`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::LBrace => write!(f, "`{{`"),
            Token::RBrace => write!(f, "`}}`"),
            Token::Semi => write!(f, "`;`"),
            Token::Comma => write!(f, "`,`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Where it came from.
    pub span: Span,
}

/// Tokenizes `source`.
///
/// Comments run from `//` to end of line. Whitespace separates tokens.
///
/// # Errors
///
/// Returns a [`ParseError`] on an unrecognized character or an integer
/// literal that does not fit in `i64`.
pub fn tokenize(source: &str) -> Result<Vec<SpannedToken>, ParseError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value: i64 = text.parse().map_err(|_| ParseError {
                    message: format!("integer literal `{text}` does not fit in i64"),
                    span: Span { start, end: i },
                })?;
                out.push(SpannedToken {
                    token: Token::Int(value),
                    span: Span { start, end: i },
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
                {
                    i += 1;
                }
                let text = &source[start..i];
                let token = match text {
                    "for" => Token::For,
                    "to" => Token::To,
                    "step" => Token::Step,
                    "read" => Token::Read,
                    "if" => Token::If,
                    "else" => Token::Else,
                    _ => Token::Ident(text.to_owned()),
                };
                out.push(SpannedToken {
                    token,
                    span: Span { start, end: i },
                });
            }
            b'=' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(SpannedToken {
                    token: Token::EqEq,
                    span: Span {
                        start: i,
                        end: i + 2,
                    },
                });
                i += 2;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(SpannedToken {
                    token: Token::NotEq,
                    span: Span {
                        start: i,
                        end: i + 2,
                    },
                });
                i += 2;
            }
            b'<' => {
                let (token, len) = if bytes.get(i + 1) == Some(&b'=') {
                    (Token::Le, 2)
                } else {
                    (Token::Lt, 1)
                };
                out.push(SpannedToken {
                    token,
                    span: Span {
                        start: i,
                        end: i + len,
                    },
                });
                i += len;
            }
            b'>' => {
                let (token, len) = if bytes.get(i + 1) == Some(&b'=') {
                    (Token::Ge, 2)
                } else {
                    (Token::Gt, 1)
                };
                out.push(SpannedToken {
                    token,
                    span: Span {
                        start: i,
                        end: i + len,
                    },
                });
                i += len;
            }
            _ => {
                let token = match b {
                    b'=' => Token::Assign,
                    b'+' => Token::Plus,
                    b'-' => Token::Minus,
                    b'*' => Token::Star,
                    b'(' => Token::LParen,
                    b')' => Token::RParen,
                    b'[' => Token::LBracket,
                    b']' => Token::RBracket,
                    b'{' => Token::LBrace,
                    b'}' => Token::RBrace,
                    b';' => Token::Semi,
                    b',' => Token::Comma,
                    other => {
                        return Err(ParseError {
                            message: format!("unexpected character `{}`", other as char),
                            span: Span {
                                start: i,
                                end: i + 1,
                            },
                        })
                    }
                };
                out.push(SpannedToken {
                    token,
                    span: Span {
                        start: i,
                        end: i + 1,
                    },
                });
                i += 1;
            }
        }
    }
    out.push(SpannedToken {
        token: Token::Eof,
        span: Span {
            start: source.len(),
            end: source.len(),
        },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("for i = 1 to n"),
            vec![
                Token::For,
                Token::Ident("i".into()),
                Token::Assign,
                Token::Int(1),
                Token::To,
                Token::Ident("n".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn punctuation() {
        assert_eq!(
            kinds("a[i+1] = a[i]*2;"),
            vec![
                Token::Ident("a".into()),
                Token::LBracket,
                Token::Ident("i".into()),
                Token::Plus,
                Token::Int(1),
                Token::RBracket,
                Token::Assign,
                Token::Ident("a".into()),
                Token::LBracket,
                Token::Ident("i".into()),
                Token::RBracket,
                Token::Star,
                Token::Int(2),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 // a comment\n2"),
            vec![Token::Int(1), Token::Int(2), Token::Eof]
        );
    }

    #[test]
    fn primed_identifiers_allowed() {
        // Convenient for writing i' in documentation-style tests.
        assert_eq!(kinds("i'"), vec![Token::Ident("i'".into()), Token::Eof]);
    }

    #[test]
    fn bad_character_errors() {
        let err = tokenize("a $ b").unwrap_err();
        assert!(err.message.contains('$'));
        assert_eq!(err.span.start, 2);
    }

    #[test]
    fn huge_literal_errors() {
        assert!(tokenize("99999999999999999999999").is_err());
    }
}
