//! Loop-nest intermediate representation for dependence analysis.
//!
//! This crate is the "SUIF front end" substrate of the PLDI 1991
//! reproduction: a small Fortran-like language, its parser, the
//! normalization prepasses the paper assumes (constant propagation,
//! forward substitution, induction-variable substitution, loop
//! normalization), and the extraction of array-reference pairs that the
//! dependence tests consume.
//!
//! # Pipeline
//!
//! 1. [`parse_program`] — text to AST.
//! 2. [`passes::normalize`] — runs the prepasses until fixpoint.
//! 3. [`extract_accesses`] — lowers subscripts and bounds to
//!    [`AffineExpr`], identifies symbolic constants.
//! 4. [`reference_pairs`] — enumerates the pairs to test.
//!
//! # Examples
//!
//! The paper's Section 8 example, after normalization:
//!
//! ```
//! use dda_ir::{parse_program, passes, extract_accesses};
//!
//! let mut p = parse_program(
//!     "n = 100;
//!      iz = 0;
//!      for i = 1 to 10 {
//!          iz = iz + 2;
//!          a[iz + n] = a[iz + 2 * n + 1] + 3;
//!      }",
//! )?;
//! passes::normalize(&mut p);
//! let set = extract_accesses(&p);
//! // All subscripts became affine functions of i: 2i + 100 and 2i + 201.
//! assert!(set.accesses.iter().all(|a| a.is_affine()));
//! # Ok::<(), dda_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
mod ast;
mod expr;
pub mod interp;
mod lexer;
mod loops;
mod parser;
pub mod passes;

pub use access::{
    extract_accesses, reference_pairs, Access, AccessSet, Bound, LoopInfo, RefPair, Subscript,
};
pub use ast::{ArrayAssign, ForLoop, IfStmt, Program, RelOp, ScalarAssign, Stmt};
pub use expr::{AffineExpr, ArrayRef, Expr};
pub use lexer::{tokenize, SpannedToken, Token};
pub use loops::{loop_table, LoopMeta, LoopTable};
pub use parser::{parse_expr, parse_program, ParseError, Span};
