//! The program's loop table: one row per `for` loop, numbered exactly
//! like access extraction numbers them.
//!
//! [`extract_accesses`](crate::extract_accesses) assigns each loop a
//! pre-order id as it walks the program (including both branches of an
//! `if`), and every [`LoopInfo`](crate::LoopInfo) attached to an access
//! refers to loops by that id. Consumers that need to talk about loops
//! *by id* — the dependence-graph layer, the `parallel` annotator, the
//! auto-parallelizer example — used to re-derive the numbering with
//! their own walks, which silently drifts the moment the extractor
//! changes. [`loop_table`] is the one authoritative walk: it produces
//! the id → metadata mapping (variable, depth, parent, source bounds)
//! and is pinned by a test to agree with extraction.

use std::fmt;

use crate::ast::{Program, Stmt};
use crate::expr::Expr;

/// Metadata for one `for` loop, keyed by its pre-order id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopMeta {
    /// Pre-order id, identical to [`LoopInfo::id`](crate::LoopInfo).
    pub id: usize,
    /// The induction variable name.
    pub var: String,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// Id of the directly enclosing loop, if any.
    pub parent: Option<usize>,
    /// Source-level lower bound (pre-lowering, for display).
    pub lower: Expr,
    /// Source-level upper bound (pre-lowering, for display).
    pub upper: Expr,
}

impl fmt::Display for LoopMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "for {} = {} to {}", self.var, self.lower, self.upper)
    }
}

/// All loops of a program, indexable by pre-order id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoopTable {
    loops: Vec<LoopMeta>,
}

impl LoopTable {
    /// All loops in id (pre-order) order.
    #[must_use]
    pub fn loops(&self) -> &[LoopMeta] {
        &self.loops
    }

    /// Number of loops in the program.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the program has no loops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// The loop with pre-order id `id`, if it exists.
    #[must_use]
    pub fn get(&self, id: usize) -> Option<&LoopMeta> {
        self.loops.get(id)
    }

    /// Whether `inner` is nested *directly* inside `outer` (its parent).
    #[must_use]
    pub fn directly_nested(&self, outer: usize, inner: usize) -> bool {
        self.get(inner).is_some_and(|l| l.parent == Some(outer))
    }
}

/// Builds the loop table of a program. The walk mirrors
/// [`extract_accesses`](crate::extract_accesses): statements in order,
/// `if` visiting the then-branch before the else-branch, ids assigned
/// pre-order at each `for`.
#[must_use]
pub fn loop_table(program: &Program) -> LoopTable {
    fn go(stmts: &[Stmt], depth: usize, parent: Option<usize>, out: &mut Vec<LoopMeta>) {
        for s in stmts {
            match s {
                Stmt::For(l) => {
                    let id = out.len();
                    out.push(LoopMeta {
                        id,
                        var: l.var.clone(),
                        depth,
                        parent,
                        lower: l.lower.clone(),
                        upper: l.upper.clone(),
                    });
                    go(&l.body, depth.saturating_add(1), Some(id), out);
                }
                Stmt::If(i) => {
                    go(&i.then_body, depth, parent, out);
                    go(&i.else_body, depth, parent, out);
                }
                _ => {}
            }
        }
    }
    let mut loops = Vec::new();
    go(&program.stmts, 0, None, &mut loops);
    LoopTable { loops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::extract_accesses;
    use crate::parser::parse_program;

    #[test]
    fn numbering_matches_access_extraction() {
        // Loops in sequence, under ifs, and nested — every id the
        // extractor hands to an access must resolve to the same
        // variable in the table.
        let src = "for i = 1 to 10 { a[i] = 1; }
                   if (1 < 2) { for j = 1 to 5 { a[j] = 2; } }
                   for k = 1 to 3 { for l = k to 9 { a[k] = a[l]; } }";
        let p = parse_program(src).unwrap();
        let table = loop_table(&p);
        assert_eq!(table.len(), 4);
        let set = extract_accesses(&p);
        for access in &set.accesses {
            for info in &access.loops {
                assert_eq!(table.get(info.id).unwrap().var, info.var, "id {}", info.id);
            }
        }
    }

    #[test]
    fn depth_and_parent_follow_nesting() {
        let p = parse_program(
            "for i = 1 to 9 { for j = 1 to 9 { a[i] = a[j]; } } \
                               for k = 1 to 9 { a[k] = 0; }",
        )
        .unwrap();
        let table = loop_table(&p);
        let meta: Vec<(usize, Option<usize>)> =
            table.loops().iter().map(|l| (l.depth, l.parent)).collect();
        assert_eq!(meta, vec![(0, None), (1, Some(0)), (0, None)]);
        assert!(table.directly_nested(0, 1));
        assert!(!table.directly_nested(0, 2));
        assert!(!table.directly_nested(1, 0));
    }

    #[test]
    fn display_reconstructs_the_header() {
        let p = parse_program("for i = 2 to n { a[i] = 0; }").unwrap();
        let table = loop_table(&p);
        assert_eq!(table.get(0).unwrap().to_string(), "for i = 2 to n");
    }

    #[test]
    fn loopless_program_has_empty_table() {
        let p = parse_program("a[1] = 2;").unwrap();
        assert!(loop_table(&p).is_empty());
        assert_eq!(loop_table(&p).get(0), None);
    }
}
